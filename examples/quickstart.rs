//! Quickstart: one complete TLC charging cycle, end to end.
//!
//! Simulates an edge application streaming over the emulated LTE cell for
//! one (shortened) charging cycle, then runs the full TLC pipeline:
//! loss–selfishness cancellation, signed CDR/CDA/PoC negotiation, and
//! public verification — and compares the bill against legacy 4G/5G.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tlc_core::messages::NONCE_LEN;
use tlc_core::plan::DataPlan;
use tlc_core::protocol::{run_negotiation, Endpoint};
use tlc_core::strategy::{OptimalStrategy, Role};
use tlc_core::verify::Verifier;
use tlc_crypto::KeyPair;
use tlc_net::time::SimDuration;
use tlc_sim::measure::cycle_records;
use tlc_sim::scenario::{run_scenario, AppKind, ScenarioConfig};

fn main() {
    // ── 1. Simulate a charging cycle ────────────────────────────────────
    // A VR offload stream (9 Mbps downlink) against 140 Mbps of background
    // traffic on the same cell: congestion drops packets *after* the
    // operator's gateway has metered them.
    let cycle = SimDuration::from_secs(120);
    let cfg = ScenarioConfig::new(AppKind::Vr, 42, cycle).with_background(140.0);
    println!(
        "simulating: {} for {:?} + {} Mbps background…",
        cfg.app.name(),
        cycle,
        cfg.background_mbps
    );
    let result = run_scenario(&cfg);

    let records = cycle_records(&result);
    println!("\nground truth for the cycle:");
    println!("  server sent (x̂_e):      {:>12} bytes", records.truth.edge);
    println!(
        "  device received (x̂_o):  {:>12} bytes",
        records.truth.operator
    );
    println!(
        "  lost in the network:    {:>12} bytes",
        records.truth.edge - records.truth.operator
    );

    // ── 2. The data plan ───────────────────────────────────────────────
    let plan = DataPlan::paper_default(); // c = 0.5: lost data half-charged
    let intended = tlc_core::plan::intended_charge(records.truth, plan.loss_weight);
    println!(
        "\nplan-intended charge x̂ (c = {}): {} bytes",
        plan.loss_weight.as_f64(),
        intended
    );

    // What legacy 4G/5G bills: the gateway meter, counted before the loss.
    println!(
        "legacy 4G/5G bill:               {} bytes (over by {})",
        records.legacy_metered,
        records.legacy_metered.saturating_sub(intended)
    );

    // ── 3. TLC negotiation with signed messages ────────────────────────
    let edge_keys = KeyPair::generate_for_seed(1024, 1).expect("edge keygen");
    let op_keys = KeyPair::generate_for_seed(1024, 2).expect("operator keygen");

    let mut edge = Endpoint::new(
        Role::Edge,
        plan,
        records.edge,
        Box::new(OptimalStrategy),
        edge_keys.private.clone(),
        op_keys.public.clone(),
        [0xE1; NONCE_LEN],
        32,
    );
    let mut operator = Endpoint::new(
        Role::Operator,
        plan,
        records.operator,
        Box::new(OptimalStrategy),
        op_keys.private.clone(),
        edge_keys.public.clone(),
        [0x0A; NONCE_LEN],
        32,
    );
    let (poc, msgs) = run_negotiation(&mut operator, &mut edge).expect("negotiation");
    println!(
        "\nTLC negotiation: {} messages, {} round(s)",
        msgs,
        operator.rounds()
    );
    println!("  edge claimed x_e = {}", poc.edge_usage());
    println!("  operator claimed x_o = {}", poc.operator_usage());
    println!("  negotiated charge x = {} bytes", poc.charge);
    println!(
        "  |x − x̂| = {} bytes ({:.2}% of x̂)",
        poc.charge.abs_diff(intended),
        poc.charge.abs_diff(intended) as f64 * 100.0 / intended as f64
    );

    // ── 4. Public verification (Algorithm 2) ───────────────────────────
    let mut verifier = Verifier::new(plan, edge_keys.public.clone(), op_keys.public.clone());
    let verdict = verifier.verify(&poc).expect("valid proof");
    println!("\npublic verifier accepts the PoC:");
    println!(
        "  charge {} from claims ({}, {}), {} round(s)",
        verdict.charge, verdict.edge_claim, verdict.operator_claim, verdict.rounds
    );

    // Replays are rejected.
    assert!(verifier.verify(&poc).is_err());
    println!("  replaying the same PoC is rejected ✓");
}
