//! The outdoor targeted-advertisement scenario (§2.2, Fig. 2).
//!
//! Roadside wireless cameras stream car images uplink over LTE to an edge
//! server that classifies car models and rotates billboard ads. The
//! system runs 24×7, so the advertiser's data bill is significant and it
//! "wants to save the bill and ensure the operator charges faithfully".
//!
//! This example runs the camera's RTSP uplink through three operator
//! postures — honest, moderately selfish, aggressively selfish — and
//! shows that legacy 4G/5G lets the selfish bills through while TLC's
//! cross-check bounds every negotiated charge.
//!
//! ```sh
//! cargo run --release --example targeted_ad
//! ```

use tlc_core::cancellation::{negotiate, DEFAULT_MAX_ROUNDS};
use tlc_core::legacy::{legacy_charge, LegacyOperator};
use tlc_core::plan::{intended_charge, DataPlan};
use tlc_core::strategy::{HonestStrategy, InsistStrategy, OptimalStrategy};
use tlc_net::time::SimDuration;
use tlc_sim::measure::cycle_records;
use tlc_sim::metrics::bytes_to_mb;
use tlc_sim::scenario::{run_scenario, AppKind, RadioSpec, ScenarioConfig};

fn main() {
    // The camera streams through mixed radio conditions along the highway.
    let cycle = SimDuration::from_secs(180);
    let cfg = ScenarioConfig::new(AppKind::WebcamRtsp, 7, cycle)
        .with_radio(RadioSpec::Intermittent { eta: 0.08 })
        .with_background(60.0);
    println!(
        "roadside camera: {} over intermittent LTE (η≈8%), 60 Mbps shared cell load",
        cfg.app.name()
    );
    let result = run_scenario(&cfg);
    let records = cycle_records(&result);
    let plan = DataPlan::paper_default();
    let intended = intended_charge(records.truth, plan.loss_weight);

    println!("\ncycle ground truth:");
    println!(
        "  camera sent    {:>9.2} MB",
        bytes_to_mb(records.truth.edge)
    );
    println!(
        "  server got     {:>9.2} MB",
        bytes_to_mb(records.truth.operator)
    );
    println!(
        "  intended bill  {:>9.2} MB (c = 0.5)",
        bytes_to_mb(intended)
    );

    // ── Legacy 4G/5G: whatever the operator says, goes ─────────────────
    println!("\nlegacy 4G/5G bills (no recourse for the advertiser):");
    for (label, op) in [
        ("honest operator", LegacyOperator::Honest),
        ("+20% over-claim", LegacyOperator::Selfish { factor: 1.2 }),
        ("10x over-claim", LegacyOperator::Selfish { factor: 10.0 }),
    ] {
        let bill = legacy_charge(records.legacy_metered, op);
        println!(
            "  {:<18} {:>9.2} MB  ({:+.1}% vs intended)",
            label,
            bytes_to_mb(bill),
            (bill as f64 - intended as f64) * 100.0 / intended as f64
        );
    }

    // ── TLC: selfish claims cancel against the loss ────────────────────
    println!("\nTLC negotiations:");
    // Honest camera vendor vs honest operator.
    let honest = negotiate(
        &plan,
        &mut HonestStrategy,
        &records.edge,
        &mut HonestStrategy,
        &records.operator,
        DEFAULT_MAX_ROUNDS,
    )
    .expect("honest negotiation");
    println!(
        "  honest vs honest:      {:>9.2} MB in {} round(s)",
        bytes_to_mb(honest.charge),
        honest.rounds
    );

    // Rational camera vendor vs rational operator (Theorem 3).
    let rational = negotiate(
        &plan,
        &mut OptimalStrategy,
        &records.edge,
        &mut OptimalStrategy,
        &records.operator,
        DEFAULT_MAX_ROUNDS,
    )
    .expect("rational negotiation");
    println!(
        "  rational vs rational:  {:>9.2} MB in {} round(s)",
        bytes_to_mb(rational.charge),
        rational.rounds
    );

    // A greedy operator insisting on a 10x bill: the camera's cross-check
    // (x_o must not exceed what the camera sent) rejects it every round;
    // the negotiation converges only once claims return to the bounded
    // range — or stalls, costing the operator its payment.
    let mut greedy = InsistStrategy {
        claim: records.operator.own_truth * 10,
    };
    let outcome = negotiate(
        &plan,
        &mut OptimalStrategy,
        &records.edge,
        &mut greedy,
        &records.operator,
        DEFAULT_MAX_ROUNDS,
    );
    match outcome {
        Ok(out) => {
            println!(
                "  greedy (10x) operator: {:>9.2} MB in {} round(s) — bounded by x̂_e ({:.2} MB)",
                bytes_to_mb(out.charge),
                out.rounds,
                bytes_to_mb(records.truth.edge)
            );
            assert!(out.charge <= records.edge.own_truth);
        }
        Err(e) => println!("  greedy (10x) operator: negotiation failed ({e}) — no payment"),
    }

    println!("\nTLC keeps every accepted bill inside [received, sent]; legacy cannot.");
}
