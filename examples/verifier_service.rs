//! A public-verifier service (§5.3.4): FCC / court / MVNO.
//!
//! The paper sizes verification throughput at 230K PoCs/hour on one HP
//! Z840. This example builds a batch of proofs from many edge-operator
//! pairs, then runs a multi-threaded verification service (scoped threads
//! and a crossbeam channel, one `Verifier` per relationship), measuring
//! throughput and demonstrating the rejection paths: replays, forgeries,
//! plan mismatches, and charge tampering.
//!
//! ```sh
//! cargo run --release --example verifier_service
//! ```

use crossbeam::channel;
use parking_lot::Mutex;
use std::time::Instant;
use tlc_core::messages::{PocMsg, NONCE_LEN};
use tlc_core::plan::DataPlan;
use tlc_core::protocol::{run_negotiation, Endpoint};
use tlc_core::strategy::{Knowledge, OptimalStrategy, Role};
use tlc_core::verify::{Verifier, VerifyError};
use tlc_crypto::{KeyPair, PublicKey};

struct Relationship {
    edge_pub: PublicKey,
    op_pub: PublicKey,
    proofs: Vec<PocMsg>,
}

fn build_relationship(id: u64, cycles: usize) -> Relationship {
    let plan = DataPlan::paper_default();
    let edge = KeyPair::generate_for_seed(1024, 9000 + id * 2).expect("keygen");
    let op = KeyPair::generate_for_seed(1024, 9001 + id * 2).expect("keygen");
    let mut proofs = Vec::with_capacity(cycles);
    for c in 0..cycles {
        let sent = 1_000_000 + id * 1000 + c as u64;
        let recv = sent - 50_000;
        let mut e = Endpoint::new(
            Role::Edge,
            plan,
            Knowledge {
                role: Role::Edge,
                own_truth: sent,
                inferred_peer_truth: recv,
            },
            Box::new(OptimalStrategy),
            edge.private.clone(),
            op.public.clone(),
            nonce(id, c as u64, 0),
            16,
        );
        let mut o = Endpoint::new(
            Role::Operator,
            plan,
            Knowledge {
                role: Role::Operator,
                own_truth: recv,
                inferred_peer_truth: sent,
            },
            Box::new(OptimalStrategy),
            op.private.clone(),
            edge.public.clone(),
            nonce(id, c as u64, 1),
            16,
        );
        let (poc, _) = run_negotiation(&mut o, &mut e).expect("negotiation");
        proofs.push(poc);
    }
    Relationship {
        edge_pub: edge.public,
        op_pub: op.public,
        proofs,
    }
}

fn nonce(id: u64, cycle: u64, side: u8) -> [u8; NONCE_LEN] {
    let mut n = [side; NONCE_LEN];
    n[..8].copy_from_slice(&id.to_be_bytes());
    n[8..16].copy_from_slice(&cycle.to_be_bytes());
    n
}

fn main() {
    let plan = DataPlan::paper_default();
    let relationships = 4usize;
    let cycles = 25;
    println!(
        "building {} edge↔operator relationships × {} cycles…",
        relationships, cycles
    );
    let rels: Vec<Relationship> = (0..relationships)
        .map(|id| build_relationship(id as u64, cycles))
        .collect();

    // One stateful verifier (with its replay cache) per relationship.
    let verifiers: Vec<Mutex<Verifier>> = rels
        .iter()
        .map(|r| Mutex::new(Verifier::new(plan, r.edge_pub.clone(), r.op_pub.clone())))
        .collect();

    // Queue of (relationship index, proof), fed to a worker pool.
    let (tx, rx) = channel::unbounded::<(usize, PocMsg)>();
    let mut total = 0usize;
    for (i, r) in rels.iter().enumerate() {
        for p in &r.proofs {
            tx.send((i, p.clone())).expect("queue");
            total += 1;
        }
        // One replayed proof per relationship — must be rejected.
        tx.send((i, r.proofs[0].clone())).expect("queue");
        total += 1;
    }
    drop(tx);

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    println!("verifying {} proofs on {} worker threads…", total, workers);
    let t0 = Instant::now();
    let (accepted, replayed) = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..workers {
            let rx = rx.clone();
            let verifiers = &verifiers;
            handles.push(s.spawn(move || {
                let mut ok = 0u64;
                let mut replay = 0u64;
                while let Ok((i, poc)) = rx.recv() {
                    match verifiers[i].lock().verify(&poc) {
                        Ok(_) => ok += 1,
                        Err(VerifyError::Replayed) => replay += 1,
                        Err(e) => panic!("unexpected rejection: {e}"),
                    }
                }
                (ok, replay)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .fold((0, 0), |(a, b), (x, y)| (a + x, b + y))
    });
    let elapsed = t0.elapsed().as_secs_f64();
    println!(
        "  accepted {}, rejected {} replays in {:.2} s -> {:.0} verifications/hour",
        accepted,
        replayed,
        elapsed,
        total as f64 / elapsed * 3600.0
    );
    assert_eq!(accepted as usize, relationships * cycles);
    assert_eq!(replayed as usize, relationships);

    // ── Rejection paths ─────────────────────────────────────────────────
    println!("\nrejection paths:");
    let victim = &rels[0];
    let mut v = Verifier::new(plan, victim.edge_pub.clone(), victim.op_pub.clone());

    // Tampered charge: the signature chain breaks.
    let mut tampered = victim.proofs[1].clone();
    tampered.charge *= 2;
    println!(
        "  tampered charge      -> {:?}",
        v.verify(&tampered).unwrap_err()
    );

    // Plan mismatch: a proof presented against the wrong agreement.
    let other_plan = DataPlan {
        loss_weight: tlc_core::plan::LossWeight::from_f64(0.25),
        ..plan
    };
    let mut wrong_plan_verifier =
        Verifier::new(other_plan, victim.edge_pub.clone(), victim.op_pub.clone());
    println!(
        "  wrong plan           -> {:?}",
        wrong_plan_verifier.verify(&victim.proofs[2]).unwrap_err()
    );

    // Forgery: a proof from a different key pair presented as this pair's.
    let stranger = &rels[1].proofs[0];
    println!(
        "  forged identity      -> {:?}",
        v.verify(stranger).unwrap_err()
    );
}
