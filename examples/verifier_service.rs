//! A public-verifier service (§5.3.4): FCC / court / MVNO.
//!
//! The paper sizes verification throughput at 230K PoCs/hour on one HP
//! Z840. This example builds a batch of proofs from many edge-operator
//! pairs, then feeds them through [`tlc_core::verify::service`] — the
//! sharded worker pool that pins each relationship (and its replay
//! cache) to exactly one thread — measuring throughput and
//! demonstrating the rejection paths: replays, forgeries, plan
//! mismatches, and charge tampering.
//!
//! ```sh
//! cargo run --release --example verifier_service
//! ```
//!
//! The same service is also reachable over TCP (`verify::remote`):
//!
//! ```sh
//! # terminal 1 — the verifier listens for edge/operator submissions
//! cargo run --release --example verifier_service -- --serve 127.0.0.1:7070
//! # terminal 2 — an edge node streams its proofs to the verifier
//! cargo run --release --example verifier_service -- --connect 127.0.0.1:7070
//! ```

use std::sync::atomic::AtomicBool;
use tlc_core::messages::{PocMsg, NONCE_LEN};
use tlc_core::plan::DataPlan;
use tlc_core::protocol::{run_negotiation, Endpoint};
use tlc_core::strategy::{Knowledge, OptimalStrategy, Role};
use tlc_core::verify::remote::{IngressConfig, IngressServer, RemoteVerifier};
use tlc_core::verify::service::{ServiceConfig, VerifierService};
use tlc_core::verify::VerifyError;
use tlc_crypto::{KeyPair, PublicKey};

struct Relationship {
    edge_pub: PublicKey,
    op_pub: PublicKey,
    proofs: Vec<PocMsg>,
}

fn build_relationship(id: u64, cycles: usize) -> Relationship {
    let plan = DataPlan::paper_default();
    let edge = KeyPair::generate_for_seed(1024, 9000 + id * 2).expect("keygen");
    let op = KeyPair::generate_for_seed(1024, 9001 + id * 2).expect("keygen");
    let mut proofs = Vec::with_capacity(cycles);
    for c in 0..cycles {
        let sent = 1_000_000 + id * 1000 + c as u64;
        let recv = sent - 50_000;
        let mut e = Endpoint::new(
            Role::Edge,
            plan,
            Knowledge {
                role: Role::Edge,
                own_truth: sent,
                inferred_peer_truth: recv,
            },
            Box::new(OptimalStrategy),
            edge.private.clone(),
            op.public.clone(),
            nonce(id, c as u64, 0),
            16,
        );
        let mut o = Endpoint::new(
            Role::Operator,
            plan,
            Knowledge {
                role: Role::Operator,
                own_truth: recv,
                inferred_peer_truth: sent,
            },
            Box::new(OptimalStrategy),
            op.private.clone(),
            edge.public.clone(),
            nonce(id, c as u64, 1),
            16,
        );
        let (poc, _) = run_negotiation(&mut o, &mut e).expect("negotiation");
        proofs.push(poc);
    }
    Relationship {
        edge_pub: edge.public,
        op_pub: op.public,
        proofs,
    }
}

fn nonce(id: u64, cycle: u64, side: u8) -> [u8; NONCE_LEN] {
    let mut n = [side; NONCE_LEN];
    n[..8].copy_from_slice(&id.to_be_bytes());
    n[8..16].copy_from_slice(&cycle.to_be_bytes());
    n
}

/// `--serve [addr]`: expose the sharded service on a TCP listener and
/// verify whatever remote peers submit, until killed.
fn serve(addr: &str) {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let server = IngressServer::bind(
        addr,
        ServiceConfig {
            workers,
            ..ServiceConfig::default()
        },
        IngressConfig::default(),
    )
    .expect("bind ingress listener");
    println!(
        "verifier listening on {} ({} shard workers); Ctrl-C to stop",
        server
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| addr.to_string()),
        workers
    );
    // The example has no signal handling; the process runs until killed.
    let stop = AtomicBool::new(false);
    server.run(&stop);
}

/// `--connect <addr>`: act as an edge node — negotiate proofs locally,
/// stream them (plus one replay and one tampered proof) to a remote
/// verifier, and report the verdicts it returns.
fn connect(addr: &str) {
    let plan = DataPlan::paper_default();
    println!("building 2 relationships × 10 cycles…");
    let rels: Vec<Relationship> = (0..2).map(|id| build_relationship(id, 10)).collect();

    let mut client = RemoteVerifier::connect(addr, 0).expect("connect to verifier");
    println!(
        "connected to {} (in-flight window {})",
        addr,
        client.window()
    );
    let mut total = 0usize;
    for r in &rels {
        let rel = client
            .register(plan, r.edge_pub.clone(), r.op_pub.clone())
            .expect("register relationship");
        // Hold the last proof back from the valid batch and tamper it,
        // so its rejection exercises the signature path rather than the
        // replay cache (which would fire first on a reused nonce pair).
        let valid = &r.proofs[..r.proofs.len() - 1];
        let (_, count) = client.submit_batch(rel, valid.iter()).expect("batch");
        client.submit(rel, &r.proofs[0]).expect("replay submit");
        let mut tampered = r.proofs[r.proofs.len() - 1].clone();
        tampered.charge += 1;
        client.submit(rel, &tampered).expect("tampered submit");
        total += count + 2;
    }
    let results = client.collect_results().expect("collect verdicts");
    let accepted = results.iter().filter(|r| r.result.is_ok()).count();
    let replayed = results
        .iter()
        .filter(|r| r.result == Err(VerifyError::Replayed))
        .count();
    println!(
        "submitted {} proofs -> {} accepted, {} rejected ({} replays, {} bad signatures)",
        total,
        accepted,
        results.len() - accepted,
        replayed,
        results.len() - accepted - replayed,
    );
    let stats = client.stats().expect("server stats");
    println!(
        "server counters: {} submissions, {} verdicts, {} registers, {} pauses",
        stats.submissions, stats.verdicts, stats.registers, stats.pauses
    );
    println!(
        "overload ladder: {} shed submits, {} shed connections, {} quarantines, {} misbehavior closes (client saw {} BUSYs, {} retries)",
        stats.shed_overload,
        stats.shed_connections,
        stats.quarantines,
        stats.misbehavior_closes,
        client.shed_notices(),
        client.retries(),
    );
    client.goodbye().expect("clean goodbye");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--serve") => {
            let addr = args.get(1).map(String::as_str).unwrap_or("127.0.0.1:7070");
            serve(addr);
            return;
        }
        Some("--connect") => {
            let addr = args.get(1).expect("--connect needs an address");
            connect(addr);
            return;
        }
        Some(other) => {
            eprintln!("unknown flag {other}; running the in-process demo");
        }
        None => {}
    }
    let plan = DataPlan::paper_default();
    let relationships = 4usize;
    let cycles = 25;
    println!(
        "building {} edge↔operator relationships × {} cycles…",
        relationships, cycles
    );
    let rels: Vec<Relationship> = (0..relationships)
        .map(|id| build_relationship(id as u64, cycles))
        .collect();

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut svc = VerifierService::new(workers);

    // Register every relationship, then batch-submit its proofs plus one
    // replay — the shard-local replay cache must reject exactly that one.
    let mut total = 0usize;
    let mut handles = Vec::with_capacity(rels.len());
    for r in &rels {
        let rel = svc
            .register(plan, r.edge_pub.clone(), r.op_pub.clone())
            .unwrap();
        let (_, count) = svc.submit_batch(rel, r.proofs.iter().cloned()).unwrap();
        svc.submit(rel, r.proofs[0].clone()).unwrap();
        total += count + 1;
        handles.push(rel);
    }
    println!(
        "verifying {} proofs on {} shard workers…",
        total,
        svc.workers()
    );

    let results = svc.collect_results().unwrap();
    let accepted = results.iter().filter(|r| r.result.is_ok()).count();
    let replayed = results
        .iter()
        .filter(|r| r.result == Err(VerifyError::Replayed))
        .count();
    let report = svc.finish();
    println!(
        "  accepted {}, rejected {} replays in {:.2} s -> {:.0} verifications/hour",
        accepted,
        replayed,
        report.elapsed.as_secs_f64(),
        report.pocs_per_hour,
    );
    for s in &report.shards {
        println!(
            "  shard {}: {} relationships, {} accepted, {} rejected ({} replays)",
            s.shard, s.relationships, s.accepted, s.rejected, s.replayed
        );
    }
    assert_eq!(accepted, relationships * cycles);
    assert_eq!(replayed, relationships);
    assert_eq!(report.accepted as usize, accepted);

    // ── Rejection paths ─────────────────────────────────────────────────
    // All four flow through the same sharded pipeline as acceptances.
    println!("\nrejection paths:");
    let victim = &rels[0];
    let mut svc = VerifierService::new(2);
    let rel = svc
        .register(plan, victim.edge_pub.clone(), victim.op_pub.clone())
        .unwrap();

    // Tampered charge: the signature chain breaks.
    let mut tampered = victim.proofs[1].clone();
    tampered.charge *= 2;
    let t_tamper = svc.submit(rel, tampered).unwrap();

    // Plan mismatch: a proof presented against the wrong agreement.
    let other_plan = DataPlan {
        loss_weight: tlc_core::plan::LossWeight::from_f64(0.25),
        ..plan
    };
    let wrong_rel = svc
        .register(other_plan, victim.edge_pub.clone(), victim.op_pub.clone())
        .unwrap();
    let t_plan = svc.submit(wrong_rel, victim.proofs[2].clone()).unwrap();

    // Forgery: a proof from a different key pair presented as this pair's.
    let t_forge = svc.submit(rel, rels[1].proofs[0].clone()).unwrap();

    // Replay: the same proof twice through the same relationship.
    let t_first = svc.submit(rel, victim.proofs[3].clone()).unwrap();
    let t_replay = svc.submit(rel, victim.proofs[3].clone()).unwrap();

    let results = svc.collect_results().unwrap();
    let by_tag = |t: u64| {
        &results
            .iter()
            .find(|r| r.tag == t)
            .expect("every tag resolves")
            .result
    };
    assert!(by_tag(t_first).is_ok());
    println!(
        "  tampered charge      -> {:?}",
        by_tag(t_tamper).clone().unwrap_err()
    );
    println!(
        "  wrong plan           -> {:?}",
        by_tag(t_plan).clone().unwrap_err()
    );
    println!(
        "  forged identity      -> {:?}",
        by_tag(t_forge).clone().unwrap_err()
    );
    println!(
        "  replayed proof       -> {:?}",
        by_tag(t_replay).clone().unwrap_err()
    );
    let report = svc.finish();
    assert_eq!(
        (report.accepted, report.rejected, report.replayed),
        (1, 4, 1)
    );
}
