//! Regenerates every table and figure of the paper's evaluation (§7).
//!
//! Prints, in paper order: Fig. 3, Fig. 4, Fig. 11c, Fig. 12, Table 2,
//! Fig. 13, Fig. 14, Fig. 15, Fig. 16, Fig. 17, Fig. 18, and the
//! Appendix-D generic-charging validation.
//!
//! ```sh
//! cargo run --release --example paper_eval          # quick scale
//! cargo run --release --example paper_eval -- full  # paper scale (slow)
//! ```

use tlc_sim::experiments::{
    ablation, dataset, fig03, fig04, fig12, fig13, fig14, fig15, fig16, fig17, fig18, generic,
    mobility, sweep, table2, RunScale,
};

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("full") => RunScale::Full,
        _ => RunScale::Quick,
    };
    println!("=== TLC paper evaluation at {scale:?} scale ===\n");

    println!("--- Fig. 3 ---");
    fig03::print(&fig03::run(scale));

    println!("\n--- Fig. 4 ---");
    let (rows, summary) = fig04::run(scale);
    fig04::print(&rows, &summary);

    // The congestion sweep feeds Fig. 11c, Fig. 12, Table 2, Fig. 13,
    // and Fig. 16b (one simulation set, many read-outs — negotiations
    // never perturb the packet traces).
    println!("\nrunning the shared congestion sweep…");
    let samples = sweep::congestion_sweep(scale);

    println!("\n--- Fig. 11c ---");
    dataset::print(&dataset::from_samples(&samples));

    println!("\n--- Fig. 12 ---");
    let mut curves = fig12::from_samples(&samples);
    fig12::print(&mut curves);

    println!("\n--- Table 2 ---");
    table2::print(&table2::from_samples(&samples));

    println!("\n--- Fig. 13 ---");
    fig13::print(&fig13::from_samples(&samples));

    println!("\n--- Fig. 14 ---");
    fig14::print(&fig14::run(scale));

    println!("\n--- Fig. 15 ---");
    let vr_samples: Vec<_> = samples
        .into_iter()
        .filter(|s| {
            matches!(
                s.app,
                tlc_sim::scenario::AppKind::Vr | tlc_sim::scenario::AppKind::Gaming
            )
        })
        .collect();
    let mut f15 = fig15::from_samples(&vr_samples);
    fig15::print(&mut f15);

    println!("\n--- Fig. 16 ---");
    let rtt = fig16::run_rtt(scale);
    let rounds = fig16::rounds_from_samples(&vr_samples);
    fig16::print(&rtt, &rounds);

    println!("\n--- Fig. 17 ---");
    let reps = match scale {
        RunScale::Quick => 5,
        RunScale::Full => 50,
    };
    match fig17::run(reps) {
        Ok(r) => fig17::print(&r),
        Err(e) => eprintln!("fig17 skipped: negotiation failed: {e}"),
    }

    println!("\n--- Fig. 18 ---");
    let mut f18 = fig18::run(scale);
    fig18::print(&mut f18);

    println!("\n--- Appendix D ---");
    generic::print(&generic::run(scale));

    println!("\n--- Extensions ---");
    ablation::print(&ablation::run(scale));
    println!();
    mobility::print(&mobility::run(scale));

    println!("\ndone.");
}
