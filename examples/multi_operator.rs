//! Multi-access edge across operators (§8): a vehicle's edge app bonded
//! over two operators' cells, each with its own conditions and data
//! plan, each running its own TLC instance.
//!
//! ```sh
//! cargo run --release --example multi_operator
//! ```

use tlc_core::plan::{DataPlan, LossWeight};
use tlc_net::time::SimDuration;
use tlc_sim::multiop::{run_multi_operator, OperatorSlice};
use tlc_sim::scenario::{AppKind, RadioSpec};

fn main() {
    // A self-driving-style deployment: operator A's cell is congested in
    // the city; operator B covers the highway with patchier signal and a
    // cheaper lost-data weight in its plan.
    let operators = vec![
        OperatorSlice {
            name: "Operator A (urban, congested)",
            radio: RadioSpec::Good,
            background_mbps: 150.0,
            plan: DataPlan::paper_default(), // c = 0.5
        },
        OperatorSlice {
            name: "Operator B (highway, patchy)",
            radio: RadioSpec::Intermittent { eta: 0.10 },
            background_mbps: 0.0,
            plan: DataPlan {
                loss_weight: LossWeight::from_f64(0.25),
                ..DataPlan::paper_default()
            },
        },
    ];

    println!("VR offload classified across two operators, 90 s cycle:\n");
    let out = run_multi_operator(AppKind::Vr, SimDuration::from_secs(90), &operators, 0x88);

    for o in &out.per_operator {
        let truth = o.records.truth;
        println!("{}:", o.name);
        println!(
            "  sent {:.2} MB, delivered {:.2} MB, lost {:.2} MB",
            truth.edge as f64 / 1e6,
            truth.operator as f64 / 1e6,
            (truth.edge - truth.operator) as f64 / 1e6
        );
        println!(
            "  intended x̂ {:.2} MB | legacy bill {:.2} MB (ε {:.1}%) | TLC bill {:.2} MB (ε {:.2}%), {} round(s)",
            o.comparison.intended as f64 / 1e6,
            o.comparison.legacy.charge as f64 / 1e6,
            o.comparison.gap_ratio(o.comparison.legacy.charge) * 100.0,
            o.comparison.tlc_optimal.charge as f64 / 1e6,
            o.comparison.gap_ratio(o.comparison.tlc_optimal.charge) * 100.0,
            o.comparison.tlc_optimal.rounds,
        );
        println!();
    }

    let intended = out.total_intended();
    println!("edge vendor's aggregate bill across operators:");
    println!("  intended  {:.2} MB", intended as f64 / 1e6);
    println!(
        "  legacy    {:.2} MB  ({:+.2} MB vs intended)",
        out.total_legacy_charge() as f64 / 1e6,
        (out.total_legacy_charge() as f64 - intended as f64) / 1e6
    );
    println!(
        "  TLC       {:.2} MB  ({:+.2} MB vs intended)",
        out.total_tlc_charge() as f64 / 1e6,
        (out.total_tlc_charge() as f64 - intended as f64) / 1e6
    );
    println!("\neach per-operator PoC is independently verifiable; no operator\nlearns the other's records (§8).");
}
