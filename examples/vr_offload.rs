//! Edge-powered VR offload (§2.2): the paper's heaviest workload.
//!
//! A 9 Mbps, 60 FPS GVSP graphical stream is rendered at the edge server
//! and displayed on a headset. Heavy traffic amplifies both loss-induced
//! gaps (congestion) and the economic stakes of selfish charging. This
//! example sweeps congestion levels, shows the charging-gap growth, the
//! TLC reduction at each level, and demonstrates trace record/replay
//! (the paper replays VRidge tcpdump captures).
//!
//! ```sh
//! cargo run --release --example vr_offload
//! ```

use tlc_core::plan::DataPlan;
use tlc_net::rng::SimRng;
use tlc_net::time::SimDuration;
use tlc_sim::measure::evaluate;
use tlc_sim::metrics::bytes_to_mb_per_hr;
use tlc_sim::scenario::{run_scenario, AppKind, ScenarioConfig};
use tlc_workloads::trace::PacketTrace;
use tlc_workloads::vr::VrStream;

fn main() {
    let plan = DataPlan::paper_default();
    let cycle = SimDuration::from_secs(90);

    println!(
        "VR offload ({}), sweeping cell congestion:\n",
        AppKind::Vr.name()
    );
    println!(
        "{:>8} {:>12} {:>14} {:>14} {:>12}",
        "bg Mbps", "loss MB/hr", "legacy Δ MB/hr", "TLC Δ MB/hr", "reduction"
    );
    for bg in [0.0, 80.0, 120.0, 160.0] {
        let cfg = ScenarioConfig::new(AppKind::Vr, 1000 + bg as u64, cycle).with_background(bg);
        let r = run_scenario(&cfg);
        let cmp = evaluate(&r, &plan, cfg.seed).expect("pricing");
        let records = tlc_sim::measure::cycle_records(&r);
        let loss = records.truth.edge - records.truth.operator;
        let legacy_gap = cmp.gap(cmp.legacy.charge);
        let tlc_gap = cmp.gap(cmp.tlc_optimal.charge);
        println!(
            "{:>8.0} {:>12.1} {:>14.1} {:>14.1} {:>11.1}%",
            bg,
            bytes_to_mb_per_hr(loss, cycle.as_secs_f64()),
            bytes_to_mb_per_hr(legacy_gap, cycle.as_secs_f64()),
            bytes_to_mb_per_hr(tlc_gap, cycle.as_secs_f64()),
            tlc_core::legacy::gap_reduction(legacy_gap, tlc_gap) * 100.0,
        );
    }

    // ── Trace record/replay, as the paper does with its VRidge logs ─────
    println!("\nrecording a 10 s VR trace and replaying it (tcprelay-style):");
    let mut live = VrStream::vridge(SimDuration::from_secs(10), SimRng::new(5));
    let trace = PacketTrace::record(&mut live);
    println!(
        "  captured {} packets, {:.1} MB, {:.2} Mbps over {:.1} s",
        trace.records.len(),
        trace.total_bytes() as f64 / 1e6,
        trace.mean_rate_mbps(),
        trace.duration().as_secs_f64()
    );
    let json = trace.to_json();
    println!("  serialized to {} bytes of JSON", json.len());
    let restored = PacketTrace::from_json(&json).expect("parse");
    assert_eq!(restored, trace);

    // Replay at half speed (tcprelay --multiplier 0.5 equivalent).
    let slow = trace.replayer_scaled(2.0);
    let mut n = 0usize;
    let mut replay = slow;
    use tlc_workloads::traffic::Workload;
    while replay.next().is_some() {
        n += 1;
    }
    println!(
        "  replayed {} packets at 0.5x speed ({:.2} Mbps effective)",
        n,
        trace.mean_rate_mbps() / 2.0
    );
}
