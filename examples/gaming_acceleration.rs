//! Online mobile gaming acceleration (§2.2): QCI-priority protection.
//!
//! Tencent-style game acceleration buys a dedicated high-QoS bearer
//! (QCI=7) for the player-control stream. This example runs the gaming
//! workload with and without the priority bearer under heavy congestion,
//! showing (a) how QCI=7 protects delivery — and therefore shrinks even
//! the legacy charging gap — and (b) TLC still tightening the residual.
//!
//! ```sh
//! cargo run --release --example gaming_acceleration
//! ```

use tlc_cell::datapath::{Datapath, DatapathConfig};
use tlc_core::plan::DataPlan;
use tlc_net::packet::{Direction, FlowId, Packet, PacketIdAlloc, Qci};
use tlc_net::radio::RadioTimeline;
use tlc_net::rng::SimRng;
use tlc_net::time::{SimDuration, SimTime};
use tlc_sim::measure::evaluate;
use tlc_sim::scenario::{run_scenario, AppKind, ScenarioConfig};
use tlc_workloads::gaming::GamingStream;
use tlc_workloads::traffic::Workload;

/// Runs the game flow at a chosen QCI against saturating background.
fn run_with_qci(qci: Qci, seed: u64) -> (u64, u64) {
    let duration = SimDuration::from_secs(60);
    let radio = RadioTimeline::constant(duration, -85.0);
    let cfg = DatapathConfig {
        dl_capacity_bps: 50_000_000, // a loaded cell
        ..Default::default()
    };
    let mut dp = Datapath::new(cfg, radio, SimRng::new(seed));
    let game_flow = FlowId(1);
    let bg_flow = FlowId(99);
    dp.mark_foreign(bg_flow);

    let mut game = GamingStream::king_of_glory(duration, SimRng::new(seed ^ 1));
    let mut alloc = PacketIdAlloc::new();
    let mut next_game = game.next();
    // 60 Mbps background saturates the 50 Mbps cell.
    let bg_interval = SimDuration::from_micros(196);
    let mut next_bg_at = SimTime::ZERO;
    let horizon = SimTime::ZERO + duration;

    let mut now = SimTime::ZERO;
    loop {
        let t_game = next_game.as_ref().map(|e| e.at);
        let t_bg = (next_bg_at < horizon).then_some(next_bg_at);
        let t_dp = dp.next_event_time(now);
        let Some(t) = [t_game, t_bg, t_dp].into_iter().flatten().min() else {
            break;
        };
        if t > horizon + SimDuration::from_secs(10) {
            break;
        }
        now = t;
        if let Some(e) = next_game.as_ref().filter(|e| e.at <= now).copied() {
            let p = Packet::new(
                alloc.next_id(),
                game_flow,
                Direction::Downlink,
                e.size,
                qci,
                e.at,
            );
            dp.send_downlink(e.at, p);
            next_game = game.next();
        }
        if next_bg_at <= now && next_bg_at < horizon {
            let p = Packet::new(
                alloc.next_id(),
                bg_flow,
                Direction::Downlink,
                1470,
                Qci::DEFAULT,
                next_bg_at,
            );
            dp.send_downlink(next_bg_at, p);
            next_bg_at += bg_interval;
        }
        dp.poll(now);
    }
    let c = dp.flow_counters(game_flow).expect("game flow ran");
    (c.gateway_downlink.bytes(), c.modem_received.bytes())
}

fn main() {
    println!("King-of-Glory stream on a saturated 50 Mbps cell (60 Mbps background):\n");
    for (label, qci) in [
        ("best-effort (QCI=9)", Qci::DEFAULT),
        ("accelerated (QCI=7)", Qci::INTERACTIVE),
    ] {
        let (sent, received) = run_with_qci(qci, 77);
        let loss_pct = (sent - received) as f64 * 100.0 / sent as f64;
        println!(
            "  {:<22} sent {:>8} B, delivered {:>8} B, lost {:>5.1}%",
            label, sent, received, loss_pct
        );
    }

    // Full pipeline at QCI=7 under the paper's congestion sweep point.
    println!("\ncharging outcome with acceleration (QCI=7), 160 Mbps background:");
    let cfg =
        ScenarioConfig::new(AppKind::Gaming, 78, SimDuration::from_secs(90)).with_background(160.0);
    let r = run_scenario(&cfg);
    let cmp = evaluate(&r, &DataPlan::paper_default(), cfg.seed).expect("pricing");
    println!("  intended charge x̂: {} bytes", cmp.intended);
    println!(
        "  legacy bill: {} (gap {} bytes, {:.2}%)",
        cmp.legacy.charge,
        cmp.gap(cmp.legacy.charge),
        cmp.gap_ratio(cmp.legacy.charge) * 100.0
    );
    println!(
        "  TLC-optimal: {} (gap {} bytes, {:.2}%), {} round(s)",
        cmp.tlc_optimal.charge,
        cmp.gap(cmp.tlc_optimal.charge),
        cmp.gap_ratio(cmp.tlc_optimal.charge) * 100.0,
        cmp.tlc_optimal.rounds
    );
    println!("\nQCI=7 keeps the game's legacy gap small; TLC still tightens it (Fig. 12d).");
}
