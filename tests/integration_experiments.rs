//! Experiment-harness integration: each paper figure/table's generator
//! runs at Quick scale and reproduces the paper's qualitative claims.

use tlc_sim::experiments::{
    dataset, fig03, fig04, fig12, fig13, fig15, fig16, fig17, fig18, generic, sweep, table2,
    RunScale,
};
use tlc_sim::scenario::AppKind;

/// One shared Quick sweep reused by several checks (the figure modules
/// are pure functions of the samples).
fn quick_samples() -> Vec<sweep::SweepSample> {
    sweep::sweep_over(
        RunScale::Quick,
        &[AppKind::WebcamUdp, AppKind::Vr, AppKind::Gaming],
        &[0.0, 160.0],
    )
}

#[test]
fn headline_claim_tlc_reduces_gap_for_every_app() {
    let samples = quick_samples();
    let rows = table2::from_samples(&samples);
    for row in rows.iter().filter(|r| r.bitrate_mbps > 0.0) {
        assert!(
            row.tlc_optimal.delta_mb_per_hr < row.legacy.delta_mb_per_hr,
            "{}: TLC {} !< legacy {}",
            row.app,
            row.tlc_optimal.delta_mb_per_hr,
            row.legacy.delta_mb_per_hr
        );
        // Paper's Table 2: TLC-optimal ε ≤ 2.5% everywhere.
        assert!(
            row.tlc_optimal.epsilon < 0.025,
            "{}: ε {}",
            row.app,
            row.tlc_optimal.epsilon
        );
    }
}

#[test]
fn scheme_ordering_optimal_beats_random_beats_legacy() {
    let samples = quick_samples();
    let rows = table2::from_samples(&samples);
    for row in rows.iter().filter(|r| r.bitrate_mbps > 1.0) {
        assert!(
            row.tlc_optimal.delta_mb_per_hr <= row.tlc_random.delta_mb_per_hr,
            "{}: optimal must beat random",
            row.app
        );
        assert!(
            row.tlc_random.delta_mb_per_hr <= row.legacy.delta_mb_per_hr,
            "{}: random must beat legacy",
            row.app
        );
    }
}

#[test]
fn fig12_cdfs_are_complete_distributions() {
    let samples = quick_samples();
    let mut curves = fig12::from_samples(&samples);
    for c in curves.iter_mut() {
        if c.cdf.is_empty() {
            continue;
        }
        let pts = c.cdf.points();
        assert!(
            (pts.last().unwrap().1 - 1.0).abs() < 1e-9,
            "CDF must end at 1"
        );
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1, "CDF must be monotone");
        }
    }
}

#[test]
fn fig03_and_fig13_congestion_monotonicity() {
    let rows = fig03::run(RunScale::Quick);
    for app in fig03::FIG03_APPS {
        let mut series: Vec<_> = rows.iter().filter(|r| r.app == app.name()).collect();
        series.sort_by(|a, b| a.background_mbps.total_cmp(&b.background_mbps));
        assert!(
            series.last().unwrap().gap_mb_per_hr >= series[0].gap_mb_per_hr,
            "{}: gap must grow with congestion",
            app.name()
        );
    }
    let samples = quick_samples();
    let f13 = fig13::from_samples(&samples);
    // Legacy ratio for VR grows with congestion; TLC-optimal stays small.
    let legacy_hi = f13
        .iter()
        .find(|r| {
            r.app == "VRidge (GVSP)" && r.scheme == "Legacy 4G/5G" && r.background_mbps == 160.0
        })
        .unwrap();
    let tlc_hi = f13
        .iter()
        .find(|r| {
            r.app == "VRidge (GVSP)" && r.scheme == "TLC-optimal" && r.background_mbps == 160.0
        })
        .unwrap();
    assert!(legacy_hi.gap_ratio > 0.2);
    assert!(tlc_hi.gap_ratio < 0.02);
}

#[test]
fn fig04_outage_timeline_consistent() {
    let (rows, summary) = fig04::run(RunScale::Quick);
    assert!(summary.eta > 0.0);
    // Network keeps metering through outages (that's the gap mechanism).
    let outage_metering: f64 = rows
        .iter()
        .filter(|r| !r.connected)
        .map(|r| r.network_rate_mbps)
        .sum();
    assert!(outage_metering > 0.0, "gateway must meter during outages");
}

#[test]
fn fig15_reduction_falls_with_c() {
    let samples = sweep::sweep_over(RunScale::Quick, &[AppKind::Vr], &[160.0]);
    let curves = fig15::from_samples(&samples);
    let mean_at = |c: f64| curves.iter().find(|x| x.c == c).unwrap().cdf.mean();
    assert!(mean_at(0.0) > 50.0, "c=0 reduction {}", mean_at(0.0));
    assert!(mean_at(0.0) >= mean_at(0.75) - 1.0);
}

#[test]
fn fig16_latency_claims() {
    let rtt = fig16::run_rtt(RunScale::Quick);
    for r in &rtt {
        assert!(
            (r.rtt_with_ms - r.rtt_without_ms).abs() < 3.0,
            "{}",
            r.device
        );
        // In-simulation RTTs in the paper's tens-of-ms range.
        assert!(
            (15.0..90.0).contains(&r.rtt_without_ms),
            "{}: {}",
            r.device,
            r.rtt_without_ms
        );
    }
    let samples = quick_samples();
    let rounds = fig16::rounds_from_samples(&samples);
    for r in &rounds {
        assert!(
            r.optimal_rounds < 1.5,
            "{}: optimal rounds {}",
            r.app,
            r.optimal_rounds
        );
        assert!(
            r.random_rounds > 1.0,
            "{}: random rounds {}",
            r.app,
            r.random_rounds
        );
    }
}

#[test]
fn fig17_cost_report() {
    let r = fig17::run(3).expect("optimal pair converges");
    // The paper's 230K/hr on 2015 Java hardware; our Rust RSA should
    // comfortably exceed it.
    assert!(r.verifications_per_hour > 230_000.0);
    assert!(r.sizes.total < 1393 * 2, "total size {}", r.sizes.total);
    assert_eq!(r.rows.len(), 4);
}

#[test]
fn fig18_record_errors_in_paper_range() {
    let mut curves = fig18::run(RunScale::Quick);
    // Paper: γ_o mean 2.0%, 95th ≤ 7.7%; γ_e mean 1.2%, 95th ≤ 2.9%.
    assert!(
        curves.gamma_o.mean() < 4.0,
        "γ_o mean {}",
        curves.gamma_o.mean()
    );
    assert!(curves.gamma_o.quantile(0.95) < 8.0);
    assert!(
        curves.gamma_e.mean() < 2.5,
        "γ_e mean {}",
        curves.gamma_e.mean()
    );
}

#[test]
fn dataset_table_counts_cdrs() {
    let samples = quick_samples();
    let rows = dataset::from_samples(&samples);
    assert!(!rows.is_empty());
    let total: u64 = rows.iter().map(|r| r.cdr_count).sum();
    let expected: u64 = samples.iter().map(|s| s.cycle_secs as u64).sum();
    assert_eq!(total, expected);
}

#[test]
fn appendix_d_bound_validates() {
    for row in generic::run(RunScale::Quick) {
        assert!(row.overcharge <= row.bound + 1);
    }
}
