//! End-to-end integration: simulated cycle → measured records → signed
//! negotiation → public verification, across crates.

use tlc_core::messages::NONCE_LEN;
use tlc_core::plan::DataPlan;
use tlc_core::protocol::{run_negotiation, Endpoint};
use tlc_core::strategy::{OptimalStrategy, Role};
use tlc_core::verify::{verify_poc, Verifier};
use tlc_crypto::KeyPair;
use tlc_net::time::SimDuration;
use tlc_sim::measure::{cycle_records, evaluate};
use tlc_sim::scenario::{run_scenario, AppKind, RadioSpec, ScenarioConfig};

fn cycle(app: AppKind, seed: u64, bg: f64) -> ScenarioConfig {
    ScenarioConfig::new(app, seed, SimDuration::from_secs(45)).with_background(bg)
}

/// The complete paper pipeline on one congested VR cycle: the PoC a third
/// party verifies commits both parties to a charge within the truth
/// bounds and far closer to x̂ than the legacy bill.
#[test]
fn full_pipeline_vr_congested() {
    let cfg = cycle(AppKind::Vr, 0xE2E, 150.0);
    let result = run_scenario(&cfg);
    let records = cycle_records(&result);
    let plan = DataPlan::paper_default();

    let edge_keys = KeyPair::generate_for_seed(1024, 51).unwrap();
    let op_keys = KeyPair::generate_for_seed(1024, 52).unwrap();
    let mut edge = Endpoint::new(
        Role::Edge,
        plan,
        records.edge,
        Box::new(OptimalStrategy),
        edge_keys.private.clone(),
        op_keys.public.clone(),
        [1; NONCE_LEN],
        32,
    );
    let mut op = Endpoint::new(
        Role::Operator,
        plan,
        records.operator,
        Box::new(OptimalStrategy),
        op_keys.private.clone(),
        edge_keys.public.clone(),
        [2; NONCE_LEN],
        32,
    );
    let (poc, msgs) = run_negotiation(&mut op, &mut edge).expect("negotiation");
    assert!(msgs <= 5, "one-round negotiation is 3 messages, got {msgs}");

    // Third-party verification accepts; the charge replays from claims.
    let verdict = verify_poc(&poc, &plan, &edge_keys.public, &op_keys.public).unwrap();
    assert_eq!(verdict.charge, poc.charge);

    // Theorem 2 end-to-end (with the 0.3% claim-shade margin).
    let lo = (records.truth.operator as f64 * 0.99) as u64;
    let hi = (records.truth.edge as f64 * 1.01) as u64;
    assert!(
        (lo..=hi).contains(&poc.charge),
        "charge {} not in [{lo},{hi}]",
        poc.charge
    );

    // TLC's gap beats legacy's by a wide margin on this congested cycle.
    let intended = tlc_core::plan::intended_charge(records.truth, plan.loss_weight);
    let tlc_gap = poc.charge.abs_diff(intended);
    let legacy_gap = records.legacy_metered.abs_diff(intended);
    assert!(
        tlc_gap * 5 < legacy_gap,
        "tlc {tlc_gap} vs legacy {legacy_gap}"
    );
}

/// The PoC wire form survives a round trip and still verifies — what a
/// court receives by email is what it checks.
#[test]
fn poc_survives_serialization_to_verifier() {
    let cfg = cycle(AppKind::WebcamUdp, 0xE2F, 100.0);
    let result = run_scenario(&cfg);
    let records = cycle_records(&result);
    let plan = DataPlan::paper_default();
    let edge_keys = KeyPair::generate_for_seed(1024, 53).unwrap();
    let op_keys = KeyPair::generate_for_seed(1024, 54).unwrap();
    let mut edge = Endpoint::new(
        Role::Edge,
        plan,
        records.edge,
        Box::new(OptimalStrategy),
        edge_keys.private.clone(),
        op_keys.public.clone(),
        [3; NONCE_LEN],
        32,
    );
    let mut op = Endpoint::new(
        Role::Operator,
        plan,
        records.operator,
        Box::new(OptimalStrategy),
        op_keys.private.clone(),
        edge_keys.public.clone(),
        [4; NONCE_LEN],
        32,
    );
    let (poc, _) = run_negotiation(&mut edge, &mut op).expect("negotiation");

    let wire = poc.encode();
    let received = tlc_core::messages::PocMsg::decode(&wire).expect("decode");
    assert_eq!(received, poc);
    let mut verifier = Verifier::new(plan, edge_keys.public.clone(), op_keys.public.clone());
    verifier
        .verify(&received)
        .expect("verifies after transport");
}

/// Simulations are bit-for-bit deterministic per seed across the whole
/// pipeline, including the negotiated charge.
#[test]
fn whole_pipeline_is_deterministic() {
    let plan = DataPlan::paper_default();
    let run = || {
        let r = run_scenario(&cycle(AppKind::WebcamRtsp, 0xDE7, 120.0));
        evaluate(&r, &plan, 0xDE7).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.intended, b.intended);
    assert_eq!(a.legacy.charge, b.legacy.charge);
    assert_eq!(a.tlc_optimal.charge, b.tlc_optimal.charge);
    assert_eq!(a.tlc_random.charge, b.tlc_random.charge);
}

/// §8 multi-access edge: the same device charged by two operators, one
/// TLC instance per operator, traffic classified per operator. The two
/// negotiations are independent and each is bounded by its own truth.
#[test]
fn multi_operator_edge_runs_independent_tlc_instances() {
    let plan = DataPlan::paper_default();
    let mut charges = Vec::new();
    for (op_id, seed) in [(1u64, 0xA1), (2u64, 0xA2)] {
        // Each operator's slice of traffic is a separate scenario (the
        // edge classifies its traffic per operator before the records).
        let r = run_scenario(&cycle(AppKind::Vr, seed, 60.0 * op_id as f64));
        let records = cycle_records(&r);
        let c = evaluate(&r, &plan, seed).unwrap();
        let lo = (records.truth.operator as f64 * 0.99) as u64;
        let hi = (records.truth.edge as f64 * 1.01) as u64;
        assert!(
            (lo..=hi).contains(&c.tlc_optimal.charge),
            "operator {op_id}"
        );
        charges.push(c.tlc_optimal.charge);
    }
    assert_ne!(charges[0], charges[1], "independent per-operator charging");
}

/// Intermittent connectivity: TLC's negotiated charge tracks x̂ while
/// the legacy bill drifts with the outage-induced loss.
#[test]
fn intermittent_cycle_tlc_tracks_intended() {
    let cfg = ScenarioConfig::new(AppKind::WebcamUdp, 0xE30, SimDuration::from_secs(90))
        .with_radio(RadioSpec::Intermittent { eta: 0.12 });
    let r = run_scenario(&cfg);
    let plan = DataPlan::paper_default();
    let c = evaluate(&r, &plan, cfg.seed).unwrap();
    assert!(c.gap_ratio(c.tlc_optimal.charge) < 0.02);
    assert!(c.gap_ratio(c.legacy.charge) > c.gap_ratio(c.tlc_optimal.charge));
}
