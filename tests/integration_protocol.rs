//! Protocol-level integration: every strategy pairing through the wire
//! protocol, checked against the abstract Algorithm 1 and the theorems.

use tlc_core::cancellation::{negotiate, DEFAULT_MAX_ROUNDS};
use tlc_core::messages::NONCE_LEN;
use tlc_core::plan::{DataPlan, LossWeight};
use tlc_core::protocol::{run_negotiation, Endpoint, ProtocolError};
use tlc_core::strategy::{
    HonestStrategy, Knowledge, OptimalStrategy, RandomSelfishStrategy, Role, Strategy,
};
use tlc_crypto::KeyPair;
use tlc_net::rng::SimRng;

fn knowledge(role: Role, sent: u64, received: u64) -> Knowledge {
    match role {
        Role::Edge => Knowledge {
            role,
            own_truth: sent,
            inferred_peer_truth: received,
        },
        Role::Operator => Knowledge {
            role,
            own_truth: received,
            inferred_peer_truth: sent,
        },
    }
}

fn endpoints(
    edge_strategy: Box<dyn Strategy>,
    op_strategy: Box<dyn Strategy>,
    sent: u64,
    received: u64,
    c: f64,
) -> (Endpoint, Endpoint) {
    let plan = DataPlan {
        loss_weight: LossWeight::from_f64(c),
        ..DataPlan::paper_default()
    };
    let ek = KeyPair::generate_for_seed(1024, 61).unwrap();
    let ok = KeyPair::generate_for_seed(1024, 62).unwrap();
    (
        Endpoint::new(
            Role::Edge,
            plan,
            knowledge(Role::Edge, sent, received),
            edge_strategy,
            ek.private.clone(),
            ok.public.clone(),
            [0xE; NONCE_LEN],
            48,
        ),
        Endpoint::new(
            Role::Operator,
            plan,
            knowledge(Role::Operator, sent, received),
            op_strategy,
            ok.private.clone(),
            ek.public.clone(),
            [0xF; NONCE_LEN],
            48,
        ),
    )
}

/// Wire protocol and abstract Algorithm 1 agree for deterministic
/// strategy pairings across plans and truth pairs.
#[test]
fn wire_matches_abstract_for_deterministic_strategies() {
    let cases: &[(u64, u64, f64)] = &[
        (1000, 800, 0.5),
        (1000, 800, 0.0),
        (1000, 800, 1.0),
        (5_000_000, 4_999_999, 0.25),
        (100, 100, 0.75),
        (1, 0, 0.5),
    ];
    for &(sent, received, c) in cases {
        let plan = DataPlan {
            loss_weight: LossWeight::from_f64(c),
            ..DataPlan::paper_default()
        };
        for honest_edge in [false, true] {
            for honest_op in [false, true] {
                let mk_e = || -> Box<dyn Strategy> {
                    if honest_edge {
                        Box::new(HonestStrategy)
                    } else {
                        Box::new(OptimalStrategy)
                    }
                };
                let mk_o = || -> Box<dyn Strategy> {
                    if honest_op {
                        Box::new(HonestStrategy)
                    } else {
                        Box::new(OptimalStrategy)
                    }
                };
                let abstract_out = negotiate(
                    &plan,
                    mk_e().as_mut(),
                    &knowledge(Role::Edge, sent, received),
                    mk_o().as_mut(),
                    &knowledge(Role::Operator, sent, received),
                    DEFAULT_MAX_ROUNDS,
                )
                .expect("abstract converges");
                let (mut e, mut o) = endpoints(mk_e(), mk_o(), sent, received, c);
                let (poc, _) = run_negotiation(&mut o, &mut e).expect("wire converges");
                assert_eq!(
                    poc.charge, abstract_out.charge,
                    "sent={sent} recv={received} c={c} he={honest_edge} ho={honest_op}"
                );
            }
        }
    }
}

/// Theorem 2 at the wire level: for rational/honest parties the charge is
/// bounded by [x̂_o, x̂_e], whoever initiates.
#[test]
fn theorem2_bound_holds_for_both_initiators() {
    for (sent, received) in [(1000u64, 600u64), (1_000_000, 999_000), (42, 0)] {
        for edge_initiates in [false, true] {
            let (mut e, mut o) = endpoints(
                Box::new(OptimalStrategy),
                Box::new(HonestStrategy),
                sent,
                received,
                0.5,
            );
            let (poc, _) = if edge_initiates {
                run_negotiation(&mut e, &mut o).unwrap()
            } else {
                run_negotiation(&mut o, &mut e).unwrap()
            };
            assert!(
                (received..=sent).contains(&poc.charge),
                "charge {} outside [{received}, {sent}]",
                poc.charge
            );
        }
    }
}

/// Theorem 4 at the wire level: rational parties finish in exactly three
/// messages (CDR, CDA, PoC) — one round.
#[test]
fn theorem4_one_round_three_messages() {
    let (mut e, mut o) = endpoints(
        Box::new(OptimalStrategy),
        Box::new(OptimalStrategy),
        777_777,
        700_000,
        0.5,
    );
    let (_, msgs) = run_negotiation(&mut o, &mut e).unwrap();
    assert_eq!(msgs, 3);
    assert_eq!(o.rounds(), 1);
}

/// Random-selfish pairings converge across many seeds and stay within
/// bounds, through the wire protocol.
#[test]
fn random_selfish_wire_negotiations_converge_bounded() {
    for seed in 0..25u64 {
        let (mut e, mut o) = endpoints(
            Box::new(RandomSelfishStrategy::new(SimRng::new(seed))),
            Box::new(RandomSelfishStrategy::new(SimRng::new(seed + 10_000))),
            2_000_000,
            1_500_000,
            0.5,
        );
        let (poc, msgs) =
            run_negotiation(&mut o, &mut e).unwrap_or_else(|err| panic!("seed {seed}: {err}"));
        assert!(
            (1_500_000..=2_000_000).contains(&poc.charge),
            "seed {seed}: charge {}",
            poc.charge
        );
        assert!(msgs >= 3);
    }
}

/// Zero traffic cycles negotiate a zero charge and still produce a
/// verifiable proof.
#[test]
fn zero_usage_cycle_yields_zero_charge_proof() {
    let plan = DataPlan::paper_default();
    let ek = KeyPair::generate_for_seed(1024, 63).unwrap();
    let ok = KeyPair::generate_for_seed(1024, 64).unwrap();
    let mut e = Endpoint::new(
        Role::Edge,
        plan,
        knowledge(Role::Edge, 0, 0),
        Box::new(OptimalStrategy),
        ek.private.clone(),
        ok.public.clone(),
        [1; NONCE_LEN],
        16,
    );
    let mut o = Endpoint::new(
        Role::Operator,
        plan,
        knowledge(Role::Operator, 0, 0),
        Box::new(OptimalStrategy),
        ok.private.clone(),
        ek.public.clone(),
        [2; NONCE_LEN],
        16,
    );
    let (poc, _) = run_negotiation(&mut o, &mut e).unwrap();
    assert_eq!(poc.charge, 0);
    tlc_core::verify::verify_poc(&poc, &plan, &ek.public, &ok.public).unwrap();
}

/// A party whose claims escape the agreed bounds after a rejection is
/// detected locally by its peer and the negotiation aborts (line 12's
/// constraint is locally checkable).
#[test]
fn bound_violation_detected_at_wire_level() {
    use tlc_core::cancellation::Bounds;
    use tlc_core::strategy::Decision;

    /// Escalates its claim every round, ignoring bounds entirely: round 1
    /// establishes bounds, round 2's doubled claim violates them.
    struct EscalatingViolator;
    impl Strategy for EscalatingViolator {
        fn claim(&mut self, _k: &Knowledge, _b: &Bounds, round: u32) -> u64 {
            5_000_000u64 << round
        }
        fn decide(&mut self, _k: &Knowledge, _own: u64, _peer: u64) -> Decision {
            Decision::Reject
        }
    }

    let (mut e, mut o) = endpoints(
        Box::new(EscalatingViolator),
        Box::new(OptimalStrategy),
        1000,
        800,
        0.5,
    );
    let err = run_negotiation(&mut o, &mut e).unwrap_err();
    match err {
        ProtocolError::PeerBoundViolation { .. } | ProtocolError::Stalled { .. } => {}
        other => panic!("expected bound violation or stall, got {other}"),
    }
}
