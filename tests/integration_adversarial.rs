//! Adversarial integration: forgery, tampering, replay, selfish monitors,
//! and the unboundedness contrast between legacy 4G/5G and TLC.

use tlc_cell::monitor::{operator_downlink_report, MonitorKind, TamperPolicy};
use tlc_core::legacy::{legacy_charge, LegacyOperator};
use tlc_core::messages::{CdaMsg, CdrMsg, PocMsg, NONCE_LEN};
use tlc_core::plan::DataPlan;
use tlc_core::protocol::{run_negotiation, Endpoint};
use tlc_core::strategy::{Knowledge, OptimalStrategy, Role};
use tlc_core::verify::{verify_poc, Verifier, VerifyError};
use tlc_crypto::KeyPair;

fn make_proof(sent: u64, received: u64) -> (PocMsg, KeyPair, KeyPair, DataPlan) {
    let plan = DataPlan::paper_default();
    let ek = KeyPair::generate_for_seed(1024, 71).unwrap();
    let ok = KeyPair::generate_for_seed(1024, 72).unwrap();
    let mut e = Endpoint::new(
        Role::Edge,
        plan,
        Knowledge {
            role: Role::Edge,
            own_truth: sent,
            inferred_peer_truth: received,
        },
        Box::new(OptimalStrategy),
        ek.private.clone(),
        ok.public.clone(),
        [0x11; NONCE_LEN],
        16,
    );
    let mut o = Endpoint::new(
        Role::Operator,
        plan,
        Knowledge {
            role: Role::Operator,
            own_truth: received,
            inferred_peer_truth: sent,
        },
        Box::new(OptimalStrategy),
        ok.private.clone(),
        ek.public.clone(),
        [0x22; NONCE_LEN],
        16,
    );
    let (poc, _) = run_negotiation(&mut o, &mut e).unwrap();
    (poc, ek, ok, plan)
}

/// Legacy selfish charging is unbounded; TLC's accepted charge never
/// exceeds the signed claims.
#[test]
fn legacy_unbounded_tlc_bounded() {
    let (poc, _, _, _) = make_proof(1_000_000, 900_000);
    // Legacy: a selfish operator can claim anything.
    let absurd = legacy_charge(900_000, LegacyOperator::Arbitrary { volume: u64::MAX });
    assert_eq!(absurd, u64::MAX);
    // TLC: the proof pins the charge inside the claims.
    assert!(poc.charge <= poc.edge_usage().max(poc.operator_usage()));
    assert!(poc.charge >= poc.edge_usage().min(poc.operator_usage()));
}

/// Every byte of a PoC is covered either by a signature or by the nonce
/// checks: flipping any single byte makes verification fail.
#[test]
fn any_single_byte_flip_invalidates_the_proof() {
    let (poc, ek, ok, plan) = make_proof(500_000, 400_000);
    let wire = poc.encode();
    // Sample positions across the whole message (every 13th byte).
    for idx in (0..wire.len()).step_by(13) {
        let mut corrupted = wire.clone();
        corrupted[idx] ^= 0x01;
        match PocMsg::decode(&corrupted) {
            Err(_) => {} // structurally rejected
            Ok(msg) => {
                assert!(
                    verify_poc(&msg, &plan, &ek.public, &ok.public).is_err(),
                    "byte {idx} flip went undetected"
                );
            }
        }
    }
}

/// An operator cannot splice an old high-usage CDA into a new PoC: the
/// verifier's replay cache keys on the nonces, and fresh nonces can't be
/// forged into old signed structures.
#[test]
fn cda_splicing_is_caught() {
    let (poc1, ek, ok, plan) = make_proof(2_000_000, 1_800_000);
    // Splice: take cycle 1's CDA but claim a doubled charge.
    let spliced = PocMsg::sign(
        Role::Operator,
        plan,
        poc1.charge * 2,
        poc1.cda.clone(),
        poc1.nonce_e,
        poc1.nonce_o,
        &ok.private,
    )
    .unwrap();
    // The signature is valid (operator signed it!) but the charge no
    // longer replays from the embedded claims.
    assert_eq!(
        verify_poc(&spliced, &plan, &ek.public, &ok.public),
        Err(VerifyError::ChargeMismatch {
            claimed: poc1.charge * 2,
            expected: poc1.charge
        })
    );
}

/// Replayed proofs are rejected by a stateful verifier even though they
/// verify statelessly.
#[test]
fn replay_rejected_only_by_stateful_verifier() {
    let (poc, ek, ok, plan) = make_proof(800_000, 700_000);
    // Stateless: fine both times.
    verify_poc(&poc, &plan, &ek.public, &ok.public).unwrap();
    verify_poc(&poc, &plan, &ek.public, &ok.public).unwrap();
    // Stateful: second presentation is a replay.
    let mut v = Verifier::new(plan, ek.public.clone(), ok.public.clone());
    v.verify(&poc).unwrap();
    assert_eq!(v.verify(&poc), Err(VerifyError::Replayed));
}

/// §5.4's monitor taxonomy end-to-end: a selfish edge zeroes the
/// user-space monitor but cannot touch the RRC-backed record.
#[test]
fn selfish_edge_defeats_strawman1_not_tlc_monitor() {
    let modem_truth = 33_604_032; // Trace 1's downlink volume
    let zeroing_edge = TamperPolicy::Zero;
    let strawman = operator_downlink_report(MonitorKind::UserSpaceApi, modem_truth, zeroing_edge);
    let tlc = operator_downlink_report(MonitorKind::RrcCounterCheck, modem_truth, zeroing_edge);
    assert_eq!(strawman.reported_bytes, 0, "strawman 1 is fooled");
    assert_eq!(tlc.reported_bytes, modem_truth, "RRC record survives");
    // Strawman 2 also survives but costs root + privacy.
    assert!(MonitorKind::RootedSystemMonitor.requires_root());
    assert!(MonitorKind::RootedSystemMonitor.privacy_invasive());
    assert!(!MonitorKind::RrcCounterCheck.requires_root());
}

/// A forged CDR chain built by one party alone (without the peer's key)
/// never survives chain verification, whatever roles it claims.
#[test]
fn single_party_cannot_fabricate_a_two_party_proof() {
    let plan = DataPlan::paper_default();
    let ek = KeyPair::generate_for_seed(1024, 73).unwrap();
    let ok = KeyPair::generate_for_seed(1024, 74).unwrap();
    // The operator fabricates the edge's CDR with its own key.
    let fake_edge_cdr =
        CdrMsg::sign(Role::Edge, plan, 1, [9; NONCE_LEN], 10_000_000, &ok.private).unwrap();
    let cda = CdaMsg::sign(
        Role::Operator,
        plan,
        [8; NONCE_LEN],
        10_000_000,
        fake_edge_cdr,
        &ok.private,
    )
    .unwrap();
    // Wait — the PoC finalizer must be the party whose CDR is embedded;
    // operator embeds an "edge" CDR, so the edge must finalize. The
    // operator signs it itself instead:
    let poc = PocMsg::sign(
        Role::Edge, // claims to be edge-finalized
        plan,
        10_000_000,
        cda,
        [9; NONCE_LEN],
        [8; NONCE_LEN],
        &ok.private, // ...but signed with the operator's key
    )
    .unwrap();
    assert!(verify_poc(&poc, &plan, &ek.public, &ok.public).is_err());
}
