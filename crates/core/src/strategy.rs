//! Negotiation strategies (§5.1–§5.2 and the §7.1 evaluation variants).
//!
//! Each party enters the negotiation knowing two numbers (§5.2): its own
//! metered truth and an inference of the peer's. For the edge vendor these
//! are `x̂_e` (its send counter) and `x̂_o` (its delivery monitor); for the
//! operator, `x̂_o` (gateway/RRC meter) and `x̂_e` (gateway-observed
//! offered traffic).
//!
//! * [`HonestStrategy`] — claims its own truth (the paper's honest case),
//! * [`OptimalStrategy`] — the rational minimax/maximin play of Theorem 3:
//!   the edge claims `x̂_o`, the operator claims `x̂_e`; converges in one
//!   round (Theorem 4),
//! * [`RandomSelfishStrategy`] — §7.1's "TLC-random": selfish but unaware
//!   of the optimal play; uniformly over-/under-claims and re-draws under
//!   tightening bounds,
//! * misbehaving strategies ([`RejectAllStrategy`], [`InsistStrategy`],
//!   [`BoundViolatorStrategy`]) — the §5.1 "potential misbehaviors",
//!   which stall or abort but never extract a better price.

use crate::cancellation::Bounds;
use serde::{Deserialize, Serialize};
use tlc_net::rng::SimRng;

/// Which side of the negotiation a party is.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Role {
    /// The edge application vendor (pays; wants a smaller `x`).
    Edge,
    /// The cellular operator (is paid; wants a larger `x`).
    Operator,
}

/// What a party knows entering the negotiation.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Knowledge {
    /// This party's role.
    pub role: Role,
    /// Its own metered truth: `x̂_e` for the edge, `x̂_o` for the operator.
    pub own_truth: u64,
    /// Its inference of the peer-side truth: `x̂_o` for the edge,
    /// `x̂_e` for the operator.
    pub inferred_peer_truth: u64,
}

impl Knowledge {
    /// The cross-check threshold this party holds against peer claims
    /// (Theorem 2's proof): the edge rejects operator claims above its
    /// sent volume; the operator rejects edge claims below its received
    /// volume.
    fn cross_check_ok(&self, peer_claim: u64) -> bool {
        match self.role {
            Role::Edge => peer_claim <= self.own_truth,
            Role::Operator => peer_claim >= self.own_truth,
        }
    }
}

/// A party's accept/reject decision (Algorithm 1 line 6).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Decision {
    /// Accept the peer's claim; negotiation can conclude.
    Accept,
    /// Reject; re-claim under tightened bounds.
    Reject,
}

/// A negotiation behaviour: produce claims, judge peer claims.
pub trait Strategy {
    /// The claim for this round, given the party's knowledge and the
    /// bounds in force.
    fn claim(&mut self, k: &Knowledge, bounds: &Bounds, round: u32) -> u64;

    /// Whether to accept the peer's claim this round.
    fn decide(&mut self, k: &Knowledge, own_claim: u64, peer_claim: u64) -> Decision;
}

/// Reports the truth; accepts anything that passes the cross-check.
#[derive(Clone, Copy, Debug, Default)]
pub struct HonestStrategy;

impl Strategy for HonestStrategy {
    fn claim(&mut self, k: &Knowledge, bounds: &Bounds, _round: u32) -> u64 {
        bounds.clamp(k.own_truth)
    }

    fn decide(&mut self, k: &Knowledge, _own: u64, peer_claim: u64) -> Decision {
        if k.cross_check_ok(peer_claim) {
            Decision::Accept
        } else {
            Decision::Reject
        }
    }
}

/// The rational play of Theorem 3: claim the peer-side truth.
///
/// Edge minimax: for any `x_e`, the operator's worst response prices at
/// `(1−c)·x_e + c·x̂_e`, minimized at the lowest undetectable claim
/// `x_e = x̂_o`. Operator maximin symmetric: `x_o = x̂_e`.
///
/// With perfect records this converges in one round (Theorem 4). Real
/// records carry small measurement errors (Fig. 18), so a first-round
/// claim can land just past the peer's cross-check threshold and be
/// rejected; on later rounds the strategy concedes geometrically through
/// the tightened bounds toward the peer's side, restoring convergence in
/// O(log error) rounds.
#[derive(Clone, Copy, Debug, Default)]
pub struct OptimalStrategy;

impl Strategy for OptimalStrategy {
    fn claim(&mut self, k: &Knowledge, bounds: &Bounds, round: u32) -> u64 {
        if round <= 1 {
            return bounds.clamp(k.inferred_peer_truth);
        }
        // Concede: move from our end of the bounds toward the peer's end,
        // halving the remaining distance each round — but never past our
        // own measured truth (the edge never over-claims its sent volume,
        // the operator never under-claims its received volume; doing so
        // could only worsen its own charge).
        let span = bounds.hi - bounds.lo;
        let step = span >> (round - 1).min(63);
        let concession = span - step;
        let target = match k.role {
            Role::Edge => bounds
                .lo
                .saturating_add(concession)
                .min(k.own_truth.max(bounds.lo)),
            Role::Operator => bounds
                .hi
                .saturating_sub(concession)
                .max(k.own_truth.min(bounds.hi)),
        };
        bounds.clamp(target)
    }

    fn decide(&mut self, k: &Knowledge, _own: u64, peer_claim: u64) -> Decision {
        if k.cross_check_ok(peer_claim) {
            Decision::Accept
        } else {
            Decision::Reject
        }
    }
}

/// §7.1's "TLC-random": selfish but strategy-naive. Each round the edge
/// uniformly under-claims below its truth and the operator uniformly
/// over-claims above its truth, both within the current bounds; the
/// cross-check prunes detectable claims and the tightening bounds drive
/// convergence in a few rounds (Fig. 16b).
#[derive(Clone, Debug)]
pub struct RandomSelfishStrategy {
    rng: SimRng,
    /// How far beyond the truth the first-round draw may range, as a
    /// fraction of the truth (default 0.5 — a 50% initial over/under
    /// reach).
    pub reach: f64,
}

impl RandomSelfishStrategy {
    /// Default reach of 0.5.
    pub fn new(rng: SimRng) -> Self {
        RandomSelfishStrategy { rng, reach: 0.5 }
    }

    /// Custom reach.
    pub fn with_reach(rng: SimRng, reach: f64) -> Self {
        assert!(reach >= 0.0 && reach.is_finite());
        RandomSelfishStrategy { rng, reach }
    }
}

impl Strategy for RandomSelfishStrategy {
    fn claim(&mut self, k: &Knowledge, bounds: &Bounds, _round: u32) -> u64 {
        let reach_bytes = (k.own_truth as f64 * self.reach) as u64;
        let (lo, hi) = match k.role {
            // Edge: draw in [truth - reach, truth], i.e. under-claim.
            Role::Edge => (k.own_truth.saturating_sub(reach_bytes), k.own_truth),
            // Operator: draw in [truth, truth + reach], i.e. over-claim.
            Role::Operator => (k.own_truth, k.own_truth.saturating_add(reach_bytes)),
        };
        let lo = lo.max(bounds.lo);
        let hi = hi.min(bounds.hi);
        if lo >= hi {
            return bounds.clamp(lo);
        }
        self.rng.range_u64(lo, hi)
    }

    fn decide(&mut self, k: &Knowledge, _own: u64, peer_claim: u64) -> Decision {
        if k.cross_check_ok(peer_claim) {
            Decision::Accept
        } else {
            Decision::Reject
        }
    }
}

/// Misbehavior: always rejects, stalling the negotiation (§5.1 — hurts
/// itself: no PoC means no payment / no service).
#[derive(Clone, Copy, Debug, Default)]
pub struct RejectAllStrategy;

impl Strategy for RejectAllStrategy {
    fn claim(&mut self, k: &Knowledge, bounds: &Bounds, _round: u32) -> u64 {
        bounds.clamp(k.own_truth)
    }

    fn decide(&mut self, _k: &Knowledge, _own: u64, _peer: u64) -> Decision {
        Decision::Reject
    }
}

/// Misbehavior: insists on a fixed untruthful claim each round (clamped
/// into bounds so the peer cannot abort, but never accepted if it fails
/// the peer's cross-check).
#[derive(Clone, Copy, Debug)]
pub struct InsistStrategy {
    /// The claim insisted upon.
    pub claim: u64,
}

impl Strategy for InsistStrategy {
    fn claim(&mut self, _k: &Knowledge, bounds: &Bounds, _round: u32) -> u64 {
        bounds.clamp(self.claim)
    }

    fn decide(&mut self, k: &Knowledge, _own: u64, peer_claim: u64) -> Decision {
        if k.cross_check_ok(peer_claim) {
            Decision::Accept
        } else {
            Decision::Reject
        }
    }
}

/// Misbehavior: ignores the bound constraint of line 12 outright. The
/// peer detects this locally and aborts the negotiation.
#[derive(Clone, Copy, Debug)]
pub struct BoundViolatorStrategy {
    /// Claim emitted regardless of bounds.
    pub claim: u64,
}

impl Strategy for BoundViolatorStrategy {
    fn claim(&mut self, _k: &Knowledge, _bounds: &Bounds, _round: u32) -> u64 {
        self.claim
    }

    fn decide(&mut self, _k: &Knowledge, _own: u64, _peer: u64) -> Decision {
        Decision::Accept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge_k(sent: u64, recv: u64) -> Knowledge {
        Knowledge {
            role: Role::Edge,
            own_truth: sent,
            inferred_peer_truth: recv,
        }
    }

    fn op_k(sent: u64, recv: u64) -> Knowledge {
        Knowledge {
            role: Role::Operator,
            own_truth: recv,
            inferred_peer_truth: sent,
        }
    }

    #[test]
    fn cross_check_direction_per_role() {
        let e = edge_k(1000, 800);
        assert!(e.cross_check_ok(1000));
        assert!(e.cross_check_ok(900));
        assert!(!e.cross_check_ok(1001)); // operator claims more than edge sent
        let o = op_k(1000, 800);
        assert!(o.cross_check_ok(800));
        assert!(o.cross_check_ok(900));
        assert!(!o.cross_check_ok(799)); // edge claims less than operator received
    }

    #[test]
    fn honest_claims_truth() {
        let mut s = HonestStrategy;
        assert_eq!(s.claim(&edge_k(1000, 800), &Bounds::unbounded(), 1), 1000);
        assert_eq!(s.claim(&op_k(1000, 800), &Bounds::unbounded(), 1), 800);
    }

    #[test]
    fn optimal_claims_peer_truth() {
        let mut s = OptimalStrategy;
        assert_eq!(s.claim(&edge_k(1000, 800), &Bounds::unbounded(), 1), 800);
        assert_eq!(s.claim(&op_k(1000, 800), &Bounds::unbounded(), 1), 1000);
    }

    #[test]
    fn claims_respect_bounds() {
        let b = Bounds { lo: 900, hi: 950 };
        let mut h = HonestStrategy;
        assert_eq!(h.claim(&edge_k(1000, 800), &b, 2), 950);
        let mut o = OptimalStrategy;
        assert_eq!(o.claim(&edge_k(1000, 800), &b, 1), 900);
    }

    #[test]
    fn optimal_concedes_geometrically_after_rejection() {
        // Rounds > 1 move from the party's own end of the bounds toward
        // the peer's end, halving the remaining distance each round.
        let b = Bounds { lo: 1000, hi: 2000 };
        let mut o = OptimalStrategy;
        let e = edge_k(5000, 100); // inferred peer truth outside bounds
        assert_eq!(o.claim(&e, &b, 2), 1500);
        assert_eq!(o.claim(&e, &b, 3), 1750);
        assert!(o.claim(&e, &b, 10) > 1990);
        // The operator concedes downward symmetrically.
        let ko = op_k(5000, 100);
        assert_eq!(o.claim(&ko, &b, 2), 1500);
        assert_eq!(o.claim(&ko, &b, 3), 1250);
    }

    #[test]
    fn random_edge_never_over_claims() {
        let mut s = RandomSelfishStrategy::new(SimRng::new(1));
        let k = edge_k(10_000, 8_000);
        for round in 1..100 {
            let c = s.claim(&k, &Bounds::unbounded(), round);
            assert!(c <= 10_000, "edge over-claimed {c}");
        }
    }

    #[test]
    fn random_operator_never_under_claims() {
        let mut s = RandomSelfishStrategy::new(SimRng::new(2));
        let k = op_k(10_000, 8_000);
        for round in 1..100 {
            let c = s.claim(&k, &Bounds::unbounded(), round);
            assert!(c >= 8_000, "operator under-claimed {c}");
        }
    }

    #[test]
    fn random_respects_tight_bounds() {
        let mut s = RandomSelfishStrategy::new(SimRng::new(3));
        let b = Bounds {
            lo: 9_000,
            hi: 9_500,
        };
        for round in 1..50 {
            let c = s.claim(&edge_k(10_000, 8_000), &b, round);
            assert!(b.admits(c), "claim {c} outside bounds");
        }
    }

    #[test]
    fn reject_all_always_rejects() {
        let mut s = RejectAllStrategy;
        assert_eq!(s.decide(&edge_k(1, 1), 1, 1), Decision::Reject);
    }

    #[test]
    fn insist_claims_fixed_value_clamped() {
        let mut s = InsistStrategy { claim: 5 };
        assert_eq!(s.claim(&edge_k(1000, 800), &Bounds::unbounded(), 1), 5);
        let b = Bounds { lo: 100, hi: 200 };
        assert_eq!(s.claim(&edge_k(1000, 800), &b, 2), 100);
    }

    #[test]
    fn bound_violator_ignores_bounds() {
        let mut s = BoundViolatorStrategy { claim: 999_999 };
        let b = Bounds { lo: 0, hi: 10 };
        assert_eq!(s.claim(&edge_k(1000, 800), &b, 1), 999_999);
    }
}
