//! Game-theoretic analysis utilities behind Theorems 2–4.
//!
//! The negotiation is a two-player zero-sum game over the claim pair
//! `(x_e, x_o)` with payoff `x` (the charge): the operator maximizes, the
//! edge minimizes. These helpers compute best responses and equilibria
//! numerically over the admissible claim grid, so the property-based tests
//! can check the minimax theorem's conclusions against the closed-form
//! strategies in [`crate::strategy`], and Appendix D's generic-charging
//! bound can be evaluated.

use crate::plan::{charge_for, LossWeight, UsagePair};

/// The admissible claim sets once cross-checks are in force (Theorem 2):
/// both claims live in `[x̂_o, x̂_e]`.
#[derive(Clone, Copy, Debug)]
pub struct ClaimSpace {
    /// True received volume `x̂_o`.
    pub received: u64,
    /// True sent volume `x̂_e`.
    pub sent: u64,
}

impl ClaimSpace {
    /// Builds the space; panics unless `received ≤ sent`.
    pub fn new(received: u64, sent: u64) -> Self {
        assert!(received <= sent, "x̂_o must not exceed x̂_e");
        ClaimSpace { received, sent }
    }

    /// The plan-intended charge `x̂`.
    pub fn intended(&self, c: LossWeight) -> u64 {
        charge_for(
            UsagePair {
                edge: self.sent,
                operator: self.received,
            },
            c,
        )
    }

    /// The operator's worst-case (maximal) charge against a fixed edge
    /// claim: `max_{x_o} x` over the admissible range.
    pub fn worst_case_for_edge(&self, edge_claim: u64, c: LossWeight) -> u64 {
        self.grid(32)
            .map(|xo| {
                charge_for(
                    UsagePair {
                        edge: edge_claim,
                        operator: xo,
                    },
                    c,
                )
            })
            .max()
            .expect("grid is nonempty")
    }

    /// The edge's worst-case (minimal) charge against a fixed operator
    /// claim: `min_{x_e} x`.
    pub fn worst_case_for_operator(&self, operator_claim: u64, c: LossWeight) -> u64 {
        self.grid(32)
            .map(|xe| {
                charge_for(
                    UsagePair {
                        edge: xe,
                        operator: operator_claim,
                    },
                    c,
                )
            })
            .min()
            .expect("grid is nonempty")
    }

    /// The edge's minimax value: `min_{x_e} max_{x_o} x` over the grid.
    pub fn minimax(&self, c: LossWeight) -> u64 {
        self.grid(32)
            .map(|xe| self.worst_case_for_edge(xe, c))
            .min()
            .expect("grid is nonempty")
    }

    /// The operator's maximin value: `max_{x_o} min_{x_e} x`.
    pub fn maximin(&self, c: LossWeight) -> u64 {
        self.grid(32)
            .map(|xo| self.worst_case_for_operator(xo, c))
            .max()
            .expect("grid is nonempty")
    }

    /// An evenly spaced sample of the admissible claim range, always
    /// including both endpoints.
    fn grid(&self, steps: u64) -> impl Iterator<Item = u64> + '_ {
        let lo = self.received;
        let hi = self.sent;
        let span = hi - lo;
        (0..=steps)
            .map(move |i| lo + span * i / steps.max(1))
            .chain(std::iter::once(hi))
    }
}

/// Appendix D: in generic (non-edge) downlink charging, data may be lost
/// between the Internet server and the 4G/5G core. The edge reports its
/// server-sent volume `x̂'_e ≥ x̂_e` (core-received), so the negotiated
/// charge over-shoots the intended `x̂` by at most `c · (x̂'_e − x̂_e)`.
pub fn generic_downlink_overcharge_bound(
    server_sent: u64,
    core_received: u64,
    c: LossWeight,
) -> u64 {
    assert!(server_sent >= core_received);
    c.scale(server_sent - core_received)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: f64) -> LossWeight {
        LossWeight::from_f64(v)
    }

    #[test]
    fn minimax_equals_maximin_equals_intended() {
        // Theorem 3: the game has a pure-strategy saddle point at x̂.
        for (recv, sent) in [(800u64, 1000u64), (0, 1000), (500, 500), (1, 1_000_000)] {
            for weight in [0.0, 0.25, 0.5, 0.75, 1.0] {
                let space = ClaimSpace::new(recv, sent);
                let w = c(weight);
                let intended = space.intended(w);
                assert_eq!(
                    space.minimax(w),
                    intended,
                    "minimax {recv}..{sent} c={weight}"
                );
                assert_eq!(
                    space.maximin(w),
                    intended,
                    "maximin {recv}..{sent} c={weight}"
                );
            }
        }
    }

    #[test]
    fn edge_best_response_is_received_volume() {
        // Claiming x̂_o minimizes the worst case; any higher claim can only
        // do worse or equal.
        let space = ClaimSpace::new(800, 1000);
        let w = c(0.5);
        let at_truth_o = space.worst_case_for_edge(800, w);
        for claim in [850, 900, 1000] {
            assert!(space.worst_case_for_edge(claim, w) >= at_truth_o);
        }
    }

    #[test]
    fn operator_best_response_is_sent_volume() {
        let space = ClaimSpace::new(800, 1000);
        let w = c(0.5);
        let at_truth_e = space.worst_case_for_operator(1000, w);
        for claim in [800, 900, 950] {
            assert!(space.worst_case_for_operator(claim, w) <= at_truth_e);
        }
    }

    #[test]
    fn worst_cases_bracket_intended() {
        let space = ClaimSpace::new(300, 700);
        let w = c(0.5);
        let x_hat = space.intended(w);
        assert!(space.worst_case_for_edge(300, w) >= x_hat);
        assert!(space.worst_case_for_operator(700, w) <= x_hat);
    }

    #[test]
    fn no_loss_game_is_trivial() {
        let space = ClaimSpace::new(1234, 1234);
        for weight in [0.0, 0.5, 1.0] {
            assert_eq!(space.minimax(c(weight)), 1234);
        }
    }

    #[test]
    fn appendix_d_bound() {
        // 1 MB lost between server and core at c=0.5: over-charge ≤ 500 KB.
        assert_eq!(
            generic_downlink_overcharge_bound(10_000_000, 9_000_000, c(0.5)),
            500_000
        );
        assert_eq!(generic_downlink_overcharge_bound(5, 5, c(1.0)), 0);
        // c=0: receiver-only charging is immune to Internet-side loss.
        assert_eq!(generic_downlink_overcharge_bound(10_000_000, 1, c(0.0)), 0);
    }

    #[test]
    #[should_panic]
    fn claim_space_rejects_inverted_truth() {
        ClaimSpace::new(1000, 800);
    }
}
