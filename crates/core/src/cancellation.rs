//! Loss–selfishness cancellation — Algorithm 1 of the paper.
//!
//! The edge app vendor and cellular operator repeatedly exchange usage
//! claims `(x_e, x_o)` and accept/reject decisions. Rejection tightens the
//! claim bounds to the span of the rejected round (line 12); acceptance
//! prices the final pair through the plan formula (line 8).
//!
//! The engine here is strategy-agnostic: party behaviour is supplied via
//! [`crate::strategy::Strategy`] implementations, so honest, rational
//! (minimax), random-selfish, and misbehaving parties all run through the
//! same loop, and the theorems can be tested against all combinations.

use crate::plan::{charge_for, DataPlan, UsagePair};
use crate::strategy::{Decision, Knowledge, Strategy};
use serde::{Deserialize, Serialize};

/// Claim bounds carried across rounds (Algorithm 1 line 1/12).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bounds {
    /// Lower bound `x_L` (inclusive).
    pub lo: u64,
    /// Upper bound `x_U` (inclusive; `u64::MAX` stands in for ∞).
    pub hi: u64,
}

impl Bounds {
    /// The initial unbounded range.
    pub fn unbounded() -> Self {
        Bounds {
            lo: 0,
            hi: u64::MAX,
        }
    }

    /// Whether a claim is admissible under these bounds.
    pub fn admits(&self, claim: u64) -> bool {
        (self.lo..=self.hi).contains(&claim)
    }

    /// Clamps a desired claim into the admissible range.
    pub fn clamp(&self, claim: u64) -> u64 {
        claim.clamp(self.lo, self.hi)
    }

    /// Line 12: tighten to the span of the rejected round's claims.
    pub fn tighten(&self, edge_claim: u64, operator_claim: u64) -> Bounds {
        Bounds {
            lo: edge_claim.min(operator_claim),
            hi: edge_claim.max(operator_claim),
        }
    }
}

/// One round of the negotiation transcript.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RoundRecord {
    /// 1-based round number.
    pub round: u32,
    /// Edge's claim `x_e`.
    pub edge_claim: u64,
    /// Operator's claim `x_o`.
    pub operator_claim: u64,
    /// Whether the edge accepted the operator's claim.
    pub edge_accepted: bool,
    /// Whether the operator accepted the edge's claim.
    pub operator_accepted: bool,
    /// Bounds in force during this round.
    pub bounds: Bounds,
}

/// Successful negotiation result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NegotiationOutcome {
    /// The negotiated charging volume `x`.
    pub charge: u64,
    /// Rounds taken to converge.
    pub rounds: u32,
    /// Final accepted claims.
    pub final_claims: UsagePair,
    /// Full round-by-round transcript.
    pub transcript: Vec<RoundRecord>,
}

/// Negotiation failure.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NegotiationError {
    /// No convergence within the round cap — a party is misbehaving
    /// (§5.1: neither side benefits, but a buggy peer can stall).
    NoConvergence {
        /// Rounds attempted.
        rounds: u32,
    },
    /// A party emitted a claim outside the agreed bounds and the peer
    /// aborted (line 12's constraint is locally checkable).
    BoundViolation {
        /// Round of the violation.
        round: u32,
        /// Whether the edge (vs the operator) violated.
        by_edge: bool,
        /// The offending claim.
        claim: u64,
        /// Bounds in force.
        bounds: Bounds,
    },
}

impl std::fmt::Display for NegotiationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NegotiationError::NoConvergence { rounds } => {
                write!(f, "negotiation did not converge within {rounds} rounds")
            }
            NegotiationError::BoundViolation {
                round,
                by_edge,
                claim,
                bounds,
            } => write!(
                f,
                "round {round}: {} claimed {claim} outside [{}, {}]",
                if *by_edge { "edge" } else { "operator" },
                bounds.lo,
                bounds.hi
            ),
        }
    }
}

impl std::error::Error for NegotiationError {}

/// Default cap on negotiation rounds before declaring a stall.
pub const DEFAULT_MAX_ROUNDS: u32 = 64;

/// Runs Algorithm 1 to completion.
///
/// `edge` and `operator` supply per-round claims and accept/reject
/// decisions; `edge_knowledge` / `operator_knowledge` carry each party's
/// locally measured ground truth.
pub fn negotiate(
    plan: &DataPlan,
    edge: &mut dyn Strategy,
    edge_knowledge: &Knowledge,
    operator: &mut dyn Strategy,
    operator_knowledge: &Knowledge,
    max_rounds: u32,
) -> Result<NegotiationOutcome, NegotiationError> {
    let mut bounds = Bounds::unbounded();
    let mut transcript = Vec::new();
    for round in 1..=max_rounds {
        // Line 4: exchange claims (order does not affect the result).
        let edge_claim = edge.claim(edge_knowledge, &bounds, round);
        let operator_claim = operator.claim(operator_knowledge, &bounds, round);

        // Line 12's constraint is visible to both sides: an out-of-bounds
        // claim is detected by the peer and aborts the negotiation.
        if !bounds.admits(edge_claim) {
            return Err(NegotiationError::BoundViolation {
                round,
                by_edge: true,
                claim: edge_claim,
                bounds,
            });
        }
        if !bounds.admits(operator_claim) {
            return Err(NegotiationError::BoundViolation {
                round,
                by_edge: false,
                claim: operator_claim,
                bounds,
            });
        }

        // Line 6: exchange decisions.
        let edge_decision = edge.decide(edge_knowledge, edge_claim, operator_claim);
        let operator_decision = operator.decide(operator_knowledge, operator_claim, edge_claim);
        let edge_accepted = edge_decision == Decision::Accept;
        let operator_accepted = operator_decision == Decision::Accept;

        transcript.push(RoundRecord {
            round,
            edge_claim,
            operator_claim,
            edge_accepted,
            operator_accepted,
            bounds,
        });

        if edge_accepted && operator_accepted {
            // Line 8: price the accepted pair.
            let charge = charge_for(
                UsagePair {
                    edge: edge_claim,
                    operator: operator_claim,
                },
                plan.loss_weight,
            );
            return Ok(NegotiationOutcome {
                charge,
                rounds: round,
                final_claims: UsagePair {
                    edge: edge_claim,
                    operator: operator_claim,
                },
                transcript,
            });
        }
        // Line 12: reclaim under tightened bounds.
        bounds = bounds.tighten(edge_claim, operator_claim);
    }
    Err(NegotiationError::NoConvergence { rounds: max_rounds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::LossWeight;
    use crate::strategy::{HonestStrategy, OptimalStrategy, RandomSelfishStrategy, Role};
    use tlc_net::rng::SimRng;

    fn plan(c: f64) -> DataPlan {
        DataPlan {
            loss_weight: LossWeight::from_f64(c),
            ..DataPlan::paper_default()
        }
    }

    fn knowledge(role: Role, sent: u64, received: u64) -> Knowledge {
        match role {
            Role::Edge => Knowledge {
                role,
                own_truth: sent,
                inferred_peer_truth: received,
            },
            Role::Operator => Knowledge {
                role,
                own_truth: received,
                inferred_peer_truth: sent,
            },
        }
    }

    /// Convenience: run a negotiation for truth (sent, received).
    fn run(
        c: f64,
        sent: u64,
        received: u64,
        edge: &mut dyn Strategy,
        operator: &mut dyn Strategy,
    ) -> Result<NegotiationOutcome, NegotiationError> {
        let ke = knowledge(Role::Edge, sent, received);
        let ko = knowledge(Role::Operator, sent, received);
        negotiate(&plan(c), edge, &ke, operator, &ko, DEFAULT_MAX_ROUNDS)
    }

    #[test]
    fn honest_vs_honest_converges_to_intended_charge_in_one_round() {
        let mut e = HonestStrategy;
        let mut o = HonestStrategy;
        let out = run(0.5, 1000, 800, &mut e, &mut o).unwrap();
        assert_eq!(out.rounds, 1); // Theorem 4 case (1)
        assert_eq!(out.charge, 900); // x̂ = 800 + 0.5*200
        assert_eq!(out.final_claims.edge, 1000);
        assert_eq!(out.final_claims.operator, 800);
    }

    #[test]
    fn optimal_vs_optimal_converges_to_intended_charge_in_one_round() {
        // Theorem 3 + Theorem 4 case (2): both rational.
        let mut e = OptimalStrategy;
        let mut o = OptimalStrategy;
        let out = run(0.5, 1000, 800, &mut e, &mut o).unwrap();
        assert_eq!(out.rounds, 1);
        assert_eq!(out.charge, 900);
        // Claims are swapped relative to honest: x_e = x̂_o, x_o = x̂_e.
        assert_eq!(out.final_claims.edge, 800);
        assert_eq!(out.final_claims.operator, 1000);
    }

    #[test]
    fn honest_edge_vs_rational_operator_is_bounded() {
        // Mixed case: converges, possibly not to x̂, but within bounds
        // (Theorem 2).
        let mut e = HonestStrategy;
        let mut o = OptimalStrategy;
        let out = run(0.5, 1000, 800, &mut e, &mut o).unwrap();
        assert!(out.charge >= 800 && out.charge <= 1000);
        // Operator claims x̂_e=1000, edge claims x̂_e=1000: x = 1000.
        assert_eq!(out.charge, 1000);
    }

    #[test]
    fn rational_edge_vs_honest_operator_is_bounded() {
        let mut e = OptimalStrategy;
        let mut o = HonestStrategy;
        let out = run(0.5, 1000, 800, &mut e, &mut o).unwrap();
        // Edge claims x̂_o=800, operator claims x̂_o=800: x = 800.
        assert_eq!(out.charge, 800);
        assert!(out.charge >= 800 && out.charge <= 1000);
    }

    #[test]
    fn random_selfish_converges_within_bounds() {
        for seed in 0..50 {
            let mut e = RandomSelfishStrategy::new(SimRng::new(seed));
            let mut o = RandomSelfishStrategy::new(SimRng::new(seed + 1000));
            let out = run(0.5, 100_000, 80_000, &mut e, &mut o).unwrap();
            assert!(
                out.charge >= 80_000 && out.charge <= 100_000,
                "seed {seed}: charge {} out of [80000,100000]",
                out.charge
            );
            assert!(out.rounds >= 1);
        }
    }

    #[test]
    fn random_selfish_needs_more_rounds_than_optimal() {
        // Aggregate over seeds: the random strategy's mean round count
        // must exceed 1 (the optimal strategy's constant).
        let mut total = 0u32;
        let n = 100;
        for seed in 0..n {
            let mut e = RandomSelfishStrategy::new(SimRng::new(seed));
            let mut o = RandomSelfishStrategy::new(SimRng::new(seed + 5000));
            total += run(0.5, 1_000_000, 900_000, &mut e, &mut o).unwrap().rounds;
        }
        let mean = total as f64 / n as f64;
        assert!(mean > 1.5, "mean rounds {mean}");
        assert!(mean < 10.0, "mean rounds {mean}");
    }

    #[test]
    fn zero_usage_negotiates_zero() {
        let mut e = OptimalStrategy;
        let mut o = OptimalStrategy;
        let out = run(0.5, 0, 0, &mut e, &mut o).unwrap();
        assert_eq!(out.charge, 0);
    }

    #[test]
    fn no_loss_case_all_strategies_agree() {
        // sent == received: x̂ = that value for every c and strategy pair.
        for c in [0.0, 0.5, 1.0] {
            let mut e = OptimalStrategy;
            let mut o = HonestStrategy;
            let out = run(c, 5000, 5000, &mut e, &mut o).unwrap();
            assert_eq!(out.charge, 5000, "c={c}");
        }
    }

    #[test]
    fn c_extremes_price_to_received_or_sent() {
        let mut e = OptimalStrategy;
        let mut o = OptimalStrategy;
        let out0 = run(0.0, 1000, 800, &mut e, &mut o).unwrap();
        assert_eq!(out0.charge, 800);
        let out1 = run(1.0, 1000, 800, &mut e, &mut o).unwrap();
        assert_eq!(out1.charge, 1000);
    }

    #[test]
    fn transcript_records_every_round() {
        let mut e = RandomSelfishStrategy::new(SimRng::new(42));
        let mut o = RandomSelfishStrategy::new(SimRng::new(43));
        let out = run(0.5, 1_000_000, 700_000, &mut e, &mut o).unwrap();
        assert_eq!(out.transcript.len() as u32, out.rounds);
        let last = out.transcript.last().unwrap();
        assert!(last.edge_accepted && last.operator_accepted);
        for (i, r) in out.transcript.iter().enumerate() {
            assert_eq!(r.round as usize, i + 1);
        }
    }

    #[test]
    fn bounds_tighten_monotonically() {
        let mut e = RandomSelfishStrategy::new(SimRng::new(7));
        let mut o = RandomSelfishStrategy::new(SimRng::new(8));
        let out = run(0.5, 2_000_000, 1_000_000, &mut e, &mut o).unwrap();
        for w in out.transcript.windows(2) {
            assert!(w[1].bounds.lo >= w[0].bounds.lo);
            assert!(w[1].bounds.hi <= w[0].bounds.hi);
        }
    }

    #[test]
    fn bounds_helpers() {
        let b = Bounds::unbounded();
        assert!(b.admits(0) && b.admits(u64::MAX));
        let t = b.tighten(500, 300);
        assert_eq!(t, Bounds { lo: 300, hi: 500 });
        assert_eq!(t.clamp(100), 300);
        assert_eq!(t.clamp(1000), 500);
        assert_eq!(t.clamp(400), 400);
    }
}
