//! Data-plan and charging-model types (Table 1 of the paper).
//!
//! The plan fixes the charging cycle `T = (T_start, T_end)` and the lost-
//! data weight `c ∈ [0, 1]`. Given the *claimed* usage pair `(x_e, x_o)`,
//! the negotiated charging volume is
//!
//! ```text
//! x = x_o + c·(x_e − x_o)   if x_o ≤ x_e
//! x = x_e + c·(x_o − x_e)   otherwise        (Algorithm 1, line 8)
//! ```
//!
//! With honest reports `(x̂_e, x̂_o)` this is the plan-intended charge
//! `x̂ = x̂_o + c·(x̂_e − x̂_o)` of Eq. (1).

use serde::{Deserialize, Serialize};

/// The lost-data charging weight `c`, constrained to `[0, 1]`.
///
/// `c = 0` charges only received data; `c = 1` charges all sent data.
/// Internally a rational `numer/denom` so charging arithmetic is exact in
/// integers (no float drift in billing).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct LossWeight {
    numer: u32,
    denom: u32,
}

impl LossWeight {
    /// Builds a weight `numer/denom`; panics unless `0 ≤ numer ≤ denom`
    /// and `denom > 0`.
    pub fn new(numer: u32, denom: u32) -> Self {
        assert!(denom > 0, "denominator must be positive");
        assert!(numer <= denom, "loss weight must be <= 1");
        // Canonical (reduced) form so equal weights compare equal
        // regardless of how they were written (1/2 == 5000/10000).
        if numer == 0 {
            return LossWeight { numer: 0, denom: 1 };
        }
        let g = gcd(numer, denom);
        LossWeight {
            numer: numer / g,
            denom: denom / g,
        }
    }

    /// `c = 0`: charge only received data.
    pub const ZERO: LossWeight = LossWeight { numer: 0, denom: 1 };
    /// `c = 1`: charge all sent data.
    pub const ONE: LossWeight = LossWeight { numer: 1, denom: 1 };

    /// The paper's default evaluation setting, `c = 0.5`.
    pub fn half() -> Self {
        LossWeight::new(1, 2)
    }

    /// Builds from a float in `[0, 1]` with 1/10000 resolution.
    pub fn from_f64(c: f64) -> Self {
        assert!((0.0..=1.0).contains(&c), "loss weight must be in [0,1]");
        LossWeight::new((c * 10_000.0).round() as u32, 10_000)
    }

    /// The weight as a float.
    pub fn as_f64(&self) -> f64 {
        self.numer as f64 / self.denom as f64
    }

    /// Exact `c·v` with round-half-up in integer arithmetic.
    pub fn scale(&self, v: u64) -> u64 {
        ((v as u128 * self.numer as u128 + (self.denom / 2) as u128) / self.denom as u128) as u64
    }

    /// Exact `⌊c·v⌋` (round down). Settlement splits use the floor form
    /// so the *remainder* side of a split can be assigned exactly
    /// (`v − scale_floor(v)`), making three-party conservation hold by
    /// construction instead of by rounding luck.
    pub fn scale_floor(&self, v: u64) -> u64 {
        ((v as u128 * self.numer as u128) / self.denom as u128) as u64
    }
}

fn gcd(mut a: u32, mut b: u32) -> u32 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// A charging cycle `T = (T_start, T_end)` in seconds of simulation time.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize, Hash)]
pub struct ChargingCycle {
    /// Cycle start (inclusive), seconds.
    pub start_secs: u64,
    /// Cycle end (exclusive), seconds.
    pub end_secs: u64,
}

impl ChargingCycle {
    /// Builds a cycle; panics unless `end > start`.
    pub fn new(start_secs: u64, end_secs: u64) -> Self {
        assert!(end_secs > start_secs, "cycle must have positive length");
        ChargingCycle {
            start_secs,
            end_secs,
        }
    }

    /// Cycle length in seconds.
    pub fn duration_secs(&self) -> u64 {
        self.end_secs - self.start_secs
    }

    /// The paper's evaluation cycle: one hour starting at t=0.
    pub fn one_hour() -> Self {
        ChargingCycle::new(0, 3600)
    }
}

/// The agreed data plan shared by the operator and the edge app vendor.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DataPlan {
    /// Lost-data charging weight `c`.
    pub loss_weight: LossWeight,
    /// Charging cycle `T`.
    pub cycle: ChargingCycle,
}

impl DataPlan {
    /// Plan with the paper's defaults (`c = 0.5`, 1-hour cycle).
    pub fn paper_default() -> Self {
        DataPlan {
            loss_weight: LossWeight::half(),
            cycle: ChargingCycle::one_hour(),
        }
    }
}

/// A pair of usage claims: edge-sent (`x_e`) and operator/receiver
/// (`x_o`), in bytes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct UsagePair {
    /// The edge app vendor's claim (data its sender transmitted).
    pub edge: u64,
    /// The cellular operator's claim (data the receiver received).
    pub operator: u64,
}

/// Computes the negotiated charging volume of Algorithm 1 line 8.
///
/// Symmetric in the claims: whichever is smaller plays the "received"
/// role. (The paper writes the second branch for `x_o > x_e` — a claim
/// pattern that signals someone is cheating but must still price out.)
pub fn charge_for(claims: UsagePair, c: LossWeight) -> u64 {
    let lo = claims.edge.min(claims.operator);
    let hi = claims.edge.max(claims.operator);
    lo + c.scale(hi - lo)
}

/// The plan-intended ("ground truth") charge `x̂` of Eq. (1), from the
/// true usage pair.
pub fn intended_charge(truth: UsagePair, c: LossWeight) -> u64 {
    charge_for(truth, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_weight_bounds() {
        assert_eq!(LossWeight::ZERO.as_f64(), 0.0);
        assert_eq!(LossWeight::ONE.as_f64(), 1.0);
        assert_eq!(LossWeight::half().as_f64(), 0.5);
        assert!((LossWeight::from_f64(0.25).as_f64() - 0.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn weight_above_one_rejected() {
        LossWeight::new(3, 2);
    }

    #[test]
    #[should_panic]
    fn float_weight_above_one_rejected() {
        LossWeight::from_f64(1.01);
    }

    #[test]
    fn scale_is_exact_at_extremes() {
        assert_eq!(LossWeight::ZERO.scale(1_000_000), 0);
        assert_eq!(LossWeight::ONE.scale(1_000_000), 1_000_000);
        assert_eq!(LossWeight::half().scale(1000), 500);
        assert_eq!(LossWeight::half().scale(1001), 501); // round half up
    }

    #[test]
    fn scale_floor_never_exceeds_scale_and_splits_exactly() {
        let c = LossWeight::new(1, 3);
        for v in [0u64, 1, 2, 3, 999, 1000, u64::MAX] {
            let f = c.scale_floor(v);
            assert!(f <= c.scale(v));
            // The remainder side of a floor split reconstructs v exactly.
            assert_eq!(f + (v - f), v);
        }
        assert_eq!(c.scale_floor(1000), 333);
        assert_eq!(LossWeight::half().scale_floor(1001), 500); // floor, not half-up
    }

    #[test]
    fn scale_handles_large_volumes() {
        // 1 TB at c=0.75 must not overflow.
        let c = LossWeight::new(3, 4);
        assert_eq!(c.scale(1_000_000_000_000), 750_000_000_000);
    }

    #[test]
    fn charge_formula_normal_branch() {
        // x_o=800 received, x_e=1000 sent, c=0.5 -> 800 + 0.5*200 = 900.
        let x = charge_for(
            UsagePair {
                edge: 1000,
                operator: 800,
            },
            LossWeight::half(),
        );
        assert_eq!(x, 900);
    }

    #[test]
    fn charge_formula_inverted_branch() {
        // Operator claims more than the edge sent (x_o > x_e): line 8's
        // second branch: x_e + c*(x_o - x_e).
        let x = charge_for(
            UsagePair {
                edge: 800,
                operator: 1000,
            },
            LossWeight::half(),
        );
        assert_eq!(x, 900);
    }

    #[test]
    fn charge_bounded_by_claims() {
        for c in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let w = LossWeight::from_f64(c);
            let x = charge_for(
                UsagePair {
                    edge: 5000,
                    operator: 3000,
                },
                w,
            );
            assert!((3000..=5000).contains(&x), "c={c}, x={x}");
        }
    }

    #[test]
    fn equal_claims_charge_exactly() {
        let x = charge_for(
            UsagePair {
                edge: 4242,
                operator: 4242,
            },
            LossWeight::half(),
        );
        assert_eq!(x, 4242);
    }

    #[test]
    fn cycle_validations() {
        let t = ChargingCycle::one_hour();
        assert_eq!(t.duration_secs(), 3600);
    }

    #[test]
    #[should_panic]
    fn empty_cycle_rejected() {
        ChargingCycle::new(5, 5);
    }
}
