//! Network ingress for the PoC verifier service (§5.3 deployed).
//!
//! The paper positions public verification as something a third party —
//! an MVNO, a regulator, an FCC-style auditor — runs against operator
//! and vendor claims. [`VerifierService`] shards and batch-pipelines
//! that verification but is only callable in-process; this module puts
//! it behind a TCP boundary with explicit framing, backpressure, and
//! failure semantics:
//!
//! * [`codec`] — payload grammars for every [`FrameKind`]; the byte-
//!   exact conformance surface pinned by `tests/wire_conformance.rs`,
//! * [`IngressServer`] — a non-blocking poll loop multiplexing many
//!   client connections onto one service, pausing reads per connection
//!   when its in-flight window (or the service's global outstanding
//!   cap) is exceeded,
//! * [`RemoteVerifier`] — a blocking client mirroring the in-process
//!   API: `register` / `submit` / `submit_batch` / `collect_results`
//!   with the same typed [`ServiceError`] / [`VerifyError`] surface.
//!
//! ## Session shape
//!
//! ```text
//! client                                server
//!   | -- HELLO{magic,version,window} -->  |
//!   | <-- HELLO_ACK{version,window,max} --|
//!   | -- REGISTER{req,...} ------------>  |
//!   | <-- REGISTERED{req,rel} -----------|
//!   | -- SUBMIT / SUBMIT_BATCH -------->  |
//!   | <-- VERDICT (streamed, per rel in  |
//!   |      submission order) ------------|
//!   | -- GOODBYE ---------------------->  |
//!   | <-- GOODBYE_ACK -------------------|
//! ```
//!
//! Errors the in-process API returns as values travel as ERROR frames
//! and are mapped back to the same types client-side. Verdict payloads
//! round-trip the full [`VerifyError`] structure (including
//! `ChargeMismatch` operands) so a tampered PoC rejected over TCP is
//! indistinguishable from one rejected in-process.
//!
//! No wall-clock time is read anywhere here (tlc-lint's determinism
//! rule): the poll loop paces itself with a fixed `thread::sleep` when
//! idle, and all ordering comes from the sockets and channels.

use crate::messages::PocMsg;
use crate::plan::DataPlan;
use crate::verify::service::{
    RelationshipId, ServiceConfig, ServiceError, ServiceReport, SubmissionResult, VerifierService,
};
use crate::verify::DEFAULT_REPLAY_CAPACITY;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tlc_net::ingress::{ConnDriver, DriverError};
use tlc_net::wire::{Frame, FrameDecoder, FrameKind, WireError, DEFAULT_MAX_PAYLOAD};

pub mod codec;

use codec::{
    Fault, Hello, HelloAck, Register, Registered, StatsSnapshot, Submit, SubmitBatch, VerdictMsg,
    MAGIC, PROTOCOL_VERSION,
};

/// Failures surfaced by the remote client (and, internally, the
/// server). The `Service` variant carries the exact in-process error
/// type so callers can match on one surface regardless of transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteError {
    /// The far side reported a service-level failure; identical to what
    /// the in-process API would have returned.
    Service(ServiceError),
    /// The byte stream violated the framing layer.
    Wire(WireError),
    /// Transport-level I/O failure.
    Io(io::ErrorKind),
    /// The peer broke the session protocol (bad payload, wrong frame
    /// for the current phase, bad magic, …).
    Protocol(&'static str),
    /// The server speaks a different protocol version.
    BadVersion {
        /// Version the server offered.
        server: u16,
    },
    /// The server shut down while the session was open.
    ServerShutdown,
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::Service(e) => write!(f, "service error: {e}"),
            RemoteError::Wire(e) => write!(f, "framing error: {e}"),
            RemoteError::Io(k) => write!(f, "i/o error: {k:?}"),
            RemoteError::Protocol(s) => write!(f, "protocol violation: {s}"),
            RemoteError::BadVersion { server } => {
                write!(
                    f,
                    "server speaks protocol version {server}, not {PROTOCOL_VERSION}"
                )
            }
            RemoteError::ServerShutdown => write!(f, "server shut down"),
        }
    }
}

impl std::error::Error for RemoteError {}

impl From<WireError> for RemoteError {
    fn from(e: WireError) -> Self {
        RemoteError::Wire(e)
    }
}

impl From<ServiceError> for RemoteError {
    fn from(e: ServiceError) -> Self {
        RemoteError::Service(e)
    }
}

/// Tuning knobs for [`IngressServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngressConfig {
    /// Per-connection in-flight submission window granted in HELLO_ACK;
    /// reads pause once a connection has this many verdicts pending.
    pub window: u32,
    /// Frame payload cap enforced by the decoder before allocation.
    pub max_payload: u32,
    /// Global cap: when the service's outstanding count exceeds this,
    /// every connection's reads pause until verdicts drain.
    pub service_inflight_cap: usize,
    /// Maximum proofs accepted in one SUBMIT_BATCH frame.
    pub max_batch: u32,
    /// Sleep between poll iterations when no I/O happened.
    pub poll_sleep: Duration,
    /// Frame budget per connection per poll iteration.
    pub frames_per_poll: usize,
}

impl Default for IngressConfig {
    fn default() -> Self {
        IngressConfig {
            window: 64,
            max_payload: DEFAULT_MAX_PAYLOAD,
            service_inflight_cap: 4096,
            max_batch: 1024,
            poll_sleep: Duration::from_micros(200),
            frames_per_poll: 32,
        }
    }
}

/// Ingress-side counters, reported at shutdown and over STATS frames.
pub type IngressStats = StatsSnapshot;

/// Aggregate report returned by [`IngressServer::run`]: the wrapped
/// service's report plus ingress counters.
#[derive(Debug, Clone)]
pub struct IngressReport {
    /// The verification pool's own shutdown report.
    pub service: ServiceReport,
    /// Ingress counters accumulated over the server's lifetime.
    pub ingress: IngressStats,
}

/// Connection phases of the ingress state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Nothing accepted yet but HELLO.
    AwaitHello,
    /// Session established; submissions flow.
    Ready,
    /// Marked for removal at the end of the iteration.
    Closed,
}

struct Conn {
    id: u64,
    driver: ConnDriver<TcpStream>,
    phase: Phase,
    /// Submissions relayed to the service, verdicts not yet returned.
    in_flight: u32,
    /// Window granted to this connection in HELLO_ACK.
    window: u32,
    /// Peer sent GOODBYE: drain in-flight verdicts, ack, close.
    goodbye: bool,
}

struct Route {
    conn_id: u64,
    client_tag: u64,
}

/// TCP front-end for a [`VerifierService`].
///
/// Single-threaded: [`run`](Self::run) owns the accept loop, every
/// connection, and the service, so no locking is needed anywhere. Use
/// [`spawn`](Self::spawn) to run it on a background thread with a stop
/// handle.
pub struct IngressServer {
    listener: TcpListener,
    service: VerifierService,
    config: IngressConfig,
    conns: Vec<Conn>,
    /// service tag -> originating connection + the tag it used.
    routes: HashMap<u64, Route>,
    next_conn: u64,
    stats: IngressStats,
}

impl IngressServer {
    /// Binds a listener and wraps a freshly spawned service.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service_config: ServiceConfig,
        config: IngressConfig,
    ) -> io::Result<IngressServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(IngressServer {
            listener,
            service: VerifierService::with_config(service_config),
            config,
            conns: Vec::new(),
            routes: HashMap::new(),
            next_conn: 0,
            stats: IngressStats::default(),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the poll loop until `stop` is set, then tears the service
    /// down and returns the combined report. Open sessions receive an
    /// ERROR/Shutdown frame (best-effort) before their sockets drop.
    pub fn run(mut self, stop: &AtomicBool) -> IngressReport {
        while !stop.load(Ordering::Relaxed) {
            let mut activity = false;
            activity |= self.accept_new();
            activity |= self.poll_conns();
            activity |= self.pump_verdicts();
            self.apply_backpressure();
            activity |= self.flush_and_reap();
            if !activity {
                std::thread::sleep(self.config.poll_sleep);
            }
        }
        // Best-effort shutdown notice to every open session.
        let bye = Fault::Shutdown.to_frame();
        for conn in &mut self.conns {
            if conn.phase == Phase::Ready {
                let _ = conn.driver.queue(&bye);
                let _ = conn.driver.flush();
            }
        }
        IngressReport {
            service: self.service.finish(),
            ingress: self.stats,
        }
    }

    /// Spawns [`run`](Self::run) on a background thread.
    pub fn spawn(self) -> io::Result<IngressHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("tlc-ingress".into())
            .spawn(move || self.run(&flag))?;
        Ok(IngressHandle { addr, stop, thread })
    }

    /// Accepts every connection currently pending. Returns whether any
    /// arrived.
    fn accept_new(&mut self) -> bool {
        let mut any = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // Non-blocking and low-latency; failures here just
                    // leave the socket with default options.
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    let id = self.next_conn;
                    self.next_conn += 1;
                    self.conns.push(Conn {
                        id,
                        driver: ConnDriver::new(stream, self.config.max_payload),
                        phase: Phase::AwaitHello,
                        in_flight: 0,
                        window: self.config.window,
                        goodbye: false,
                    });
                    self.stats.connections += 1;
                    any = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        any
    }

    /// Polls every connection for inbound frames and handles them.
    fn poll_conns(&mut self) -> bool {
        let mut any = false;
        let mut frames = Vec::new();
        for i in 0..self.conns.len() {
            if self.conns[i].phase == Phase::Closed {
                continue;
            }
            frames.clear();
            let budget = self.config.frames_per_poll;
            if let Err(e) = self.conns[i].driver.poll_frames(budget, &mut frames) {
                // Framing violation or transport failure: tell the peer
                // if we still can, then close.
                if let DriverError::Wire(_) = e {
                    self.protocol_fault(i, "framing violation");
                } else {
                    self.conns[i].phase = Phase::Closed;
                }
                continue;
            }
            if !frames.is_empty() {
                any = true;
            }
            for frame in frames.drain(..) {
                if self.conns[i].phase == Phase::Closed {
                    break;
                }
                self.handle_frame(i, frame);
            }
            // EOF with nothing left to send: reap.
            if self.conns[i].driver.at_eof() && self.conns[i].driver.outbox_bytes() == 0 {
                self.conns[i].phase = Phase::Closed;
            }
        }
        any
    }

    /// Queues an ERROR/Protocol frame and closes the connection.
    fn protocol_fault(&mut self, i: usize, detail: &'static str) {
        self.stats.protocol_errors += 1;
        let frame = Fault::Protocol(detail).to_frame();
        let _ = self.conns[i].driver.queue(&frame);
        let _ = self.conns[i].driver.flush();
        self.conns[i].phase = Phase::Closed;
    }

    /// Queues a frame on connection `i`, closing it if the outbox
    /// rejects the frame (payload over the codec's length range —
    /// impossible for protocol-layer frames, but stay total).
    fn send(&mut self, i: usize, frame: &Frame) {
        if self.conns[i].driver.queue(frame).is_err() {
            self.conns[i].phase = Phase::Closed;
        }
    }

    fn handle_frame(&mut self, i: usize, frame: Frame) {
        match (self.conns[i].phase, frame.kind) {
            (Phase::AwaitHello, FrameKind::Hello) => self.handle_hello(i, &frame.payload),
            (Phase::AwaitHello, _) => self.protocol_fault(i, "expected HELLO"),
            (Phase::Ready, FrameKind::Register) => self.handle_register(i, &frame.payload),
            (Phase::Ready, FrameKind::Submit) => self.handle_submit(i, &frame.payload),
            (Phase::Ready, FrameKind::SubmitBatch) => self.handle_submit_batch(i, &frame.payload),
            (Phase::Ready, FrameKind::StatsReq) => {
                let snapshot = self.stats_snapshot();
                self.send(i, &snapshot.to_frame(FrameKind::Stats));
            }
            (Phase::Ready, FrameKind::Goodbye) => {
                self.conns[i].goodbye = true;
                self.maybe_finish_goodbye(i);
            }
            (Phase::Ready, _) => self.protocol_fault(i, "unexpected frame kind"),
            (Phase::Closed, _) => {}
        }
    }

    fn handle_hello(&mut self, i: usize, payload: &[u8]) {
        let hello = match Hello::decode(payload) {
            Ok(h) => h,
            Err(detail) => return self.protocol_fault(i, detail),
        };
        if hello.magic != MAGIC {
            return self.protocol_fault(i, "bad magic");
        }
        if hello.version != PROTOCOL_VERSION {
            self.stats.protocol_errors += 1;
            let frame = Fault::BadVersion {
                server: PROTOCOL_VERSION,
            }
            .to_frame();
            let _ = self.conns[i].driver.queue(&frame);
            let _ = self.conns[i].driver.flush();
            self.conns[i].phase = Phase::Closed;
            return;
        }
        // Window 0 means "server's choice"; otherwise grant at most the
        // configured window.
        let granted = if hello.window == 0 {
            self.config.window
        } else {
            hello.window.min(self.config.window)
        };
        self.conns[i].window = granted.max(1);
        self.conns[i].phase = Phase::Ready;
        let ack = HelloAck {
            version: PROTOCOL_VERSION,
            window: self.conns[i].window,
            max_payload: self.config.max_payload,
        };
        self.send(i, &ack.to_frame());
    }

    fn handle_register(&mut self, i: usize, payload: &[u8]) {
        let reg = match Register::decode(payload) {
            Ok(r) => r,
            Err(detail) => return self.protocol_fault(i, detail),
        };
        match self.service.register_with_capacity(
            reg.plan,
            reg.edge_key,
            reg.operator_key,
            reg.capacity as usize,
        ) {
            Ok(rel) => {
                self.stats.registers += 1;
                let ack = Registered {
                    req: reg.req,
                    rel: rel.raw(),
                };
                self.send(i, &ack.to_frame());
            }
            Err(e) => self.service_fault(i, e),
        }
    }

    fn handle_submit(&mut self, i: usize, payload: &[u8]) {
        let sub = match Submit::decode(payload) {
            Ok(s) => s,
            Err(detail) => return self.protocol_fault(i, detail),
        };
        self.relay_submission(i, sub.rel, sub.tag, &sub.poc);
    }

    fn handle_submit_batch(&mut self, i: usize, payload: &[u8]) {
        let batch = match SubmitBatch::decode(payload) {
            Ok(b) => b,
            Err(detail) => return self.protocol_fault(i, detail),
        };
        if batch.pocs.len() as u64 > self.config.max_batch as u64 {
            return self.protocol_fault(i, "batch exceeds server limit");
        }
        for (k, poc) in batch.pocs.iter().enumerate() {
            if self.conns[i].phase == Phase::Closed {
                break;
            }
            self.relay_submission(i, batch.rel, batch.first_tag.wrapping_add(k as u64), poc);
        }
    }

    /// Decodes one PoC and hands it to the service, recording the route
    /// for the verdict on the way back.
    fn relay_submission(&mut self, i: usize, rel_raw: u64, client_tag: u64, poc_bytes: &[u8]) {
        let poc = match PocMsg::decode(poc_bytes) {
            Ok(p) => p,
            // An undecodable PoC is a client bug, not a verdict: the
            // in-process API takes `PocMsg` values, so decode failures
            // cannot reach `submit` there either.
            Err(_) => return self.protocol_fault(i, "undecodable PoC payload"),
        };
        let rel = RelationshipId::from_raw(rel_raw);
        match self.service.submit(rel, poc) {
            Ok(service_tag) => {
                self.stats.submissions += 1;
                self.conns[i].in_flight += 1;
                self.routes.insert(
                    service_tag,
                    Route {
                        conn_id: self.conns[i].id,
                        client_tag,
                    },
                );
            }
            Err(e) => self.service_fault(i, e),
        }
    }

    /// Relays a [`ServiceError`] as an ERROR frame. Unknown-relationship
    /// and shard-down errors keep the session open (other relationships
    /// and shards still work), mirroring the in-process API where these
    /// are recoverable `Err` returns.
    fn service_fault(&mut self, i: usize, e: ServiceError) {
        let fault = match e {
            ServiceError::ShardDown { shard } => Fault::ShardDown {
                shard: shard as u32,
            },
            ServiceError::ResultsClosed { outstanding } => Fault::ResultsClosed {
                outstanding: outstanding as u32,
            },
            ServiceError::UnknownRelationship(rel) => Fault::UnknownRelationship(rel.raw()),
        };
        self.send(i, &fault.to_frame());
    }

    /// Streams ready verdicts back to their connections.
    fn pump_verdicts(&mut self) -> bool {
        let results = self.service.try_collect_results();
        let any = !results.is_empty();
        for r in results {
            let Some(route) = self.routes.remove(&r.tag) else {
                // A tag the server never issued cannot come back; stay
                // total and count it rather than panic.
                self.stats.orphaned_verdicts += 1;
                continue;
            };
            match r.result {
                Ok(_) => self.stats.accepted += 1,
                Err(_) => self.stats.rejected += 1,
            }
            let Some(i) = self.conns.iter().position(|c| c.id == route.conn_id) else {
                // Client disconnected mid-batch: the verdict is
                // discarded deterministically and counted.
                self.stats.orphaned_verdicts += 1;
                continue;
            };
            self.conns[i].in_flight = self.conns[i].in_flight.saturating_sub(1);
            if self.conns[i].phase == Phase::Closed {
                self.stats.orphaned_verdicts += 1;
                continue;
            }
            let msg = VerdictMsg {
                rel: r.relationship.raw(),
                tag: route.client_tag,
                shard: r.shard as u32,
                result: r.result,
            };
            self.stats.verdicts += 1;
            self.send(i, &msg.to_frame());
            self.maybe_finish_goodbye(i);
        }
        any
    }

    /// After GOODBYE, once every in-flight verdict has been streamed,
    /// acknowledge and close.
    fn maybe_finish_goodbye(&mut self, i: usize) {
        if self.conns[i].goodbye && self.conns[i].in_flight == 0 {
            self.send(i, &Frame::new(FrameKind::GoodbyeAck, Vec::new()));
            self.conns[i].phase = Phase::Closed;
        }
    }

    /// Pauses reads on connections over their window (or globally when
    /// the service backlog is too deep); resumes the rest.
    fn apply_backpressure(&mut self) {
        let global = self.service.outstanding() >= self.config.service_inflight_cap;
        for conn in &mut self.conns {
            let over_window = conn.in_flight >= conn.window;
            if global || over_window {
                if !conn.paused() {
                    self.stats.pauses += 1;
                }
                conn.driver.pause();
            } else {
                conn.driver.resume();
            }
        }
    }

    /// Flushes outboxes and drops closed connections. A `Closed`
    /// connection gets one last best-effort flush so final frames
    /// (GOODBYE_ACK, ERROR) usually reach the peer.
    fn flush_and_reap(&mut self) -> bool {
        let mut any = false;
        let mut closed = 0u64;
        for conn in &mut self.conns {
            let before = conn.driver.outbox_bytes();
            if conn.driver.flush().is_err() {
                conn.phase = Phase::Closed;
            }
            if conn.driver.outbox_bytes() != before {
                any = true;
            }
        }
        self.conns.retain(|c| {
            // Keep a closed conn alive while its farewell bytes are
            // still draining and the socket is healthy.
            let done =
                c.phase == Phase::Closed && (c.driver.outbox_bytes() == 0 || c.driver.at_eof());
            if done {
                closed += 1;
            }
            !done
        });
        self.stats.connections_closed += closed;
        any
    }

    fn stats_snapshot(&self) -> IngressStats {
        let mut s = self.stats;
        s.open_connections = self.conns.len() as u64;
        s.service_outstanding = self.service.outstanding() as u64;
        s
    }
}

impl Conn {
    fn paused(&self) -> bool {
        self.driver.paused()
    }
}

/// Handle to a server spawned with [`IngressServer::spawn`].
pub struct IngressHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<IngressReport>,
}

impl IngressHandle {
    /// Address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the poll loop to stop and joins it, returning the
    /// combined report. A worker panic inside the loop yields a report
    /// with an empty service section rather than propagating.
    pub fn shutdown(self) -> Option<IngressReport> {
        self.stop.store(true, Ordering::Relaxed);
        self.thread.join().ok()
    }
}

/// Read chunk for the blocking client.
const CLIENT_READ_CHUNK: usize = 8 * 1024;

/// Blocking TCP client mirroring the in-process [`VerifierService`]
/// API. One instance is one session; it is not `Sync` — run one per
/// thread (the soak test does exactly that).
pub struct RemoteVerifier {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Window granted by the server; `submit` drains verdicts once this
    /// many submissions are outstanding.
    window: u32,
    /// Max frame payload the server accepts; batches are chunked to it.
    max_payload: u32,
    outstanding: usize,
    next_tag: u64,
    /// Verdicts read while waiting for some other frame.
    ready: VecDeque<SubmissionResult>,
    /// Relationships the server has confirmed, for the client-side
    /// `UnknownRelationship` mirror of the in-process API.
    rels: std::collections::HashSet<u64>,
    next_req: u32,
}

impl RemoteVerifier {
    /// Connects and performs the HELLO handshake. `window_hint` of 0
    /// accepts the server's default window.
    pub fn connect(
        addr: impl ToSocketAddrs,
        window_hint: u32,
    ) -> Result<RemoteVerifier, RemoteError> {
        let stream = TcpStream::connect(addr).map_err(|e| RemoteError::Io(e.kind()))?;
        let _ = stream.set_nodelay(true);
        let mut client = RemoteVerifier {
            stream,
            decoder: FrameDecoder::new(DEFAULT_MAX_PAYLOAD),
            window: 1,
            max_payload: DEFAULT_MAX_PAYLOAD,
            outstanding: 0,
            next_tag: 0,
            ready: VecDeque::new(),
            rels: std::collections::HashSet::new(),
            next_req: 0,
        };
        let hello = Hello {
            magic: MAGIC,
            version: PROTOCOL_VERSION,
            window: window_hint,
        };
        client.send_frame(&hello.to_frame())?;
        let frame = client.read_non_verdict()?;
        if frame.kind != FrameKind::HelloAck {
            return Err(RemoteError::Protocol("expected HELLO_ACK"));
        }
        let ack = HelloAck::decode(&frame.payload).map_err(RemoteError::Protocol)?;
        if ack.version != PROTOCOL_VERSION {
            return Err(RemoteError::BadVersion {
                server: ack.version,
            });
        }
        client.window = ack.window.max(1);
        client.max_payload = ack.max_payload;
        Ok(client)
    }

    /// Registers a relationship with the default replay window;
    /// idempotent for the same `(plan, keys)` triple, like the
    /// in-process API.
    pub fn register(
        &mut self,
        plan: DataPlan,
        edge_key: tlc_crypto::PublicKey,
        operator_key: tlc_crypto::PublicKey,
    ) -> Result<RelationshipId, RemoteError> {
        self.register_with_capacity(plan, edge_key, operator_key, DEFAULT_REPLAY_CAPACITY)
    }

    /// [`register`](Self::register) with an explicit replay-cache bound.
    pub fn register_with_capacity(
        &mut self,
        plan: DataPlan,
        edge_key: tlc_crypto::PublicKey,
        operator_key: tlc_crypto::PublicKey,
        capacity: usize,
    ) -> Result<RelationshipId, RemoteError> {
        let req = self.next_req;
        self.next_req = self.next_req.wrapping_add(1);
        let msg = Register {
            req,
            capacity: capacity as u64,
            plan,
            edge_key,
            operator_key,
        };
        self.send_frame(&msg.to_frame())?;
        let frame = self.read_non_verdict()?;
        if frame.kind != FrameKind::Registered {
            return Err(RemoteError::Protocol("expected REGISTERED"));
        }
        let ack = Registered::decode(&frame.payload).map_err(RemoteError::Protocol)?;
        if ack.req != req {
            return Err(RemoteError::Protocol("REGISTERED for a different request"));
        }
        self.rels.insert(ack.rel);
        Ok(RelationshipId::from_raw(ack.rel))
    }

    /// Submits one proof; returns its tag, exactly like the in-process
    /// `submit`. Blocks draining verdicts when the window is full.
    pub fn submit(&mut self, rel: RelationshipId, poc: &PocMsg) -> Result<u64, RemoteError> {
        if !self.rels.contains(&rel.raw()) {
            return Err(RemoteError::Service(ServiceError::UnknownRelationship(rel)));
        }
        while self.outstanding >= self.window as usize {
            self.pull_verdict()?;
        }
        let tag = self.next_tag;
        let msg = Submit {
            rel: rel.raw(),
            tag,
            poc: poc.encode(),
        };
        self.send_frame(&msg.to_frame())?;
        self.next_tag += 1;
        self.outstanding += 1;
        Ok(tag)
    }

    /// Submits a batch under one relationship; returns `(first_tag,
    /// count)`. Chunked to respect the server's frame payload cap.
    pub fn submit_batch<'a>(
        &mut self,
        rel: RelationshipId,
        pocs: impl IntoIterator<Item = &'a PocMsg>,
    ) -> Result<(u64, usize), RemoteError> {
        if !self.rels.contains(&rel.raw()) {
            return Err(RemoteError::Service(ServiceError::UnknownRelationship(rel)));
        }
        let first = self.next_tag;
        let mut count = 0usize;
        let mut chunk: Vec<Vec<u8>> = Vec::new();
        let mut chunk_bytes = 0usize;
        // Stay well under the payload cap: the batch header plus
        // per-item length prefixes ride along.
        let budget = (self.max_payload as usize).saturating_sub(1024);
        for poc in pocs {
            let bytes = poc.encode();
            if !chunk.is_empty() && chunk_bytes + bytes.len() + 4 > budget {
                self.send_batch_chunk(rel, &mut chunk, &mut chunk_bytes, &mut count)?;
            }
            chunk_bytes += bytes.len() + 4;
            chunk.push(bytes);
        }
        if !chunk.is_empty() {
            self.send_batch_chunk(rel, &mut chunk, &mut chunk_bytes, &mut count)?;
        }
        Ok((first, count))
    }

    fn send_batch_chunk(
        &mut self,
        rel: RelationshipId,
        chunk: &mut Vec<Vec<u8>>,
        chunk_bytes: &mut usize,
        count: &mut usize,
    ) -> Result<(), RemoteError> {
        while self.outstanding >= self.window as usize {
            self.pull_verdict()?;
        }
        let n = chunk.len();
        let msg = SubmitBatch {
            rel: rel.raw(),
            first_tag: self.next_tag,
            pocs: std::mem::take(chunk),
        };
        self.send_frame(&msg.to_frame())?;
        self.next_tag += n as u64;
        self.outstanding += n;
        *count += n;
        *chunk_bytes = 0;
        Ok(())
    }

    /// Blocks until every submitted proof has a verdict and returns
    /// them (per relationship, in submission order — the service's own
    /// guarantee, preserved by the ordered byte stream).
    ///
    /// If the server goes away first, the same
    /// [`ServiceError::ResultsClosed`] the in-process API raises is
    /// returned, carrying the number of results lost.
    pub fn collect_results(&mut self) -> Result<Vec<SubmissionResult>, RemoteError> {
        let mut out = Vec::with_capacity(self.outstanding + self.ready.len());
        while let Some(r) = self.ready.pop_front() {
            out.push(r);
        }
        while self.outstanding > 0 {
            match self.pull_verdict() {
                Ok(()) => {
                    while let Some(r) = self.ready.pop_front() {
                        out.push(r);
                    }
                }
                Err(RemoteError::Io(io::ErrorKind::UnexpectedEof))
                | Err(RemoteError::ServerShutdown) => {
                    let outstanding = self.outstanding;
                    self.outstanding = 0;
                    return Err(RemoteError::Service(ServiceError::ResultsClosed {
                        outstanding,
                    }));
                }
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// Verdicts received so far without blocking for the rest.
    pub fn take_ready(&mut self) -> Vec<SubmissionResult> {
        self.ready.drain(..).collect()
    }

    /// Submissions awaiting verdicts.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// The in-flight window granted by the server.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// Requests the server's ingress counters.
    pub fn stats(&mut self) -> Result<IngressStats, RemoteError> {
        self.send_frame(&Frame::new(FrameKind::StatsReq, Vec::new()))?;
        let frame = self.read_non_verdict()?;
        if frame.kind != FrameKind::Stats {
            return Err(RemoteError::Protocol("expected STATS"));
        }
        StatsSnapshot::decode(&frame.payload).map_err(RemoteError::Protocol)
    }

    /// Ends the session: the server streams any remaining verdicts
    /// (returned here), acks, and closes. Consumes the client.
    pub fn goodbye(mut self) -> Result<Vec<SubmissionResult>, RemoteError> {
        self.send_frame(&Frame::new(FrameKind::Goodbye, Vec::new()))?;
        let frame = self.read_non_verdict()?;
        if frame.kind != FrameKind::GoodbyeAck {
            return Err(RemoteError::Protocol("expected GOODBYE_ACK"));
        }
        self.outstanding = 0;
        Ok(self.ready.drain(..).collect())
    }

    /// Reads frames until one that is not a VERDICT arrives; verdicts
    /// encountered on the way are buffered (and count against
    /// `outstanding`). ERROR frames become typed errors.
    fn read_non_verdict(&mut self) -> Result<Frame, RemoteError> {
        loop {
            let frame = self.read_frame()?;
            match frame.kind {
                FrameKind::Verdict => self.absorb_verdict(&frame.payload)?,
                FrameKind::Error => return Err(self.map_fault(&frame.payload)),
                _ => return Ok(frame),
            }
        }
    }

    /// Reads exactly one VERDICT into the ready buffer (ERRORs mapped).
    fn pull_verdict(&mut self) -> Result<(), RemoteError> {
        let frame = self.read_frame()?;
        match frame.kind {
            FrameKind::Verdict => self.absorb_verdict(&frame.payload),
            FrameKind::Error => Err(self.map_fault(&frame.payload)),
            _ => Err(RemoteError::Protocol("expected VERDICT")),
        }
    }

    fn absorb_verdict(&mut self, payload: &[u8]) -> Result<(), RemoteError> {
        let v = VerdictMsg::decode(payload).map_err(RemoteError::Protocol)?;
        self.outstanding = self.outstanding.saturating_sub(1);
        self.ready.push_back(SubmissionResult {
            relationship: RelationshipId::from_raw(v.rel),
            tag: v.tag,
            shard: v.shard as usize,
            result: v.result,
        });
        Ok(())
    }

    fn map_fault(&self, payload: &[u8]) -> RemoteError {
        match Fault::decode(payload) {
            Ok(Fault::ShardDown { shard }) => RemoteError::Service(ServiceError::ShardDown {
                shard: shard as usize,
            }),
            Ok(Fault::ResultsClosed { outstanding }) => {
                RemoteError::Service(ServiceError::ResultsClosed {
                    outstanding: outstanding as usize,
                })
            }
            Ok(Fault::UnknownRelationship(rel)) => RemoteError::Service(
                ServiceError::UnknownRelationship(RelationshipId::from_raw(rel)),
            ),
            Ok(Fault::BadVersion { server }) => RemoteError::BadVersion { server },
            Ok(Fault::Protocol(detail)) => RemoteError::Protocol(detail),
            Ok(Fault::Shutdown) => RemoteError::ServerShutdown,
            Err(detail) => RemoteError::Protocol(detail),
        }
    }

    fn send_frame(&mut self, frame: &Frame) -> Result<(), RemoteError> {
        let bytes = frame.encode()?;
        self.stream
            .write_all(&bytes)
            .map_err(|e| RemoteError::Io(e.kind()))
    }

    fn read_frame(&mut self) -> Result<Frame, RemoteError> {
        loop {
            if let Some(f) = self.decoder.next_frame() {
                return Ok(f);
            }
            if let Some(e) = self.decoder.poisoned() {
                return Err(RemoteError::Wire(e));
            }
            let mut buf = [0u8; CLIENT_READ_CHUNK];
            match self.stream.read(&mut buf) {
                Ok(0) => return Err(RemoteError::Io(io::ErrorKind::UnexpectedEof)),
                Ok(n) => self.decoder.push(&buf[..n])?,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(RemoteError::Io(e.kind())),
            }
        }
    }
}
