//! Network ingress for the PoC verifier service (§5.3 deployed).
//!
//! The paper positions public verification as something a third party —
//! an MVNO, a regulator, an FCC-style auditor — runs against operator
//! and vendor claims. [`VerifierService`] shards and batch-pipelines
//! that verification but is only callable in-process; this module puts
//! it behind a TCP boundary with explicit framing, backpressure, and
//! failure semantics:
//!
//! * [`codec`] — payload grammars for every [`FrameKind`]; the byte-
//!   exact conformance surface pinned by `tests/wire_conformance.rs`,
//! * [`IngressServer`] — a non-blocking poll loop multiplexing many
//!   client connections onto one service, pausing reads per connection
//!   when its in-flight window (or the service's global outstanding
//!   cap) is exceeded,
//! * [`RemoteVerifier`] — a blocking client mirroring the in-process
//!   API: `register` / `submit` / `submit_batch` / `collect_results`
//!   with the same typed [`ServiceError`] / [`VerifyError`] surface.
//!
//! ## Overload ladder (DESIGN §11)
//!
//! Saturation climbs a [`ShedLevel`] ladder instead of flipping one
//! latch: **Accept** → **DeferReads** (reads pause at
//! `service_inflight_cap`) → **ShedSubmits** (new submits answered
//! with a typed BUSY at `shed_submit_watermark`) → **ShedConnections**
//! (new connections answered BUSY and dropped). Admission inside the
//! ShedSubmits rung is a deficit-round-robin credit budget across
//! registered relationships, so one flooding relationship starves its
//! own lane, not its neighbors. A per-connection misbehavior score
//! (replays, oversize bursts, window abuse) escalates to quarantine
//! and, past a second threshold, a typed goodbye. Every shed is
//! answered — overload is never a silent drop — and the client turns
//! BUSY into seeded-jitter capped exponential backoff, surfacing
//! [`ServiceError::Overloaded`] only when the retry budget is spent.
//!
//! ## Session shape
//!
//! ```text
//! client                                server
//!   | -- HELLO{magic,version,window} -->  |
//!   | <-- HELLO_ACK{version,window,max} --|
//!   | -- REGISTER{req,...} ------------>  |
//!   | <-- REGISTERED{req,rel} -----------|
//!   | -- SUBMIT / SUBMIT_BATCH -------->  |
//!   | <-- VERDICT (streamed, per rel in  |
//!   |      submission order) ------------|
//!   | -- GOODBYE ---------------------->  |
//!   | <-- GOODBYE_ACK -------------------|
//! ```
//!
//! Errors the in-process API returns as values travel as ERROR frames
//! and are mapped back to the same types client-side. Verdict payloads
//! round-trip the full [`VerifyError`] structure (including
//! `ChargeMismatch` operands) so a tampered PoC rejected over TCP is
//! indistinguishable from one rejected in-process.
//!
//! ## Backends (DESIGN §12)
//!
//! Two server loops drive the same protocol core:
//!
//! * [`IngressBackend::Poll`] — the legacy tick loop: walk every
//!   connection per 200 µs iteration. O(conns) per tick, trivially
//!   portable, the conformance reference.
//! * [`IngressBackend::Epoll`] — the readiness event loop
//!   (`tlc_net::readiness`: epoll on Linux, poll(2) fallback):
//!   `SO_REUSEPORT`-sharded acceptor/event threads, each owning its
//!   slice of the connection table and its own verifier service shard,
//!   reading into pooled buffers that the codec decodes zero-copy.
//!
//! Both backends dispatch into one [`IngressCore`], so the shed
//! ladder, DRR lanes, misbehavior scoring, and every protocol handler
//! are byte-identical — which the conformance suites prove by running
//! under `TLC_INGRESS_BACKEND=epoll`.
//!
//! No wall-clock time is read anywhere here (tlc-lint's determinism
//! rule): the poll loop paces itself with a fixed `thread::sleep` when
//! idle, and all ordering comes from the sockets and channels.

use crate::messages::PocMsg;
use crate::plan::DataPlan;
use crate::verify::service::{
    RelationshipId, ServiceConfig, ServiceError, ServiceReport, SubmissionResult, VerifierService,
};
use crate::verify::{VerifyError, DEFAULT_REPLAY_CAPACITY};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tlc_net::bufpool::PoolStats;
use tlc_net::ingress::{ConnDriver, DriverError};
use tlc_net::rng::SimRng;
use tlc_net::wire::{Frame, FrameDecoder, FrameKind, WireError, DEFAULT_MAX_PAYLOAD};

pub mod codec;
mod event_loop;

use codec::{
    BusyMsg, BusyScope, Fault, Hello, HelloAck, Register, Registered, SettleMsg, SettleResult,
    SettleVerdictMsg, StatsSnapshot, Submit, SubmitBatch, SubmitBatchRef, SubmitRef, VerdictMsg,
    MAGIC, PROTOCOL_VERSION,
};

/// Failures surfaced by the remote client (and, internally, the
/// server). The `Service` variant carries the exact in-process error
/// type so callers can match on one surface regardless of transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteError {
    /// The far side reported a service-level failure; identical to what
    /// the in-process API would have returned.
    Service(ServiceError),
    /// The byte stream violated the framing layer.
    Wire(WireError),
    /// Transport-level I/O failure.
    Io(io::ErrorKind),
    /// The peer broke the session protocol (bad payload, wrong frame
    /// for the current phase, bad magic, …).
    Protocol(&'static str),
    /// The server speaks a different protocol version.
    BadVersion {
        /// Version the server offered.
        server: u16,
    },
    /// The server shut down while the session was open.
    ServerShutdown,
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::Service(e) => write!(f, "service error: {e}"),
            RemoteError::Wire(e) => write!(f, "framing error: {e}"),
            RemoteError::Io(k) => write!(f, "i/o error: {k:?}"),
            RemoteError::Protocol(s) => write!(f, "protocol violation: {s}"),
            RemoteError::BadVersion { server } => {
                write!(
                    f,
                    "server speaks protocol version {server}, not {PROTOCOL_VERSION}"
                )
            }
            RemoteError::ServerShutdown => write!(f, "server shut down"),
        }
    }
}

impl std::error::Error for RemoteError {}

impl From<WireError> for RemoteError {
    fn from(e: WireError) -> Self {
        RemoteError::Wire(e)
    }
}

impl From<ServiceError> for RemoteError {
    fn from(e: ServiceError) -> Self {
        RemoteError::Service(e)
    }
}

/// Which server loop drives ingress I/O. Both run the identical
/// protocol core; they differ only in how sockets are discovered to be
/// ready and how many threads share the work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngressBackend {
    /// Legacy tick loop: every connection polled each iteration.
    /// Single-threaded, O(conns) per tick, fully portable — the
    /// conformance reference.
    Poll,
    /// Readiness-driven event loop over `tlc_net::readiness` (epoll on
    /// Linux, poll(2) elsewhere) with `SO_REUSEPORT` acceptor shards
    /// and pooled zero-copy frame buffers. Falls back to [`Poll`]
    /// semantics transparently where no readiness backend exists.
    ///
    /// [`Poll`]: IngressBackend::Poll
    Epoll,
}

impl IngressBackend {
    /// Reads `TLC_INGRESS_BACKEND` (`poll`/`legacy` or
    /// `epoll`/`readiness`); unset or unrecognised means [`Poll`].
    /// This is how the conformance and soak suites are parameterized
    /// over both backends without code changes.
    ///
    /// [`Poll`]: IngressBackend::Poll
    pub fn from_env() -> IngressBackend {
        match std::env::var("TLC_INGRESS_BACKEND").as_deref() {
            Ok("epoll") | Ok("readiness") => IngressBackend::Epoll,
            _ => IngressBackend::Poll,
        }
    }

    /// Stable name for logs and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            IngressBackend::Poll => "poll",
            IngressBackend::Epoll => "epoll",
        }
    }
}

fn shards_from_env() -> usize {
    std::env::var("TLC_INGRESS_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1)
        .max(1)
}

/// Tuning knobs for [`IngressServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngressConfig {
    /// Per-connection in-flight submission window granted in HELLO_ACK;
    /// reads pause once a connection has this many verdicts pending.
    pub window: u32,
    /// Frame payload cap enforced by the decoder before allocation.
    pub max_payload: u32,
    /// Global cap: when the service's outstanding count exceeds this,
    /// every connection's reads pause until verdicts drain.
    pub service_inflight_cap: usize,
    /// Maximum proofs accepted in one SUBMIT_BATCH frame.
    pub max_batch: u32,
    /// Sleep between poll iterations when no I/O happened.
    pub poll_sleep: Duration,
    /// Frame budget per connection per poll iteration.
    pub frames_per_poll: usize,
    /// Outstanding watermark for the [`ShedLevel::ShedSubmits`] rung:
    /// at or above it, new submits are answered with BUSY instead of
    /// relayed. Must sit above `service_inflight_cap` for the ladder
    /// to climb in order.
    pub shed_submit_watermark: usize,
    /// Outstanding watermark for [`ShedLevel::ShedConnections`]: at or
    /// above it, new connections are answered BUSY and dropped.
    pub shed_conn_watermark: usize,
    /// Open-connection cap (accept-queue pressure proxy); at or above
    /// it new connections are shed regardless of backlog.
    pub max_conns: usize,
    /// Base retry-after hint carried in BUSY frames, milliseconds.
    pub retry_after_ms: u32,
    /// Deficit-round-robin quantum: admission credits dealt to each
    /// relationship lane per round while capacity is scarce.
    pub lane_quantum: u32,
    /// Multiplier on a connection's granted window giving its verdict
    /// debt cap; submits beyond it are shed and scored as misbehavior.
    pub debt_factor: u32,
    /// Misbehavior score at which a connection is quarantined (reads
    /// paused, submits shed) for `quarantine_polls` iterations.
    pub quarantine_threshold: u32,
    /// Misbehavior score at which a connection receives a typed
    /// goodbye and closes.
    pub goodbye_threshold: u32,
    /// Poll iterations a quarantined connection stays paused before
    /// its score decays.
    pub quarantine_polls: u32,
    /// Which server loop to run. Defaults from `TLC_INGRESS_BACKEND`.
    pub backend: IngressBackend,
    /// Acceptor/event shards for the [`IngressBackend::Epoll`] backend
    /// (ignored by the legacy loop). Each shard owns a `SO_REUSEPORT`
    /// listener, its slice of the connection table, and its own
    /// verifier service pool. Defaults from `TLC_INGRESS_SHARDS`.
    pub shards: usize,
}

impl Default for IngressConfig {
    fn default() -> Self {
        IngressConfig {
            window: 64,
            max_payload: DEFAULT_MAX_PAYLOAD,
            service_inflight_cap: 4096,
            max_batch: 1024,
            poll_sleep: Duration::from_micros(200),
            frames_per_poll: 32,
            shed_submit_watermark: 8192,
            shed_conn_watermark: 16384,
            max_conns: 1024,
            retry_after_ms: 50,
            lane_quantum: 64,
            debt_factor: 4,
            quarantine_threshold: 32,
            goodbye_threshold: 128,
            quarantine_polls: 256,
            backend: IngressBackend::from_env(),
            shards: shards_from_env(),
        }
    }
}

/// Rungs of the overload ladder, from healthy to hardest shedding.
/// Ordered: a higher rung implies every lower rung's behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ShedLevel {
    /// Below every watermark: all work admitted.
    Accept,
    /// Service backlog reached `service_inflight_cap`: every
    /// connection's reads pause until verdicts drain.
    DeferReads,
    /// Backlog reached `shed_submit_watermark`: new submits are
    /// answered with BUSY (scope Submit).
    ShedSubmits,
    /// Backlog reached `shed_conn_watermark` (or `max_conns` open):
    /// new connections are answered with BUSY (scope Connection) and
    /// dropped.
    ShedConnections,
}

/// Ingress-side counters, reported at shutdown and over STATS frames.
pub type IngressStats = StatsSnapshot;

/// Aggregate report returned by [`IngressServer::run`]: the wrapped
/// service's report plus ingress counters.
#[derive(Debug, Clone)]
pub struct IngressReport {
    /// The verification pool's own shutdown report.
    pub service: ServiceReport,
    /// Ingress counters accumulated over the server's lifetime.
    pub ingress: IngressStats,
    /// Read-buffer pool counters from the readiness backend, summed
    /// across shards (all zero under the legacy loop, which does not
    /// pool). `exhausted` counts deferred reads — wakeups where a
    /// connection's read was postponed because every buffer was in
    /// flight. These live outside [`IngressStats`] because the STATS
    /// wire snapshot is a frozen 16-field format.
    pub pool: PoolStats,
}

impl IngressReport {
    /// Renders every ingress counter plus the service totals and
    /// per-shard breakdown in Prometheus text exposition format
    /// (`ingress_throughput --metrics` prints this).
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        self.ingress.to_prometheus(&mut out);
        let pool = [
            ("bufpool_checkouts", self.pool.checkouts),
            ("bufpool_exhausted", self.pool.exhausted),
            ("bufpool_recycles", self.pool.recycles),
        ];
        for (name, v) in pool {
            let _ = writeln!(out, "# TYPE tlc_ingress_{name}_total counter");
            let _ = writeln!(out, "tlc_ingress_{name}_total {v}");
        }
        let totals = [
            ("accepted", self.service.accepted),
            ("rejected", self.service.rejected),
            ("replayed", self.service.replayed),
            ("unclaimed_results", self.service.unclaimed_results as u64),
        ];
        for (name, v) in totals {
            let _ = writeln!(out, "# TYPE tlc_service_{name}_total counter");
            let _ = writeln!(out, "tlc_service_{name}_total {v}");
        }
        for s in &self.service.shards {
            let _ = writeln!(
                out,
                "tlc_shard_accepted_total{{shard=\"{}\"}} {}",
                s.shard, s.accepted
            );
            let _ = writeln!(
                out,
                "tlc_shard_rejected_total{{shard=\"{}\"}} {}",
                s.shard, s.rejected
            );
            let _ = writeln!(
                out,
                "tlc_shard_relationships{{shard=\"{}\"}} {}",
                s.shard, s.relationships
            );
        }
        out
    }
}

/// Connection phases of the ingress state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Nothing accepted yet but HELLO.
    AwaitHello,
    /// Session established; submissions flow.
    Ready,
    /// Marked for removal at the end of the iteration.
    Closed,
}

struct Conn {
    id: u64,
    driver: ConnDriver<TcpStream>,
    phase: Phase,
    /// Submissions relayed to the service, verdicts not yet returned.
    in_flight: u32,
    /// Window granted to this connection in HELLO_ACK.
    window: u32,
    /// Peer sent GOODBYE: drain in-flight verdicts, ack, close.
    goodbye: bool,
    /// Misbehavior score: replays, oversize bursts, window abuse.
    /// Crossing `quarantine_threshold` quarantines the connection;
    /// crossing `goodbye_threshold` closes it with a typed fault.
    score: u32,
    /// Poll iterations left in quarantine (0 = not quarantined).
    quarantine: u32,
}

struct Route {
    conn_id: u64,
    client_tag: u64,
}

/// Per-relationship admission lane for deficit-round-robin fairness.
#[derive(Debug, Default, Clone, Copy)]
struct Lane {
    /// Submissions from this relationship inside the service — the
    /// lane's *deficit*, charged against its next credit share.
    inflight: u32,
    /// Admission credits left this tick; a submit needs one to pass
    /// the [`ShedLevel::ShedSubmits`] rung.
    credits: u32,
}

/// The protocol and admission engine shared by both backends: the
/// connection table, verdict routes, DRR lanes, shed ladder, and every
/// frame handler. The legacy tick loop drives one of these on one
/// thread; the readiness event loop gives each `SO_REUSEPORT` shard
/// its own instance (own service pool, own connection slice), so
/// shed/DRR/misbehavior decisions stay shard-local and lock-free.
struct IngressCore {
    service: VerifierService,
    config: IngressConfig,
    conns: Vec<Conn>,
    /// service tag -> originating connection + the tag it used.
    routes: HashMap<u64, Route>,
    /// raw relationship id -> its admission lane.
    lanes: HashMap<u64, Lane>,
    /// Lane deal order (registration order); `rr_cursor` rotates the
    /// start so remainder quanta spread fairly.
    lane_order: Vec<u64>,
    rr_cursor: usize,
    next_conn: u64,
    stats: IngressStats,
    /// Connections currently serving a quarantine sentence — lets the
    /// event loop skip quarantine ticking entirely in the (typical)
    /// case of zero quarantined peers.
    quarantined: usize,
}

impl IngressCore {
    fn new(service: VerifierService, config: IngressConfig) -> IngressCore {
        IngressCore {
            service,
            config,
            conns: Vec::new(),
            routes: HashMap::new(),
            lanes: HashMap::new(),
            lane_order: Vec::new(),
            rr_cursor: 0,
            next_conn: 0,
            stats: IngressStats::default(),
            quarantined: 0,
        }
    }
}

/// TCP front-end for a [`VerifierService`].
///
/// With the default [`IngressBackend::Poll`] backend this is
/// single-threaded: [`run`](Self::run) owns the accept loop, every
/// connection, and the service, so no locking is needed anywhere.
/// Under [`IngressBackend::Epoll`] the run loop fans out into
/// `config.shards` readiness-driven threads, each owning a disjoint
/// shard of connections and its own service pool — still no shared
/// locks. Use [`spawn`](Self::spawn) to run either on a background
/// thread with a stop handle.
pub struct IngressServer {
    listener: TcpListener,
    /// Kept so the epoll backend can build per-shard service pools with
    /// the worker budget split across shards.
    service_config: ServiceConfig,
    /// Whether `listener` was bound with `SO_REUSEPORT` (epoll backend
    /// on a supporting platform) — the precondition for extra shard
    /// listeners sharing the address.
    reuseport: bool,
    core: IngressCore,
}

impl IngressServer {
    /// Binds a listener and wraps a freshly spawned service.
    ///
    /// Under the epoll backend the listener is bound with
    /// `SO_REUSEPORT` where the platform allows, so [`run`](Self::run)
    /// can add shard listeners on the same address; where it doesn't,
    /// the server degrades to one shard (and, with no readiness
    /// backend at all, to the legacy loop) — never to an error.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service_config: ServiceConfig,
        config: IngressConfig,
    ) -> io::Result<IngressServer> {
        let mut reuseport = false;
        let listener = match config.backend {
            IngressBackend::Epoll => {
                let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidInput, "no address to bind")
                })?;
                match tlc_net::try_bind_reuseport(resolved) {
                    Some(l) => {
                        reuseport = true;
                        l
                    }
                    None => {
                        let l = TcpListener::bind(resolved)?;
                        l.set_nonblocking(true)?;
                        l
                    }
                }
            }
            IngressBackend::Poll => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                l
            }
        };
        Ok(IngressServer {
            listener,
            service_config,
            reuseport,
            core: IngressCore::new(VerifierService::with_config(service_config), config),
        })
    }

    /// Current rung of the overload ladder, from the service backlog.
    pub fn shed_level(&self) -> ShedLevel {
        self.core.shed_level()
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the configured backend until `stop` is set, then tears the
    /// service down and returns the combined report. Open sessions
    /// receive an ERROR/Shutdown frame (best-effort) before their
    /// sockets drop.
    pub fn run(self, stop: &AtomicBool) -> IngressReport {
        match self.core.config.backend {
            IngressBackend::Poll => self.run_poll(stop),
            IngressBackend::Epoll => event_loop::run(self, stop),
        }
    }

    /// The legacy tick loop: one thread, O(conns) per iteration.
    fn run_poll(mut self, stop: &AtomicBool) -> IngressReport {
        while !stop.load(Ordering::Relaxed) {
            self.core.deal_credits();
            let mut activity = false;
            activity |= self.accept_new();
            activity |= self.core.poll_conns();
            activity |= self.core.pump_verdicts();
            self.core.apply_backpressure();
            activity |= self.core.flush_and_reap();
            if !activity {
                std::thread::sleep(self.core.config.poll_sleep);
            }
        }
        let ingress = self.core.shutdown_notices();
        IngressReport {
            service: self.core.service.finish(),
            ingress,
            pool: PoolStats::default(),
        }
    }

    /// Spawns [`run`](Self::run) on a background thread.
    pub fn spawn(self) -> io::Result<IngressHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("tlc-ingress".into())
            .spawn(move || self.run(&flag))?;
        Ok(IngressHandle { addr, stop, thread })
    }

    /// Accepts every connection currently pending. Returns whether any
    /// arrived.
    fn accept_new(&mut self) -> bool {
        let mut any = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.core.admit(stream);
                    any = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        any
    }
}

impl IngressCore {
    /// See [`IngressServer::shed_level`]. (`max_conns` is a separate
    /// accept-time check — a full but healthy connection table sheds
    /// new arrivals without touching admission for the sessions
    /// already in.)
    fn shed_level(&self) -> ShedLevel {
        let backlog = self.service.outstanding();
        if backlog >= self.config.shed_conn_watermark {
            ShedLevel::ShedConnections
        } else if backlog >= self.config.shed_submit_watermark {
            ShedLevel::ShedSubmits
        } else if backlog >= self.config.service_inflight_cap {
            ShedLevel::DeferReads
        } else {
            ShedLevel::Accept
        }
    }

    /// Best-effort shutdown notice to every open session; returns the
    /// final stats snapshot.
    fn shutdown_notices(&mut self) -> IngressStats {
        let bye = Fault::Shutdown.to_frame();
        for conn in &mut self.conns {
            if conn.phase == Phase::Ready {
                let _ = conn.driver.queue(&bye);
                let _ = conn.driver.flush();
            }
        }
        self.stats
    }

    /// Admits (or sheds) one freshly accepted stream. Returns the new
    /// connection's index in the table, or `None` when the arrival was
    /// shed (typed BUSY answer) or rejected.
    fn admit(&mut self, mut stream: TcpStream) -> Option<usize> {
        if self.shed_level() >= ShedLevel::ShedConnections
            || self.conns.len() >= self.config.max_conns.max(1)
        {
            // ShedConnections rung: answer with a typed BUSY (blocking
            // write of one tiny frame) and drop, rather than resetting
            // the peer with no explanation. The longer hint reflects
            // that a whole-connection shed signals deeper trouble than
            // a single shed submit.
            self.stats.shed_connections += 1;
            let busy = BusyMsg {
                scope: BusyScope::Connection,
                retry_after_ms: self.config.retry_after_ms.saturating_mul(4),
                rel: 0,
                tag: 0,
            };
            if let Ok(bytes) = busy.to_frame().encode() {
                let _ = stream.write_all(&bytes);
            }
            return None;
        }
        // A socket stuck in blocking mode would stall the entire loop
        // on its next read, so a stream whose mode cannot be set is
        // rejected outright and counted — never admitted half-broken.
        if stream.set_nonblocking(true).is_err() {
            self.stats.rejected_malformed += 1;
            return None;
        }
        // Low latency is best-effort; failure leaves default options.
        let _ = stream.set_nodelay(true);
        let id = self.next_conn;
        self.next_conn += 1;
        self.conns.push(Conn {
            id,
            driver: ConnDriver::new(stream, self.config.max_payload),
            phase: Phase::AwaitHello,
            in_flight: 0,
            window: self.config.window,
            goodbye: false,
            score: 0,
            quarantine: 0,
        });
        self.stats.connections += 1;
        Some(self.conns.len() - 1)
    }

    /// Polls every connection for inbound frames and handles them.
    fn poll_conns(&mut self) -> bool {
        let mut any = false;
        let mut frames = Vec::new();
        for i in 0..self.conns.len() {
            if self.conns[i].phase == Phase::Closed {
                continue;
            }
            frames.clear();
            let budget = self.config.frames_per_poll;
            if let Err(e) = self.conns[i].driver.poll_frames(budget, &mut frames) {
                // Framing violation or transport failure: tell the peer
                // if we still can, then close.
                if let DriverError::Wire(_) = e {
                    self.protocol_fault(i, "framing violation");
                } else {
                    self.conns[i].phase = Phase::Closed;
                }
                continue;
            }
            if !frames.is_empty() {
                any = true;
            }
            for frame in frames.drain(..) {
                if self.conns[i].phase == Phase::Closed {
                    break;
                }
                self.handle_frame(i, frame.kind, &frame.payload);
            }
            // EOF with nothing left to send: reap.
            if self.conns[i].driver.at_eof() && self.conns[i].driver.outbox_bytes() == 0 {
                self.conns[i].phase = Phase::Closed;
            }
        }
        any
    }

    /// Queues an ERROR/Protocol frame and closes the connection.
    fn protocol_fault(&mut self, i: usize, detail: &'static str) {
        self.stats.protocol_errors += 1;
        let frame = Fault::Protocol(detail).to_frame();
        let _ = self.conns[i].driver.queue(&frame);
        let _ = self.conns[i].driver.flush();
        self.conns[i].phase = Phase::Closed;
    }

    /// Queues a frame on connection `i`, closing it if the outbox
    /// rejects the frame (payload over the codec's length range —
    /// impossible for protocol-layer frames, but stay total).
    fn send(&mut self, i: usize, frame: &Frame) {
        if self.conns[i].driver.queue(frame).is_err() {
            self.conns[i].phase = Phase::Closed;
        }
    }

    /// Dispatches one inbound frame. Takes the kind and a borrowed
    /// payload so the readiness loop can hand in zero-copy views
    /// ([`tlc_net::wire::FrameRef`]) straight out of a pooled buffer;
    /// the legacy loop passes its owned frames by reference.
    fn handle_frame(&mut self, i: usize, kind: FrameKind, payload: &[u8]) {
        match (self.conns[i].phase, kind) {
            (Phase::AwaitHello, FrameKind::Hello) => self.handle_hello(i, payload),
            (Phase::AwaitHello, _) => self.protocol_fault(i, "expected HELLO"),
            (Phase::Ready, FrameKind::Register) => self.handle_register(i, payload),
            (Phase::Ready, FrameKind::Submit) => self.handle_submit(i, payload),
            (Phase::Ready, FrameKind::SubmitBatch) => self.handle_submit_batch(i, payload),
            (Phase::Ready, FrameKind::StatsReq) => {
                let snapshot = self.stats_snapshot();
                self.send(i, &snapshot.to_frame(FrameKind::Stats));
            }
            (Phase::Ready, FrameKind::Settle) => self.handle_settle(i, payload),
            (Phase::Ready, FrameKind::Goodbye) => {
                self.conns[i].goodbye = true;
                self.maybe_finish_goodbye(i);
            }
            (Phase::Ready, _) => self.protocol_fault(i, "unexpected frame kind"),
            (Phase::Closed, _) => {}
        }
    }

    fn handle_hello(&mut self, i: usize, payload: &[u8]) {
        let hello = match Hello::decode(payload) {
            Ok(h) => h,
            Err(detail) => return self.protocol_fault(i, detail),
        };
        if hello.magic != MAGIC {
            return self.protocol_fault(i, "bad magic");
        }
        if hello.version != PROTOCOL_VERSION {
            self.stats.protocol_errors += 1;
            let frame = Fault::BadVersion {
                server: PROTOCOL_VERSION,
            }
            .to_frame();
            let _ = self.conns[i].driver.queue(&frame);
            let _ = self.conns[i].driver.flush();
            self.conns[i].phase = Phase::Closed;
            return;
        }
        // Window 0 means "server's choice"; otherwise grant at most the
        // configured window.
        let granted = if hello.window == 0 {
            self.config.window
        } else {
            hello.window.min(self.config.window)
        };
        self.conns[i].window = granted.max(1);
        self.conns[i].phase = Phase::Ready;
        let ack = HelloAck {
            version: PROTOCOL_VERSION,
            window: self.conns[i].window,
            max_payload: self.config.max_payload,
        };
        self.send(i, &ack.to_frame());
    }

    /// Audits a three-party roaming settlement record: replays the
    /// conservation law `home + visited + vendor == charged` and
    /// answers with a SETTLE_VERDICT (DESIGN §14). The audit is
    /// stateless — a split either conserves the charged volume or it
    /// does not — so it costs no crypto and never touches the service.
    fn handle_settle(&mut self, i: usize, payload: &[u8]) {
        let settle = match SettleMsg::decode(payload) {
            Ok(s) => s,
            Err(detail) => return self.protocol_fault(i, detail),
        };
        let result = if settle.split.total() == settle.charged {
            SettleResult::Conserved
        } else {
            SettleResult::SplitMismatch
        };
        let verdict = SettleVerdictMsg {
            rel: settle.rel,
            tag: settle.tag,
            result,
        };
        self.send(i, &verdict.to_frame());
    }

    fn handle_register(&mut self, i: usize, payload: &[u8]) {
        let reg = match Register::decode(payload) {
            Ok(r) => r,
            Err(detail) => return self.protocol_fault(i, detail),
        };
        // Capacity 0 means "server default", mirroring window 0 in
        // HELLO. This is also hardening: the in-process API asserts a
        // positive replay capacity, and wire input must never be able
        // to trip an assert inside a worker shard.
        let capacity = if reg.capacity == 0 {
            DEFAULT_REPLAY_CAPACITY
        } else {
            reg.capacity as usize
        };
        match self.service.register_with_capacity(
            reg.plan,
            reg.edge_key,
            reg.operator_key,
            capacity,
        ) {
            Ok(rel) => {
                self.stats.registers += 1;
                let raw = rel.raw();
                if !self.lanes.contains_key(&raw) {
                    // Seed the new lane with one quantum so a client
                    // pipelining REGISTER+SUBMIT is not shed before
                    // the next credit deal.
                    self.lanes.insert(
                        raw,
                        Lane {
                            inflight: 0,
                            credits: self.config.lane_quantum.max(1),
                        },
                    );
                    self.lane_order.push(raw);
                }
                let ack = Registered {
                    req: reg.req,
                    rel: raw,
                };
                self.send(i, &ack.to_frame());
            }
            Err(e) => self.service_fault(i, e),
        }
    }

    /// Deals the free admission pool (`shed_submit_watermark` minus the
    /// service backlog) to relationship lanes, deficit-round-robin:
    /// whole-quantum shares rotate across lanes, and a lane's unresolved
    /// in-flight count is charged against its share. One flooding
    /// relationship therefore exhausts only its own credits — thin lanes
    /// keep their full share and their submits keep flowing.
    fn deal_credits(&mut self) {
        let n = self.lane_order.len();
        if n == 0 {
            return;
        }
        let pool = self
            .config
            .shed_submit_watermark
            .saturating_sub(self.service.outstanding());
        let quantum = (self.config.lane_quantum.max(1)) as usize;
        let per_round = quantum.saturating_mul(n);
        let full_rounds = pool / per_round.max(1);
        let mut rem = pool % per_round.max(1);
        let base = full_rounds.saturating_mul(quantum);
        let mut shares = vec![base; n];
        self.rr_cursor = (self.rr_cursor + 1) % n;
        let mut i = self.rr_cursor;
        while rem > 0 {
            let give = quantum.min(rem);
            shares[i] = shares[i].saturating_add(give);
            rem -= give;
            i = (i + 1) % n;
        }
        for (k, rel) in self.lane_order.iter().enumerate() {
            if let Some(lane) = self.lanes.get_mut(rel) {
                lane.credits = shares[k]
                    .saturating_sub(lane.inflight as usize)
                    .min(u32::MAX as usize) as u32;
            }
        }
    }

    /// Sheds one submission with a typed BUSY answer — the ladder's
    /// guarantee that overload is never a silent drop. The shed proof
    /// never reached the service (or its replay cache), so the client
    /// can resubmit it verbatim after the delay.
    fn shed_submit(&mut self, i: usize, rel: u64, tag: u64) {
        self.stats.shed_overload += 1;
        let busy = BusyMsg {
            scope: BusyScope::Submit,
            retry_after_ms: self.config.retry_after_ms,
            rel,
            tag,
        };
        self.send(i, &busy.to_frame());
    }

    /// Raises connection `i`'s misbehavior score and escalates:
    /// quarantine at the first threshold, a typed goodbye at the
    /// second.
    fn bump_score(&mut self, i: usize, points: u32) {
        let quarantine_at = self.config.quarantine_threshold.max(1);
        let goodbye_at = self.config.goodbye_threshold.max(1);
        let c = &mut self.conns[i];
        c.score = c.score.saturating_add(points);
        if c.score >= goodbye_at {
            self.stats.misbehavior_closes += 1;
            let frame = Fault::Protocol("misbehavior limit exceeded").to_frame();
            let _ = c.driver.queue(&frame);
            let _ = c.driver.flush();
            c.phase = Phase::Closed;
        } else if c.score >= quarantine_at && c.quarantine == 0 {
            c.quarantine = self.config.quarantine_polls.max(1);
            self.stats.quarantines += 1;
            self.quarantined += 1;
        }
    }

    fn handle_submit(&mut self, i: usize, payload: &[u8]) {
        // Borrowed decode: the PoC bytes go straight from the frame
        // payload (a pooled read buffer under the epoll backend) into
        // the service without an intermediate copy.
        let sub = match SubmitRef::decode(payload) {
            Ok(s) => s,
            Err(detail) => return self.protocol_fault(i, detail),
        };
        self.relay_submission(i, sub.rel, sub.tag, sub.poc);
    }

    fn handle_submit_batch(&mut self, i: usize, payload: &[u8]) {
        let batch = match SubmitBatchRef::decode(payload) {
            Ok(b) => b,
            Err(detail) => return self.protocol_fault(i, detail),
        };
        if batch.pocs.len() as u64 > self.config.max_batch as u64 {
            // An oversize burst is misbehavior, not a framing fault:
            // answer with a typed error, score it, and let escalation
            // (quarantine, then goodbye) close repeat offenders.
            self.stats.protocol_errors += 1;
            self.send(i, &Fault::Protocol("batch exceeds server limit").to_frame());
            return self.bump_score(i, 8);
        }
        for (k, poc) in batch.pocs.iter().enumerate() {
            if self.conns[i].phase == Phase::Closed {
                break;
            }
            self.relay_submission(i, batch.rel, batch.first_tag.wrapping_add(k as u64), poc);
        }
    }

    /// Decodes one PoC and hands it to the service, recording the route
    /// for the verdict on the way back.
    fn relay_submission(&mut self, i: usize, rel_raw: u64, client_tag: u64, poc_bytes: &[u8]) {
        let poc = match PocMsg::decode(poc_bytes) {
            Ok(p) => p,
            // An undecodable PoC is a client bug, not a verdict: the
            // in-process API takes `PocMsg` values, so decode failures
            // cannot reach `submit` there either.
            Err(_) => return self.protocol_fault(i, "undecodable PoC payload"),
        };
        // Admission ladder, checked before the service sees the proof:
        // quarantine, per-conn verdict debt, the global ShedSubmits
        // rung, then the relationship lane's DRR credit.
        if self.conns[i].quarantine > 0 {
            return self.shed_submit(i, rel_raw, client_tag);
        }
        let debt_cap = self.conns[i]
            .window
            .saturating_mul(self.config.debt_factor.max(1));
        if self.conns[i].in_flight >= debt_cap {
            // A client this deep past its granted window is ignoring
            // flow control: shed and score.
            self.shed_submit(i, rel_raw, client_tag);
            return self.bump_score(i, 1);
        }
        if self.shed_level() >= ShedLevel::ShedSubmits {
            return self.shed_submit(i, rel_raw, client_tag);
        }
        if let Some(lane) = self.lanes.get(&rel_raw) {
            if lane.credits == 0 {
                return self.shed_submit(i, rel_raw, client_tag);
            }
        }
        let rel = RelationshipId::from_raw(rel_raw);
        match self.service.submit(rel, poc) {
            Ok(service_tag) => {
                self.stats.submissions += 1;
                self.conns[i].in_flight += 1;
                if let Some(lane) = self.lanes.get_mut(&rel_raw) {
                    lane.credits = lane.credits.saturating_sub(1);
                    lane.inflight = lane.inflight.saturating_add(1);
                }
                self.routes.insert(
                    service_tag,
                    Route {
                        conn_id: self.conns[i].id,
                        client_tag,
                    },
                );
            }
            Err(e) => self.service_fault(i, e),
        }
    }

    /// Relays a [`ServiceError`] as an ERROR frame. Unknown-relationship
    /// and shard-down errors keep the session open (other relationships
    /// and shards still work), mirroring the in-process API where these
    /// are recoverable `Err` returns.
    fn service_fault(&mut self, i: usize, e: ServiceError) {
        let fault = match e {
            ServiceError::ShardDown { shard } => Fault::ShardDown {
                shard: shard as u32,
            },
            ServiceError::ResultsClosed { outstanding } => Fault::ResultsClosed {
                outstanding: outstanding as u32,
            },
            ServiceError::UnknownRelationship(rel) => Fault::UnknownRelationship(rel.raw()),
            ServiceError::Overloaded { retry_after_ms } => {
                // The in-process pipeline never sheds today; stay total
                // and relay any future shed as BUSY, not a fault. The
                // all-ones tag marks "no specific submission".
                self.stats.shed_overload += 1;
                let busy = BusyMsg {
                    scope: BusyScope::Submit,
                    retry_after_ms,
                    rel: 0,
                    tag: u64::MAX,
                };
                self.send(i, &busy.to_frame());
                return;
            }
        };
        self.send(i, &fault.to_frame());
    }

    /// Streams ready verdicts back to their connections.
    fn pump_verdicts(&mut self) -> bool {
        let mut touched = Vec::new();
        self.pump_verdicts_into(&mut touched)
    }

    /// [`pump_verdicts`](Self::pump_verdicts), additionally recording
    /// the index of every connection that had a frame queued (or its
    /// phase changed) so the readiness loop can refresh exactly those —
    /// flush, re-arm write interest, reap — without an O(conns) sweep.
    /// Indices may repeat and are only valid until the next removal.
    fn pump_verdicts_into(&mut self, touched: &mut Vec<usize>) -> bool {
        let results = self.service.try_collect_results();
        let any = !results.is_empty();
        for r in results {
            let Some(route) = self.routes.remove(&r.tag) else {
                // A tag the server never issued cannot come back; stay
                // total and count it rather than panic.
                self.stats.orphaned_verdicts += 1;
                continue;
            };
            match r.result {
                Ok(_) => self.stats.accepted += 1,
                Err(_) => self.stats.rejected_malformed += 1,
            }
            // The service resolved this submission either way: return
            // the lane's deficit.
            if let Some(lane) = self.lanes.get_mut(&r.relationship.raw()) {
                lane.inflight = lane.inflight.saturating_sub(1);
            }
            let Some(i) = self.conns.iter().position(|c| c.id == route.conn_id) else {
                // Client disconnected mid-batch: the verdict is
                // discarded deterministically and counted.
                self.stats.orphaned_verdicts += 1;
                continue;
            };
            self.conns[i].in_flight = self.conns[i].in_flight.saturating_sub(1);
            touched.push(i);
            if self.conns[i].phase == Phase::Closed {
                self.stats.orphaned_verdicts += 1;
                continue;
            }
            let replayed = matches!(r.result, Err(VerifyError::Replayed));
            let msg = VerdictMsg {
                rel: r.relationship.raw(),
                tag: route.client_tag,
                shard: r.shard as u32,
                result: r.result,
            };
            self.stats.verdicts += 1;
            self.send(i, &msg.to_frame());
            if replayed {
                // Replays feed the misbehavior score: a client cycling
                // old proofs burns service capacity for guaranteed
                // rejections.
                self.bump_score(i, 1);
            }
            if self.conns[i].phase != Phase::Closed {
                self.maybe_finish_goodbye(i);
            }
        }
        any
    }

    /// After GOODBYE, once every in-flight verdict has been streamed,
    /// acknowledge and close.
    fn maybe_finish_goodbye(&mut self, i: usize) {
        if self.conns[i].goodbye && self.conns[i].in_flight == 0 {
            self.send(i, &Frame::new(FrameKind::GoodbyeAck, Vec::new()));
            self.conns[i].phase = Phase::Closed;
        }
    }

    /// Whether the ladder demands a global read pause.
    fn global_defer(&self) -> bool {
        self.shed_level() >= ShedLevel::DeferReads
    }

    /// Whether connection `i` should have reads paused right now, given
    /// the (precomputed) global-defer verdict: over its verdict window,
    /// in quarantine, or ladder-wide backpressure.
    fn desired_pause(&self, i: usize, global: bool) -> bool {
        let conn = &self.conns[i];
        global || conn.in_flight >= conn.window || conn.quarantine > 0
    }

    /// Ticks every active quarantine sentence down by one; at expiry
    /// the score halves, so a reformed client recovers while a repeat
    /// offender re-escalates. Indices of freshly expired sentences are
    /// appended to `expired` (the readiness loop re-arms exactly those).
    fn tick_quarantines(&mut self, expired: &mut Vec<usize>) {
        if self.quarantined == 0 {
            return;
        }
        for (i, conn) in self.conns.iter_mut().enumerate() {
            if conn.quarantine > 0 {
                conn.quarantine -= 1;
                if conn.quarantine == 0 {
                    conn.score /= 2;
                    self.quarantined -= 1;
                    expired.push(i);
                }
            }
        }
    }

    /// Pauses reads on connections over their window, in quarantine,
    /// or globally when the ladder is at DeferReads or above; resumes
    /// the rest. Quarantine sentences tick down first.
    fn apply_backpressure(&mut self) {
        let mut expired = Vec::new();
        self.tick_quarantines(&mut expired);
        let global = self.global_defer();
        for i in 0..self.conns.len() {
            if self.desired_pause(i, global) {
                if !self.conns[i].paused() {
                    self.stats.pauses += 1;
                }
                self.conns[i].driver.pause();
            } else {
                self.conns[i].driver.resume();
            }
        }
    }

    /// Flushes outboxes and drops closed connections. A `Closed`
    /// connection gets one last best-effort flush so final frames
    /// (GOODBYE_ACK, ERROR) usually reach the peer.
    fn flush_and_reap(&mut self) -> bool {
        let mut any = false;
        let mut closed = 0u64;
        for conn in &mut self.conns {
            let before = conn.driver.outbox_bytes();
            if conn.driver.flush().is_err() {
                conn.phase = Phase::Closed;
            }
            if conn.driver.outbox_bytes() != before {
                any = true;
            }
        }
        let mut reaped_quarantined = 0usize;
        self.conns.retain(|c| {
            // Keep a closed conn alive while its farewell bytes are
            // still draining and the socket is healthy.
            let done =
                c.phase == Phase::Closed && (c.driver.outbox_bytes() == 0 || c.driver.at_eof());
            if done {
                closed += 1;
                if c.quarantine > 0 {
                    reaped_quarantined += 1;
                }
            }
            !done
        });
        self.quarantined -= reaped_quarantined.min(self.quarantined);
        self.stats.connections_closed += closed;
        any
    }

    fn stats_snapshot(&self) -> IngressStats {
        let mut s = self.stats;
        s.open_connections = self.conns.len() as u64;
        s.service_outstanding = self.service.outstanding() as u64;
        s
    }
}

impl Conn {
    fn paused(&self) -> bool {
        self.driver.paused()
    }
}

/// Handle to a server spawned with [`IngressServer::spawn`].
pub struct IngressHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<IngressReport>,
}

impl IngressHandle {
    /// Address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the poll loop to stop and joins it, returning the
    /// combined report. A worker panic inside the loop yields a report
    /// with an empty service section rather than propagating.
    pub fn shutdown(self) -> Option<IngressReport> {
        self.stop.store(true, Ordering::Relaxed);
        self.thread.join().ok()
    }
}

/// Read chunk for the blocking client.
const CLIENT_READ_CHUNK: usize = 8 * 1024;

/// Retry policy for overload (BUSY) handling in [`RemoteVerifier`]:
/// capped exponential backoff with jitter from a seeded RNG, per
/// tlc-lint's determinism rule (no ambient randomness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffConfig {
    /// First retry delay; doubles per attempt up to `cap`.
    pub base: Duration,
    /// Ceiling on any single delay.
    pub cap: Duration,
    /// Sheds tolerated per submission (or per connection attempt)
    /// before [`ServiceError::Overloaded`] surfaces to the caller.
    pub max_attempts: u32,
    /// Seed for the jitter RNG.
    pub seed: u64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            base: Duration::from_millis(5),
            cap: Duration::from_millis(500),
            max_attempts: 10,
            seed: 0x7E1C_0FF5,
        }
    }
}

/// Delay before retry number `attempt`: uniform in `[d/2, d]` where
/// `d = min(cap, base << attempt)`, floored at the server's
/// retry-after hint (itself capped). Half the delay is deterministic
/// spacing, half is jitter so a fleet of shed clients decorrelates.
fn backoff_delay(rng: &mut SimRng, cfg: &BackoffConfig, attempt: u32, hint_ms: u32) -> Duration {
    let base = cfg.base.max(Duration::from_micros(100));
    let cap = cfg.cap.max(base);
    let capped = base.saturating_mul(1u32 << attempt.min(16)).min(cap);
    let half = capped / 2;
    let jitter_ns = half.as_nanos().min(u64::MAX as u128) as u64;
    let jitter = Duration::from_nanos(rng.next_below(jitter_ns.saturating_add(1)));
    let hint = Duration::from_millis(hint_ms as u64).min(cap);
    (half + jitter).max(hint)
}

/// A submission awaiting its verdict, kept so a BUSY shed can be
/// retried transparently with the same tag.
struct Pending {
    rel: u64,
    tag: u64,
    poc: Vec<u8>,
    attempts: u32,
}

/// Blocking client mirroring the in-process [`VerifierService`] API.
/// One instance is one session; it is not `Sync` — run one per thread
/// (the soak test does exactly that). Generic over the transport so
/// chaos tests can interpose a fault-injecting stream; `connect`
/// produces the ordinary `TcpStream`-backed client.
///
/// Server sheds are handled transparently: a BUSY (scope Submit)
/// moves that submission to a retry queue and it is re-sent — with
/// its original tag — after capped, jittered backoff. Only when a
/// submission exhausts [`BackoffConfig::max_attempts`] does
/// [`ServiceError::Overloaded`] reach the caller. Shed-and-retried
/// submissions re-enter at retry time, so per-relationship
/// submission order is preserved only among never-shed proofs.
pub struct RemoteVerifier<S = TcpStream> {
    stream: S,
    decoder: FrameDecoder,
    /// Window granted by the server; `submit` drains verdicts once this
    /// many submissions are outstanding.
    window: u32,
    /// Max frame payload the server accepts; batches are chunked to it.
    max_payload: u32,
    outstanding: usize,
    next_tag: u64,
    /// Verdicts read while waiting for some other frame.
    ready: VecDeque<SubmissionResult>,
    /// Relationships the server has confirmed, for the client-side
    /// `UnknownRelationship` mirror of the in-process API.
    rels: HashSet<u64>,
    next_req: u32,
    /// Submissions awaiting verdicts (bounded by the window), so a
    /// BUSY shed can be retried without the caller resubmitting.
    pending: HashMap<u64, Pending>,
    /// Shed submissions queued for backoff-and-retry.
    shed_q: VecDeque<Pending>,
    backoff: BackoffConfig,
    rng: SimRng,
    shed_notices: u64,
    retries: u64,
    /// Latest retry-after hint from the server, milliseconds.
    retry_hint_ms: u32,
}

impl RemoteVerifier {
    /// Connects and performs the HELLO handshake with the default
    /// overload policy. `window_hint` of 0 accepts the server's
    /// default window.
    pub fn connect(
        addr: impl ToSocketAddrs,
        window_hint: u32,
    ) -> Result<RemoteVerifier, RemoteError> {
        Self::connect_with(addr, window_hint, BackoffConfig::default())
    }

    /// [`connect`](Self::connect) with an explicit overload policy. A
    /// BUSY (scope Connection) answer — the server's ShedConnections
    /// rung — is retried with backoff up to `backoff.max_attempts`
    /// times before [`ServiceError::Overloaded`] surfaces.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        window_hint: u32,
        backoff: BackoffConfig,
    ) -> Result<RemoteVerifier, RemoteError> {
        let mut rng = SimRng::new(backoff.seed).split("connect-jitter");
        let mut attempt = 0u32;
        loop {
            let stream = TcpStream::connect(&addr).map_err(|e| RemoteError::Io(e.kind()))?;
            let _ = stream.set_nodelay(true);
            match RemoteVerifier::handshake(stream, window_hint, backoff) {
                Err(RemoteError::Service(ServiceError::Overloaded { retry_after_ms }))
                    if attempt < backoff.max_attempts =>
                {
                    std::thread::sleep(backoff_delay(&mut rng, &backoff, attempt, retry_after_ms));
                    attempt += 1;
                }
                other => return other,
            }
        }
    }
}

impl<S: Read + Write> RemoteVerifier<S> {
    /// Performs the HELLO handshake over an already-connected
    /// transport. A BUSY answer here means the server shed the whole
    /// connection; it surfaces as [`ServiceError::Overloaded`] (this
    /// entry point does not retry — [`RemoteVerifier::connect_with`]
    /// wraps it with reconnection backoff).
    pub fn handshake(
        stream: S,
        window_hint: u32,
        backoff: BackoffConfig,
    ) -> Result<RemoteVerifier<S>, RemoteError> {
        let mut client = RemoteVerifier {
            stream,
            decoder: FrameDecoder::new(DEFAULT_MAX_PAYLOAD),
            window: 1,
            max_payload: DEFAULT_MAX_PAYLOAD,
            outstanding: 0,
            next_tag: 0,
            ready: VecDeque::new(),
            rels: HashSet::new(),
            next_req: 0,
            pending: HashMap::new(),
            shed_q: VecDeque::new(),
            backoff,
            rng: SimRng::new(backoff.seed).split("retry-jitter"),
            shed_notices: 0,
            retries: 0,
            retry_hint_ms: 0,
        };
        let hello = Hello {
            magic: MAGIC,
            version: PROTOCOL_VERSION,
            window: window_hint,
        };
        client.send_frame(&hello.to_frame())?;
        let frame = client.read_non_verdict()?;
        if frame.kind != FrameKind::HelloAck {
            return Err(RemoteError::Protocol("expected HELLO_ACK"));
        }
        let ack = HelloAck::decode(&frame.payload).map_err(RemoteError::Protocol)?;
        if ack.version != PROTOCOL_VERSION {
            return Err(RemoteError::BadVersion {
                server: ack.version,
            });
        }
        client.window = ack.window.max(1);
        client.max_payload = ack.max_payload;
        Ok(client)
    }

    /// Registers a relationship with the default replay window;
    /// idempotent for the same `(plan, keys)` triple, like the
    /// in-process API.
    pub fn register(
        &mut self,
        plan: DataPlan,
        edge_key: tlc_crypto::PublicKey,
        operator_key: tlc_crypto::PublicKey,
    ) -> Result<RelationshipId, RemoteError> {
        self.register_with_capacity(plan, edge_key, operator_key, DEFAULT_REPLAY_CAPACITY)
    }

    /// [`register`](Self::register) with an explicit replay-cache bound.
    pub fn register_with_capacity(
        &mut self,
        plan: DataPlan,
        edge_key: tlc_crypto::PublicKey,
        operator_key: tlc_crypto::PublicKey,
        capacity: usize,
    ) -> Result<RelationshipId, RemoteError> {
        let req = self.next_req;
        self.next_req = self.next_req.wrapping_add(1);
        let msg = Register {
            req,
            capacity: capacity as u64,
            plan,
            edge_key,
            operator_key,
        };
        self.send_frame(&msg.to_frame())?;
        let frame = self.read_non_verdict()?;
        if frame.kind != FrameKind::Registered {
            return Err(RemoteError::Protocol("expected REGISTERED"));
        }
        let ack = Registered::decode(&frame.payload).map_err(RemoteError::Protocol)?;
        if ack.req != req {
            return Err(RemoteError::Protocol("REGISTERED for a different request"));
        }
        self.rels.insert(ack.rel);
        Ok(RelationshipId::from_raw(ack.rel))
    }

    /// Submits one proof; returns its tag, exactly like the in-process
    /// `submit`. Blocks draining verdicts when the window is full, and
    /// retries any previously shed submissions first.
    pub fn submit(&mut self, rel: RelationshipId, poc: &PocMsg) -> Result<u64, RemoteError> {
        if !self.rels.contains(&rel.raw()) {
            return Err(RemoteError::Service(ServiceError::UnknownRelationship(rel)));
        }
        self.drain_sheds()?;
        while self.outstanding >= self.window as usize {
            self.pull_verdict()?;
        }
        let tag = self.next_tag;
        let bytes = poc.encode();
        let msg = Submit {
            rel: rel.raw(),
            tag,
            poc: bytes.clone(),
        };
        self.send_frame(&msg.to_frame())?;
        self.next_tag += 1;
        self.outstanding += 1;
        self.pending.insert(
            tag,
            Pending {
                rel: rel.raw(),
                tag,
                poc: bytes,
                attempts: 0,
            },
        );
        Ok(tag)
    }

    /// Submits a batch under one relationship; returns `(first_tag,
    /// count)`. Chunked to respect both the server's frame payload cap
    /// and the per-connection verdict window — a batch wider than the
    /// window is split so it can never wedge against a paused server
    /// that is waiting for this client to drain verdicts.
    pub fn submit_batch<'a>(
        &mut self,
        rel: RelationshipId,
        pocs: impl IntoIterator<Item = &'a PocMsg>,
    ) -> Result<(u64, usize), RemoteError> {
        if !self.rels.contains(&rel.raw()) {
            return Err(RemoteError::Service(ServiceError::UnknownRelationship(rel)));
        }
        let first = self.next_tag;
        let mut count = 0usize;
        let mut chunk: Vec<Vec<u8>> = Vec::new();
        let mut chunk_bytes = 0usize;
        // Stay well under the payload cap: the batch header plus
        // per-item length prefixes ride along.
        let budget = (self.max_payload as usize).saturating_sub(1024);
        let max_items = (self.window as usize).max(1);
        for poc in pocs {
            let bytes = poc.encode();
            if !chunk.is_empty()
                && (chunk_bytes + bytes.len() + 4 > budget || chunk.len() >= max_items)
            {
                self.send_batch_chunk(rel, &mut chunk, &mut chunk_bytes, &mut count)?;
            }
            chunk_bytes += bytes.len() + 4;
            chunk.push(bytes);
        }
        if !chunk.is_empty() {
            self.send_batch_chunk(rel, &mut chunk, &mut chunk_bytes, &mut count)?;
        }
        Ok((first, count))
    }

    fn send_batch_chunk(
        &mut self,
        rel: RelationshipId,
        chunk: &mut Vec<Vec<u8>>,
        chunk_bytes: &mut usize,
        count: &mut usize,
    ) -> Result<(), RemoteError> {
        self.drain_sheds()?;
        // Drain until the whole chunk fits in the window, not merely
        // until one slot opens: the server pauses reads at the window,
        // so sending past it would deadlock submit against verdicts.
        let n = chunk.len();
        while self.outstanding > 0 && self.outstanding + n > self.window as usize {
            self.pull_verdict()?;
        }
        let first = self.next_tag;
        let msg = SubmitBatch {
            rel: rel.raw(),
            first_tag: first,
            pocs: std::mem::take(chunk),
        };
        self.send_frame(&msg.to_frame())?;
        for (k, poc) in msg.pocs.into_iter().enumerate() {
            let tag = first.wrapping_add(k as u64);
            self.pending.insert(
                tag,
                Pending {
                    rel: rel.raw(),
                    tag,
                    poc,
                    attempts: 0,
                },
            );
        }
        self.next_tag += n as u64;
        self.outstanding += n;
        *count += n;
        *chunk_bytes = 0;
        Ok(())
    }

    /// Blocks until every submitted proof has a verdict and returns
    /// them (per relationship, in submission order — the service's own
    /// guarantee, preserved by the ordered byte stream; shed-and-
    /// retried proofs re-enter at retry time, so under overload only
    /// never-shed proofs keep that order).
    ///
    /// If the server goes away first, the same
    /// [`ServiceError::ResultsClosed`] the in-process API raises is
    /// returned, carrying the number of results lost.
    pub fn collect_results(&mut self) -> Result<Vec<SubmissionResult>, RemoteError> {
        let mut out = Vec::with_capacity(self.outstanding + self.ready.len());
        while let Some(r) = self.ready.pop_front() {
            out.push(r);
        }
        while self.outstanding > 0 || !self.shed_q.is_empty() {
            self.drain_sheds()?;
            if self.outstanding == 0 {
                continue;
            }
            match self.pull_verdict() {
                Ok(()) => {
                    while let Some(r) = self.ready.pop_front() {
                        out.push(r);
                    }
                }
                Err(RemoteError::Io(io::ErrorKind::UnexpectedEof))
                | Err(RemoteError::ServerShutdown) => {
                    let outstanding = self.outstanding;
                    self.outstanding = 0;
                    return Err(RemoteError::Service(ServiceError::ResultsClosed {
                        outstanding,
                    }));
                }
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// Verdicts received so far without blocking for the rest.
    pub fn take_ready(&mut self) -> Vec<SubmissionResult> {
        self.ready.drain(..).collect()
    }

    /// Submissions awaiting verdicts.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// The in-flight window granted by the server.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// BUSY (scope Submit) notices received from the server.
    pub fn shed_notices(&self) -> u64 {
        self.shed_notices
    }

    /// Transparent re-submissions performed after sheds.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Shed submissions still queued for retry.
    pub fn shed_pending(&self) -> usize {
        self.shed_q.len()
    }

    /// Shared access to the underlying transport (chaos tests read
    /// fault-injection stats through this).
    pub fn stream(&self) -> &S {
        &self.stream
    }

    /// Requests the server's ingress counters.
    pub fn stats(&mut self) -> Result<IngressStats, RemoteError> {
        self.send_frame(&Frame::new(FrameKind::StatsReq, Vec::new()))?;
        let frame = self.read_non_verdict()?;
        if frame.kind != FrameKind::Stats {
            return Err(RemoteError::Protocol("expected STATS"));
        }
        StatsSnapshot::decode(&frame.payload).map_err(RemoteError::Protocol)
    }

    /// Submits a three-party roaming settlement record for the
    /// server's conservation audit and returns its verdict. Verdicts
    /// and sheds arriving while waiting are absorbed as usual.
    pub fn settle(
        &mut self,
        rel: RelationshipId,
        serving: crate::roaming::Serving,
        charged: u64,
        split: crate::roaming::SettlementSplit,
    ) -> Result<SettleResult, RemoteError> {
        if !self.rels.contains(&rel.raw()) {
            return Err(RemoteError::Service(ServiceError::UnknownRelationship(rel)));
        }
        let tag = self.next_tag;
        self.next_tag += 1;
        let msg = SettleMsg {
            rel: rel.raw(),
            tag,
            serving,
            charged,
            split,
        };
        self.send_frame(&msg.to_frame())?;
        let frame = self.read_non_verdict()?;
        if frame.kind != FrameKind::SettleVerdict {
            return Err(RemoteError::Protocol("expected SETTLE_VERDICT"));
        }
        let v = SettleVerdictMsg::decode(&frame.payload).map_err(RemoteError::Protocol)?;
        if v.tag != tag {
            return Err(RemoteError::Protocol(
                "SETTLE_VERDICT for a different request",
            ));
        }
        Ok(v.result)
    }

    /// Ends the session: the server streams any remaining verdicts
    /// (returned here), acks, and closes. Consumes the client. Shed
    /// submissions are retried first so nothing is silently dropped.
    pub fn goodbye(mut self) -> Result<Vec<SubmissionResult>, RemoteError> {
        self.drain_sheds()?;
        self.send_frame(&Frame::new(FrameKind::Goodbye, Vec::new()))?;
        let frame = self.read_non_verdict()?;
        if frame.kind != FrameKind::GoodbyeAck {
            return Err(RemoteError::Protocol("expected GOODBYE_ACK"));
        }
        self.outstanding = 0;
        Ok(self.ready.drain(..).collect())
    }

    /// Reads frames until one that is not a VERDICT or BUSY arrives;
    /// verdicts encountered on the way are buffered (and count against
    /// `outstanding`), sheds are queued for retry. ERROR frames become
    /// typed errors.
    fn read_non_verdict(&mut self) -> Result<Frame, RemoteError> {
        loop {
            let frame = self.read_frame()?;
            match frame.kind {
                FrameKind::Verdict => self.absorb_verdict(&frame.payload)?,
                FrameKind::Busy => self.absorb_busy(&frame.payload)?,
                FrameKind::Error => return Err(self.map_fault(&frame.payload)),
                _ => return Ok(frame),
            }
        }
    }

    /// Reads exactly one VERDICT into the ready buffer (ERRORs
    /// mapped). A BUSY also counts as progress: it frees a window
    /// slot by moving the shed submission to the retry queue.
    fn pull_verdict(&mut self) -> Result<(), RemoteError> {
        let frame = self.read_frame()?;
        match frame.kind {
            FrameKind::Verdict => self.absorb_verdict(&frame.payload),
            FrameKind::Busy => self.absorb_busy(&frame.payload),
            FrameKind::Error => Err(self.map_fault(&frame.payload)),
            _ => Err(RemoteError::Protocol("expected VERDICT")),
        }
    }

    fn absorb_verdict(&mut self, payload: &[u8]) -> Result<(), RemoteError> {
        let v = VerdictMsg::decode(payload).map_err(RemoteError::Protocol)?;
        self.outstanding = self.outstanding.saturating_sub(1);
        self.pending.remove(&v.tag);
        self.ready.push_back(SubmissionResult {
            relationship: RelationshipId::from_raw(v.rel),
            tag: v.tag,
            shard: v.shard as usize,
            result: v.result,
        });
        Ok(())
    }

    /// Handles a BUSY frame: a Submit-scope shed moves that submission
    /// to the retry queue (typed, never silent); a Connection-scope
    /// shed is the server refusing this whole session, surfaced as
    /// [`ServiceError::Overloaded`].
    fn absorb_busy(&mut self, payload: &[u8]) -> Result<(), RemoteError> {
        let busy = BusyMsg::decode(payload).map_err(RemoteError::Protocol)?;
        self.retry_hint_ms = busy.retry_after_ms;
        match busy.scope {
            BusyScope::Submit => {
                self.shed_notices += 1;
                if let Some(p) = self.pending.remove(&busy.tag) {
                    self.outstanding = self.outstanding.saturating_sub(1);
                    self.shed_q.push_back(p);
                }
                Ok(())
            }
            BusyScope::Connection => Err(RemoteError::Service(ServiceError::Overloaded {
                retry_after_ms: busy.retry_after_ms,
            })),
        }
    }

    /// Re-sends shed submissions after capped, jittered backoff,
    /// reusing each one's original tag so caller-side correlation
    /// holds. Surfaces [`ServiceError::Overloaded`] once a submission
    /// exhausts its retry budget (the submission stays queued, so a
    /// later call can still try again).
    fn drain_sheds(&mut self) -> Result<(), RemoteError> {
        while let Some(mut p) = self.shed_q.pop_front() {
            if p.attempts >= self.backoff.max_attempts {
                let hint = self.retry_hint_ms;
                self.shed_q.push_front(p);
                return Err(RemoteError::Service(ServiceError::Overloaded {
                    retry_after_ms: hint,
                }));
            }
            let delay = backoff_delay(&mut self.rng, &self.backoff, p.attempts, self.retry_hint_ms);
            std::thread::sleep(delay);
            p.attempts += 1;
            self.retries += 1;
            while self.outstanding >= self.window as usize {
                self.pull_verdict()?;
            }
            let msg = Submit {
                rel: p.rel,
                tag: p.tag,
                poc: p.poc.clone(),
            };
            self.send_frame(&msg.to_frame())?;
            self.outstanding += 1;
            self.pending.insert(p.tag, p);
        }
        Ok(())
    }

    fn map_fault(&self, payload: &[u8]) -> RemoteError {
        match Fault::decode(payload) {
            Ok(Fault::ShardDown { shard }) => RemoteError::Service(ServiceError::ShardDown {
                shard: shard as usize,
            }),
            Ok(Fault::ResultsClosed { outstanding }) => {
                RemoteError::Service(ServiceError::ResultsClosed {
                    outstanding: outstanding as usize,
                })
            }
            Ok(Fault::UnknownRelationship(rel)) => RemoteError::Service(
                ServiceError::UnknownRelationship(RelationshipId::from_raw(rel)),
            ),
            Ok(Fault::BadVersion { server }) => RemoteError::BadVersion { server },
            Ok(Fault::Protocol(detail)) => RemoteError::Protocol(detail),
            Ok(Fault::Shutdown) => RemoteError::ServerShutdown,
            Err(detail) => RemoteError::Protocol(detail),
        }
    }

    fn send_frame(&mut self, frame: &Frame) -> Result<(), RemoteError> {
        let bytes = frame.encode()?;
        self.stream
            .write_all(&bytes)
            .map_err(|e| RemoteError::Io(e.kind()))
    }

    fn read_frame(&mut self) -> Result<Frame, RemoteError> {
        loop {
            if let Some(f) = self.decoder.next_frame() {
                return Ok(f);
            }
            if let Some(e) = self.decoder.poisoned() {
                return Err(RemoteError::Wire(e));
            }
            let mut buf = [0u8; CLIENT_READ_CHUNK];
            match self.stream.read(&mut buf) {
                Ok(0) => return Err(RemoteError::Io(io::ErrorKind::UnexpectedEof)),
                Ok(n) => self.decoder.push(&buf[..n])?,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(RemoteError::Io(e.kind())),
            }
        }
    }
}
