//! Payload grammars for the verifier ingress protocol.
//!
//! Each frame kind's payload is a fixed big-endian grammar over the
//! envelope provided by [`tlc_net::wire`]. This module is the byte-
//! exact conformance surface: `tests/wire_conformance.rs` pins golden
//! fixtures against these encoders, so any accidental drift in the
//! wire format fails a test rather than silently strands deployed
//! clients.
//!
//! ```text
//! HELLO        magic:u32 | version:u16 | window:u32
//! HELLO_ACK    version:u16 | window:u32 | max_payload:u32
//! REGISTER     req:u32 | capacity:u64 | plan:20B | ek_len:u32 | ek | ok_len:u32 | ok
//! REGISTERED   req:u32 | rel:u64
//! SUBMIT       rel:u64 | tag:u64 | poc_len:u32 | poc
//! SUBMIT_BATCH rel:u64 | first_tag:u64 | count:u32 | count x (len:u32 | poc)
//! VERDICT      rel:u64 | tag:u64 | shard:u32 | result (see below)
//! STATS_REQ    (empty)
//! STATS        16 x u64 counters
//! ERROR        code:u8 | operands (see below)
//! GOODBYE      (empty)
//! GOODBYE_ACK  (empty)
//! BUSY         scope:u8 | retry_after_ms:u32 | rel:u64 | tag:u64
//! SETTLE       rel:u64 | tag:u64 | serving:u8 | charged:u64 | home:u64 | visited:u64 | vendor:u64
//! SETTLE_VERDICT rel:u64 | tag:u64 | result:u8
//! ```
//!
//! Verdict result encoding — code byte, then operands:
//!
//! ```text
//! 0 Ok               charge:u64 | edge_claim:u64 | operator_claim:u64 | rounds:u64
//! 1 Signature        sub:u8 -> 0 BadSignature
//!                              1 Malformed       idx:u16 (string table)
//!                              2 Crypto          crypto encoding below
//! 2 PlanMismatch
//! 3 NonceMismatch
//! 4 SequenceMismatch
//! 5 ChargeMismatch   claimed:u64 | expected:u64
//! 6 Replayed
//! 7 Unregistered
//! ```
//!
//! `Malformed` and `Encoding` carry `&'static str` details in-process;
//! on the wire they are interned against tables of the known strings
//! ([`MALFORMED_STRINGS`], [`ENCODING_STRINGS`]). An index the decoder
//! does not know resolves to a stable fallback string instead of
//! failing, so old clients keep working when a server learns new
//! detail strings.

use crate::messages::{get_plan, put_plan, MessageError};
use crate::plan::DataPlan;
use crate::roaming::{Serving, SettlementSplit};
use crate::verify::{Verdict, VerifyError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use tlc_crypto::encoding::{decode_public_key, encode_public_key};
use tlc_crypto::{CryptoError, PublicKey};
use tlc_net::wire::{Frame, FrameKind};

/// Protocol magic ("TLCV") leading every HELLO.
pub const MAGIC: u32 = 0x544C_4356;

/// Wire protocol version carried in HELLO / HELLO_ACK.
///
/// v2 added the BUSY frame (typed load shedding) and widened STATS
/// from 12 to 16 counters. v3 added the SETTLE / SETTLE_VERDICT pair
/// (three-party roaming settlement audit).
pub const PROTOCOL_VERSION: u16 = 3;

/// Known [`MessageError::Malformed`] detail strings, in interning
/// order. Append-only: indexes are wire format.
pub const MALFORMED_STRINGS: &[&str] = &[
    "CDA role matches finalizer",
    "embedded CDR role mismatch",
    "invalid plan fields",
    "missing role",
    "not a CDA",
    "not a CDR",
    "not a PoC",
    "trailing bytes after CDA",
    "trailing bytes after CDR",
    "trailing bytes after PoC",
    "truncated CDA seq",
    "truncated CDA usage",
    "truncated CDR seq",
    "truncated CDR usage",
    "truncated PoC charge",
    "truncated embedded CDA header",
    "truncated embedded CDA",
    "truncated embedded CDR header",
    "truncated embedded CDR",
    "truncated nonce",
    "truncated plan",
    "truncated signature header",
    "truncated signature",
    "unknown role",
];

/// Fallback when a `Malformed` index is newer than this decoder.
pub const MALFORMED_FALLBACK: &str = "unrecognized malformed detail";

/// Known [`CryptoError::Encoding`] detail strings, in interning order.
/// Append-only: indexes are wire format.
pub const ENCODING_STRINGS: &[&str] = &[
    "EME header",
    "EME padding too short",
    "EME separator",
    "RSA block length",
    "sealed blob too short",
    "session key length",
    "trailing bytes after public key",
    "trailing bytes inside public key",
    "truncated TLV header",
    "truncated TLV value",
    "unexpected TLV tag",
    "zero modulus or exponent",
];

/// Fallback when an `Encoding` index is newer than this decoder.
pub const ENCODING_FALLBACK: &str = "unrecognized encoding detail";

/// Protocol-violation detail strings an ERROR/Protocol frame can
/// carry, in interning order. Append-only: indexes are wire format.
pub const PROTOCOL_STRINGS: &[&str] = &[
    "framing violation",
    "expected HELLO",
    "bad magic",
    "unexpected frame kind",
    "undecodable PoC payload",
    "batch exceeds server limit",
    "truncated HELLO",
    "truncated HELLO_ACK",
    "truncated REGISTER",
    "bad key in REGISTER",
    "truncated REGISTERED",
    "truncated SUBMIT",
    "truncated SUBMIT_BATCH",
    "truncated VERDICT",
    "unknown verdict code",
    "unknown signature sub-code",
    "unknown crypto code",
    "truncated STATS",
    "truncated ERROR",
    "unknown error code",
    "bad plan in REGISTER",
    "misbehavior limit exceeded",
    "truncated BUSY",
    "unknown BUSY scope",
    "truncated SETTLE",
    "unknown serving code",
    "truncated SETTLE_VERDICT",
    "unknown settlement result",
    "settlement split mismatch",
];

/// Fallback when a protocol-detail index is newer than this decoder.
pub const PROTOCOL_FALLBACK: &str = "unrecognized protocol detail";

fn intern(table: &[&str], s: &str) -> u16 {
    table
        .iter()
        .position(|t| *t == s)
        .map(|i| i as u16)
        .unwrap_or(u16::MAX)
}

fn resolve(table: &'static [&'static str], idx: u16, fallback: &'static str) -> &'static str {
    table.get(idx as usize).copied().unwrap_or(fallback)
}

/// HELLO payload: the client's opening.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// Must be [`MAGIC`].
    pub magic: u32,
    /// Client protocol version.
    pub version: u16,
    /// Requested in-flight window; 0 asks for the server default.
    pub window: u32,
}

impl Hello {
    /// Encodes into a HELLO frame.
    pub fn to_frame(&self) -> Frame {
        let mut b = BytesMut::with_capacity(10);
        b.put_u32(self.magic);
        b.put_u16(self.version);
        b.put_u32(self.window);
        Frame::new(FrameKind::Hello, b.to_vec())
    }

    /// Decodes a HELLO payload.
    pub fn decode(payload: &[u8]) -> Result<Hello, &'static str> {
        if payload.len() != 10 {
            return Err("truncated HELLO");
        }
        let mut b = Bytes::copy_from_slice(payload);
        Ok(Hello {
            magic: b.get_u32(),
            version: b.get_u16(),
            window: b.get_u32(),
        })
    }
}

/// HELLO_ACK payload: the server's session grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HelloAck {
    /// Server protocol version.
    pub version: u16,
    /// Granted in-flight window (at least 1).
    pub window: u32,
    /// Largest frame payload the server accepts.
    pub max_payload: u32,
}

impl HelloAck {
    /// Encodes into a HELLO_ACK frame.
    pub fn to_frame(&self) -> Frame {
        let mut b = BytesMut::with_capacity(10);
        b.put_u16(self.version);
        b.put_u32(self.window);
        b.put_u32(self.max_payload);
        Frame::new(FrameKind::HelloAck, b.to_vec())
    }

    /// Decodes a HELLO_ACK payload.
    pub fn decode(payload: &[u8]) -> Result<HelloAck, &'static str> {
        if payload.len() != 10 {
            return Err("truncated HELLO_ACK");
        }
        let mut b = Bytes::copy_from_slice(payload);
        Ok(HelloAck {
            version: b.get_u16(),
            window: b.get_u32(),
            max_payload: b.get_u32(),
        })
    }
}

/// REGISTER payload: a charging relationship to verify under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Register {
    /// Client-chosen request id, echoed in REGISTERED.
    pub req: u32,
    /// Replay-cache capacity for the relationship. `0` requests the
    /// server's default capacity (the cache itself requires at least
    /// one slot).
    pub capacity: u64,
    /// The negotiated data plan.
    pub plan: DataPlan,
    /// Edge (vendor) public key.
    pub edge_key: PublicKey,
    /// Operator public key.
    pub operator_key: PublicKey,
}

impl Register {
    /// Encodes into a REGISTER frame.
    pub fn to_frame(&self) -> Frame {
        let ek = encode_public_key(&self.edge_key);
        let ok = encode_public_key(&self.operator_key);
        let mut b = BytesMut::with_capacity(40 + ek.len() + ok.len());
        b.put_u32(self.req);
        b.put_u64(self.capacity);
        put_plan(&mut b, &self.plan);
        b.put_u32(ek.len() as u32);
        b.put_slice(&ek);
        b.put_u32(ok.len() as u32);
        b.put_slice(&ok);
        Frame::new(FrameKind::Register, b.to_vec())
    }

    /// Decodes a REGISTER payload.
    pub fn decode(payload: &[u8]) -> Result<Register, &'static str> {
        let mut b = Bytes::copy_from_slice(payload);
        if b.remaining() < 12 {
            return Err("truncated REGISTER");
        }
        let req = b.get_u32();
        let capacity = b.get_u64();
        let plan = get_plan(&mut b).map_err(|_| "bad plan in REGISTER")?;
        let edge_key = get_key(&mut b)?;
        let operator_key = get_key(&mut b)?;
        if b.has_remaining() {
            return Err("truncated REGISTER");
        }
        Ok(Register {
            req,
            capacity,
            plan,
            edge_key,
            operator_key,
        })
    }
}

fn get_key(b: &mut Bytes) -> Result<PublicKey, &'static str> {
    if b.remaining() < 4 {
        return Err("truncated REGISTER");
    }
    let len = b.get_u32() as usize;
    if b.remaining() < len {
        return Err("truncated REGISTER");
    }
    let raw = b.copy_to_bytes(len);
    decode_public_key(raw.chunk()).map_err(|_| "bad key in REGISTER")
}

/// REGISTERED payload: the relationship id grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Registered {
    /// Echo of the client's request id.
    pub req: u32,
    /// The issued relationship id.
    pub rel: u64,
}

impl Registered {
    /// Encodes into a REGISTERED frame.
    pub fn to_frame(&self) -> Frame {
        let mut b = BytesMut::with_capacity(12);
        b.put_u32(self.req);
        b.put_u64(self.rel);
        Frame::new(FrameKind::Registered, b.to_vec())
    }

    /// Decodes a REGISTERED payload.
    pub fn decode(payload: &[u8]) -> Result<Registered, &'static str> {
        if payload.len() != 12 {
            return Err("truncated REGISTERED");
        }
        let mut b = Bytes::copy_from_slice(payload);
        Ok(Registered {
            req: b.get_u32(),
            rel: b.get_u64(),
        })
    }
}

/// SUBMIT payload: one proof under a relationship.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Submit {
    /// Relationship id from REGISTERED.
    pub rel: u64,
    /// Client-chosen correlation tag, echoed in the VERDICT.
    pub tag: u64,
    /// The PoC message, in its canonical signed encoding.
    pub poc: Vec<u8>,
}

impl Submit {
    /// Encodes into a SUBMIT frame.
    pub fn to_frame(&self) -> Frame {
        let mut b = BytesMut::with_capacity(20 + self.poc.len());
        b.put_u64(self.rel);
        b.put_u64(self.tag);
        b.put_u32(self.poc.len() as u32);
        b.put_slice(&self.poc);
        Frame::new(FrameKind::Submit, b.to_vec())
    }

    /// Decodes a SUBMIT payload. Delegates to [`SubmitRef::decode`] so
    /// the owned and borrowed paths can never disagree.
    pub fn decode(payload: &[u8]) -> Result<Submit, &'static str> {
        SubmitRef::decode(payload).map(|s| s.to_owned())
    }
}

/// Borrowed view of a SUBMIT payload: identical grammar and error
/// strings as [`Submit::decode`], but the PoC bytes stay in the input
/// buffer — the readiness ingress relays them to the service without
/// an intermediate copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitRef<'a> {
    /// Relationship id from REGISTERED.
    pub rel: u64,
    /// Client-chosen correlation tag, echoed in the VERDICT.
    pub tag: u64,
    /// The PoC message bytes, borrowed from the frame payload.
    pub poc: &'a [u8],
}

impl<'a> SubmitRef<'a> {
    /// Decodes a SUBMIT payload without copying the PoC bytes.
    pub fn decode(payload: &'a [u8]) -> Result<SubmitRef<'a>, &'static str> {
        if payload.len() < 20 {
            return Err("truncated SUBMIT");
        }
        let rel = be_u64(payload);
        let tag = be_u64(&payload[8..]);
        let len = be_u32(&payload[16..]) as usize;
        if payload.len() - 20 != len {
            return Err("truncated SUBMIT");
        }
        Ok(SubmitRef {
            rel,
            tag,
            poc: &payload[20..],
        })
    }

    /// Copies into an owned [`Submit`].
    pub fn to_owned(self) -> Submit {
        Submit {
            rel: self.rel,
            tag: self.tag,
            poc: self.poc.to_vec(),
        }
    }
}

/// Big-endian u64 from the first 8 bytes. Callers length-check first.
fn be_u64(b: &[u8]) -> u64 {
    u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// Big-endian u32 from the first 4 bytes. Callers length-check first.
fn be_u32(b: &[u8]) -> u32 {
    u32::from_be_bytes([b[0], b[1], b[2], b[3]])
}

/// SUBMIT_BATCH payload: contiguously tagged proofs under one
/// relationship.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitBatch {
    /// Relationship id from REGISTERED.
    pub rel: u64,
    /// Tag of the first proof; the k-th proof gets `first_tag + k`.
    pub first_tag: u64,
    /// Canonical PoC encodings, in submission order.
    pub pocs: Vec<Vec<u8>>,
}

impl SubmitBatch {
    /// Encodes into a SUBMIT_BATCH frame.
    pub fn to_frame(&self) -> Frame {
        let total: usize = self.pocs.iter().map(|p| p.len() + 4).sum();
        let mut b = BytesMut::with_capacity(20 + total);
        b.put_u64(self.rel);
        b.put_u64(self.first_tag);
        b.put_u32(self.pocs.len() as u32);
        for poc in &self.pocs {
            b.put_u32(poc.len() as u32);
            b.put_slice(poc);
        }
        Frame::new(FrameKind::SubmitBatch, b.to_vec())
    }

    /// Decodes a SUBMIT_BATCH payload. Delegates to
    /// [`SubmitBatchRef::decode`] so the owned and borrowed paths can
    /// never disagree.
    pub fn decode(payload: &[u8]) -> Result<SubmitBatch, &'static str> {
        SubmitBatchRef::decode(payload).map(|b| b.to_owned())
    }
}

/// Borrowed view of a SUBMIT_BATCH payload: identical grammar and
/// error strings as [`SubmitBatch::decode`], with each PoC a slice of
/// the frame payload instead of a copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitBatchRef<'a> {
    /// Relationship id from REGISTERED.
    pub rel: u64,
    /// Tag of the first proof; the k-th proof gets `first_tag + k`.
    pub first_tag: u64,
    /// Canonical PoC encodings, borrowed, in submission order.
    pub pocs: Vec<&'a [u8]>,
}

impl<'a> SubmitBatchRef<'a> {
    /// Decodes a SUBMIT_BATCH payload without copying any PoC bytes.
    /// The full grammar is validated (including the trailing-bytes
    /// check) before the caller sees the batch, so size-limit
    /// enforcement downstream still happens strictly after decode —
    /// the same order as the owned path always had.
    pub fn decode(payload: &'a [u8]) -> Result<SubmitBatchRef<'a>, &'static str> {
        if payload.len() < 20 {
            return Err("truncated SUBMIT_BATCH");
        }
        let rel = be_u64(payload);
        let first_tag = be_u64(&payload[8..]);
        let count = be_u32(&payload[16..]) as usize;
        let mut rest = &payload[20..];
        // The frame length is already capped by the decoder, so `count`
        // cannot smuggle an over-allocation past this arithmetic: each
        // item needs at least its 4-byte length prefix.
        if count > rest.len() / 4 + 1 {
            return Err("truncated SUBMIT_BATCH");
        }
        let mut pocs = Vec::with_capacity(count);
        for _ in 0..count {
            if rest.len() < 4 {
                return Err("truncated SUBMIT_BATCH");
            }
            let len = be_u32(rest) as usize;
            rest = &rest[4..];
            if rest.len() < len {
                return Err("truncated SUBMIT_BATCH");
            }
            pocs.push(&rest[..len]);
            rest = &rest[len..];
        }
        if !rest.is_empty() {
            return Err("truncated SUBMIT_BATCH");
        }
        Ok(SubmitBatchRef {
            rel,
            first_tag,
            pocs,
        })
    }

    /// Copies into an owned [`SubmitBatch`].
    pub fn to_owned(self) -> SubmitBatch {
        SubmitBatch {
            rel: self.rel,
            first_tag: self.first_tag,
            pocs: self.pocs.into_iter().map(|p| p.to_vec()).collect(),
        }
    }
}

/// VERDICT payload: one verification result streamed back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerdictMsg {
    /// Relationship the proof was submitted under.
    pub rel: u64,
    /// The client's correlation tag.
    pub tag: u64,
    /// Shard that processed the proof.
    pub shard: u32,
    /// The full in-process result, bit-for-bit.
    pub result: Result<Verdict, VerifyError>,
}

impl VerdictMsg {
    /// Encodes into a VERDICT frame.
    pub fn to_frame(&self) -> Frame {
        let mut b = BytesMut::with_capacity(64);
        b.put_u64(self.rel);
        b.put_u64(self.tag);
        b.put_u32(self.shard);
        put_verify_result(&mut b, &self.result);
        Frame::new(FrameKind::Verdict, b.to_vec())
    }

    /// Decodes a VERDICT payload.
    pub fn decode(payload: &[u8]) -> Result<VerdictMsg, &'static str> {
        let mut b = Bytes::copy_from_slice(payload);
        if b.remaining() < 21 {
            return Err("truncated VERDICT");
        }
        let rel = b.get_u64();
        let tag = b.get_u64();
        let shard = b.get_u32();
        let result = get_verify_result(&mut b)?;
        if b.has_remaining() {
            return Err("truncated VERDICT");
        }
        Ok(VerdictMsg {
            rel,
            tag,
            shard,
            result,
        })
    }
}

fn put_verify_result(b: &mut BytesMut, result: &Result<Verdict, VerifyError>) {
    match result {
        Ok(v) => {
            b.put_u8(0);
            b.put_u64(v.charge);
            b.put_u64(v.edge_claim);
            b.put_u64(v.operator_claim);
            b.put_u64(v.rounds);
        }
        Err(VerifyError::Signature(m)) => {
            b.put_u8(1);
            put_message_error(b, m);
        }
        Err(VerifyError::PlanMismatch) => b.put_u8(2),
        Err(VerifyError::NonceMismatch) => b.put_u8(3),
        Err(VerifyError::SequenceMismatch) => b.put_u8(4),
        Err(VerifyError::ChargeMismatch { claimed, expected }) => {
            b.put_u8(5);
            b.put_u64(*claimed);
            b.put_u64(*expected);
        }
        Err(VerifyError::Replayed) => b.put_u8(6),
        Err(VerifyError::Unregistered) => b.put_u8(7),
    }
}

fn get_verify_result(b: &mut Bytes) -> Result<Result<Verdict, VerifyError>, &'static str> {
    if !b.has_remaining() {
        return Err("truncated VERDICT");
    }
    match b.get_u8() {
        0 => {
            if b.remaining() < 32 {
                return Err("truncated VERDICT");
            }
            Ok(Ok(Verdict {
                charge: b.get_u64(),
                edge_claim: b.get_u64(),
                operator_claim: b.get_u64(),
                rounds: b.get_u64(),
            }))
        }
        1 => Ok(Err(VerifyError::Signature(get_message_error(b)?))),
        2 => Ok(Err(VerifyError::PlanMismatch)),
        3 => Ok(Err(VerifyError::NonceMismatch)),
        4 => Ok(Err(VerifyError::SequenceMismatch)),
        5 => {
            if b.remaining() < 16 {
                return Err("truncated VERDICT");
            }
            Ok(Err(VerifyError::ChargeMismatch {
                claimed: b.get_u64(),
                expected: b.get_u64(),
            }))
        }
        6 => Ok(Err(VerifyError::Replayed)),
        7 => Ok(Err(VerifyError::Unregistered)),
        _ => Err("unknown verdict code"),
    }
}

fn put_message_error(b: &mut BytesMut, m: &MessageError) {
    match m {
        MessageError::BadSignature => b.put_u8(0),
        MessageError::Malformed(s) => {
            b.put_u8(1);
            b.put_u16(intern(MALFORMED_STRINGS, s));
        }
        MessageError::Crypto(c) => {
            b.put_u8(2);
            put_crypto_error(b, c);
        }
    }
}

fn get_message_error(b: &mut Bytes) -> Result<MessageError, &'static str> {
    if !b.has_remaining() {
        return Err("truncated VERDICT");
    }
    match b.get_u8() {
        0 => Ok(MessageError::BadSignature),
        1 => {
            if b.remaining() < 2 {
                return Err("truncated VERDICT");
            }
            let idx = b.get_u16();
            Ok(MessageError::Malformed(resolve(
                MALFORMED_STRINGS,
                idx,
                MALFORMED_FALLBACK,
            )))
        }
        2 => Ok(MessageError::Crypto(get_crypto_error(b)?)),
        _ => Err("unknown signature sub-code"),
    }
}

fn put_crypto_error(b: &mut BytesMut, c: &CryptoError) {
    match c {
        CryptoError::MessageTooLarge => b.put_u8(0),
        CryptoError::InvalidKeySize(bits) => {
            b.put_u8(1);
            b.put_u64(*bits as u64);
        }
        CryptoError::KeyTooSmallForDigest => b.put_u8(2),
        CryptoError::SignatureLength { expected, got } => {
            b.put_u8(3);
            b.put_u64(*expected as u64);
            b.put_u64(*got as u64);
        }
        CryptoError::BadSignature => b.put_u8(4),
        CryptoError::Encoding(s) => {
            b.put_u8(5);
            b.put_u16(intern(ENCODING_STRINGS, s));
        }
        CryptoError::Internal => b.put_u8(6),
    }
}

fn get_crypto_error(b: &mut Bytes) -> Result<CryptoError, &'static str> {
    if !b.has_remaining() {
        return Err("truncated VERDICT");
    }
    match b.get_u8() {
        0 => Ok(CryptoError::MessageTooLarge),
        1 => {
            if b.remaining() < 8 {
                return Err("truncated VERDICT");
            }
            Ok(CryptoError::InvalidKeySize(b.get_u64() as usize))
        }
        2 => Ok(CryptoError::KeyTooSmallForDigest),
        3 => {
            if b.remaining() < 16 {
                return Err("truncated VERDICT");
            }
            Ok(CryptoError::SignatureLength {
                expected: b.get_u64() as usize,
                got: b.get_u64() as usize,
            })
        }
        4 => Ok(CryptoError::BadSignature),
        5 => {
            if b.remaining() < 2 {
                return Err("truncated VERDICT");
            }
            let idx = b.get_u16();
            Ok(CryptoError::Encoding(resolve(
                ENCODING_STRINGS,
                idx,
                ENCODING_FALLBACK,
            )))
        }
        6 => Ok(CryptoError::Internal),
        _ => Err("unknown crypto code"),
    }
}

/// STATS payload: ingress counters. Also the type the server reports
/// at shutdown (`IngressReport::ingress`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Connections fully closed and reaped.
    pub connections_closed: u64,
    /// Connections currently open (snapshot-only; 0 in final reports).
    pub open_connections: u64,
    /// REGISTER requests granted.
    pub registers: u64,
    /// Proofs relayed into the service.
    pub submissions: u64,
    /// Verdicts streamed back to clients.
    pub verdicts: u64,
    /// Verdicts that were `Ok`.
    pub accepted: u64,
    /// Verdicts that were rejections for cause (bad signature, replay,
    /// plan mismatch, …) — a malformed *proof*, never a shed.
    pub rejected_malformed: u64,
    /// Verdicts whose client was already gone (discarded, counted).
    pub orphaned_verdicts: u64,
    /// Protocol violations observed (each closes its connection).
    pub protocol_errors: u64,
    /// Transitions of some connection into the paused (backpressured)
    /// state.
    pub pauses: u64,
    /// Submissions in flight inside the service at snapshot time.
    pub service_outstanding: u64,
    /// Submissions shed by admission control with a BUSY frame. Every
    /// shed is answered, so `shed_overload` equals the BUSY frames
    /// (scope Submit) sent — never a silent drop.
    pub shed_overload: u64,
    /// Connections turned away at accept time with BUSY (scope
    /// Connection).
    pub shed_connections: u64,
    /// Connections placed in quarantine by the misbehavior score.
    pub quarantines: u64,
    /// Connections closed for exceeding the misbehavior limit.
    pub misbehavior_closes: u64,
}

impl StatsSnapshot {
    const FIELDS: usize = 16;

    /// Encodes into a frame of the given kind (STATS).
    pub fn to_frame(&self, kind: FrameKind) -> Frame {
        let mut b = BytesMut::with_capacity(8 * Self::FIELDS);
        for v in [
            self.connections,
            self.connections_closed,
            self.open_connections,
            self.registers,
            self.submissions,
            self.verdicts,
            self.accepted,
            self.rejected_malformed,
            self.orphaned_verdicts,
            self.protocol_errors,
            self.pauses,
            self.service_outstanding,
            self.shed_overload,
            self.shed_connections,
            self.quarantines,
            self.misbehavior_closes,
        ] {
            b.put_u64(v);
        }
        Frame::new(kind, b.to_vec())
    }

    /// Decodes a STATS payload.
    pub fn decode(payload: &[u8]) -> Result<StatsSnapshot, &'static str> {
        if payload.len() != 8 * Self::FIELDS {
            return Err("truncated STATS");
        }
        let mut b = Bytes::copy_from_slice(payload);
        Ok(StatsSnapshot {
            connections: b.get_u64(),
            connections_closed: b.get_u64(),
            open_connections: b.get_u64(),
            registers: b.get_u64(),
            submissions: b.get_u64(),
            verdicts: b.get_u64(),
            accepted: b.get_u64(),
            rejected_malformed: b.get_u64(),
            orphaned_verdicts: b.get_u64(),
            protocol_errors: b.get_u64(),
            pauses: b.get_u64(),
            service_outstanding: b.get_u64(),
            shed_overload: b.get_u64(),
            shed_connections: b.get_u64(),
            quarantines: b.get_u64(),
            misbehavior_closes: b.get_u64(),
        })
    }

    /// Renders the counters in Prometheus text exposition format.
    ///
    /// Counter names are prefixed `tlc_ingress_`; the two point-in-time
    /// values (`open_connections`, `service_outstanding`) are gauges.
    pub fn to_prometheus(&self, out: &mut String) {
        use std::fmt::Write as _;
        let counters = [
            ("connections_total", self.connections),
            ("connections_closed_total", self.connections_closed),
            ("registers_total", self.registers),
            ("submissions_total", self.submissions),
            ("verdicts_total", self.verdicts),
            ("accepted_total", self.accepted),
            ("rejected_malformed_total", self.rejected_malformed),
            ("orphaned_verdicts_total", self.orphaned_verdicts),
            ("protocol_errors_total", self.protocol_errors),
            ("pauses_total", self.pauses),
            ("shed_overload_total", self.shed_overload),
            ("shed_connections_total", self.shed_connections),
            ("quarantines_total", self.quarantines),
            ("misbehavior_closes_total", self.misbehavior_closes),
        ];
        for (name, v) in counters {
            let _ = writeln!(out, "# TYPE tlc_ingress_{name} counter");
            let _ = writeln!(out, "tlc_ingress_{name} {v}");
        }
        let gauges = [
            ("open_connections", self.open_connections),
            ("service_outstanding", self.service_outstanding),
        ];
        for (name, v) in gauges {
            let _ = writeln!(out, "# TYPE tlc_ingress_{name} gauge");
            let _ = writeln!(out, "tlc_ingress_{name} {v}");
        }
    }
}

/// Whether a BUSY frame shed one submission or the whole connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusyScope {
    /// The connection itself was refused (sent at accept time, before
    /// any HELLO exchange); reconnect after the delay.
    Connection = 0,
    /// One submission was shed; `rel`/`tag` identify it. Resubmitting
    /// after the delay is safe — a shed proof never reached the
    /// replay cache.
    Submit = 1,
}

/// BUSY payload: typed load shedding — the overload answer that
/// replaces a silent drop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusyMsg {
    /// What was shed.
    pub scope: BusyScope,
    /// Server's suggested backoff before retrying, in milliseconds.
    pub retry_after_ms: u32,
    /// Relationship of the shed submission (0 for Connection scope).
    pub rel: u64,
    /// Client tag of the shed submission (0 for Connection scope).
    pub tag: u64,
}

impl BusyMsg {
    /// Encodes into a BUSY frame.
    pub fn to_frame(&self) -> Frame {
        let mut b = BytesMut::with_capacity(21);
        b.put_u8(self.scope as u8);
        b.put_u32(self.retry_after_ms);
        b.put_u64(self.rel);
        b.put_u64(self.tag);
        Frame::new(FrameKind::Busy, b.to_vec())
    }

    /// Decodes a BUSY payload.
    pub fn decode(payload: &[u8]) -> Result<BusyMsg, &'static str> {
        let mut b = Bytes::copy_from_slice(payload);
        if b.remaining() < 21 {
            return Err("truncated BUSY");
        }
        let scope = match b.get_u8() {
            0 => BusyScope::Connection,
            1 => BusyScope::Submit,
            _ => return Err("unknown BUSY scope"),
        };
        Ok(BusyMsg {
            scope,
            retry_after_ms: b.get_u32(),
            rel: b.get_u64(),
            tag: b.get_u64(),
        })
    }
}

/// SETTLE payload: a three-party roaming settlement record submitted
/// for conservation audit (DESIGN §14). The server replays the
/// conservation law `home + visited + vendor == charged` and answers
/// with a SETTLE_VERDICT; a split that fails the law is the roaming
/// analogue of a charge that does not replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SettleMsg {
    /// Relationship id from REGISTERED.
    pub rel: u64,
    /// Client-chosen correlation tag, echoed in the SETTLE_VERDICT.
    pub tag: u64,
    /// Which operator served the settled volume.
    pub serving: Serving,
    /// The negotiated charging volume being split.
    pub charged: u64,
    /// The proposed three-party split.
    pub split: SettlementSplit,
}

impl SettleMsg {
    /// Encodes into a SETTLE frame.
    pub fn to_frame(&self) -> Frame {
        let mut b = BytesMut::with_capacity(49);
        b.put_u64(self.rel);
        b.put_u64(self.tag);
        b.put_u8(self.serving.code());
        b.put_u64(self.charged);
        b.put_u64(self.split.home);
        b.put_u64(self.split.visited);
        b.put_u64(self.split.vendor);
        Frame::new(FrameKind::Settle, b.to_vec())
    }

    /// Decodes a SETTLE payload.
    pub fn decode(payload: &[u8]) -> Result<SettleMsg, &'static str> {
        if payload.len() != 49 {
            return Err("truncated SETTLE");
        }
        let mut b = Bytes::copy_from_slice(payload);
        let rel = b.get_u64();
        let tag = b.get_u64();
        let serving = Serving::from_code(b.get_u8()).ok_or("unknown serving code")?;
        Ok(SettleMsg {
            rel,
            tag,
            serving,
            charged: b.get_u64(),
            split: SettlementSplit {
                home: b.get_u64(),
                visited: b.get_u64(),
                vendor: b.get_u64(),
            },
        })
    }
}

/// What the server concluded about a submitted settlement split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SettleResult {
    /// `home + visited + vendor == charged`: the split conserves.
    Conserved = 0,
    /// The split does not sum to the charged volume.
    SplitMismatch = 1,
}

/// SETTLE_VERDICT payload: the conservation audit's answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SettleVerdictMsg {
    /// Relationship the settlement was submitted under.
    pub rel: u64,
    /// The client's correlation tag.
    pub tag: u64,
    /// The audit result.
    pub result: SettleResult,
}

impl SettleVerdictMsg {
    /// Encodes into a SETTLE_VERDICT frame.
    pub fn to_frame(&self) -> Frame {
        let mut b = BytesMut::with_capacity(17);
        b.put_u64(self.rel);
        b.put_u64(self.tag);
        b.put_u8(self.result as u8);
        Frame::new(FrameKind::SettleVerdict, b.to_vec())
    }

    /// Decodes a SETTLE_VERDICT payload.
    pub fn decode(payload: &[u8]) -> Result<SettleVerdictMsg, &'static str> {
        if payload.len() != 17 {
            return Err("truncated SETTLE_VERDICT");
        }
        let mut b = Bytes::copy_from_slice(payload);
        let rel = b.get_u64();
        let tag = b.get_u64();
        let result = match b.get_u8() {
            0 => SettleResult::Conserved,
            1 => SettleResult::SplitMismatch,
            _ => return Err("unknown settlement result"),
        };
        Ok(SettleVerdictMsg { rel, tag, result })
    }
}

/// ERROR payload: session- and service-level failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Mirrors [`ServiceError::ShardDown`](crate::verify::service::ServiceError::ShardDown).
    ShardDown {
        /// Index of the unreachable shard.
        shard: u32,
    },
    /// Mirrors [`ServiceError::ResultsClosed`](crate::verify::service::ServiceError::ResultsClosed).
    ResultsClosed {
        /// Submissions that will never produce a result.
        outstanding: u32,
    },
    /// Mirrors [`ServiceError::UnknownRelationship`](crate::verify::service::ServiceError::UnknownRelationship).
    UnknownRelationship(u64),
    /// The server speaks a different protocol version.
    BadVersion {
        /// The server's version.
        server: u16,
    },
    /// The peer broke the session protocol; the connection closes.
    Protocol(&'static str),
    /// The server is shutting down.
    Shutdown,
}

impl Fault {
    /// Encodes into an ERROR frame.
    pub fn to_frame(&self) -> Frame {
        let mut b = BytesMut::with_capacity(12);
        match self {
            Fault::ShardDown { shard } => {
                b.put_u8(0);
                b.put_u32(*shard);
            }
            Fault::ResultsClosed { outstanding } => {
                b.put_u8(1);
                b.put_u32(*outstanding);
            }
            Fault::UnknownRelationship(rel) => {
                b.put_u8(2);
                b.put_u64(*rel);
            }
            Fault::BadVersion { server } => {
                b.put_u8(3);
                b.put_u16(*server);
            }
            Fault::Protocol(detail) => {
                b.put_u8(4);
                b.put_u16(intern(PROTOCOL_STRINGS, detail));
            }
            Fault::Shutdown => b.put_u8(5),
        }
        Frame::new(FrameKind::Error, b.to_vec())
    }

    /// Decodes an ERROR payload.
    pub fn decode(payload: &[u8]) -> Result<Fault, &'static str> {
        let mut b = Bytes::copy_from_slice(payload);
        if !b.has_remaining() {
            return Err("truncated ERROR");
        }
        match b.get_u8() {
            0 => {
                if b.remaining() < 4 {
                    return Err("truncated ERROR");
                }
                Ok(Fault::ShardDown { shard: b.get_u32() })
            }
            1 => {
                if b.remaining() < 4 {
                    return Err("truncated ERROR");
                }
                Ok(Fault::ResultsClosed {
                    outstanding: b.get_u32(),
                })
            }
            2 => {
                if b.remaining() < 8 {
                    return Err("truncated ERROR");
                }
                Ok(Fault::UnknownRelationship(b.get_u64()))
            }
            3 => {
                if b.remaining() < 2 {
                    return Err("truncated ERROR");
                }
                Ok(Fault::BadVersion {
                    server: b.get_u16(),
                })
            }
            4 => {
                if b.remaining() < 2 {
                    return Err("truncated ERROR");
                }
                let idx = b.get_u16();
                Ok(Fault::Protocol(resolve(
                    PROTOCOL_STRINGS,
                    idx,
                    PROTOCOL_FALLBACK,
                )))
            }
            5 => Ok(Fault::Shutdown),
            _ => Err("unknown error code"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::service::ServiceError;

    #[test]
    fn every_verify_error_round_trips() {
        let samples: Vec<Result<Verdict, VerifyError>> = vec![
            Ok(Verdict {
                charge: 1,
                edge_claim: 2,
                operator_claim: 3,
                rounds: 4,
            }),
            Err(VerifyError::Signature(MessageError::BadSignature)),
            Err(VerifyError::Signature(MessageError::Malformed(
                "CDA role matches finalizer",
            ))),
            Err(VerifyError::Signature(MessageError::Crypto(
                CryptoError::SignatureLength {
                    expected: 128,
                    got: 96,
                },
            ))),
            Err(VerifyError::Signature(MessageError::Crypto(
                CryptoError::Encoding("EME header"),
            ))),
            Err(VerifyError::PlanMismatch),
            Err(VerifyError::NonceMismatch),
            Err(VerifyError::SequenceMismatch),
            Err(VerifyError::ChargeMismatch {
                claimed: 7,
                expected: 9,
            }),
            Err(VerifyError::Replayed),
            Err(VerifyError::Unregistered),
        ];
        for result in samples {
            let msg = VerdictMsg {
                rel: 3,
                tag: 42,
                shard: 1,
                result: result.clone(),
            };
            let frame = msg.to_frame();
            let back = VerdictMsg::decode(&frame.payload).unwrap();
            assert_eq!(back.result, result);
            assert_eq!((back.rel, back.tag, back.shard), (3, 42, 1));
        }
    }

    #[test]
    fn unknown_string_index_resolves_to_fallback() {
        // A server newer than this client may intern strings we don't
        // know; the decode must stay total.
        let mut b = BytesMut::new();
        b.put_u8(1); // Signature
        b.put_u8(1); // Malformed
        b.put_u16(u16::MAX);
        let mut bytes = Bytes::copy_from_slice(&b.to_vec());
        let got = get_verify_result(&mut bytes).unwrap();
        assert_eq!(
            got,
            Err(VerifyError::Signature(MessageError::Malformed(
                MALFORMED_FALLBACK
            )))
        );
    }

    #[test]
    fn fault_round_trips() {
        let faults = [
            Fault::ShardDown { shard: 2 },
            Fault::ResultsClosed { outstanding: 17 },
            Fault::UnknownRelationship(5),
            Fault::BadVersion { server: 9 },
            Fault::Protocol("bad magic"),
            Fault::Shutdown,
        ];
        for f in faults {
            let frame = f.to_frame();
            assert_eq!(frame.kind, FrameKind::Error);
            assert_eq!(Fault::decode(&frame.payload), Ok(f));
        }
    }

    #[test]
    fn protocol_strings_cover_every_server_detail() {
        // Each &'static str the server or codec can put in a
        // Fault::Protocol must intern, or clients would see only the
        // fallback. This test keeps the table honest.
        for s in PROTOCOL_STRINGS {
            assert_ne!(intern(PROTOCOL_STRINGS, s), u16::MAX);
        }
        // ServiceError is a distinct surface; Fault codes 0..=2 mirror
        // the first three variants and BUSY frames carry Overloaded.
        let _exhaustive = |e: ServiceError| match e {
            ServiceError::ShardDown { .. }
            | ServiceError::ResultsClosed { .. }
            | ServiceError::UnknownRelationship(_)
            | ServiceError::Overloaded { .. } => {}
        };
    }

    #[test]
    fn busy_round_trips_and_rejects_garbage() {
        for msg in [
            BusyMsg {
                scope: BusyScope::Connection,
                retry_after_ms: 200,
                rel: 0,
                tag: 0,
            },
            BusyMsg {
                scope: BusyScope::Submit,
                retry_after_ms: 50,
                rel: 7,
                tag: 0xDEAD_BEEF,
            },
        ] {
            let frame = msg.to_frame();
            assert_eq!(frame.kind, FrameKind::Busy);
            assert_eq!(frame.payload.len(), 21);
            assert_eq!(BusyMsg::decode(&frame.payload), Ok(msg));
        }
        assert_eq!(BusyMsg::decode(&[1, 0, 0]), Err("truncated BUSY"));
        let mut bad = BusyMsg {
            scope: BusyScope::Submit,
            retry_after_ms: 1,
            rel: 1,
            tag: 1,
        }
        .to_frame()
        .payload;
        bad[0] = 9;
        assert_eq!(BusyMsg::decode(&bad), Err("unknown BUSY scope"));
    }

    #[test]
    fn settle_round_trips_and_rejects_garbage() {
        for msg in [
            SettleMsg {
                rel: 7,
                tag: 99,
                serving: Serving::Home,
                charged: 1000,
                split: SettlementSplit {
                    home: 800,
                    visited: 0,
                    vendor: 200,
                },
            },
            SettleMsg {
                rel: u64::MAX,
                tag: 0,
                serving: Serving::Visited,
                charged: u64::MAX,
                split: SettlementSplit {
                    home: 1,
                    visited: 2,
                    vendor: 3,
                },
            },
        ] {
            let frame = msg.to_frame();
            assert_eq!(frame.kind, FrameKind::Settle);
            assert_eq!(frame.payload.len(), 49);
            assert_eq!(SettleMsg::decode(&frame.payload), Ok(msg));
        }
        // Truncation at every prefix length.
        let whole = SettleMsg {
            rel: 1,
            tag: 2,
            serving: Serving::Home,
            charged: 3,
            split: SettlementSplit::ZERO,
        }
        .to_frame()
        .payload;
        for cut in 0..whole.len() {
            assert_eq!(
                SettleMsg::decode(&whole[..cut]),
                Err("truncated SETTLE"),
                "cut {cut}"
            );
        }
        // Trailing bytes are a truncation-class violation too.
        let mut long = whole.clone();
        long.push(0);
        assert_eq!(SettleMsg::decode(&long), Err("truncated SETTLE"));
        // Unknown serving code.
        let mut bad = whole;
        bad[16] = 2;
        assert_eq!(SettleMsg::decode(&bad), Err("unknown serving code"));
    }

    #[test]
    fn settle_verdict_round_trips_and_rejects_garbage() {
        for result in [SettleResult::Conserved, SettleResult::SplitMismatch] {
            let msg = SettleVerdictMsg {
                rel: 5,
                tag: 77,
                result,
            };
            let frame = msg.to_frame();
            assert_eq!(frame.kind, FrameKind::SettleVerdict);
            assert_eq!(frame.payload.len(), 17);
            assert_eq!(SettleVerdictMsg::decode(&frame.payload), Ok(msg));
        }
        assert_eq!(
            SettleVerdictMsg::decode(&[0; 5]),
            Err("truncated SETTLE_VERDICT")
        );
        let mut bad = SettleVerdictMsg {
            rel: 1,
            tag: 1,
            result: SettleResult::Conserved,
        }
        .to_frame()
        .payload;
        bad[16] = 7;
        assert_eq!(
            SettleVerdictMsg::decode(&bad),
            Err("unknown settlement result")
        );
    }

    #[test]
    fn stats_snapshot_round_trips_all_sixteen_fields() {
        let s = StatsSnapshot {
            connections: 1,
            connections_closed: 2,
            open_connections: 3,
            registers: 4,
            submissions: 5,
            verdicts: 6,
            accepted: 7,
            rejected_malformed: 8,
            orphaned_verdicts: 9,
            protocol_errors: 10,
            pauses: 11,
            service_outstanding: 12,
            shed_overload: 13,
            shed_connections: 14,
            quarantines: 15,
            misbehavior_closes: 16,
        };
        let frame = s.to_frame(FrameKind::Stats);
        assert_eq!(frame.payload.len(), 8 * 16);
        assert_eq!(StatsSnapshot::decode(&frame.payload), Ok(s));
        assert_eq!(
            StatsSnapshot::decode(&frame.payload[..8 * 12]),
            Err("truncated STATS")
        );
    }

    #[test]
    fn prometheus_dump_names_every_field() {
        let s = StatsSnapshot {
            shed_overload: 3,
            ..StatsSnapshot::default()
        };
        let mut out = String::new();
        s.to_prometheus(&mut out);
        assert!(out.contains("tlc_ingress_shed_overload_total 3\n"));
        assert!(out.contains("# TYPE tlc_ingress_open_connections gauge"));
        // One TYPE line and one sample line per field.
        assert_eq!(out.lines().count(), 2 * 16);
    }
}
