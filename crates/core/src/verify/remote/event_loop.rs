//! Readiness-driven, multi-shard ingress event loop (DESIGN.md §12).
//!
//! The legacy loop in [`super`] walks every connection each 200 µs
//! tick; cost grows with the table whether peers are talking or not.
//! This backend instead blocks in the kernel
//! ([`tlc_net::readiness::Readiness`]: epoll on Linux, poll(2)
//! elsewhere) and touches only sockets with something to say, so a
//! mostly-idle C100K table costs near zero between bursts.
//!
//! Three structural differences from the tick loop, none visible on
//! the wire:
//!
//! * **Shards.** With `SO_REUSEPORT` available, `config.shards`
//!   acceptor/event threads each bind the same address and the kernel
//!   spreads incoming connections across them. Each shard owns its
//!   [`IngressCore`] — its slice of the connection table, its DRR
//!   lanes, its shed ladder, and its own [`VerifierService`] pool — so
//!   there is no cross-shard locking at all. A connection lives and
//!   dies on the shard that accepted it, which is what makes
//!   shard-local relationship ids and misbehavior scores sound.
//! * **Pooled zero-copy reads.** Socket bytes land in buffers checked
//!   out of a bounded [`BufferPool`]; complete frames are parsed in
//!   place with [`split_frame`] and handed to the protocol core as
//!   borrowed views — no per-frame allocation, no copy between the
//!   read buffer and the decoder. When the pool is empty the shard
//!   *defers* the read (masks read interest, counts
//!   [`PoolStats::exhausted`]) instead of allocating unboundedly;
//!   level-triggered readiness re-reports the socket once a buffer
//!   frees up.
//! * **Interest masking as backpressure.** Where the tick loop calls
//!   `pause()`/`resume()` per tick, this loop additionally masks read
//!   interest so a paused connection costs zero wakeups.
//!
//! Everything protocol-visible — BUSY semantics, the shed ladder,
//! quarantine scoring, verdict routing — is the same [`IngressCore`]
//! code both backends share; the conformance suite runs against both.

use super::{IngressCore, IngressReport, IngressServer, IngressStats, Phase};
use crate::verify::service::ServiceReport;
use std::sync::atomic::AtomicBool;

/// Entry point from [`IngressServer::run`] for the epoll backend.
/// Falls back to the legacy tick loop when no readiness syscall
/// backend exists on this target (non-Unix builds).
pub(super) fn run(server: IngressServer, stop: &AtomicBool) -> IngressReport {
    if !tlc_net::Readiness::available() {
        return server.run_poll(stop);
    }
    imp::run(server, stop)
}

/// Merges per-shard reports: ingress counters and pool counters sum;
/// service shard lists concatenate with re-numbered shard ids;
/// throughput is recomputed over the longest shard's elapsed time.
fn merge_reports(
    parts: Vec<(ServiceReport, IngressStats, tlc_net::PoolStats)>,
    join_panics: usize,
) -> IngressReport {
    let mut service = ServiceReport {
        shards: Vec::new(),
        accepted: 0,
        rejected: 0,
        replayed: 0,
        batches: 0,
        worker_panics: join_panics,
        unclaimed_results: 0,
        elapsed: std::time::Duration::ZERO,
        pocs_per_hour: 0.0,
    };
    let mut ingress = IngressStats::default();
    let mut pool = tlc_net::PoolStats::default();
    for (sr, ig, ps) in parts {
        let base = service.shards.len();
        for mut sh in sr.shards {
            sh.shard += base;
            service.shards.push(sh);
        }
        service.accepted += sr.accepted;
        service.rejected += sr.rejected;
        service.replayed += sr.replayed;
        service.batches += sr.batches;
        service.worker_panics += sr.worker_panics;
        service.unclaimed_results += sr.unclaimed_results;
        service.elapsed = service.elapsed.max(sr.elapsed);
        sum_stats(&mut ingress, &ig);
        pool.checkouts += ps.checkouts;
        pool.exhausted += ps.exhausted;
        pool.recycles += ps.recycles;
    }
    let processed = service.accepted + service.rejected;
    let secs = service.elapsed.as_secs_f64();
    service.pocs_per_hour = if secs > 0.0 {
        processed as f64 / secs * 3600.0
    } else {
        0.0
    };
    IngressReport {
        service,
        ingress,
        pool,
    }
}

/// Sums every counter of the frozen 16-field stats snapshot. The two
/// gauges (`open_connections`, `service_outstanding`) are zero in
/// per-shard final reports, so summing is correct for them too.
fn sum_stats(acc: &mut IngressStats, s: &IngressStats) {
    acc.connections += s.connections;
    acc.connections_closed += s.connections_closed;
    acc.open_connections += s.open_connections;
    acc.registers += s.registers;
    acc.submissions += s.submissions;
    acc.verdicts += s.verdicts;
    acc.accepted += s.accepted;
    acc.rejected_malformed += s.rejected_malformed;
    acc.orphaned_verdicts += s.orphaned_verdicts;
    acc.protocol_errors += s.protocol_errors;
    acc.pauses += s.pauses;
    acc.service_outstanding += s.service_outstanding;
    acc.shed_overload += s.shed_overload;
    acc.shed_connections += s.shed_connections;
    acc.quarantines += s.quarantines;
    acc.misbehavior_closes += s.misbehavior_closes;
}

#[cfg(not(unix))]
mod imp {
    use super::*;

    /// Unreachable in practice: `Readiness::available()` is false off
    /// Unix, so [`super::run`] already took the legacy path.
    pub(super) fn run(server: IngressServer, stop: &AtomicBool) -> IngressReport {
        server.run_poll(stop)
    }
}

#[cfg(unix)]
mod imp {
    use super::{merge_reports, IngressCore, IngressReport, IngressServer, IngressStats, Phase};
    use crate::verify::service::{ServiceReport, VerifierService};
    use std::collections::{HashMap, HashSet};
    use std::io;
    use std::net::TcpListener;
    use std::os::unix::io::AsRawFd;
    use std::sync::atomic::{AtomicBool, Ordering};
    use tlc_net::bufpool::{BufferPool, PooledBuf};
    use tlc_net::readiness::{Event, Interest, Readiness, Token};
    use tlc_net::wire::{split_frame, HEADER_LEN};
    use tlc_net::PoolStats;

    pub(super) fn run(server: IngressServer, stop: &AtomicBool) -> IngressReport {
        let IngressServer {
            listener,
            service_config,
            reuseport,
            core,
        } = server;
        let config = core.config;
        let shards = if reuseport { config.shards.max(1) } else { 1 };

        if shards == 1 {
            let part = shard_loop(core, listener, stop);
            return merge_reports(vec![part], 0);
        }

        // Multi-shard: gather the extra SO_REUSEPORT listeners first —
        // a failed bind just shrinks the shard count (the kernel only
        // balances across sockets that exist).
        let addr = listener.local_addr().ok();
        let mut listeners = vec![listener];
        if let Some(addr) = addr {
            for _ in 1..shards {
                match tlc_net::try_bind_reuseport(addr) {
                    Some(l) => listeners.push(l),
                    None => break,
                }
            }
        }
        if listeners.len() == 1 {
            if let Some(only) = listeners.pop() {
                let part = shard_loop(core, only, stop);
                return merge_reports(vec![part], 0);
            }
        }

        // Retire the bind-time service (it has processed nothing — run
        // starts before any accept) and split the worker budget across
        // per-shard pools so total worker threads stay comparable.
        let shards = listeners.len();
        let IngressCore { service, .. } = core;
        let retired = service.finish();
        let mut per_shard = service_config;
        per_shard.workers = (service_config.workers.div_ceil(shards)).max(1);

        let mut parts = Vec::new();
        let mut join_panics = retired.worker_panics;
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for listener in listeners {
                let core = IngressCore::new(VerifierService::with_config(per_shard), config);
                handles.push(s.spawn(move || shard_loop(core, listener, stop)));
            }
            for h in handles {
                match h.join() {
                    Ok(part) => parts.push(part),
                    Err(_) => join_panics += 1,
                }
            }
        });
        merge_reports(parts, join_panics)
    }

    /// One shard: a readiness registry, a buffer pool, and a private
    /// [`IngressCore`]. Returns the shard's final reports.
    fn shard_loop(
        core: IngressCore,
        listener: TcpListener,
        stop: &AtomicBool,
    ) -> (ServiceReport, IngressStats, PoolStats) {
        match Shard::new(core, listener) {
            Ok(shard) => shard.run(stop),
            // Readiness construction failed (fd exhaustion, odd
            // container): degrade to the tick loop over the same core
            // rather than dying.
            Err(parts) => {
                let (core, listener) = *parts;
                fallback_loop(core, listener, stop)
            }
        }
    }

    /// The legacy tick loop over a bare core + listener, for shards
    /// that could not build a readiness registry.
    fn fallback_loop(
        mut core: IngressCore,
        listener: TcpListener,
        stop: &AtomicBool,
    ) -> (ServiceReport, IngressStats, PoolStats) {
        while !stop.load(Ordering::Relaxed) {
            core.deal_credits();
            let mut activity = accept_into(&listener, &mut core).0;
            activity |= core.poll_conns();
            activity |= core.pump_verdicts();
            core.apply_backpressure();
            activity |= core.flush_and_reap();
            if !activity {
                std::thread::sleep(core.config.poll_sleep);
            }
        }
        let ingress = core.shutdown_notices();
        (core.service.finish(), ingress, PoolStats::default())
    }

    /// Accepts every pending connection into `core`. Returns
    /// `(any_accepted, new_indices)`.
    fn accept_into(listener: &TcpListener, core: &mut IngressCore) -> (bool, Vec<usize>) {
        let mut any = false;
        let mut admitted = Vec::new();
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    any = true;
                    if let Some(i) = core.admit(stream) {
                        admitted.push(i);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        (any, admitted)
    }

    /// Socket reads per connection per wakeup. Bounds how long one
    /// chatty peer can hold the loop; level-triggered readiness
    /// re-reports whatever is left.
    const READS_PER_WAKEUP: usize = 4;

    struct Shard {
        core: IngressCore,
        listener: TcpListener,
        ready: Readiness,
        pool: BufferPool,
        /// conn id -> buffer holding a partial frame between wakeups.
        bufs: HashMap<u64, PooledBuf>,
        /// conn id -> current index in `core.conns` (kept exact across
        /// `swap_remove`).
        index: HashMap<u64, usize>,
        /// conn id -> interest currently registered with the kernel,
        /// to skip no-op `modify` syscalls.
        armed: HashMap<u64, Interest>,
        /// Connections whose read was deferred because the pool was
        /// empty; re-armed as buffers return.
        deferred: HashSet<u64>,
        /// Last observed global-defer verdict; a transition triggers a
        /// full interest sweep.
        prev_global: bool,
    }

    impl Shard {
        fn new(
            core: IngressCore,
            listener: TcpListener,
        ) -> Result<Shard, Box<(IngressCore, TcpListener)>> {
            let mut ready = match Readiness::new() {
                Ok(r) => r,
                Err(_) => return Err(Box::new((core, listener))),
            };
            if ready
                .register(listener.as_raw_fd(), Token::LISTENER, Interest::READ)
                .is_err()
            {
                return Err(Box::new((core, listener)));
            }
            // One max-size frame per buffer: a full buffer therefore
            // always contains a complete frame or an oversize error,
            // so parsing can never deadlock on "need more room".
            let buf_size = HEADER_LEN + core.config.max_payload as usize;
            let capacity = (core.config.max_conns / 4).clamp(64, 512);
            let pool = BufferPool::new(capacity, buf_size);
            Ok(Shard {
                core,
                listener,
                ready,
                pool,
                bufs: HashMap::new(),
                index: HashMap::new(),
                armed: HashMap::new(),
                deferred: HashSet::new(),
                prev_global: false,
            })
        }

        fn run(mut self, stop: &AtomicBool) -> (ServiceReport, IngressStats, PoolStats) {
            let mut events: Vec<Event> = Vec::new();
            let mut touched: Vec<usize> = Vec::new();
            let mut scratch_ids: Vec<u64> = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                self.core.deal_credits();
                // Verdicts come from worker threads the kernel can't
                // wake us for, so cap the sleep while any are pending.
                let timeout = if self.core.routes.is_empty() { 10 } else { 1 };
                match self.ready.wait(&mut events, timeout) {
                    Ok(_) => {}
                    Err(_) => {
                        // A broken registry would spin; breathe instead.
                        std::thread::sleep(self.core.config.poll_sleep);
                        continue;
                    }
                }
                for ev in events.iter().copied() {
                    if ev.token == Token::LISTENER {
                        self.accept_ready();
                    } else {
                        self.conn_event(ev);
                    }
                }

                // Verdict completions: refresh exactly the connections
                // that got frames queued or windows freed. Indices are
                // captured as ids first because refresh can reorder
                // the table (swap_remove).
                touched.clear();
                self.core.pump_verdicts_into(&mut touched);
                scratch_ids.clear();
                for &i in &touched {
                    if let Some(c) = self.core.conns.get(i) {
                        scratch_ids.push(c.id);
                    }
                }
                for &id in &scratch_ids {
                    self.refresh_id(id);
                }

                // Quarantine sentences tick per loop iteration, like
                // the legacy loop ticks per poll iteration.
                if self.core.quarantined > 0 {
                    touched.clear();
                    self.core.tick_quarantines(&mut touched);
                    scratch_ids.clear();
                    for &i in &touched {
                        if let Some(c) = self.core.conns.get(i) {
                            scratch_ids.push(c.id);
                        }
                    }
                    for &id in &scratch_ids {
                        self.refresh_id(id);
                    }
                }

                // Ladder transitions pause/resume the whole table.
                let global = self.core.global_defer();
                if global != self.prev_global {
                    self.prev_global = global;
                    self.sweep_all();
                }

                // Buffers came back: wake the starved readers.
                if !self.deferred.is_empty() && self.pool.available() > 0 {
                    scratch_ids.clear();
                    scratch_ids.extend(self.deferred.drain());
                    for &id in &scratch_ids {
                        self.refresh_id(id);
                    }
                }
            }
            let pool_stats = self.pool.stats();
            // Drop retained buffers before the pool's stats were taken?
            // No: stats count checkouts/recycles, and buffers still
            // held at shutdown are intentionally *not* recycles.
            let ingress = self.core.shutdown_notices();
            (self.core.service.finish(), ingress, pool_stats)
        }

        /// Drains the accept queue, registering every admitted socket
        /// for readable events under its connection id.
        fn accept_ready(&mut self) {
            let (_, admitted) = accept_into(&self.listener, &mut self.core);
            for i in admitted {
                let id = self.core.conns[i].id;
                let fd = self.core.conns[i].driver.stream().as_raw_fd();
                self.index.insert(id, i);
                if self.ready.register(fd, Token(id), Interest::READ).is_ok() {
                    self.armed.insert(id, Interest::READ);
                } else {
                    // Unwatchable socket: close it now rather than
                    // carrying a connection that can never wake us.
                    self.core.conns[i].phase = Phase::Closed;
                    self.remove_at(i);
                }
            }
        }

        /// One readiness notification for a connection.
        fn conn_event(&mut self, ev: Event) {
            let id = ev.token.0;
            let Some(&i) = self.index.get(&id) else {
                // Reaped earlier in this same batch.
                return;
            };
            if ev.readable || ev.closed {
                self.read_conn(i);
            }
            // Writable (outbox draining), closed, or post-read state
            // changes all funnel through one refresh.
            self.refresh_id(id);
        }

        /// Reads and processes inbound bytes for connection `i`,
        /// zero-copy out of a pooled buffer.
        fn read_conn(&mut self, i: usize) {
            if self.core.conns[i].phase == Phase::Closed || self.core.conns[i].driver.paused() {
                return;
            }
            let id = self.core.conns[i].id;
            let mut buf = match self.bufs.remove(&id) {
                Some(b) => b,
                None => match self.pool.checkout() {
                    Some(b) => b,
                    None => {
                        // Pool dry: defer — never allocate around the
                        // pool. Level-triggered readiness re-reports
                        // the socket once we re-arm.
                        self.deferred.insert(id);
                        return;
                    }
                },
            };
            for _ in 0..READS_PER_WAKEUP {
                match self.core.conns[i].driver.read_step(&mut buf) {
                    Ok(0) => break,
                    Ok(_) => {
                        if self.parse_frames(i, &mut buf) {
                            break;
                        }
                        if self.core.conns[i].driver.paused() {
                            break;
                        }
                    }
                    Err(_) => {
                        self.core.conns[i].phase = Phase::Closed;
                        break;
                    }
                }
            }
            if buf.is_empty() {
                drop(buf); // returns to the pool
            } else {
                self.bufs.insert(id, buf);
            }
        }

        /// Parses every complete frame out of `buf` in place and hands
        /// each to the protocol core as a borrowed view. Returns true
        /// when the connection closed (fault or handler decision) and
        /// reading should stop.
        fn parse_frames(&mut self, i: usize, buf: &mut Vec<u8>) -> bool {
            let max = self.core.config.max_payload;
            let mut off = 0;
            let mut frames = 0u64;
            let mut fault = false;
            while self.core.conns[i].phase != Phase::Closed {
                match split_frame(&buf[off..], max) {
                    Ok(Some((view, used))) => {
                        frames += 1;
                        self.core.handle_frame(i, view.kind, view.payload);
                        off += used;
                    }
                    Ok(None) => break,
                    Err(_) => {
                        fault = true;
                        break;
                    }
                }
            }
            if frames > 0 {
                self.core.conns[i].driver.note_frames_rx(frames);
            }
            buf.drain(..off);
            if fault {
                // Same close the legacy driver produces for a framing
                // violation; the poisoned bytes never touch another
                // connection — the buffer is cleared before recycling.
                self.core.protocol_fault(i, "framing violation");
                buf.clear();
            }
            fault || self.core.conns[i].phase == Phase::Closed
        }

        /// Re-derives connection `id`'s liveness, pause state, and
        /// kernel interest after anything changed: flushes the outbox,
        /// reaps if finished, otherwise updates pause bookkeeping and
        /// the registered interest (skipping no-op syscalls).
        fn refresh_id(&mut self, id: u64) {
            let Some(&i) = self.index.get(&id) else {
                return;
            };
            if self.core.conns[i].driver.flush().is_err() {
                self.core.conns[i].phase = Phase::Closed;
            }
            let at_eof = self.core.conns[i].driver.at_eof();
            let outbox = self.core.conns[i].driver.outbox_bytes();
            let closed = self.core.conns[i].phase == Phase::Closed;
            // Same reap condition as the legacy loop: closed with
            // nothing left to drain (or a dead socket), or clean EOF
            // with an empty outbox.
            if (closed && (outbox == 0 || at_eof)) || (at_eof && outbox == 0) {
                self.remove_at(i);
                return;
            }
            let want_pause = self.core.desired_pause(i, self.prev_global);
            if want_pause {
                if !self.core.conns[i].driver.paused() {
                    self.core.stats.pauses += 1;
                }
                self.core.conns[i].driver.pause();
            } else if !closed {
                self.core.conns[i].driver.resume();
            }
            let interest = Interest {
                readable: !want_pause && !closed && !at_eof && !self.deferred.contains(&id),
                writable: outbox > 0,
            };
            if self.armed.get(&id) != Some(&interest) {
                let fd = self.core.conns[i].driver.stream().as_raw_fd();
                if self.ready.modify(fd, Token(id), interest).is_ok() {
                    self.armed.insert(id, interest);
                }
            }
        }

        /// Re-derives pause state and interest for every connection —
        /// used on global-defer transitions. Iterates by id snapshot
        /// because refresh can remove entries.
        fn sweep_all(&mut self) {
            let ids: Vec<u64> = self.core.conns.iter().map(|c| c.id).collect();
            for id in ids {
                self.refresh_id(id);
            }
        }

        /// Removes connection at index `i`: deregisters the fd, drops
        /// its buffer back to the pool, and keeps the id→index map
        /// exact across the `swap_remove`.
        fn remove_at(&mut self, i: usize) {
            let id = self.core.conns[i].id;
            let fd = self.core.conns[i].driver.stream().as_raw_fd();
            let _ = self.ready.deregister(fd);
            self.bufs.remove(&id);
            self.armed.remove(&id);
            self.deferred.remove(&id);
            self.index.remove(&id);
            if self.core.conns[i].quarantine > 0 {
                self.core.quarantined -= 1;
            }
            self.core.conns.swap_remove(i);
            self.core.stats.connections_closed += 1;
            if i < self.core.conns.len() {
                let moved = self.core.conns[i].id;
                self.index.insert(moved, i);
            }
        }
    }
}
