//! Public verification of Proofs-of-Charging — Algorithm 2 (§5.3.3).
//!
//! An independent third party (FCC, a court, an MVNO) accepts a PoC plus
//! the public data plan and both parties' public keys, and checks — without
//! ever seeing the data transfer:
//!
//! 1. both signatures in the chain (unforgeability / undeniability),
//! 2. plan consistency (`T' = T`, `c' = c`),
//! 3. nonce and sequence coherence (replay resistance),
//! 4. that the charged volume replays Algorithm 1's pricing of the
//!    embedded claims.

use crate::messages::{self, MessageError, PocDigests, PocMsg};
use crate::plan::{charge_for, DataPlan, UsagePair};
use std::collections::{HashSet, VecDeque};
use tlc_crypto::rng::RngSource;
use tlc_crypto::{seal, PrivateKey, PublicKey};

pub mod remote;
pub mod service;

/// Why a PoC failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A signature in the chain failed (line 1's decryption step).
    Signature(MessageError),
    /// The PoC references a different data plan (Algorithm 2 line 2).
    PlanMismatch,
    /// Clear-text nonces disagree with the signed nonces (line 5).
    NonceMismatch,
    /// Sequence numbers of the accepted claim pair disagree (line 5).
    SequenceMismatch,
    /// The charge does not replay from the claims (lines 8–9).
    ChargeMismatch {
        /// Charge stated in the PoC.
        claimed: u64,
        /// Charge recomputed from the claims.
        expected: u64,
    },
    /// This PoC's nonce pair was already presented (replay).
    Replayed,
    /// The proof reached a verification shard that holds no verifier
    /// for its relationship (service-internal protocol violation;
    /// surfaced as a rejection instead of a worker panic).
    Unregistered,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Signature(e) => write!(f, "signature chain invalid: {e}"),
            VerifyError::PlanMismatch => write!(f, "data plan inconsistent with agreement"),
            VerifyError::NonceMismatch => write!(f, "clear nonces disagree with signed nonces"),
            VerifyError::SequenceMismatch => write!(f, "sequence numbers incoherent"),
            VerifyError::ChargeMismatch { claimed, expected } => {
                write!(f, "charge {claimed} does not replay (expected {expected})")
            }
            VerifyError::Replayed => write!(f, "proof already presented (replay)"),
            VerifyError::Unregistered => {
                write!(f, "relationship not registered on the verifying shard")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// The verdict on a valid PoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// The charging volume the proof commits both parties to.
    pub charge: u64,
    /// The edge's signed claim.
    pub edge_claim: u64,
    /// The operator's signed claim.
    pub operator_claim: u64,
    /// Rounds the negotiation took (from the accepted sequence number).
    pub rounds: u64,
}

/// Algorithm 2 lines 2–9: the cheap non-crypto checks, shared by the
/// sequential and batched paths (the signature chain — line 1 — is
/// checked by the caller first).
fn check_poc_body(poc: &PocMsg, plan: &DataPlan) -> Result<Verdict, VerifyError> {
    // Lines 2–4: plan consistency.
    if poc.plan != *plan || poc.cda.plan != *plan || poc.cda.peer_cdr.plan != *plan {
        return Err(VerifyError::PlanMismatch);
    }

    // Lines 5–7: nonce and sequence coherence.
    if poc.nonce_e != poc.signed_edge_nonce() || poc.nonce_o != poc.signed_operator_nonce() {
        return Err(VerifyError::NonceMismatch);
    }
    // The CDA echoes the round of the CDR it accepts: s_e == s_o.
    if poc.cda.seq != poc.cda.peer_cdr.seq {
        return Err(VerifyError::SequenceMismatch);
    }

    // Lines 8–9: replay the pricing.
    let claims = UsagePair {
        edge: poc.edge_usage(),
        operator: poc.operator_usage(),
    };
    let expected = charge_for(claims, plan.loss_weight);
    if poc.charge != expected {
        return Err(VerifyError::ChargeMismatch {
            claimed: poc.charge,
            expected,
        });
    }

    Ok(Verdict {
        charge: poc.charge,
        edge_claim: claims.edge,
        operator_claim: claims.operator,
        rounds: poc.cda.seq,
    })
}

/// Stateless single-proof verification — Algorithm 2 verbatim.
pub fn verify_poc(
    poc: &PocMsg,
    plan: &DataPlan,
    edge_key: &PublicKey,
    operator_key: &PublicKey,
) -> Result<Verdict, VerifyError> {
    // Line 1: "decrypt" — check the full signature chain.
    poc.verify_chain(edge_key, operator_key)
        .map_err(VerifyError::Signature)?;
    check_poc_body(poc, plan)
}

/// Batched Algorithm 2 over pre-hashed chains: all RSA verifications of
/// the batch run through the multi-lane kernel, and element `i`'s result
/// equals `verify_poc(items[i].0, ..)` exactly.
pub fn verify_poc_batch_prehashed(
    items: &[(&PocMsg, &PocDigests)],
    plan: &DataPlan,
    edge_key: &PublicKey,
    operator_key: &PublicKey,
) -> Vec<Result<Verdict, VerifyError>> {
    let chains = messages::verify_chains_batch_prehashed(items, edge_key, operator_key);
    items
        .iter()
        .zip(chains)
        .map(|((poc, _), chain)| {
            chain.map_err(VerifyError::Signature)?;
            check_poc_body(poc, plan)
        })
        .collect()
}

/// [`verify_poc_batch_prehashed`] that hashes the chains itself.
pub fn verify_poc_batch(
    pocs: &[&PocMsg],
    plan: &DataPlan,
    edge_key: &PublicKey,
    operator_key: &PublicKey,
) -> Vec<Result<Verdict, VerifyError>> {
    let digests: Vec<PocDigests> = pocs.iter().map(|p| p.chain_digests()).collect();
    let items: Vec<(&PocMsg, &PocDigests)> = pocs.iter().copied().zip(digests.iter()).collect();
    verify_poc_batch_prehashed(&items, plan, edge_key, operator_key)
}

/// Seals a PoC for confidential submission to a specific verifier
/// (§5.3.4: parties may not want their charging records public). Only
/// the verifier's private key opens it.
pub fn seal_poc(
    poc: &PocMsg,
    verifier_key: &PublicKey,
    rng: &mut dyn RngSource,
) -> Result<Vec<u8>, MessageError> {
    seal::seal(verifier_key, &poc.encode(), rng).map_err(MessageError::Crypto)
}

/// Opens a sealed submission with the verifier's private key and parses
/// the PoC (authenticity of the *seal* is checked here; the PoC's own
/// signature chain is checked by [`verify_poc`]).
pub fn unseal_poc(sealed: &[u8], verifier_key: &PrivateKey) -> Result<PocMsg, MessageError> {
    let bytes = seal::open(verifier_key, sealed).map_err(MessageError::Crypto)?;
    PocMsg::decode(&bytes)
}

/// Default retention window of the replay cache: one charging cycle per
/// hour for over a century for a single relationship, while bounding a
/// long-running service at ~32 MiB of nonces per relationship.
pub const DEFAULT_REPLAY_CAPACITY: usize = 1 << 20;

/// A stateful verifier service: Algorithm 2 plus a seen-nonce cache so an
/// outdated PoC cannot be presented twice (the paper's replay defence).
///
/// The cache is bounded: once `capacity` distinct nonce pairs have been
/// accepted, each new acceptance evicts the *oldest* entry (deterministic
/// FIFO). Replay rejection is exact within the retention window; proofs
/// older than the window are outside the service's guarantee, exactly like
/// any log-retention policy.
pub struct Verifier {
    plan: DataPlan,
    edge_key: PublicKey,
    operator_key: PublicKey,
    seen: HashSet<([u8; 16], [u8; 16])>,
    /// Insertion order of `seen`, for FIFO eviction.
    order: VecDeque<([u8; 16], [u8; 16])>,
    capacity: usize,
    accepted: u64,
    rejected: u64,
}

impl Verifier {
    /// Creates a verifier for one (plan, edge, operator) relationship
    /// with the [default replay window](DEFAULT_REPLAY_CAPACITY).
    pub fn new(plan: DataPlan, edge_key: PublicKey, operator_key: PublicKey) -> Self {
        Self::with_capacity(plan, edge_key, operator_key, DEFAULT_REPLAY_CAPACITY)
    }

    /// Creates a verifier whose replay cache retains at most `capacity`
    /// accepted nonce pairs (FIFO-evicted beyond that).
    pub fn with_capacity(
        plan: DataPlan,
        edge_key: PublicKey,
        operator_key: PublicKey,
        capacity: usize,
    ) -> Self {
        assert!(capacity > 0, "replay cache needs at least one slot");
        Verifier {
            plan,
            edge_key,
            operator_key,
            seen: HashSet::new(),
            order: VecDeque::new(),
            capacity,
            accepted: 0,
            rejected: 0,
        }
    }

    /// Verifies one proof, enforcing nonce freshness across calls (within
    /// the retention window).
    pub fn verify(&mut self, poc: &PocMsg) -> Result<Verdict, VerifyError> {
        let key = (poc.nonce_e, poc.nonce_o);
        if self.seen.contains(&key) {
            // Replay check precedes crypto — same short-circuit as the
            // batched path.
            self.rejected += 1;
            return Err(VerifyError::Replayed);
        }
        let judged = verify_poc(poc, &self.plan, &self.edge_key, &self.operator_key);
        self.commit(poc, judged)
    }

    /// Verifies a batch of proofs with the multi-lane RSA kernel. The
    /// results (and the verifier's state afterwards) are exactly what a
    /// [`verify`](Self::verify) loop over `pocs` in order would produce:
    /// the replay cache is walked sequentially, so a proof duplicated
    /// *within* the batch is `Replayed` iff its first occurrence was
    /// accepted (the crypto verdicts themselves are stateless, so
    /// computing them up front does not change any outcome).
    pub fn verify_batch(&mut self, pocs: &[&PocMsg]) -> Vec<Result<Verdict, VerifyError>> {
        let digests: Vec<PocDigests> = pocs.iter().map(|p| p.chain_digests()).collect();
        let items: Vec<(&PocMsg, &PocDigests)> = pocs.iter().copied().zip(digests.iter()).collect();
        self.verify_batch_prehashed(&items)
    }

    /// [`verify_batch`](Self::verify_batch) over chains hashed elsewhere
    /// (the pipelined service's hash stage).
    pub fn verify_batch_prehashed(
        &mut self,
        items: &[(&PocMsg, &PocDigests)],
    ) -> Vec<Result<Verdict, VerifyError>> {
        let judged =
            verify_poc_batch_prehashed(items, &self.plan, &self.edge_key, &self.operator_key);
        items
            .iter()
            .zip(judged)
            .map(|((poc, _), j)| {
                let key = (poc.nonce_e, poc.nonce_o);
                if self.seen.contains(&key) {
                    self.rejected += 1;
                    return Err(VerifyError::Replayed);
                }
                self.commit(poc, j)
            })
            .collect()
    }

    /// Applies one stateless verdict to the replay cache and counters.
    fn commit(
        &mut self,
        poc: &PocMsg,
        judged: Result<Verdict, VerifyError>,
    ) -> Result<Verdict, VerifyError> {
        let key = (poc.nonce_e, poc.nonce_o);
        match judged {
            Ok(v) => {
                if self.order.len() == self.capacity {
                    let oldest = self.order.pop_front().expect("capacity > 0");
                    self.seen.remove(&oldest);
                }
                self.seen.insert(key);
                self.order.push_back(key);
                self.accepted += 1;
                Ok(v)
            }
            Err(e) => {
                self.rejected += 1;
                Err(e)
            }
        }
    }

    /// Proofs accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Proofs rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Nonce pairs currently retained for replay rejection.
    pub fn replay_window_len(&self) -> usize {
        self.order.len()
    }

    /// Maximum nonce pairs retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{run_negotiation, Endpoint};
    use crate::strategy::{Knowledge, OptimalStrategy, Role};
    use tlc_crypto::KeyPair;

    struct Fixture {
        plan: DataPlan,
        edge: KeyPair,
        op: KeyPair,
        poc: PocMsg,
    }

    fn negotiate_proof(sent: u64, received: u64) -> Fixture {
        let plan = DataPlan::paper_default();
        let edge = KeyPair::generate_for_seed(1024, 31).unwrap();
        let op = KeyPair::generate_for_seed(1024, 32).unwrap();
        let mut e = Endpoint::new(
            Role::Edge,
            plan,
            Knowledge {
                role: Role::Edge,
                own_truth: sent,
                inferred_peer_truth: received,
            },
            Box::new(OptimalStrategy),
            edge.private.clone(),
            op.public.clone(),
            [0xAB; 16],
            32,
        );
        let mut o = Endpoint::new(
            Role::Operator,
            plan,
            Knowledge {
                role: Role::Operator,
                own_truth: received,
                inferred_peer_truth: sent,
            },
            Box::new(OptimalStrategy),
            op.private.clone(),
            edge.public.clone(),
            [0xCD; 16],
            32,
        );
        let (poc, _) = run_negotiation(&mut o, &mut e).unwrap();
        Fixture {
            plan,
            edge,
            op,
            poc,
        }
    }

    #[test]
    fn valid_poc_verifies() {
        let f = negotiate_proof(1000, 800);
        let v = verify_poc(&f.poc, &f.plan, &f.edge.public, &f.op.public).unwrap();
        assert_eq!(v.charge, 900);
        assert_eq!(v.edge_claim, 800); // optimal: edge claims x̂_o
        assert_eq!(v.operator_claim, 1000);
        assert_eq!(v.rounds, 1);
    }

    #[test]
    fn wrong_plan_rejected() {
        let f = negotiate_proof(1000, 800);
        let other_plan = DataPlan {
            loss_weight: crate::plan::LossWeight::from_f64(0.25),
            ..f.plan
        };
        assert_eq!(
            verify_poc(&f.poc, &other_plan, &f.edge.public, &f.op.public),
            Err(VerifyError::PlanMismatch)
        );
    }

    #[test]
    fn tampered_charge_rejected() {
        let f = negotiate_proof(1000, 800);
        let mut poc = f.poc.clone();
        poc.charge += 100;
        // Signature breaks first (charge is signed).
        assert!(matches!(
            verify_poc(&poc, &f.plan, &f.edge.public, &f.op.public),
            Err(VerifyError::Signature(_))
        ));
    }

    #[test]
    fn swapped_clear_nonces_rejected() {
        let f = negotiate_proof(1000, 800);
        let mut poc = f.poc.clone();
        std::mem::swap(&mut poc.nonce_e, &mut poc.nonce_o);
        // Clear nonces are outside the signature; the nonce check catches it.
        assert_eq!(
            verify_poc(&poc, &f.plan, &f.edge.public, &f.op.public),
            Err(VerifyError::NonceMismatch)
        );
    }

    #[test]
    fn verifier_detects_replay() {
        let f = negotiate_proof(1000, 800);
        let mut v = Verifier::new(f.plan, f.edge.public.clone(), f.op.public.clone());
        v.verify(&f.poc).unwrap();
        assert_eq!(v.verify(&f.poc), Err(VerifyError::Replayed));
        assert_eq!(v.accepted(), 1);
        assert_eq!(v.rejected(), 1);
    }

    #[test]
    fn verifier_accepts_distinct_proofs() {
        let f1 = negotiate_proof(1000, 800);
        // Different nonces: re-run the negotiation with different keys' nonces
        // by regenerating (fixture nonces are fixed, so craft a second with
        // different usage which yields different signatures but same nonces —
        // instead vary the nonce by re-signing).
        let f2 = {
            let mut f2 = negotiate_proof(2000, 1500);
            // Give it distinct nonces to exercise the cache key.
            f2.poc.nonce_e = [0x01; 16];
            f2.poc.nonce_o = [0x02; 16];
            f2
        };
        let mut v = Verifier::new(f1.plan, f1.edge.public.clone(), f1.op.public.clone());
        v.verify(&f1.poc).unwrap();
        // f2's nonces differ so the replay cache does not trip; the
        // signature check fails instead (tampered nonce fields are fine —
        // they're outside the signature — but the *signed* nonces differ).
        assert!(v.verify(&f2.poc).is_err());
        assert_eq!(v.rejected(), 1);
    }

    #[test]
    fn bounded_cache_evicts_fifo_and_stays_correct_in_window() {
        let plan = DataPlan::paper_default();
        let edge = KeyPair::generate_for_seed(1024, 31).unwrap();
        let op = KeyPair::generate_for_seed(1024, 32).unwrap();
        let negotiate = |ne: u8, no: u8| {
            let mut e = Endpoint::new(
                Role::Edge,
                plan,
                Knowledge {
                    role: Role::Edge,
                    own_truth: 1000,
                    inferred_peer_truth: 800,
                },
                Box::new(OptimalStrategy),
                edge.private.clone(),
                op.public.clone(),
                [ne; 16],
                32,
            );
            let mut o = Endpoint::new(
                Role::Operator,
                plan,
                Knowledge {
                    role: Role::Operator,
                    own_truth: 800,
                    inferred_peer_truth: 1000,
                },
                Box::new(OptimalStrategy),
                op.private.clone(),
                edge.public.clone(),
                [no; 16],
                32,
            );
            run_negotiation(&mut o, &mut e).unwrap().0
        };
        let (a, b, c) = (negotiate(1, 2), negotiate(3, 4), negotiate(5, 6));

        let mut v = Verifier::with_capacity(plan, edge.public.clone(), op.public.clone(), 2);
        v.verify(&a).unwrap();
        v.verify(&b).unwrap();
        assert_eq!(v.replay_window_len(), 2);
        // Within the window, replays are rejected.
        assert_eq!(v.verify(&a), Err(VerifyError::Replayed));
        // A third acceptance evicts the oldest entry (a), not b.
        v.verify(&c).unwrap();
        assert_eq!(v.replay_window_len(), 2);
        assert_eq!(v.verify(&b), Err(VerifyError::Replayed));
        assert_eq!(v.verify(&c), Err(VerifyError::Replayed));
        // `a` aged out of the retention window, so it verifies again —
        // the documented bound of a finite cache.
        v.verify(&a).unwrap();
        assert_eq!(v.capacity(), 2);
        assert_eq!(v.accepted(), 4);
        assert_eq!(v.rejected(), 3);
    }

    fn negotiate_with_nonces(
        plan: &DataPlan,
        edge: &KeyPair,
        op: &KeyPair,
        ne: u8,
        no: u8,
    ) -> PocMsg {
        let mut e = Endpoint::new(
            Role::Edge,
            *plan,
            Knowledge {
                role: Role::Edge,
                own_truth: 1000,
                inferred_peer_truth: 800,
            },
            Box::new(OptimalStrategy),
            edge.private.clone(),
            op.public.clone(),
            [ne; 16],
            32,
        );
        let mut o = Endpoint::new(
            Role::Operator,
            *plan,
            Knowledge {
                role: Role::Operator,
                own_truth: 800,
                inferred_peer_truth: 1000,
            },
            Box::new(OptimalStrategy),
            op.private.clone(),
            edge.public.clone(),
            [no; 16],
            32,
        );
        run_negotiation(&mut o, &mut e).unwrap().0
    }

    #[test]
    fn batch_verify_matches_sequential_walk_exactly() {
        let plan = DataPlan::paper_default();
        let edge = KeyPair::generate_for_seed(1024, 31).unwrap();
        let op = KeyPair::generate_for_seed(1024, 32).unwrap();
        let a = negotiate_with_nonces(&plan, &edge, &op, 1, 2);
        let b = negotiate_with_nonces(&plan, &edge, &op, 3, 4);
        let c = negotiate_with_nonces(&plan, &edge, &op, 5, 6);
        let mut tampered = negotiate_with_nonces(&plan, &edge, &op, 7, 8);
        tampered.charge += 1; // breaks the (signed) charge

        // `a` duplicated after acceptance → Replayed; `tampered`
        // duplicated after rejection → judged on its own (Signature).
        let batch = [&a, &b, &a, &tampered, &c, &tampered];

        let mut v_batch = Verifier::new(plan, edge.public.clone(), op.public.clone());
        let got = v_batch.verify_batch(&batch);
        let mut v_seq = Verifier::new(plan, edge.public.clone(), op.public.clone());
        let want: Vec<_> = batch.iter().map(|p| v_seq.verify(p)).collect();
        assert_eq!(got, want);
        assert_eq!(v_batch.accepted(), v_seq.accepted());
        assert_eq!(v_batch.rejected(), v_seq.rejected());
        assert_eq!(v_batch.replay_window_len(), v_seq.replay_window_len());

        assert!(got[0].is_ok() && got[1].is_ok() && got[4].is_ok());
        assert_eq!(got[2], Err(VerifyError::Replayed));
        assert!(matches!(got[3], Err(VerifyError::Signature(_))));
        assert!(matches!(got[5], Err(VerifyError::Signature(_))));
    }

    #[test]
    fn batch_rejects_cross_call_replays() {
        let plan = DataPlan::paper_default();
        let edge = KeyPair::generate_for_seed(1024, 31).unwrap();
        let op = KeyPair::generate_for_seed(1024, 32).unwrap();
        let a = negotiate_with_nonces(&plan, &edge, &op, 0x0A, 0x0B);
        let b = negotiate_with_nonces(&plan, &edge, &op, 0x0C, 0x0D);
        let mut v = Verifier::new(plan, edge.public.clone(), op.public.clone());
        v.verify(&a).unwrap();
        let got = v.verify_batch(&[&a, &b]);
        assert_eq!(got[0], Err(VerifyError::Replayed));
        assert!(got[1].is_ok());
        assert_eq!((v.accepted(), v.rejected()), (2, 1));
    }

    #[test]
    fn sealed_submission_roundtrip() {
        use tlc_crypto::DeterministicRng;
        let f = negotiate_proof(1000, 800);
        let verifier_keys = tlc_crypto::KeyPair::generate_for_seed(1024, 0xFCC).unwrap();
        let mut rng = DeterministicRng::from_seed(9);
        let sealed = seal_poc(&f.poc, &verifier_keys.public, &mut rng).unwrap();
        // An eavesdropper (or the wrong verifier) cannot read the records.
        let wrong = tlc_crypto::KeyPair::generate_for_seed(1024, 0xBAD).unwrap();
        assert!(unseal_poc(&sealed, &wrong.private).is_err());
        // The intended verifier opens and verifies as usual.
        let poc = unseal_poc(&sealed, &verifier_keys.private).unwrap();
        assert_eq!(poc, f.poc);
        verify_poc(&poc, &f.plan, &f.edge.public, &f.op.public).unwrap();
    }

    #[test]
    fn forged_poc_without_private_keys_impossible() {
        // An operator alone cannot fabricate a PoC for a higher charge:
        // it would need the edge's signature over a CDA/CDR it never made.
        let f = negotiate_proof(1000, 800);
        let mallory = KeyPair::generate_for_seed(1024, 666).unwrap();
        // Re-sign the PoC body with Mallory's key.
        let forged = PocMsg::sign(
            Role::Operator,
            f.plan,
            1_000_000,
            f.poc.cda.clone(),
            f.poc.nonce_e,
            f.poc.nonce_o,
            &mallory.private,
        )
        .unwrap();
        assert!(matches!(
            verify_poc(&forged, &f.plan, &f.edge.public, &f.op.public),
            Err(VerifyError::Signature(_))
        ));
    }
}
