//! A sharded, pipelined, batch-native PoC verification service (§5.3.4).
//!
//! The paper sizes public verification at 230K PoCs/hour on a single
//! workstation; a deployment (FCC, court, MVNO) verifies proofs for many
//! edge↔operator relationships at once. This module promotes the ad-hoc
//! threading of `examples/verifier_service.rs` into a first-class
//! subsystem:
//!
//! * **relationship-sharded state** — every relationship is pinned to
//!   exactly one shard, so each [`Verifier`] (and in particular its
//!   replay cache) is owned by a single thread and never shared or
//!   locked. Replay detection stays exact because a given relationship's
//!   proofs all land on the same shard;
//! * **a two-stage pipeline per shard** — a *hash* worker decodes and
//!   SHA-256-hashes each chain ([`PocMsg::chain_digests`]) and hands the
//!   prepared proof over a bounded queue to a *signature* worker, so
//!   hashing of proof `i+1` overlaps the RSA work of proof `i`;
//! * **signature batching** — the signature worker accumulates prepared
//!   proofs per relationship and verifies them through the multi-lane
//!   RSA kernel ([`Verifier::verify_batch_prehashed`]). A batch flushes
//!   when it reaches [`ServiceConfig::batch_size`] or when its oldest
//!   entry has waited [`ServiceConfig::flush_deadline`], so a trickle of
//!   submissions still completes promptly. Results for a relationship
//!   are always delivered in submission order, and the replay-cache
//!   semantics are exactly those of sequential [`Verifier::verify`]
//!   calls.
//!
//! Registering the same `(plan, edge key, operator key)` relationship
//! twice yields the same [`RelationshipId`] — the registry deduplicates,
//! which is what makes shard-local replay caches sound (two handles to
//! one relationship cannot end up on different shards with independent
//! caches).

use super::{Verdict, Verifier, VerifyError, DEFAULT_REPLAY_CAPACITY};
use crate::messages::{PocDigests, PocMsg};
use crate::plan::DataPlan;
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use std::collections::HashMap;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tlc_crypto::encoding::key_fingerprint;
use tlc_crypto::PublicKey;

/// Opaque handle to a registered relationship. Issued by
/// [`VerifierService::register`]; also determines the shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelationshipId(u64);

impl RelationshipId {
    /// The shard a relationship is pinned to, given the worker count.
    fn shard(self, workers: usize) -> usize {
        (self.0 % workers as u64) as usize
    }

    /// The raw id, for the network ingress that must name relationships
    /// on the wire. Not part of the public API: only `verify::remote`
    /// serializes ids.
    pub(crate) fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds an id decoded from the wire. The caller (the ingress
    /// server) is responsible for only reconstructing ids it previously
    /// issued; `submit` re-checks range regardless.
    pub(crate) fn from_raw(raw: u64) -> RelationshipId {
        RelationshipId(raw)
    }
}

/// Shutdown-aware failures surfaced by the service API.
///
/// Every channel operation between the caller and the shard pipelines
/// can observe a torn-down peer (a worker that panicked and dropped its
/// receiver, or a caller races teardown). Those used to be `expect`s;
/// tlc-lint's `no-panic` rule now forbids that in protocol paths, so
/// they are typed instead: a dead shard yields an error the caller can
/// handle (re-register elsewhere, drain, report) rather than a panic in
/// the verification plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// The shard's pipeline threads have hung up; submissions to it can
    /// no longer be accepted.
    ShardDown {
        /// Index of the unreachable shard.
        shard: usize,
    },
    /// The result channel closed while submissions were still
    /// outstanding (every shard worker is gone).
    ResultsClosed {
        /// Submissions that will never produce a result.
        outstanding: usize,
    },
    /// The relationship id was never issued by [`VerifierService::register`].
    UnknownRelationship(RelationshipId),
    /// The service (or the ingress admission control fronting it) is
    /// saturated and shed the submission; retry after the carried hint.
    /// The in-process pipeline never sheds — this variant is produced by
    /// the remote path — but it lives here so every caller matches one
    /// error surface.
    Overloaded {
        /// Suggested backoff before retrying, in milliseconds.
        retry_after_ms: u32,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::ShardDown { shard } => {
                write!(f, "verification shard {shard} is down")
            }
            ServiceError::ResultsClosed { outstanding } => write!(
                f,
                "result channel closed with {outstanding} submissions outstanding"
            ),
            ServiceError::UnknownRelationship(rel) => {
                write!(f, "relationship {rel:?} was never registered")
            }
            ServiceError::Overloaded { retry_after_ms } => {
                write!(f, "service overloaded; retry after {retry_after_ms} ms")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// Tuning knobs for the pipelined service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Shard count; each shard runs a hash thread and a signature thread.
    pub workers: usize,
    /// Proofs per relationship accumulated before a signature batch is
    /// verified (the multi-lane kernel saturates around 32).
    pub batch_size: usize,
    /// Longest a prepared proof may wait for its batch to fill before
    /// the partial batch is flushed anyway.
    pub flush_deadline: Duration,
    /// Capacity of the bounded hash→signature queue per shard; bounds
    /// memory and applies backpressure to the hash stage.
    pub stage_queue_depth: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 1,
            batch_size: 32,
            flush_deadline: Duration::from_millis(2),
            stage_queue_depth: 256,
        }
    }
}

/// Work items sent to a shard's hash worker.
#[derive(Debug)]
enum Job {
    Register {
        rel: RelationshipId,
        plan: DataPlan,
        edge_key: PublicKey,
        operator_key: PublicKey,
        capacity: usize,
    },
    Verify {
        rel: RelationshipId,
        tag: u64,
        poc: PocMsg,
    },
}

/// Items flowing from a shard's hash stage to its signature stage.
// `Prepared` dwarfs `Register`, but it is also ~all of the traffic:
// boxing it would buy nothing on the rare variant and cost one heap
// round trip per verified proof.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum StageMsg {
    Register {
        rel: RelationshipId,
        plan: DataPlan,
        edge_key: PublicKey,
        operator_key: PublicKey,
        capacity: usize,
    },
    Prepared {
        rel: RelationshipId,
        tag: u64,
        poc: PocMsg,
        digests: PocDigests,
    },
}

/// Outcome of one submitted proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmissionResult {
    /// The relationship the proof was submitted under.
    pub relationship: RelationshipId,
    /// The tag returned by [`VerifierService::submit`] for correlation.
    pub tag: u64,
    /// The shard that processed the proof.
    pub shard: usize,
    /// Verdict or rejection.
    pub result: Result<Verdict, VerifyError>,
}

/// Counters for one shard, reported at shutdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index (same as the worker thread index).
    pub shard: usize,
    /// Relationships registered on this shard.
    pub relationships: usize,
    /// Proofs accepted.
    pub accepted: u64,
    /// Proofs rejected for any reason (includes replays).
    pub rejected: u64,
    /// Rejections that were replays specifically.
    pub replayed: u64,
    /// Signature batches verified (including partial flushes).
    pub batches: u64,
    /// Batches flushed because the deadline expired before they filled.
    pub deadline_flushes: u64,
}

/// Aggregate report returned by [`VerifierService::finish`].
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Per-shard counters, indexed by shard.
    pub shards: Vec<ShardStats>,
    /// Total proofs accepted across shards.
    pub accepted: u64,
    /// Total proofs rejected across shards (includes replays).
    pub rejected: u64,
    /// Total replays rejected across shards.
    pub replayed: u64,
    /// Total signature batches verified across shards.
    pub batches: u64,
    /// Shard worker threads that terminated by panicking instead of
    /// draining cleanly (0 on every healthy run).
    pub worker_panics: usize,
    /// Results that were produced but never collected before shutdown
    /// (e.g. a remote client disconnected mid-batch). Drained at
    /// teardown rather than dropped with the channel.
    pub unclaimed_results: usize,
    /// Wall-clock time from the first submission to shutdown.
    pub elapsed: Duration,
    /// Throughput over `elapsed`, comparable to the paper's 230K/hour.
    pub pocs_per_hour: f64,
}

/// A pool of pipelined shard workers verifying PoCs in batches.
///
/// ```no_run
/// # use tlc_core::verify::service::VerifierService;
/// # use tlc_core::plan::DataPlan;
/// # let (edge_key, operator_key, poc): (tlc_crypto::PublicKey, tlc_crypto::PublicKey, tlc_core::messages::PocMsg) = unimplemented!();
/// let mut svc = VerifierService::new(4);
/// let rel = svc.register(DataPlan::paper_default(), edge_key, operator_key)?;
/// svc.submit(rel, poc)?;
/// let results = svc.collect_results()?;
/// let report = svc.finish();
/// # Ok::<(), tlc_core::verify::service::ServiceError>(())
/// ```
pub struct VerifierService {
    config: ServiceConfig,
    job_txs: Vec<Sender<Job>>,
    result_rx: Receiver<SubmissionResult>,
    stats_rx: Receiver<ShardStats>,
    handles: Vec<JoinHandle<()>>,
    /// Dedup registry: key fingerprints -> candidate (plan, id) pairs.
    registry: HashMap<(u64, u64), Vec<(DataPlan, RelationshipId)>>,
    next_rel: u64,
    next_tag: u64,
    outstanding: usize,
    first_submit: Option<Instant>,
}

impl VerifierService {
    /// Spawns `workers` pipelined shards (at least one) with default
    /// batching parameters.
    pub fn new(workers: usize) -> Self {
        Self::with_config(ServiceConfig {
            workers,
            ..ServiceConfig::default()
        })
    }

    /// Spawns a service with explicit [`ServiceConfig`] knobs.
    pub fn with_config(config: ServiceConfig) -> Self {
        let config = ServiceConfig {
            workers: config.workers.max(1),
            batch_size: config.batch_size.max(1),
            flush_deadline: config.flush_deadline,
            stage_queue_depth: config.stage_queue_depth.max(1),
        };
        let (result_tx, result_rx) = channel::unbounded::<SubmissionResult>();
        let (stats_tx, stats_rx) = channel::unbounded::<ShardStats>();
        let mut job_txs = Vec::with_capacity(config.workers);
        let mut handles = Vec::with_capacity(config.workers * 2);
        for shard in 0..config.workers {
            let (job_tx, job_rx) = channel::unbounded::<Job>();
            let (stage_tx, stage_rx) = channel::bounded::<StageMsg>(config.stage_queue_depth);
            job_txs.push(job_tx);
            let result_tx = result_tx.clone();
            let stats_tx = stats_tx.clone();
            handles.push(std::thread::spawn(move || hash_worker(job_rx, stage_tx)));
            let (batch_size, deadline) = (config.batch_size, config.flush_deadline);
            handles.push(std::thread::spawn(move || {
                signature_worker(shard, batch_size, deadline, stage_rx, result_tx, stats_tx)
            }));
        }
        VerifierService {
            config,
            job_txs,
            result_rx,
            stats_rx,
            handles,
            registry: HashMap::new(),
            next_rel: 0,
            next_tag: 0,
            outstanding: 0,
            first_submit: None,
        }
    }

    /// Worker shards backing the service.
    pub fn workers(&self) -> usize {
        self.config.workers
    }

    /// The batching configuration in effect.
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// Submissions whose results have not been collected yet. The
    /// ingress server uses this as its global backpressure signal.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Registers a relationship with the
    /// [default replay window](DEFAULT_REPLAY_CAPACITY); returns its id.
    ///
    /// Idempotent: the same `(plan, edge key, operator key)` triple maps
    /// to the same id (and therefore the same shard and replay cache).
    /// Fails with [`ServiceError::ShardDown`] when the pinned shard's
    /// workers are gone.
    pub fn register(
        &mut self,
        plan: DataPlan,
        edge_key: PublicKey,
        operator_key: PublicKey,
    ) -> Result<RelationshipId, ServiceError> {
        self.register_with_capacity(plan, edge_key, operator_key, DEFAULT_REPLAY_CAPACITY)
    }

    /// [`register`](Self::register) with an explicit replay-cache bound.
    pub fn register_with_capacity(
        &mut self,
        plan: DataPlan,
        edge_key: PublicKey,
        operator_key: PublicKey,
        capacity: usize,
    ) -> Result<RelationshipId, ServiceError> {
        let fp = (key_fingerprint(&edge_key), key_fingerprint(&operator_key));
        if let Some((_, rel)) = self
            .registry
            .get(&fp)
            .and_then(|bucket| bucket.iter().find(|(p, _)| *p == plan))
        {
            return Ok(*rel);
        }
        let rel = RelationshipId(self.next_rel);
        let shard = rel.shard(self.config.workers);
        self.job_txs[shard]
            .send(Job::Register {
                rel,
                plan,
                edge_key,
                operator_key,
                capacity,
            })
            .map_err(|_| ServiceError::ShardDown { shard })?;
        // Only a registration the shard will actually see is recorded;
        // a failed send must not burn the id or poison the dedup map.
        self.next_rel += 1;
        self.registry.entry(fp).or_default().push((plan, rel));
        Ok(rel)
    }

    /// Submits one proof for verification on its relationship's shard.
    /// Returns a tag to correlate with the [`SubmissionResult`].
    pub fn submit(&mut self, rel: RelationshipId, poc: PocMsg) -> Result<u64, ServiceError> {
        if rel.0 >= self.next_rel {
            return Err(ServiceError::UnknownRelationship(rel));
        }
        let shard = rel.shard(self.config.workers);
        let tag = self.next_tag;
        self.job_txs[shard]
            .send(Job::Verify { rel, tag, poc })
            .map_err(|_| ServiceError::ShardDown { shard })?;
        self.next_tag += 1;
        self.first_submit.get_or_insert_with(Instant::now);
        self.outstanding += 1;
        Ok(tag)
    }

    /// Submits a batch under one relationship; returns the tag range as
    /// `(first, count)`. Stops at the first shard failure (proofs
    /// already handed over stay in flight and will produce results).
    pub fn submit_batch(
        &mut self,
        rel: RelationshipId,
        pocs: impl IntoIterator<Item = PocMsg>,
    ) -> Result<(u64, usize), ServiceError> {
        let first = self.next_tag;
        let mut count = 0usize;
        for poc in pocs {
            self.submit(rel, poc)?;
            count += 1;
        }
        Ok((first, count))
    }

    /// Blocks until every submitted proof has a result and returns them
    /// (unordered across shards; per relationship, in submission order).
    ///
    /// If every worker died with submissions outstanding the channel
    /// disconnects and [`ServiceError::ResultsClosed`] reports how many
    /// results are lost; the service remains usable for [`finish`].
    ///
    /// [`finish`]: Self::finish
    pub fn collect_results(&mut self) -> Result<Vec<SubmissionResult>, ServiceError> {
        let mut out = Vec::with_capacity(self.outstanding);
        while self.outstanding > 0 {
            match self.result_rx.recv() {
                Ok(r) => {
                    self.outstanding -= 1;
                    out.push(r);
                }
                Err(_) => {
                    let outstanding = self.outstanding;
                    self.outstanding = 0;
                    return Err(ServiceError::ResultsClosed { outstanding });
                }
            }
        }
        Ok(out)
    }

    /// Non-blocking variant of [`collect_results`]: returns whatever
    /// results are ready right now (possibly none) without waiting for
    /// the rest. The ingress poll loop pumps this between socket polls
    /// so verdicts stream back while submissions are still arriving.
    ///
    /// [`collect_results`]: Self::collect_results
    pub fn try_collect_results(&mut self) -> Vec<SubmissionResult> {
        let mut out = Vec::new();
        while self.outstanding > 0 {
            match self.result_rx.try_recv() {
                Ok(r) => {
                    self.outstanding -= 1;
                    out.push(r);
                }
                Err(_) => break,
            }
        }
        out
    }

    /// Shuts the pool down: drains remaining work (flushing partial
    /// batches), joins the workers, and aggregates per-shard statistics.
    /// A worker that panicked instead of draining is counted in
    /// [`ServiceReport::worker_panics`] rather than propagated.
    ///
    /// Results the caller never collected (e.g. a remote client
    /// disconnected mid-batch) are not silently dropped: after the
    /// workers drain, the result queue is emptied deterministically and
    /// the count reported in [`ServiceReport::unclaimed_results`].
    pub fn finish(mut self) -> ServiceReport {
        let started = self.first_submit.take();
        // Close the submission queues; hash workers drain and hang up on
        // the signature workers, which flush their partial batches.
        self.job_txs.clear();
        let mut worker_panics = 0usize;
        for h in self.handles.drain(..) {
            if h.join().is_err() {
                worker_panics += 1;
            }
        }
        let elapsed = started.map(|t| t.elapsed()).unwrap_or_default();
        // Workers are joined: every in-flight submission has either
        // produced a result or died with its worker. Drain what the
        // caller left behind so teardown semantics are deterministic.
        let mut unclaimed_results = 0usize;
        while self.result_rx.try_recv().is_ok() {
            unclaimed_results += 1;
        }
        self.outstanding = self.outstanding.saturating_sub(unclaimed_results);
        let mut shards: Vec<ShardStats> = Vec::with_capacity(self.config.workers);
        while let Ok(s) = self.stats_rx.recv() {
            shards.push(s);
        }
        shards.sort_by_key(|s| s.shard);
        let accepted = shards.iter().map(|s| s.accepted).sum();
        let rejected = shards.iter().map(|s| s.rejected).sum();
        let replayed = shards.iter().map(|s| s.replayed).sum();
        let batches = shards.iter().map(|s| s.batches).sum();
        let processed: u64 = accepted + rejected;
        let pocs_per_hour = if elapsed.as_secs_f64() > 0.0 {
            processed as f64 / elapsed.as_secs_f64() * 3600.0
        } else {
            0.0
        };
        ServiceReport {
            shards,
            accepted,
            rejected,
            replayed,
            batches,
            worker_panics,
            unclaimed_results,
            elapsed,
            pocs_per_hour,
        }
    }
}

/// Stage 1 of a shard: decode/hash. Chain digests are pure functions of
/// the proof bytes, so computing them here (before the replay check on
/// the signature stage) cannot change any verdict.
fn hash_worker(jobs: Receiver<Job>, stage: Sender<StageMsg>) {
    while let Ok(job) = jobs.recv() {
        let msg = match job {
            Job::Register {
                rel,
                plan,
                edge_key,
                operator_key,
                capacity,
            } => StageMsg::Register {
                rel,
                plan,
                edge_key,
                operator_key,
                capacity,
            },
            Job::Verify { rel, tag, poc } => {
                let digests = poc.chain_digests();
                StageMsg::Prepared {
                    rel,
                    tag,
                    poc,
                    digests,
                }
            }
        };
        if stage.send(msg).is_err() {
            // Signature stage gone (service torn down mid-flight).
            return;
        }
    }
}

/// A signature batch accumulating for one relationship.
struct PendingBatch {
    /// When the oldest entry was enqueued (deadline base).
    since: Instant,
    tags: Vec<u64>,
    items: Vec<(PocMsg, PocDigests)>,
}

struct ShardCounters {
    accepted: u64,
    rejected: u64,
    replayed: u64,
    batches: u64,
    deadline_flushes: u64,
}

/// Stage 2 of a shard: owns the `Verifier` (and replay cache) of every
/// relationship pinned to it; no locks, no sharing. Accumulates prepared
/// proofs into per-relationship batches and verifies them through the
/// multi-lane RSA kernel.
fn signature_worker(
    shard: usize,
    batch_size: usize,
    flush_deadline: Duration,
    stage: Receiver<StageMsg>,
    results: Sender<SubmissionResult>,
    stats: Sender<ShardStats>,
) {
    let mut verifiers: HashMap<RelationshipId, Verifier> = HashMap::new();
    let mut pending: HashMap<RelationshipId, PendingBatch> = HashMap::new();
    let mut counters = ShardCounters {
        accepted: 0,
        rejected: 0,
        replayed: 0,
        batches: 0,
        deadline_flushes: 0,
    };
    loop {
        let msg = if pending.is_empty() {
            match stage.recv() {
                Ok(m) => m,
                Err(_) => break,
            }
        } else {
            let now = Instant::now();
            let Some(earliest) = pending.values().map(|p| p.since).min() else {
                // `pending.is_empty()` was checked above; unreachable, but
                // an empty map simply means nothing is due yet.
                continue;
            };
            let deadline = earliest + flush_deadline;
            if deadline <= now {
                flush_due(
                    shard,
                    flush_deadline,
                    &mut pending,
                    &mut verifiers,
                    &results,
                    &mut counters,
                );
                continue;
            }
            match stage.recv_timeout(deadline - now) {
                Ok(m) => m,
                Err(RecvTimeoutError::Timeout) => {
                    flush_due(
                        shard,
                        flush_deadline,
                        &mut pending,
                        &mut verifiers,
                        &results,
                        &mut counters,
                    );
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        };
        match msg {
            StageMsg::Register {
                rel,
                plan,
                edge_key,
                operator_key,
                capacity,
            } => {
                verifiers.entry(rel).or_insert_with(|| {
                    Verifier::with_capacity(plan, edge_key, operator_key, capacity)
                });
            }
            StageMsg::Prepared {
                rel,
                tag,
                poc,
                digests,
            } => {
                let batch = pending.entry(rel).or_insert_with(|| PendingBatch {
                    since: Instant::now(),
                    tags: Vec::with_capacity(batch_size),
                    items: Vec::with_capacity(batch_size),
                });
                batch.tags.push(tag);
                batch.items.push((poc, digests));
                if batch.items.len() >= batch_size {
                    if let Some(batch) = pending.remove(&rel) {
                        flush_batch(shard, rel, batch, &mut verifiers, &results, &mut counters);
                    }
                }
            }
        }
    }
    // Hash stage hung up: flush whatever is still pending, in stable
    // (relationship id) order for determinism.
    let mut leftover: Vec<(RelationshipId, PendingBatch)> = pending.drain().collect();
    leftover.sort_by_key(|(rel, _)| *rel);
    for (rel, batch) in leftover {
        flush_batch(shard, rel, batch, &mut verifiers, &results, &mut counters);
    }
    let _ = stats.send(ShardStats {
        shard,
        relationships: verifiers.len(),
        accepted: counters.accepted,
        rejected: counters.rejected,
        replayed: counters.replayed,
        batches: counters.batches,
        deadline_flushes: counters.deadline_flushes,
    });
}

/// Flushes every pending batch whose oldest entry has exceeded the
/// deadline.
fn flush_due(
    shard: usize,
    flush_deadline: Duration,
    pending: &mut HashMap<RelationshipId, PendingBatch>,
    verifiers: &mut HashMap<RelationshipId, Verifier>,
    results: &Sender<SubmissionResult>,
    counters: &mut ShardCounters,
) {
    let now = Instant::now();
    let mut due: Vec<RelationshipId> = pending
        .iter()
        .filter(|(_, b)| b.since + flush_deadline <= now)
        .map(|(rel, _)| *rel)
        .collect();
    due.sort();
    for rel in due {
        if let Some(batch) = pending.remove(&rel) {
            counters.deadline_flushes += 1;
            flush_batch(shard, rel, batch, verifiers, results, counters);
        }
    }
}

/// Verifies one accumulated batch and emits its results in submission
/// order.
fn flush_batch(
    shard: usize,
    rel: RelationshipId,
    batch: PendingBatch,
    verifiers: &mut HashMap<RelationshipId, Verifier>,
    results: &Sender<SubmissionResult>,
    counters: &mut ShardCounters,
) {
    let Some(verifier) = verifiers.get_mut(&rel) else {
        // Register precedes submit on the same queue, so this is a
        // protocol violation; surface it as per-proof rejections rather
        // than taking the shard down.
        counters.rejected += batch.tags.len() as u64;
        for tag in batch.tags {
            let _ = results.send(SubmissionResult {
                relationship: rel,
                tag,
                shard,
                result: Err(VerifyError::Unregistered),
            });
        }
        return;
    };
    let items: Vec<(&PocMsg, &PocDigests)> = batch.items.iter().map(|(p, d)| (p, d)).collect();
    let verdicts = verifier.verify_batch_prehashed(&items);
    counters.batches += 1;
    for (tag, result) in batch.tags.into_iter().zip(verdicts) {
        match &result {
            Ok(_) => counters.accepted += 1,
            Err(VerifyError::Replayed) => {
                counters.rejected += 1;
                counters.replayed += 1;
            }
            Err(_) => counters.rejected += 1,
        }
        // The receiver may have been dropped by an aborting caller;
        // losing the result then is fine.
        let _ = results.send(SubmissionResult {
            relationship: rel,
            tag,
            shard,
            result,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{run_negotiation, Endpoint};
    use crate::strategy::{Knowledge, OptimalStrategy, Role};
    use tlc_crypto::KeyPair;

    fn negotiate(edge: &KeyPair, op: &KeyPair, plan: DataPlan, ne: u8, no: u8) -> PocMsg {
        let mut e = Endpoint::new(
            Role::Edge,
            plan,
            Knowledge {
                role: Role::Edge,
                own_truth: 1000,
                inferred_peer_truth: 800,
            },
            Box::new(OptimalStrategy),
            edge.private.clone(),
            op.public.clone(),
            [ne; 16],
            32,
        );
        let mut o = Endpoint::new(
            Role::Operator,
            plan,
            Knowledge {
                role: Role::Operator,
                own_truth: 800,
                inferred_peer_truth: 1000,
            },
            Box::new(OptimalStrategy),
            op.private.clone(),
            edge.public.clone(),
            [no; 16],
            32,
        );
        run_negotiation(&mut o, &mut e).unwrap().0
    }

    #[test]
    fn accepts_and_reports_across_shards() {
        let plan = DataPlan::paper_default();
        let mut svc = VerifierService::new(3);
        let mut rels = Vec::new();
        for i in 0..4u64 {
            let edge = KeyPair::generate_for_seed(1024, 7000 + i * 2).unwrap();
            let op = KeyPair::generate_for_seed(1024, 7001 + i * 2).unwrap();
            let poc = negotiate(&edge, &op, plan, i as u8 * 2 + 1, i as u8 * 2 + 2);
            let rel = svc
                .register(plan, edge.public.clone(), op.public.clone())
                .unwrap();
            rels.push(rel);
            svc.submit(rel, poc).unwrap();
        }
        let results = svc.collect_results().unwrap();
        assert_eq!(results.len(), 4);
        assert!(results.iter().all(|r| r.result.is_ok()));
        // Each result was processed on its relationship's shard.
        for r in &results {
            assert_eq!(r.shard, r.relationship.shard(3));
        }
        let report = svc.finish();
        assert_eq!(report.accepted, 4);
        assert_eq!(report.rejected, 0);
        assert_eq!(
            report.shards.iter().map(|s| s.relationships).sum::<usize>(),
            4
        );
    }

    #[test]
    fn duplicate_registration_is_deduplicated() {
        let plan = DataPlan::paper_default();
        let edge = KeyPair::generate_for_seed(1024, 7100).unwrap();
        let op = KeyPair::generate_for_seed(1024, 7101).unwrap();
        let mut svc = VerifierService::new(4);
        let a = svc
            .register(plan, edge.public.clone(), op.public.clone())
            .unwrap();
        let b = svc
            .register(plan, edge.public.clone(), op.public.clone())
            .unwrap();
        assert_eq!(a, b);
        // A different plan is a different relationship.
        let other = DataPlan {
            loss_weight: crate::plan::LossWeight::from_f64(0.25),
            ..plan
        };
        let c = svc
            .register(other, edge.public.clone(), op.public.clone())
            .unwrap();
        assert_ne!(a, c);
        svc.finish();
    }

    #[test]
    fn shard_isolation_replay_caught_exactly_once() {
        // The scenario the sharding must defend: one relationship,
        // registered twice (e.g. by two independent submitters), its
        // proof submitted once per handle. Dedup pins both handles to
        // one shard-local cache, so exactly one submission is accepted
        // and the other rejected as a replay — never two acceptances
        // from two shards with independent caches. With batching the
        // two submissions may even land in the same signature batch;
        // the sequential-walk replay semantics still hold.
        let plan = DataPlan::paper_default();
        let edge = KeyPair::generate_for_seed(1024, 7200).unwrap();
        let op = KeyPair::generate_for_seed(1024, 7201).unwrap();
        let poc = negotiate(&edge, &op, plan, 0x11, 0x22);
        let mut svc = VerifierService::new(4);
        let a = svc
            .register(plan, edge.public.clone(), op.public.clone())
            .unwrap();
        let b = svc
            .register(plan, edge.public.clone(), op.public.clone())
            .unwrap();
        svc.submit(a, poc.clone()).unwrap();
        svc.submit(b, poc.clone()).unwrap();
        let results = svc.collect_results().unwrap();
        let ok = results.iter().filter(|r| r.result.is_ok()).count();
        let replays = results
            .iter()
            .filter(|r| r.result == Err(VerifyError::Replayed))
            .count();
        assert_eq!((ok, replays), (1, 1));
        let report = svc.finish();
        assert_eq!(report.accepted, 1);
        assert_eq!(report.replayed, 1);
        // All of it on a single shard.
        let active: Vec<_> = report
            .shards
            .iter()
            .filter(|s| s.accepted + s.rejected > 0)
            .collect();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].replayed, 1);
    }

    #[test]
    fn rejection_paths_flow_through_results() {
        let plan = DataPlan::paper_default();
        let edge = KeyPair::generate_for_seed(1024, 7300).unwrap();
        let op = KeyPair::generate_for_seed(1024, 7301).unwrap();
        let poc = negotiate(&edge, &op, plan, 0x31, 0x32);
        let mut svc = VerifierService::new(2);
        let rel = svc
            .register(plan, edge.public.clone(), op.public.clone())
            .unwrap();
        // Distinct nonces so the replay cache does not trip first; the
        // tampered (signed) charge then breaks the signature chain.
        let mut tampered = negotiate(&edge, &op, plan, 0x33, 0x34);
        tampered.charge += 1;
        let t_ok = svc.submit(rel, poc).unwrap();
        let t_bad = svc.submit(rel, tampered).unwrap();
        let results = svc.collect_results().unwrap();
        let by_tag = |t: u64| results.iter().find(|r| r.tag == t).unwrap();
        assert!(by_tag(t_ok).result.is_ok());
        assert!(matches!(
            by_tag(t_bad).result,
            Err(VerifyError::Signature(_))
        ));
        let report = svc.finish();
        assert_eq!(
            (report.accepted, report.rejected, report.replayed),
            (1, 1, 0)
        );
    }

    #[test]
    fn batch_submit_tags_are_contiguous() {
        let plan = DataPlan::paper_default();
        let edge = KeyPair::generate_for_seed(1024, 7400).unwrap();
        let op = KeyPair::generate_for_seed(1024, 7401).unwrap();
        let a = negotiate(&edge, &op, plan, 0x41, 0x42);
        let b = negotiate(&edge, &op, plan, 0x43, 0x44);
        let mut svc = VerifierService::new(1);
        let rel = svc
            .register(plan, edge.public.clone(), op.public.clone())
            .unwrap();
        let (first, count) = svc.submit_batch(rel, [a, b]).unwrap();
        assert_eq!((first, count), (0, 2));
        let results = svc.collect_results().unwrap();
        let mut tags: Vec<u64> = results.iter().map(|r| r.tag).collect();
        tags.sort_unstable();
        assert_eq!(tags, vec![0, 1]);
        assert!(results.iter().all(|r| r.result.is_ok()));
        svc.finish();
    }

    #[test]
    fn finish_drains_unclaimed_results_deterministically() {
        // Regression: a remote client that disconnects mid-batch never
        // calls collect_results. Teardown used to drop the queued
        // verdicts on the floor with the channel; they must instead be
        // drained and counted so the report reconciles.
        let plan = DataPlan::paper_default();
        let edge = KeyPair::generate_for_seed(1024, 7900).unwrap();
        let op = KeyPair::generate_for_seed(1024, 7901).unwrap();
        let mut svc = VerifierService::new(1);
        let rel = svc
            .register(plan, edge.public.clone(), op.public.clone())
            .unwrap();
        for i in 0..3u8 {
            let poc = negotiate(&edge, &op, plan, 2 * i + 1, 2 * i + 2);
            svc.submit(rel, poc).unwrap();
        }
        assert_eq!(svc.outstanding(), 3);
        // Simulated disconnect: the caller walks away without collecting.
        let report = svc.finish();
        assert_eq!(report.accepted, 3);
        assert_eq!(report.unclaimed_results, 3);
    }

    #[test]
    fn try_collect_results_streams_without_blocking() {
        let plan = DataPlan::paper_default();
        let edge = KeyPair::generate_for_seed(1024, 7910).unwrap();
        let op = KeyPair::generate_for_seed(1024, 7911).unwrap();
        let mut svc = VerifierService::new(1);
        let rel = svc
            .register(plan, edge.public.clone(), op.public.clone())
            .unwrap();
        // Empty pump is a cheap no-op.
        assert!(svc.try_collect_results().is_empty());
        for i in 0..2u8 {
            let poc = negotiate(&edge, &op, plan, 2 * i + 1, 2 * i + 2);
            svc.submit(rel, poc).unwrap();
        }
        let mut got = Vec::new();
        while got.len() < 2 {
            got.extend(svc.try_collect_results());
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(svc.outstanding(), 0);
        let tags: Vec<u64> = got.iter().map(|r| r.tag).collect();
        assert_eq!(tags, vec![0, 1]);
        let report = svc.finish();
        assert_eq!(report.unclaimed_results, 0);
    }

    #[test]
    fn size_triggered_flush_fills_batches() {
        // With a long deadline, only the size trigger can flush — so
        // results arriving at all proves the size path works, and the
        // stats must show full batches with no deadline flushes before
        // shutdown.
        let plan = DataPlan::paper_default();
        let edge = KeyPair::generate_for_seed(1024, 7500).unwrap();
        let op = KeyPair::generate_for_seed(1024, 7501).unwrap();
        let mut svc = VerifierService::with_config(ServiceConfig {
            workers: 1,
            batch_size: 4,
            flush_deadline: Duration::from_secs(600),
            stage_queue_depth: 16,
        });
        let rel = svc
            .register(plan, edge.public.clone(), op.public.clone())
            .unwrap();
        for i in 0..8u8 {
            let poc = negotiate(&edge, &op, plan, 2 * i + 1, 2 * i + 2);
            svc.submit(rel, poc).unwrap();
        }
        let results = svc.collect_results().unwrap();
        assert_eq!(results.len(), 8);
        assert!(results.iter().all(|r| r.result.is_ok()));
        let report = svc.finish();
        assert_eq!(report.accepted, 8);
        assert_eq!(report.batches, 2);
        assert_eq!(report.shards[0].deadline_flushes, 0);
    }

    #[test]
    fn deadline_flush_preserves_submission_order() {
        // Fewer proofs than a batch: only the deadline can flush them.
        let plan = DataPlan::paper_default();
        let edge = KeyPair::generate_for_seed(1024, 7600).unwrap();
        let op = KeyPair::generate_for_seed(1024, 7601).unwrap();
        let mut svc = VerifierService::with_config(ServiceConfig {
            workers: 1,
            batch_size: 64,
            flush_deadline: Duration::from_millis(5),
            stage_queue_depth: 16,
        });
        let rel = svc
            .register(plan, edge.public.clone(), op.public.clone())
            .unwrap();
        let mut tags = Vec::new();
        for i in 0..3u8 {
            let poc = negotiate(&edge, &op, plan, 2 * i + 1, 2 * i + 2);
            tags.push(svc.submit(rel, poc).unwrap());
        }
        let results = svc.collect_results().unwrap();
        // Per relationship, results come back in submission order.
        let seen: Vec<u64> = results.iter().map(|r| r.tag).collect();
        assert_eq!(seen, tags);
        assert!(results.iter().all(|r| r.result.is_ok()));
        let report = svc.finish();
        assert_eq!(report.accepted, 3);
        assert!(report.shards[0].deadline_flushes >= 1);
    }

    #[test]
    fn concurrent_batches_across_relationships_stay_pinned_and_ordered() {
        // Several relationships interleaved under small batches: every
        // result must land on its relationship's shard, and each
        // relationship's results must arrive in submission order even
        // though batches from different relationships flush concurrently.
        let plan = DataPlan::paper_default();
        let mut svc = VerifierService::with_config(ServiceConfig {
            workers: 3,
            batch_size: 2,
            flush_deadline: Duration::from_millis(2),
            stage_queue_depth: 8,
        });
        let mut expected: HashMap<RelationshipId, Vec<u64>> = HashMap::new();
        for i in 0..3u64 {
            let edge = KeyPair::generate_for_seed(1024, 7700 + i * 2).unwrap();
            let op = KeyPair::generate_for_seed(1024, 7701 + i * 2).unwrap();
            let rel = svc
                .register(plan, edge.public.clone(), op.public.clone())
                .unwrap();
            for j in 0..4u8 {
                let poc = negotiate(
                    &edge,
                    &op,
                    plan,
                    8 * i as u8 + 2 * j + 1,
                    8 * i as u8 + 2 * j + 2,
                );
                let tag = svc.submit(rel, poc).unwrap();
                expected.entry(rel).or_default().push(tag);
            }
        }
        let results = svc.collect_results().unwrap();
        assert_eq!(results.len(), 12);
        assert!(results.iter().all(|r| r.result.is_ok()));
        let mut got: HashMap<RelationshipId, Vec<u64>> = HashMap::new();
        for r in &results {
            assert_eq!(r.shard, r.relationship.shard(3));
            got.entry(r.relationship).or_default().push(r.tag);
        }
        assert_eq!(got, expected);
        let report = svc.finish();
        assert_eq!(report.accepted, 12);
        assert!(report.batches >= 6, "12 proofs at batch size 2");
    }

    #[test]
    fn replay_rejected_within_and_across_batches() {
        let plan = DataPlan::paper_default();
        let edge = KeyPair::generate_for_seed(1024, 7800).unwrap();
        let op = KeyPair::generate_for_seed(1024, 7801).unwrap();
        let fresh = negotiate(&edge, &op, plan, 0x51, 0x52);
        let other = negotiate(&edge, &op, plan, 0x53, 0x54);
        let mut svc = VerifierService::with_config(ServiceConfig {
            workers: 1,
            batch_size: 3,
            flush_deadline: Duration::from_millis(2),
            stage_queue_depth: 8,
        });
        let rel = svc
            .register(plan, edge.public.clone(), op.public.clone())
            .unwrap();
        // One batch of [fresh, fresh, other]: within-batch replay.
        let t0 = svc.submit(rel, fresh.clone()).unwrap();
        let t1 = svc.submit(rel, fresh.clone()).unwrap();
        let t2 = svc.submit(rel, other).unwrap();
        let first = svc.collect_results().unwrap();
        // A later submission of the same proof: cross-batch replay.
        let t3 = svc.submit(rel, fresh).unwrap();
        let second = svc.collect_results().unwrap();
        let all: Vec<_> = first.iter().chain(second.iter()).collect();
        let by_tag = |t: u64| all.iter().find(|r| r.tag == t).unwrap();
        assert!(by_tag(t0).result.is_ok());
        assert_eq!(by_tag(t1).result, Err(VerifyError::Replayed));
        assert!(by_tag(t2).result.is_ok());
        assert_eq!(by_tag(t3).result, Err(VerifyError::Replayed));
        let report = svc.finish();
        assert_eq!((report.accepted, report.replayed), (2, 2));
    }
}
