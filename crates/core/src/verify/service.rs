//! A sharded, multi-threaded PoC verification service (§5.3.4).
//!
//! The paper sizes public verification at 230K PoCs/hour on a single
//! workstation; a deployment (FCC, court, MVNO) verifies proofs for many
//! edge↔operator relationships at once. This module promotes the ad-hoc
//! threading of `examples/verifier_service.rs` into a first-class
//! subsystem:
//!
//! * **N worker threads** over crossbeam channels, one submission queue
//!   per worker;
//! * **relationship-sharded state** — every relationship is pinned to
//!   exactly one shard, so each [`Verifier`] (and in particular its
//!   replay cache) is owned by a single thread and never shared or
//!   locked. Replay detection stays exact because a given relationship's
//!   proofs all land on the same shard;
//! * **batch submission** with tagged results and per-shard statistics.
//!
//! Registering the same `(plan, edge key, operator key)` relationship
//! twice yields the same [`RelationshipId`] — the registry deduplicates,
//! which is what makes shard-local replay caches sound (two handles to
//! one relationship cannot end up on different shards with independent
//! caches).

use super::{Verdict, Verifier, VerifyError, DEFAULT_REPLAY_CAPACITY};
use crate::messages::PocMsg;
use crate::plan::DataPlan;
use crossbeam::channel::{self, Receiver, Sender};
use std::collections::HashMap;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tlc_crypto::encoding::key_fingerprint;
use tlc_crypto::PublicKey;

/// Opaque handle to a registered relationship. Issued by
/// [`VerifierService::register`]; also determines the shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelationshipId(u64);

impl RelationshipId {
    /// The shard a relationship is pinned to, given the worker count.
    fn shard(self, workers: usize) -> usize {
        (self.0 % workers as u64) as usize
    }
}

/// Work items sent to a shard worker.
#[derive(Debug)]
enum Job {
    Register {
        rel: RelationshipId,
        plan: DataPlan,
        edge_key: PublicKey,
        operator_key: PublicKey,
        capacity: usize,
    },
    Verify {
        rel: RelationshipId,
        tag: u64,
        poc: PocMsg,
    },
}

/// Outcome of one submitted proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmissionResult {
    /// The relationship the proof was submitted under.
    pub relationship: RelationshipId,
    /// The tag returned by [`VerifierService::submit`] for correlation.
    pub tag: u64,
    /// The shard that processed the proof.
    pub shard: usize,
    /// Verdict or rejection.
    pub result: Result<Verdict, VerifyError>,
}

/// Counters for one shard, reported at shutdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index (same as the worker thread index).
    pub shard: usize,
    /// Relationships registered on this shard.
    pub relationships: usize,
    /// Proofs accepted.
    pub accepted: u64,
    /// Proofs rejected for any reason (includes replays).
    pub rejected: u64,
    /// Rejections that were replays specifically.
    pub replayed: u64,
}

/// Aggregate report returned by [`VerifierService::finish`].
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Per-shard counters, indexed by shard.
    pub shards: Vec<ShardStats>,
    /// Total proofs accepted across shards.
    pub accepted: u64,
    /// Total proofs rejected across shards (includes replays).
    pub rejected: u64,
    /// Total replays rejected across shards.
    pub replayed: u64,
    /// Wall-clock time from the first submission to shutdown.
    pub elapsed: Duration,
    /// Throughput over `elapsed`, comparable to the paper's 230K/hour.
    pub pocs_per_hour: f64,
}

/// A pool of shard workers verifying PoCs in parallel.
///
/// ```no_run
/// # use tlc_core::verify::service::VerifierService;
/// # use tlc_core::plan::DataPlan;
/// # let (edge_key, operator_key, poc): (tlc_crypto::PublicKey, tlc_crypto::PublicKey, tlc_core::messages::PocMsg) = unimplemented!();
/// let mut svc = VerifierService::new(4);
/// let rel = svc.register(DataPlan::paper_default(), edge_key, operator_key);
/// svc.submit(rel, poc);
/// let results = svc.collect_results();
/// let report = svc.finish();
/// ```
pub struct VerifierService {
    workers: usize,
    job_txs: Vec<Sender<Job>>,
    result_rx: Receiver<SubmissionResult>,
    stats_rx: Receiver<ShardStats>,
    handles: Vec<JoinHandle<()>>,
    /// Dedup registry: key fingerprints -> candidate (plan, id) pairs.
    registry: HashMap<(u64, u64), Vec<(DataPlan, RelationshipId)>>,
    next_rel: u64,
    next_tag: u64,
    outstanding: usize,
    first_submit: Option<Instant>,
}

impl VerifierService {
    /// Spawns `workers` shard threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (result_tx, result_rx) = channel::unbounded::<SubmissionResult>();
        let (stats_tx, stats_rx) = channel::unbounded::<ShardStats>();
        let mut job_txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for shard in 0..workers {
            let (tx, rx) = channel::unbounded::<Job>();
            job_txs.push(tx);
            let result_tx = result_tx.clone();
            let stats_tx = stats_tx.clone();
            handles.push(std::thread::spawn(move || {
                shard_worker(shard, rx, result_tx, stats_tx)
            }));
        }
        VerifierService {
            workers,
            job_txs,
            result_rx,
            stats_rx,
            handles,
            registry: HashMap::new(),
            next_rel: 0,
            next_tag: 0,
            outstanding: 0,
            first_submit: None,
        }
    }

    /// Worker threads backing the service.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Registers a relationship with the
    /// [default replay window](DEFAULT_REPLAY_CAPACITY); returns its id.
    ///
    /// Idempotent: the same `(plan, edge key, operator key)` triple maps
    /// to the same id (and therefore the same shard and replay cache).
    pub fn register(
        &mut self,
        plan: DataPlan,
        edge_key: PublicKey,
        operator_key: PublicKey,
    ) -> RelationshipId {
        self.register_with_capacity(plan, edge_key, operator_key, DEFAULT_REPLAY_CAPACITY)
    }

    /// [`register`](Self::register) with an explicit replay-cache bound.
    pub fn register_with_capacity(
        &mut self,
        plan: DataPlan,
        edge_key: PublicKey,
        operator_key: PublicKey,
        capacity: usize,
    ) -> RelationshipId {
        let fp = (key_fingerprint(&edge_key), key_fingerprint(&operator_key));
        let bucket = self.registry.entry(fp).or_default();
        if let Some((_, rel)) = bucket.iter().find(|(p, _)| *p == plan) {
            return *rel;
        }
        let rel = RelationshipId(self.next_rel);
        self.next_rel += 1;
        bucket.push((plan, rel));
        self.job_txs[rel.shard(self.workers)]
            .send(Job::Register {
                rel,
                plan,
                edge_key,
                operator_key,
                capacity,
            })
            .expect("shard worker alive");
        rel
    }

    /// Submits one proof for verification on its relationship's shard.
    /// Returns a tag to correlate with the [`SubmissionResult`].
    pub fn submit(&mut self, rel: RelationshipId, poc: PocMsg) -> u64 {
        assert!(rel.0 < self.next_rel, "unregistered relationship id");
        let tag = self.next_tag;
        self.next_tag += 1;
        self.first_submit.get_or_insert_with(Instant::now);
        self.outstanding += 1;
        self.job_txs[rel.shard(self.workers)]
            .send(Job::Verify { rel, tag, poc })
            .expect("shard worker alive");
        tag
    }

    /// Submits a batch under one relationship; returns the tag range as
    /// `(first, count)`.
    pub fn submit_batch(
        &mut self,
        rel: RelationshipId,
        pocs: impl IntoIterator<Item = PocMsg>,
    ) -> (u64, usize) {
        let first = self.next_tag;
        let mut count = 0usize;
        for poc in pocs {
            self.submit(rel, poc);
            count += 1;
        }
        (first, count)
    }

    /// Blocks until every submitted proof has a result and returns them
    /// (unordered across shards).
    pub fn collect_results(&mut self) -> Vec<SubmissionResult> {
        let mut out = Vec::with_capacity(self.outstanding);
        while self.outstanding > 0 {
            let r = self.result_rx.recv().expect("workers alive");
            self.outstanding -= 1;
            out.push(r);
        }
        out
    }

    /// Shuts the pool down: drains remaining work, joins the workers, and
    /// aggregates per-shard statistics.
    pub fn finish(mut self) -> ServiceReport {
        let started = self.first_submit.take();
        // Close the submission queues; workers drain and report stats.
        self.job_txs.clear();
        for h in self.handles.drain(..) {
            h.join().expect("shard worker panicked");
        }
        let elapsed = started.map(|t| t.elapsed()).unwrap_or_default();
        let mut shards: Vec<ShardStats> = Vec::with_capacity(self.workers);
        while let Ok(s) = self.stats_rx.recv() {
            shards.push(s);
        }
        shards.sort_by_key(|s| s.shard);
        let accepted = shards.iter().map(|s| s.accepted).sum();
        let rejected = shards.iter().map(|s| s.rejected).sum();
        let replayed = shards.iter().map(|s| s.replayed).sum();
        let processed = accepted + rejected;
        let pocs_per_hour = if elapsed.as_secs_f64() > 0.0 {
            processed as f64 / elapsed.as_secs_f64() * 3600.0
        } else {
            0.0
        };
        ServiceReport {
            shards,
            accepted,
            rejected,
            replayed,
            elapsed,
            pocs_per_hour,
        }
    }
}

/// One shard: owns the `Verifier` (and replay cache) of every
/// relationship pinned to it; no locks, no sharing.
fn shard_worker(
    shard: usize,
    jobs: Receiver<Job>,
    results: Sender<SubmissionResult>,
    stats: Sender<ShardStats>,
) {
    let mut verifiers: HashMap<RelationshipId, Verifier> = HashMap::new();
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let mut replayed = 0u64;
    while let Ok(job) = jobs.recv() {
        match job {
            Job::Register {
                rel,
                plan,
                edge_key,
                operator_key,
                capacity,
            } => {
                verifiers.entry(rel).or_insert_with(|| {
                    Verifier::with_capacity(plan, edge_key, operator_key, capacity)
                });
            }
            Job::Verify { rel, tag, poc } => {
                let verifier = verifiers
                    .get_mut(&rel)
                    .expect("register precedes submit on the same queue");
                let result = verifier.verify(&poc);
                match &result {
                    Ok(_) => accepted += 1,
                    Err(VerifyError::Replayed) => {
                        rejected += 1;
                        replayed += 1;
                    }
                    Err(_) => rejected += 1,
                }
                // The receiver may have been dropped by an aborting
                // caller; losing the result then is fine.
                let _ = results.send(SubmissionResult {
                    relationship: rel,
                    tag,
                    shard,
                    result,
                });
            }
        }
    }
    let _ = stats.send(ShardStats {
        shard,
        relationships: verifiers.len(),
        accepted,
        rejected,
        replayed,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{run_negotiation, Endpoint};
    use crate::strategy::{Knowledge, OptimalStrategy, Role};
    use tlc_crypto::KeyPair;

    fn negotiate(edge: &KeyPair, op: &KeyPair, plan: DataPlan, ne: u8, no: u8) -> PocMsg {
        let mut e = Endpoint::new(
            Role::Edge,
            plan,
            Knowledge {
                role: Role::Edge,
                own_truth: 1000,
                inferred_peer_truth: 800,
            },
            Box::new(OptimalStrategy),
            edge.private.clone(),
            op.public.clone(),
            [ne; 16],
            32,
        );
        let mut o = Endpoint::new(
            Role::Operator,
            plan,
            Knowledge {
                role: Role::Operator,
                own_truth: 800,
                inferred_peer_truth: 1000,
            },
            Box::new(OptimalStrategy),
            op.private.clone(),
            edge.public.clone(),
            [no; 16],
            32,
        );
        run_negotiation(&mut o, &mut e).unwrap().0
    }

    #[test]
    fn accepts_and_reports_across_shards() {
        let plan = DataPlan::paper_default();
        let mut svc = VerifierService::new(3);
        let mut rels = Vec::new();
        for i in 0..4u64 {
            let edge = KeyPair::generate_for_seed(1024, 7000 + i * 2).unwrap();
            let op = KeyPair::generate_for_seed(1024, 7001 + i * 2).unwrap();
            let poc = negotiate(&edge, &op, plan, i as u8 * 2 + 1, i as u8 * 2 + 2);
            let rel = svc.register(plan, edge.public.clone(), op.public.clone());
            rels.push(rel);
            svc.submit(rel, poc);
        }
        let results = svc.collect_results();
        assert_eq!(results.len(), 4);
        assert!(results.iter().all(|r| r.result.is_ok()));
        // Each result was processed on its relationship's shard.
        for r in &results {
            assert_eq!(r.shard, r.relationship.shard(3));
        }
        let report = svc.finish();
        assert_eq!(report.accepted, 4);
        assert_eq!(report.rejected, 0);
        assert_eq!(
            report.shards.iter().map(|s| s.relationships).sum::<usize>(),
            4
        );
    }

    #[test]
    fn duplicate_registration_is_deduplicated() {
        let plan = DataPlan::paper_default();
        let edge = KeyPair::generate_for_seed(1024, 7100).unwrap();
        let op = KeyPair::generate_for_seed(1024, 7101).unwrap();
        let mut svc = VerifierService::new(4);
        let a = svc.register(plan, edge.public.clone(), op.public.clone());
        let b = svc.register(plan, edge.public.clone(), op.public.clone());
        assert_eq!(a, b);
        // A different plan is a different relationship.
        let other = DataPlan {
            loss_weight: crate::plan::LossWeight::from_f64(0.25),
            ..plan
        };
        let c = svc.register(other, edge.public.clone(), op.public.clone());
        assert_ne!(a, c);
        svc.finish();
    }

    #[test]
    fn shard_isolation_replay_caught_exactly_once() {
        // The scenario the sharding must defend: one relationship,
        // registered twice (e.g. by two independent submitters), its
        // proof submitted once per handle. Dedup pins both handles to
        // one shard-local cache, so exactly one submission is accepted
        // and the other rejected as a replay — never two acceptances
        // from two shards with independent caches.
        let plan = DataPlan::paper_default();
        let edge = KeyPair::generate_for_seed(1024, 7200).unwrap();
        let op = KeyPair::generate_for_seed(1024, 7201).unwrap();
        let poc = negotiate(&edge, &op, plan, 0x11, 0x22);
        let mut svc = VerifierService::new(4);
        let a = svc.register(plan, edge.public.clone(), op.public.clone());
        let b = svc.register(plan, edge.public.clone(), op.public.clone());
        svc.submit(a, poc.clone());
        svc.submit(b, poc.clone());
        let results = svc.collect_results();
        let ok = results.iter().filter(|r| r.result.is_ok()).count();
        let replays = results
            .iter()
            .filter(|r| r.result == Err(VerifyError::Replayed))
            .count();
        assert_eq!((ok, replays), (1, 1));
        let report = svc.finish();
        assert_eq!(report.accepted, 1);
        assert_eq!(report.replayed, 1);
        // All of it on a single shard.
        let active: Vec<_> = report
            .shards
            .iter()
            .filter(|s| s.accepted + s.rejected > 0)
            .collect();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].replayed, 1);
    }

    #[test]
    fn rejection_paths_flow_through_results() {
        let plan = DataPlan::paper_default();
        let edge = KeyPair::generate_for_seed(1024, 7300).unwrap();
        let op = KeyPair::generate_for_seed(1024, 7301).unwrap();
        let poc = negotiate(&edge, &op, plan, 0x31, 0x32);
        let mut svc = VerifierService::new(2);
        let rel = svc.register(plan, edge.public.clone(), op.public.clone());
        // Distinct nonces so the replay cache does not trip first; the
        // tampered (signed) charge then breaks the signature chain.
        let mut tampered = negotiate(&edge, &op, plan, 0x33, 0x34);
        tampered.charge += 1;
        let t_ok = svc.submit(rel, poc);
        let t_bad = svc.submit(rel, tampered);
        let results = svc.collect_results();
        let by_tag = |t: u64| results.iter().find(|r| r.tag == t).unwrap();
        assert!(by_tag(t_ok).result.is_ok());
        assert!(matches!(
            by_tag(t_bad).result,
            Err(VerifyError::Signature(_))
        ));
        let report = svc.finish();
        assert_eq!(
            (report.accepted, report.rejected, report.replayed),
            (1, 1, 0)
        );
    }

    #[test]
    fn batch_submit_tags_are_contiguous() {
        let plan = DataPlan::paper_default();
        let edge = KeyPair::generate_for_seed(1024, 7400).unwrap();
        let op = KeyPair::generate_for_seed(1024, 7401).unwrap();
        let a = negotiate(&edge, &op, plan, 0x41, 0x42);
        let b = negotiate(&edge, &op, plan, 0x43, 0x44);
        let mut svc = VerifierService::new(1);
        let rel = svc.register(plan, edge.public.clone(), op.public.clone());
        let (first, count) = svc.submit_batch(rel, [a, b]);
        assert_eq!((first, count), (0, 2));
        let results = svc.collect_results();
        let mut tags: Vec<u64> = results.iter().map(|r| r.tag).collect();
        tags.sort_unstable();
        assert_eq!(tags, vec![0, 1]);
        assert!(results.iter().all(|r| r.result.is_ok()));
        svc.finish();
    }
}
