//! Loss-tolerant negotiation sessions over an unreliable signaling
//! channel.
//!
//! The Fig. 7 state machines in [`crate::protocol`] assume every message
//! arrives exactly once, in order. On the cellular edge the control
//! plane rides the same lossy, intermittent link as the data plane
//! (§3.1), so this module wraps an [`Endpoint`] in a [`Session`]: a
//! sans-IO, virtual-clock-driven ARQ layer providing
//!
//! * **sequence tracking** — every frame carries a per-direction sequence
//!   number; stale and future frames are filtered before they can confuse
//!   the protocol machine,
//! * **idempotent duplicate handling** — a retransmitted peer frame
//!   re-elicits our previous reply (and the endpoint itself re-emits
//!   cached replies, see [`Endpoint::handle`]),
//! * **retransmission** — stop-and-wait with deadline timers and capped
//!   exponential backoff (negotiation is strictly alternating, so one
//!   outstanding frame is always enough),
//! * **crash/restart recovery** — [`Session::snapshot`] checkpoints both
//!   the ARQ state and the endpoint ([`EndpointSnapshot`]); `restore`
//!   resumes mid-negotiation,
//! * **graceful degradation** — when the retry budget is exhausted or the
//!   peer provably misbehaves (`Stalled`, `PeerBoundViolation`, bad
//!   signatures…), the session falls back to the legacy 4G/5G charge
//!   ([`crate::legacy`]) instead of losing the charging cycle.
//!
//! No async runtime, no threads: callers pump [`Session::poll_transmit`],
//! [`Session::on_datagram`], and [`Session::handle_timeout`] against a
//! [`SimTime`] clock, exactly like the rest of the simulation substrate
//! (DESIGN.md §7.1). [`run_session_pair`] is the canonical pump, wiring
//! two sessions through a pair of [`FaultyChannel`]s.

use crate::legacy::{legacy_charge, LegacyOperator};
use crate::messages::{CdaMsg, CdrMsg, PocMsg};
use crate::protocol::{Endpoint, EndpointSnapshot, Message, ProtocolError, State};
use crate::strategy::Role;
use std::collections::VecDeque;
use tlc_net::channel::FaultyChannel;
use tlc_net::time::{SimDuration, SimTime};

/// Frame format version.
const FRAME_VERSION: u8 = 1;
/// Frame header: magic (2) + version (1) + kind (1) + seq (8) + len (4).
const FRAME_HEADER: usize = 16;
/// FNV-1a 64 checksum trailer.
const FRAME_TRAILER: usize = 8;

const KIND_CDR: u8 = 1;
const KIND_CDA: u8 = 2;
const KIND_POC: u8 = 3;
const KIND_ACK: u8 = 4;

/// Retransmission policy for a [`Session`].
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// First retransmission deadline.
    pub initial_rto: SimDuration,
    /// Backoff cap: the RTO doubles per retry up to this.
    pub max_rto: SimDuration,
    /// Retransmissions allowed per outstanding frame before the session
    /// gives up and falls back to the legacy charge.
    pub retry_budget: u32,
}

impl Default for SessionConfig {
    /// 200 ms initial RTO (a cellular-edge RTT plus signing time),
    /// capped at 3.2 s, 8 retries — ~12 s of trying before fallback.
    fn default() -> Self {
        SessionConfig {
            initial_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_millis(3_200),
            retry_budget: 8,
        }
    }
}

/// Why a session abandoned negotiation and fell back to legacy charging.
#[derive(Debug)]
pub enum FallbackReason {
    /// The retry budget ran out with a frame still unacknowledged.
    RetryBudgetExhausted,
    /// The peer provably misbehaved (bound violation, stalling, bad
    /// signature…).
    PeerMisbehavior(ProtocolError),
    /// The driver abandoned the session (peer gave up / cycle deadline).
    Abandoned,
}

/// How a session ended.
#[derive(Debug)]
pub enum SessionOutcome {
    /// Negotiation completed; both signatures bind this proof.
    Proof(Box<PocMsg>),
    /// Negotiation was abandoned; the party charges/accepts the legacy
    /// 4G/5G gateway-metered volume instead of losing the cycle.
    Fallback {
        /// Why negotiation was abandoned.
        reason: FallbackReason,
        /// The legacy charge this party settles on.
        charge: u64,
    },
}

impl SessionOutcome {
    /// The charge this outcome settles on.
    pub fn charge(&self) -> u64 {
        match self {
            SessionOutcome::Proof(poc) => poc.charge,
            SessionOutcome::Fallback { charge, .. } => *charge,
        }
    }

    /// True if negotiation completed with a proof.
    pub fn is_proof(&self) -> bool {
        matches!(self, SessionOutcome::Proof(_))
    }
}

/// ARQ-level counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct SessionStats {
    /// Frames handed to the channel (first transmissions).
    pub frames_sent: u64,
    /// Deadline-driven retransmissions.
    pub retransmits: u64,
    /// Acks sent (final-message delivery confirmation).
    pub acks_sent: u64,
    /// Duplicate peer frames consumed idempotently.
    pub duplicates_rx: u64,
    /// Frames discarded for checksum/decode failure.
    pub corrupt_rx: u64,
    /// Frames discarded as stale or from the future.
    pub out_of_order_rx: u64,
}

/// Checkpoint of a [`Session`] (ARQ state + endpoint snapshot) for
/// crash/restart recovery.
#[derive(Clone, Debug)]
pub struct SessionSnapshot {
    endpoint: EndpointSnapshot,
    send_seq: u64,
    recv_next: u64,
    last_frame: Option<Vec<u8>>,
    outstanding: bool,
    started: bool,
}

/// A loss-tolerant negotiation session: one [`Endpoint`] plus
/// stop-and-wait ARQ over the virtual clock.
pub struct Session {
    endpoint: Endpoint,
    config: SessionConfig,
    /// Sequence number of the next frame we originate.
    send_seq: u64,
    /// Sequence number we expect from the peer next.
    recv_next: u64,
    /// Encoded copy of the last frame we sent (retransmission and
    /// duplicate-elicited re-emission).
    last_frame: Option<Vec<u8>>,
    /// True while `last_frame` awaits acknowledgement (implicit — the
    /// peer's next in-order frame — or explicit for the final PoC).
    outstanding: bool,
    retries: u32,
    rto: SimDuration,
    next_timeout: Option<SimTime>,
    started: bool,
    tx_queue: VecDeque<Vec<u8>>,
    outcome: Option<SessionOutcome>,
    stats: SessionStats,
}

impl Session {
    /// Wraps an endpoint in a session with the given ARQ policy.
    pub fn new(endpoint: Endpoint, config: SessionConfig) -> Self {
        Session {
            endpoint,
            config,
            send_seq: 0,
            recv_next: 0,
            last_frame: None,
            outstanding: false,
            retries: 0,
            rto: config.initial_rto,
            next_timeout: None,
            started: false,
            tx_queue: VecDeque::new(),
            outcome: None,
            stats: SessionStats::default(),
        }
    }

    /// Initiates the negotiation (sends the first CDR). Responder
    /// sessions never call this — they wake on the first frame.
    pub fn start(&mut self, now: SimTime) -> Result<(), ProtocolError> {
        assert!(!self.started, "session already started");
        self.started = true;
        let msg = self.endpoint.initiate()?;
        self.send_message(now, &msg);
        Ok(())
    }

    /// Next frame to put on the wire, if any.
    pub fn poll_transmit(&mut self) -> Option<Vec<u8>> {
        self.tx_queue.pop_front()
    }

    /// When [`Session::handle_timeout`] next needs to run.
    pub fn poll_timeout(&self) -> Option<SimTime> {
        self.next_timeout
    }

    /// Fires the retransmission timer if due: re-queues the outstanding
    /// frame with doubled (capped) RTO, or falls back to the legacy
    /// charge once the retry budget is spent.
    pub fn handle_timeout(&mut self, now: SimTime) {
        if self.outcome.is_some() {
            self.next_timeout = None;
            return;
        }
        let Some(deadline) = self.next_timeout else {
            return;
        };
        if now < deadline || !self.outstanding {
            return;
        }
        if self.retries >= self.config.retry_budget {
            // Out of retries. If we already hold a completed proof (only
            // the final delivery confirmation is missing), the signed PoC
            // is still our receipt; otherwise degrade to legacy charging.
            if let Some(poc) = self.endpoint.proof() {
                self.outcome = Some(SessionOutcome::Proof(Box::new(poc.clone())));
            } else {
                self.fall_back(FallbackReason::RetryBudgetExhausted);
            }
            self.next_timeout = None;
            return;
        }
        let frame = self
            .last_frame
            .clone()
            .expect("outstanding implies a frame");
        self.tx_queue.push_back(frame);
        self.stats.retransmits += 1;
        self.retries += 1;
        self.rto = cap(self.rto + self.rto, self.config.max_rto);
        self.next_timeout = Some(now + self.rto);
    }

    /// Consumes one datagram from the channel.
    pub fn on_datagram(&mut self, now: SimTime, bytes: &[u8]) {
        if self.outcome.is_some() && !matches!(self.outcome, Some(SessionOutcome::Proof(_))) {
            // A fallen-back session no longer speaks TLC this cycle.
            return;
        }
        let Some((kind, seq, payload)) = decode_frame(bytes) else {
            self.stats.corrupt_rx += 1;
            return;
        };
        if kind == KIND_ACK {
            self.on_ack(seq);
            return;
        }
        let Some(msg) = decode_message(kind, &payload) else {
            self.stats.corrupt_rx += 1;
            return;
        };
        if seq.checked_add(1) == Some(self.recv_next) {
            // Exact duplicate of the frame we last consumed: the peer
            // missed our reply — re-elicit it without touching timers.
            self.stats.duplicates_rx += 1;
            if let Some(frame) = self.last_frame.clone() {
                self.tx_queue.push_back(frame);
            }
            return;
        }
        if seq != self.recv_next {
            self.stats.out_of_order_rx += 1;
            return;
        }

        // In-order frame: the peer necessarily received our previous
        // frame (strict alternation), so it is implicitly acknowledged.
        self.acked();
        match self.endpoint.handle(&msg) {
            Ok(Some(reply)) => {
                self.recv_next += 1;
                self.send_message(now, &reply);
            }
            Ok(None) => {
                // Consumed the PoC: confirm delivery and finish.
                self.recv_next += 1;
                self.send_ack(seq);
                let poc = self.endpoint.proof().expect("PoC consumed").clone();
                self.outcome = Some(SessionOutcome::Proof(Box::new(poc)));
                self.next_timeout = None;
            }
            Err(e) => {
                self.fall_back(FallbackReason::PeerMisbehavior(e));
            }
        }
    }

    fn on_ack(&mut self, seq: u64) {
        if self.outstanding && seq + 1 == self.send_seq {
            self.acked();
            self.next_timeout = None;
            if self.endpoint.state() == State::Done {
                if let Some(poc) = self.endpoint.proof() {
                    self.outcome = Some(SessionOutcome::Proof(Box::new(poc.clone())));
                }
            }
        }
    }

    fn acked(&mut self) {
        self.outstanding = false;
        self.retries = 0;
        self.rto = self.config.initial_rto;
    }

    fn send_message(&mut self, now: SimTime, msg: &Message) {
        let frame = encode_message_frame(self.send_seq, msg);
        self.send_seq += 1;
        self.last_frame = Some(frame.clone());
        self.outstanding = true;
        self.retries = 0;
        self.rto = self.config.initial_rto;
        self.next_timeout = Some(now + self.rto);
        self.stats.frames_sent += 1;
        self.tx_queue.push_back(frame);
    }

    fn send_ack(&mut self, seq: u64) {
        let frame = encode_frame(KIND_ACK, seq, &[]);
        // Stored for duplicate-elicited re-acking; acks are never
        // timer-retransmitted (the peer's retries drive them).
        self.last_frame = Some(frame.clone());
        self.outstanding = false;
        self.next_timeout = None;
        self.stats.acks_sent += 1;
        self.tx_queue.push_back(frame);
    }

    fn fall_back(&mut self, reason: FallbackReason) {
        let charge = self.fallback_charge();
        self.outcome = Some(SessionOutcome::Fallback { reason, charge });
        self.next_timeout = None;
        self.outstanding = false;
    }

    /// The legacy 4G/5G charge this party settles on if negotiation is
    /// abandoned: the gateway meter, which the operator reads directly
    /// and the edge knows as its inference of the operator's count.
    pub fn fallback_charge(&self) -> u64 {
        let k = self.endpoint.knowledge();
        let gateway_metered = match self.endpoint.role() {
            Role::Operator => k.own_truth,
            Role::Edge => k.inferred_peer_truth,
        };
        legacy_charge(gateway_metered, LegacyOperator::Honest)
    }

    /// Forces the fallback outcome (cycle deadline / peer gave up).
    pub fn abandon(&mut self) {
        if self.outcome.is_none() {
            if let Some(poc) = self.endpoint.proof() {
                self.outcome = Some(SessionOutcome::Proof(Box::new(poc.clone())));
            } else {
                self.fall_back(FallbackReason::Abandoned);
            }
        }
    }

    /// How the session ended, once it has.
    pub fn outcome(&self) -> Option<&SessionOutcome> {
        self.outcome.as_ref()
    }

    /// ARQ counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// The wrapped endpoint.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Checkpoints the session (ARQ + endpoint) for crash recovery.
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            endpoint: self.endpoint.snapshot(),
            send_seq: self.send_seq,
            recv_next: self.recv_next,
            last_frame: self.last_frame.clone(),
            outstanding: self.outstanding,
            started: self.started,
        }
    }

    /// Rebuilds a session from a checkpoint plus a restored endpoint
    /// (see [`Endpoint::restore`]). The outstanding frame, if any, is
    /// re-queued immediately and its timer re-armed, so recovery resumes
    /// the retransmission loop where the crash interrupted it.
    pub fn restore(
        snapshot: SessionSnapshot,
        endpoint: Endpoint,
        config: SessionConfig,
        now: SimTime,
    ) -> Self {
        let mut s = Session {
            endpoint,
            config,
            send_seq: snapshot.send_seq,
            recv_next: snapshot.recv_next,
            last_frame: snapshot.last_frame,
            outstanding: snapshot.outstanding,
            retries: 0,
            rto: config.initial_rto,
            next_timeout: None,
            started: snapshot.started,
            tx_queue: VecDeque::new(),
            outcome: None,
            stats: SessionStats::default(),
        };
        if s.outstanding {
            let frame = s.last_frame.clone().expect("outstanding implies a frame");
            s.tx_queue.push_back(frame);
            s.stats.retransmits += 1;
            s.next_timeout = Some(now + s.rto);
        }
        s
    }

    /// The endpoint snapshot inside a session snapshot (for feeding
    /// [`Endpoint::restore`]).
    pub fn endpoint_snapshot(snapshot: &SessionSnapshot) -> EndpointSnapshot {
        snapshot.endpoint.clone()
    }
}

fn cap(d: SimDuration, max: SimDuration) -> SimDuration {
    if d.as_micros() > max.as_micros() {
        max
    } else {
        d
    }
}

// ── frame codec ─────────────────────────────────────────────────────────

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn encode_frame(kind: u8, seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len() + FRAME_TRAILER);
    out.extend_from_slice(b"TL");
    out.push(FRAME_VERSION);
    out.push(kind);
    out.extend_from_slice(&seq.to_be_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    let sum = fnv64(&out);
    out.extend_from_slice(&sum.to_be_bytes());
    out
}

fn encode_message_frame(seq: u64, msg: &Message) -> Vec<u8> {
    let (kind, payload) = match msg {
        Message::Cdr(m) => (KIND_CDR, m.encode()),
        Message::Cda(m) => (KIND_CDA, m.encode()),
        Message::Poc(m) => (KIND_POC, m.encode()),
    };
    encode_frame(kind, seq, &payload)
}

/// Validates magic, version, length, and checksum; yields
/// `(kind, seq, payload)` or `None` for anything mangled.
fn decode_frame(bytes: &[u8]) -> Option<(u8, u64, Vec<u8>)> {
    if bytes.len() < FRAME_HEADER + FRAME_TRAILER || &bytes[..2] != b"TL" {
        return None;
    }
    if bytes[2] != FRAME_VERSION {
        return None;
    }
    let kind = bytes[3];
    let seq = u64::from_be_bytes(bytes[4..12].try_into().ok()?);
    let len = u32::from_be_bytes(bytes[12..16].try_into().ok()?) as usize;
    if bytes.len() != FRAME_HEADER + len + FRAME_TRAILER {
        return None;
    }
    let body = &bytes[..FRAME_HEADER + len];
    let sum = u64::from_be_bytes(bytes[FRAME_HEADER + len..].try_into().ok()?);
    if fnv64(body) != sum {
        return None;
    }
    Some((kind, seq, bytes[FRAME_HEADER..FRAME_HEADER + len].to_vec()))
}

fn decode_message(kind: u8, payload: &[u8]) -> Option<Message> {
    match kind {
        KIND_CDR => CdrMsg::decode(payload).ok().map(Message::Cdr),
        KIND_CDA => CdaMsg::decode(payload).ok().map(Message::Cda),
        KIND_POC => PocMsg::decode(payload).ok().map(Message::Poc),
        _ => None,
    }
}

// ── pair driver ─────────────────────────────────────────────────────────

/// Result of pumping a session pair to completion.
#[derive(Debug)]
pub struct PairReport {
    /// The initiator's outcome.
    pub initiator: SessionOutcome,
    /// The responder's outcome.
    pub responder: SessionOutcome,
    /// Virtual time from start to both outcomes.
    pub elapsed: SimDuration,
    /// Frames offered to both channels (first transmissions).
    pub frames_sent: u64,
    /// Deadline-driven retransmissions across both sessions.
    pub retransmits: u64,
}

impl PairReport {
    /// True when both parties hold the proof.
    pub fn converged(&self) -> bool {
        self.initiator.is_proof() && self.responder.is_proof()
    }

    /// The charge the cycle settles on: the PoC binds both parties if
    /// either holds one (it carries both signatures); otherwise both fell
    /// back to the same gateway-metered legacy charge.
    pub fn settled_charge(&self) -> u64 {
        match (&self.initiator, &self.responder) {
            (SessionOutcome::Proof(p), _) | (_, SessionOutcome::Proof(p)) => p.charge,
            (SessionOutcome::Fallback { charge, .. }, _) => *charge,
        }
    }
}

/// Pumps two sessions through a pair of directed [`FaultyChannel`]s on
/// the virtual clock until both reach an outcome (or `deadline` passes,
/// at which point stragglers are [abandoned](Session::abandon) — no
/// session ever hangs).
pub fn run_session_pair(
    initiator: &mut Session,
    responder: &mut Session,
    to_responder: &mut FaultyChannel,
    to_initiator: &mut FaultyChannel,
    start_at: SimTime,
    deadline: SimDuration,
) -> Result<PairReport, ProtocolError> {
    let mut now = start_at;
    let hard_stop = start_at + deadline;
    initiator.start(now)?;
    loop {
        while let Some(frame) = initiator.poll_transmit() {
            to_responder.send(now, frame);
        }
        while let Some(frame) = responder.poll_transmit() {
            to_initiator.send(now, frame);
        }
        for frame in to_responder.poll(now) {
            responder.on_datagram(now, &frame);
        }
        for frame in to_initiator.poll(now) {
            initiator.on_datagram(now, &frame);
        }
        initiator.handle_timeout(now);
        responder.handle_timeout(now);

        // Datagram consumption and timeouts may have queued transmissions
        // or produced outcomes; only advance the clock once quiescent.
        if !initiator.tx_queue.is_empty() || !responder.tx_queue.is_empty() {
            continue;
        }
        if initiator.outcome().is_some() && responder.outcome().is_some() {
            break;
        }

        let next = [
            to_responder.next_delivery(),
            to_initiator.next_delivery(),
            initiator.poll_timeout(),
            responder.poll_timeout(),
        ]
        .into_iter()
        .flatten()
        .min();
        match next {
            Some(at) if at <= hard_stop => now = at,
            _ => {
                // Quiescent (a side with no timer and nothing in flight)
                // or past the cycle deadline: abandon the stragglers.
                initiator.abandon();
                responder.abandon();
                break;
            }
        }
    }
    let i_stats = initiator.stats();
    let r_stats = responder.stats();
    Ok(PairReport {
        initiator: initiator.outcome.take().expect("loop exits with outcome"),
        responder: responder.outcome.take().expect("loop exits with outcome"),
        elapsed: now.since(start_at),
        frames_sent: i_stats.frames_sent + r_stats.frames_sent,
        retransmits: i_stats.retransmits + r_stats.retransmits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::DataPlan;
    use crate::strategy::{Knowledge, OptimalStrategy, RejectAllStrategy, Strategy};
    use tlc_crypto::KeyPair;
    use tlc_net::channel::FaultSpec;
    use tlc_net::loss::{NoLoss, UniformLoss};
    use tlc_net::rng::SimRng;

    fn setup(
        edge_strategy: Box<dyn Strategy>,
        op_strategy: Box<dyn Strategy>,
        sent: u64,
        received: u64,
    ) -> (Endpoint, Endpoint) {
        let plan = DataPlan::paper_default();
        let edge_keys = KeyPair::generate_for_seed(1024, 11).unwrap();
        let op_keys = KeyPair::generate_for_seed(1024, 22).unwrap();
        let edge = Endpoint::new(
            Role::Edge,
            plan,
            Knowledge {
                role: Role::Edge,
                own_truth: sent,
                inferred_peer_truth: received,
            },
            edge_strategy,
            edge_keys.private.clone(),
            op_keys.public.clone(),
            [0xEE; 16],
            32,
        );
        let op = Endpoint::new(
            Role::Operator,
            plan,
            Knowledge {
                role: Role::Operator,
                own_truth: received,
                inferred_peer_truth: sent,
            },
            op_strategy,
            op_keys.private.clone(),
            edge_keys.public.clone(),
            [0x00; 16],
            32,
        );
        (edge, op)
    }

    fn channel(loss: f64, spec: FaultSpec, seed: u64) -> FaultyChannel {
        let model: Box<dyn tlc_net::loss::LossModel> = if loss == 0.0 {
            Box::new(NoLoss)
        } else {
            Box::new(UniformLoss::new(loss))
        };
        FaultyChannel::new(spec, model, SimRng::new(seed))
    }

    fn run_pair(loss: f64, spec: FaultSpec, seed: u64) -> PairReport {
        let (edge, op) = setup(
            Box::new(OptimalStrategy),
            Box::new(OptimalStrategy),
            1000,
            800,
        );
        let mut initiator = Session::new(op, SessionConfig::default());
        let mut responder = Session::new(edge, SessionConfig::default());
        let mut rng = SimRng::new(seed);
        let mut fwd = channel(loss, spec.clone(), rng.next_u64());
        let mut back = channel(loss, spec, rng.next_u64());
        run_session_pair(
            &mut initiator,
            &mut responder,
            &mut fwd,
            &mut back,
            SimTime::from_millis(0),
            SimDuration::from_secs(120),
        )
        .unwrap()
    }

    #[test]
    fn clean_channel_converges_to_intended_charge() {
        let report = run_pair(0.0, FaultSpec::clean(), 1);
        assert!(report.converged());
        assert_eq!(report.settled_charge(), 900);
        assert_eq!(report.retransmits, 0);
        assert_eq!(report.frames_sent, 3, "CDR, CDA, PoC");
    }

    #[test]
    fn lossy_channel_recovers_via_retransmission() {
        let mut total_retransmits = 0;
        for seed in 0..20u64 {
            let report = run_pair(0.3, FaultSpec::with_faults(0.1, 0.1, 0.1), seed);
            assert!(report.converged(), "seed {seed} failed to converge");
            assert_eq!(report.settled_charge(), 900, "seed {seed}");
            total_retransmits += report.retransmits;
        }
        assert!(total_retransmits > 0, "30% loss never triggered a retry");
    }

    #[test]
    fn total_loss_falls_back_to_equal_legacy_charges() {
        let report = run_pair(1.0, FaultSpec::clean(), 9);
        assert!(!report.converged());
        assert!(matches!(
            report.initiator,
            SessionOutcome::Fallback {
                reason: FallbackReason::RetryBudgetExhausted,
                ..
            }
        ));
        assert!(matches!(report.responder, SessionOutcome::Fallback { .. }));
        // Both degrade to the same gateway-metered legacy charge.
        assert_eq!(report.initiator.charge(), report.responder.charge());
        assert_eq!(report.settled_charge(), 800);
    }

    #[test]
    fn misbehaving_peer_triggers_graceful_fallback() {
        // A reject-everything edge stalls the negotiation past max_rounds;
        // the session detects the `Stalled` protocol error and degrades to
        // the legacy charge instead of hanging.
        let (edge, op) = setup(
            Box::new(RejectAllStrategy),
            Box::new(OptimalStrategy),
            1000,
            800,
        );
        let mut initiator = Session::new(op, SessionConfig::default());
        let mut responder = Session::new(edge, SessionConfig::default());
        let mut fwd = channel(0.0, FaultSpec::clean(), 1);
        let mut back = channel(0.0, FaultSpec::clean(), 2);
        let report = run_session_pair(
            &mut initiator,
            &mut responder,
            &mut fwd,
            &mut back,
            SimTime::from_millis(0),
            SimDuration::from_secs(120),
        )
        .unwrap();
        assert!(!report.converged());
        let misbehavior_detected = [&report.initiator, &report.responder].iter().any(|o| {
            matches!(
                o,
                SessionOutcome::Fallback {
                    reason: FallbackReason::PeerMisbehavior(_),
                    ..
                }
            )
        });
        assert!(misbehavior_detected, "{report:?}");
        assert_eq!(report.initiator.charge(), report.responder.charge());
        assert_eq!(report.settled_charge(), 800);
    }

    #[test]
    fn crash_and_restore_resumes_mid_negotiation() {
        let (edge, op) = setup(
            Box::new(OptimalStrategy),
            Box::new(OptimalStrategy),
            1000,
            800,
        );
        let mut op_sess = Session::new(op, SessionConfig::default());
        let mut edge_sess = Session::new(edge, SessionConfig::default());
        let now = SimTime::from_millis(0);

        op_sess.start(now).unwrap();
        let cdr = op_sess.poll_transmit().unwrap();
        edge_sess.on_datagram(now, &cdr);
        let _cda_lost = edge_sess.poll_transmit().unwrap();

        // The edge crashes with its CDA in flight (and lost). Restore from
        // the checkpoint: the outstanding CDA is re-queued automatically.
        let snap = edge_sess.snapshot();
        drop(edge_sess);
        let plan = DataPlan::paper_default();
        let edge_keys = KeyPair::generate_for_seed(1024, 11).unwrap();
        let op_keys = KeyPair::generate_for_seed(1024, 22).unwrap();
        let restored_endpoint = Endpoint::restore(
            Session::endpoint_snapshot(&snap),
            Role::Edge,
            plan,
            Knowledge {
                role: Role::Edge,
                own_truth: 1000,
                inferred_peer_truth: 800,
            },
            Box::new(OptimalStrategy),
            edge_keys.private.clone(),
            op_keys.public.clone(),
            32,
        );
        let mut edge_sess =
            Session::restore(snap, restored_endpoint, SessionConfig::default(), now);

        let cda = edge_sess
            .poll_transmit()
            .expect("restore re-queues the outstanding frame");
        op_sess.on_datagram(now, &cda);
        let poc = op_sess.poll_transmit().unwrap();
        edge_sess.on_datagram(now, &poc);
        let ack = edge_sess.poll_transmit().unwrap();
        op_sess.on_datagram(now, &ack);

        assert!(edge_sess.outcome().unwrap().is_proof());
        assert!(op_sess.outcome().unwrap().is_proof());
        assert_eq!(op_sess.outcome().unwrap().charge(), 900);
    }

    #[test]
    fn corrupt_frames_are_rejected_by_checksum() {
        let frame = encode_frame(KIND_CDR, 7, b"payload");
        assert!(decode_frame(&frame).is_some());
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0xFF;
            assert!(decode_frame(&bad).is_none(), "flip at byte {i} accepted");
        }
        assert!(decode_frame(&frame[..frame.len() - 1]).is_none());
    }
}
