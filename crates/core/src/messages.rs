//! Signed TLC protocol messages: CDR, CDA, and PoC (§5.3.2).
//!
//! ```text
//! CDR_p = {T, c, s_p, n_p, x_p}K⁻_p
//! CDA_p = {T, c, s_p, n_p, x_p, CDR_peer}K⁻_p
//! PoC   = {T, c, x, CDA_peer}K⁻_p || n_e || n_o
//! ```
//!
//! Every message carries an RSA-1024 PKCS#1-v1.5/SHA-256 signature over its
//! canonical encoding, so a PoC embeds a CDA which embeds a CDR — giving
//! the verifier both parties' signatures over the final claims. Wire sizes
//! land where the paper's Fig. 17 table puts them (199 B CDR / 398 B CDA /
//! 796 B PoC with RSA-1024).

use crate::plan::DataPlan;
use crate::strategy::Role;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use tlc_crypto::pkcs1;
use tlc_crypto::sha256;
use tlc_crypto::{CryptoError, PrivateKey, PublicKey};

/// Nonce length in bytes.
pub const NONCE_LEN: usize = 16;

/// A per-negotiation random nonce.
pub type Nonce = [u8; NONCE_LEN];

/// Message type tags on the wire.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MsgType {
    /// Charging Data Record.
    Cdr = 1,
    /// Charging Data Acceptance.
    Cda = 2,
    /// Proof of Charging.
    Poc = 3,
}

/// Errors when decoding or authenticating a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MessageError {
    /// Byte-level decoding failed.
    Malformed(&'static str),
    /// A signature did not verify.
    BadSignature,
    /// Crypto-layer failure.
    Crypto(CryptoError),
}

impl From<CryptoError> for MessageError {
    fn from(e: CryptoError) -> Self {
        match e {
            CryptoError::BadSignature => MessageError::BadSignature,
            other => MessageError::Crypto(other),
        }
    }
}

impl std::fmt::Display for MessageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MessageError::Malformed(what) => write!(f, "malformed message: {what}"),
            MessageError::BadSignature => write!(f, "message signature invalid"),
            MessageError::Crypto(e) => write!(f, "crypto failure: {e}"),
        }
    }
}

impl std::error::Error for MessageError {}

fn put_role(buf: &mut BytesMut, role: Role) {
    buf.put_u8(match role {
        Role::Edge => 0,
        Role::Operator => 1,
    });
}

fn get_role(buf: &mut Bytes) -> Result<Role, MessageError> {
    if !buf.has_remaining() {
        return Err(MessageError::Malformed("missing role"));
    }
    match buf.get_u8() {
        0 => Ok(Role::Edge),
        1 => Ok(Role::Operator),
        _ => Err(MessageError::Malformed("unknown role")),
    }
}

pub(crate) fn put_plan(buf: &mut BytesMut, plan: &DataPlan) {
    buf.put_u64(plan.cycle.start_secs);
    buf.put_u64(plan.cycle.end_secs);
    // The loss weight as its exact rational, 1e-4 resolution.
    buf.put_u32((plan.loss_weight.as_f64() * 10_000.0).round() as u32);
}

pub(crate) fn get_plan(buf: &mut Bytes) -> Result<DataPlan, MessageError> {
    if buf.remaining() < 20 {
        return Err(MessageError::Malformed("truncated plan"));
    }
    let start = buf.get_u64();
    let end = buf.get_u64();
    let c_e4 = buf.get_u32();
    if end <= start || c_e4 > 10_000 {
        return Err(MessageError::Malformed("invalid plan fields"));
    }
    Ok(DataPlan {
        cycle: crate::plan::ChargingCycle::new(start, end),
        loss_weight: crate::plan::LossWeight::new(c_e4, 10_000),
    })
}

fn get_nonce(buf: &mut Bytes) -> Result<Nonce, MessageError> {
    if buf.remaining() < NONCE_LEN {
        return Err(MessageError::Malformed("truncated nonce"));
    }
    let mut n = [0u8; NONCE_LEN];
    buf.copy_to_slice(&mut n);
    Ok(n)
}

fn get_signature(buf: &mut Bytes) -> Result<Vec<u8>, MessageError> {
    if buf.remaining() < 2 {
        return Err(MessageError::Malformed("truncated signature header"));
    }
    let len = buf.get_u16() as usize;
    if buf.remaining() < len {
        return Err(MessageError::Malformed("truncated signature"));
    }
    Ok(buf.copy_to_bytes(len).to_vec())
}

fn put_signature(buf: &mut BytesMut, sig: &[u8]) {
    buf.put_u16(sig.len() as u16);
    buf.put_slice(sig);
}

/// A signed Charging Data Record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CdrMsg {
    /// Sender's role.
    pub role: Role,
    /// The data plan the claim is made under.
    pub plan: DataPlan,
    /// Sender's message sequence number (negotiation round of the claim).
    pub seq: u64,
    /// Sender's nonce for this negotiation.
    pub nonce: Nonce,
    /// Claimed usage in bytes (`x_e` or `x_o`).
    pub usage: u64,
    /// RSA signature over the canonical body.
    pub signature: Vec<u8>,
}

impl CdrMsg {
    fn body(&self) -> BytesMut {
        let mut b = BytesMut::with_capacity(64);
        b.put_u8(MsgType::Cdr as u8);
        put_role(&mut b, self.role);
        put_plan(&mut b, &self.plan);
        b.put_u64(self.seq);
        b.put_slice(&self.nonce);
        b.put_u64(self.usage);
        b
    }

    /// Builds and signs a CDR.
    pub fn sign(
        role: Role,
        plan: DataPlan,
        seq: u64,
        nonce: Nonce,
        usage: u64,
        key: &PrivateKey,
    ) -> Result<Self, CryptoError> {
        let mut msg = CdrMsg {
            role,
            plan,
            seq,
            nonce,
            usage,
            signature: Vec::new(),
        };
        msg.signature = pkcs1::sign(key, &msg.body())?;
        Ok(msg)
    }

    /// Verifies the signature against the sender's public key.
    pub fn verify(&self, key: &PublicKey) -> Result<(), MessageError> {
        pkcs1::verify(key, &self.body(), &self.signature)?;
        Ok(())
    }

    /// Serializes to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = self.body();
        put_signature(&mut b, &self.signature);
        b.to_vec()
    }

    /// Parses from wire bytes (does not verify the signature).
    pub fn decode(data: &[u8]) -> Result<Self, MessageError> {
        let mut buf = Bytes::copy_from_slice(data);
        let msg = Self::decode_from(&mut buf)?;
        if buf.has_remaining() {
            return Err(MessageError::Malformed("trailing bytes after CDR"));
        }
        Ok(msg)
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self, MessageError> {
        if !buf.has_remaining() || buf.get_u8() != MsgType::Cdr as u8 {
            return Err(MessageError::Malformed("not a CDR"));
        }
        let role = get_role(buf)?;
        let plan = get_plan(buf)?;
        if buf.remaining() < 8 {
            return Err(MessageError::Malformed("truncated CDR seq"));
        }
        let seq = buf.get_u64();
        let nonce = get_nonce(buf)?;
        if buf.remaining() < 8 {
            return Err(MessageError::Malformed("truncated CDR usage"));
        }
        let usage = buf.get_u64();
        let signature = get_signature(buf)?;
        Ok(CdrMsg {
            role,
            plan,
            seq,
            nonce,
            usage,
            signature,
        })
    }
}

/// A signed Charging Data Acceptance: the sender's own claim plus a copy
/// of the peer CDR it accepts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CdaMsg {
    /// Sender's role.
    pub role: Role,
    /// The data plan.
    pub plan: DataPlan,
    /// Sender's sequence number — echoes the accepted CDR's round.
    pub seq: u64,
    /// Sender's nonce.
    pub nonce: Nonce,
    /// Sender's own claimed usage.
    pub usage: u64,
    /// The peer CDR being accepted (embedded verbatim).
    pub peer_cdr: CdrMsg,
    /// RSA signature over the canonical body.
    pub signature: Vec<u8>,
}

impl CdaMsg {
    fn body(&self) -> BytesMut {
        self.body_with(&self.peer_cdr.encode())
    }

    /// Canonical body given the already-encoded embedded CDR, so batch
    /// chain hashing can encode each message in the chain exactly once.
    fn body_with(&self, peer_encoded: &[u8]) -> BytesMut {
        let mut b = BytesMut::with_capacity(256);
        b.put_u8(MsgType::Cda as u8);
        put_role(&mut b, self.role);
        put_plan(&mut b, &self.plan);
        b.put_u64(self.seq);
        b.put_slice(&self.nonce);
        b.put_u64(self.usage);
        b.put_u16(peer_encoded.len() as u16);
        b.put_slice(peer_encoded);
        b
    }

    /// Builds and signs a CDA accepting `peer_cdr`.
    pub fn sign(
        role: Role,
        plan: DataPlan,
        nonce: Nonce,
        usage: u64,
        peer_cdr: CdrMsg,
        key: &PrivateKey,
    ) -> Result<Self, CryptoError> {
        let seq = peer_cdr.seq; // echo the accepted round
        let mut msg = CdaMsg {
            role,
            plan,
            seq,
            nonce,
            usage,
            peer_cdr,
            signature: Vec::new(),
        };
        msg.signature = pkcs1::sign(key, &msg.body())?;
        Ok(msg)
    }

    /// Verifies the CDA signature *and* the embedded CDR's signature.
    pub fn verify(&self, sender_key: &PublicKey, peer_key: &PublicKey) -> Result<(), MessageError> {
        pkcs1::verify(sender_key, &self.body(), &self.signature)?;
        self.peer_cdr.verify(peer_key)
    }

    /// Serializes to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = self.body();
        put_signature(&mut b, &self.signature);
        b.to_vec()
    }

    /// Parses from wire bytes (does not verify signatures).
    pub fn decode(data: &[u8]) -> Result<Self, MessageError> {
        let mut buf = Bytes::copy_from_slice(data);
        let msg = Self::decode_from(&mut buf)?;
        if buf.has_remaining() {
            return Err(MessageError::Malformed("trailing bytes after CDA"));
        }
        Ok(msg)
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self, MessageError> {
        if !buf.has_remaining() || buf.get_u8() != MsgType::Cda as u8 {
            return Err(MessageError::Malformed("not a CDA"));
        }
        let role = get_role(buf)?;
        let plan = get_plan(buf)?;
        if buf.remaining() < 8 {
            return Err(MessageError::Malformed("truncated CDA seq"));
        }
        let seq = buf.get_u64();
        let nonce = get_nonce(buf)?;
        if buf.remaining() < 8 {
            return Err(MessageError::Malformed("truncated CDA usage"));
        }
        let usage = buf.get_u64();
        if buf.remaining() < 2 {
            return Err(MessageError::Malformed("truncated embedded CDR header"));
        }
        let peer_len = buf.get_u16() as usize;
        if buf.remaining() < peer_len {
            return Err(MessageError::Malformed("truncated embedded CDR"));
        }
        let peer_bytes = buf.copy_to_bytes(peer_len);
        let peer_cdr = CdrMsg::decode(&peer_bytes)?;
        let signature = get_signature(buf)?;
        Ok(CdaMsg {
            role,
            plan,
            seq,
            nonce,
            usage,
            peer_cdr,
            signature,
        })
    }
}

/// A Proof-of-Charging: the finalizer's signature over the plan, the
/// negotiated volume, and the accepted CDA — which itself carries the
/// other party's signature. Unforgeable and undeniable by either side.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PocMsg {
    /// Role of the party that finalized (received the CDA and accepted).
    pub role: Role,
    /// The data plan.
    pub plan: DataPlan,
    /// The negotiated charging volume `x`.
    pub charge: u64,
    /// The accepted CDA (embedded verbatim).
    pub cda: CdaMsg,
    /// Edge nonce, carried in the clear per the paper's construction.
    pub nonce_e: Nonce,
    /// Operator nonce, carried in the clear.
    pub nonce_o: Nonce,
    /// RSA signature over the canonical body.
    pub signature: Vec<u8>,
}

impl PocMsg {
    fn body(&self) -> BytesMut {
        self.body_with(&self.cda.encode())
    }

    /// Canonical body given the already-encoded embedded CDA.
    fn body_with(&self, cda_encoded: &[u8]) -> BytesMut {
        let mut b = BytesMut::with_capacity(512);
        b.put_u8(MsgType::Poc as u8);
        put_role(&mut b, self.role);
        put_plan(&mut b, &self.plan);
        b.put_u64(self.charge);
        b.put_u16(cda_encoded.len() as u16);
        b.put_slice(cda_encoded);
        b
    }

    /// SHA-256 digests of the three signed bodies in the chain (PoC,
    /// embedded CDA, doubly-embedded CDR), with each message encoded
    /// exactly once — the hash half of chain verification, split out so
    /// a pipelined service can run it on a different thread from the
    /// RSA half.
    pub fn chain_digests(&self) -> PocDigests {
        let mut cdr = self.cda.peer_cdr.body();
        let cdr_digest = sha256::digest(&cdr);
        put_signature(&mut cdr, &self.cda.peer_cdr.signature);
        let mut cda = self.cda.body_with(&cdr);
        let cda_digest = sha256::digest(&cda);
        put_signature(&mut cda, &self.cda.signature);
        let poc_body = self.body_with(&cda);
        PocDigests {
            poc: sha256::digest(&poc_body),
            cda: cda_digest,
            cdr: cdr_digest,
        }
    }

    /// Builds and signs a PoC finalizing `cda`.
    pub fn sign(
        role: Role,
        plan: DataPlan,
        charge: u64,
        cda: CdaMsg,
        nonce_e: Nonce,
        nonce_o: Nonce,
        key: &PrivateKey,
    ) -> Result<Self, CryptoError> {
        let mut msg = PocMsg {
            role,
            plan,
            charge,
            cda,
            nonce_e,
            nonce_o,
            signature: Vec::new(),
        };
        msg.signature = pkcs1::sign(key, &msg.body())?;
        Ok(msg)
    }

    /// Verifies the whole signature chain: PoC by the finalizer, CDA by
    /// the other party, embedded CDR by the finalizer again.
    pub fn verify_chain(
        &self,
        edge_key: &PublicKey,
        operator_key: &PublicKey,
    ) -> Result<(), MessageError> {
        let (finalizer_key, other_key) = match self.role {
            Role::Edge => (edge_key, operator_key),
            Role::Operator => (operator_key, edge_key),
        };
        pkcs1::verify(finalizer_key, &self.body(), &self.signature)?;
        // The CDA must come from the *other* party and embed the
        // finalizer's own CDR.
        if self.cda.role == self.role {
            return Err(MessageError::Malformed("CDA role matches finalizer"));
        }
        if self.cda.peer_cdr.role != self.role {
            return Err(MessageError::Malformed("embedded CDR role mismatch"));
        }
        self.cda.verify(other_key, finalizer_key)
    }

    /// Serializes to wire bytes (signed body plus the two clear nonces).
    pub fn encode(&self) -> Vec<u8> {
        let mut b = self.body();
        put_signature(&mut b, &self.signature);
        b.put_slice(&self.nonce_e);
        b.put_slice(&self.nonce_o);
        b.to_vec()
    }

    /// Parses from wire bytes (does not verify signatures).
    pub fn decode(data: &[u8]) -> Result<Self, MessageError> {
        let mut buf = Bytes::copy_from_slice(data);
        if !buf.has_remaining() || buf.get_u8() != MsgType::Poc as u8 {
            return Err(MessageError::Malformed("not a PoC"));
        }
        let role = get_role(&mut buf)?;
        let plan = get_plan(&mut buf)?;
        if buf.remaining() < 8 {
            return Err(MessageError::Malformed("truncated PoC charge"));
        }
        let charge = buf.get_u64();
        if buf.remaining() < 2 {
            return Err(MessageError::Malformed("truncated embedded CDA header"));
        }
        let cda_len = buf.get_u16() as usize;
        if buf.remaining() < cda_len {
            return Err(MessageError::Malformed("truncated embedded CDA"));
        }
        let cda_bytes = buf.copy_to_bytes(cda_len);
        let cda = CdaMsg::decode(&cda_bytes)?;
        let signature = get_signature(&mut buf)?;
        let nonce_e = get_nonce(&mut buf)?;
        let nonce_o = get_nonce(&mut buf)?;
        if buf.has_remaining() {
            return Err(MessageError::Malformed("trailing bytes after PoC"));
        }
        Ok(PocMsg {
            role,
            plan,
            charge,
            cda,
            nonce_e,
            nonce_o,
            signature,
        })
    }

    /// The edge's claimed usage inside this proof.
    pub fn edge_usage(&self) -> u64 {
        if self.cda.role == Role::Edge {
            self.cda.usage
        } else {
            self.cda.peer_cdr.usage
        }
    }

    /// The operator's claimed usage inside this proof.
    pub fn operator_usage(&self) -> u64 {
        if self.cda.role == Role::Operator {
            self.cda.usage
        } else {
            self.cda.peer_cdr.usage
        }
    }

    /// The nonce belonging to the edge inside the signed structures.
    pub fn signed_edge_nonce(&self) -> Nonce {
        if self.cda.role == Role::Edge {
            self.cda.nonce
        } else {
            self.cda.peer_cdr.nonce
        }
    }

    /// The nonce belonging to the operator inside the signed structures.
    pub fn signed_operator_nonce(&self) -> Nonce {
        if self.cda.role == Role::Operator {
            self.cda.nonce
        } else {
            self.cda.peer_cdr.nonce
        }
    }
}

/// SHA-256 digests of the three signed bodies inside one PoC chain,
/// produced by [`PocMsg::chain_digests`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PocDigests {
    /// Digest of the PoC's own signed body.
    pub poc: [u8; sha256::DIGEST_LEN],
    /// Digest of the embedded CDA's signed body.
    pub cda: [u8; sha256::DIGEST_LEN],
    /// Digest of the doubly-embedded CDR's signed body.
    pub cdr: [u8; sha256::DIGEST_LEN],
}

/// Batch form of [`PocMsg::verify_chain`] over pre-hashed chains: all
/// 3·N RSA verifications go through [`pkcs1::verify_batch`] (which
/// amortizes per-key Montgomery setup and runs a multi-lane kernel),
/// and each element's result matches the sequential path bit for bit —
/// same verdicts, same error precedence (PoC signature, then role
/// coherence, then CDA signature, then CDR signature).
pub fn verify_chains_batch_prehashed(
    items: &[(&PocMsg, &PocDigests)],
    edge_key: &PublicKey,
    operator_key: &PublicKey,
) -> Vec<Result<(), MessageError>> {
    let mut reqs = Vec::with_capacity(items.len() * 3);
    for (poc, d) in items {
        let (finalizer_key, other_key) = match poc.role {
            Role::Edge => (edge_key, operator_key),
            Role::Operator => (operator_key, edge_key),
        };
        reqs.push(pkcs1::VerifyRequest {
            key: finalizer_key,
            digest: d.poc,
            signature: &poc.signature,
        });
        reqs.push(pkcs1::VerifyRequest {
            key: other_key,
            digest: d.cda,
            signature: &poc.cda.signature,
        });
        reqs.push(pkcs1::VerifyRequest {
            key: finalizer_key,
            digest: d.cdr,
            signature: &poc.cda.peer_cdr.signature,
        });
    }
    let verdicts = pkcs1::verify_batch(&reqs);
    items
        .iter()
        .enumerate()
        .map(|(i, (poc, _))| {
            verdicts[3 * i].clone()?;
            if poc.cda.role == poc.role {
                return Err(MessageError::Malformed("CDA role matches finalizer"));
            }
            if poc.cda.peer_cdr.role != poc.role {
                return Err(MessageError::Malformed("embedded CDR role mismatch"));
            }
            verdicts[3 * i + 1].clone()?;
            verdicts[3 * i + 2].clone()?;
            Ok(())
        })
        .collect()
}

/// Batch chain verification that hashes and verifies in one call; see
/// [`verify_chains_batch_prehashed`] for the equivalence guarantee.
pub fn verify_chains_batch(
    pocs: &[&PocMsg],
    edge_key: &PublicKey,
    operator_key: &PublicKey,
) -> Vec<Result<(), MessageError>> {
    let digests: Vec<PocDigests> = pocs.iter().map(|p| p.chain_digests()).collect();
    let items: Vec<(&PocMsg, &PocDigests)> = pocs.iter().copied().zip(digests.iter()).collect();
    verify_chains_batch_prehashed(&items, edge_key, operator_key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlc_crypto::KeyPair;

    fn keys() -> (KeyPair, KeyPair) {
        (
            KeyPair::generate_for_seed(1024, 100).unwrap(),
            KeyPair::generate_for_seed(1024, 200).unwrap(),
        )
    }

    fn nonce(b: u8) -> Nonce {
        [b; NONCE_LEN]
    }

    fn build_chain(edge: &KeyPair, op: &KeyPair) -> (CdrMsg, CdaMsg, PocMsg) {
        let plan = DataPlan::paper_default();
        // Operator initiates (Fig. 7): CDR_o -> CDA_e -> PoC_o.
        let cdr_o = CdrMsg::sign(Role::Operator, plan, 1, nonce(2), 1000, &op.private).unwrap();
        let cda_e = CdaMsg::sign(
            Role::Edge,
            plan,
            nonce(1),
            800,
            cdr_o.clone(),
            &edge.private,
        )
        .unwrap();
        let poc = PocMsg::sign(
            Role::Operator,
            plan,
            900,
            cda_e.clone(),
            nonce(1),
            nonce(2),
            &op.private,
        )
        .unwrap();
        (cdr_o, cda_e, poc)
    }

    #[test]
    fn cdr_roundtrip_and_verify() {
        let (edge, _) = keys();
        let plan = DataPlan::paper_default();
        let cdr = CdrMsg::sign(Role::Edge, plan, 3, nonce(7), 123456, &edge.private).unwrap();
        cdr.verify(&edge.public).unwrap();
        let decoded = CdrMsg::decode(&cdr.encode()).unwrap();
        assert_eq!(decoded, cdr);
        decoded.verify(&edge.public).unwrap();
    }

    #[test]
    fn cdr_wire_size_matches_paper_scale() {
        // Fig. 17 reports 199 bytes for a TLC CDR under RSA-1024.
        let (edge, _) = keys();
        let cdr = CdrMsg::sign(
            Role::Edge,
            DataPlan::paper_default(),
            1,
            nonce(1),
            1,
            &edge.private,
        )
        .unwrap();
        let len = cdr.encode().len();
        assert!((180..=210).contains(&len), "CDR wire size {len}");
    }

    #[test]
    fn cda_embeds_and_verifies_cdr() {
        let (edge, op) = keys();
        let (_cdr, cda, _) = build_chain(&edge, &op);
        cda.verify(&edge.public, &op.public).unwrap();
        let decoded = CdaMsg::decode(&cda.encode()).unwrap();
        assert_eq!(decoded, cda);
        // CDA wire size should be roughly double a CDR (Fig. 17: 398 B).
        let len = cda.encode().len();
        assert!((360..=430).contains(&len), "CDA wire size {len}");
    }

    #[test]
    fn poc_chain_verifies_and_roundtrips() {
        let (edge, op) = keys();
        let (_, _, poc) = build_chain(&edge, &op);
        poc.verify_chain(&edge.public, &op.public).unwrap();
        let decoded = PocMsg::decode(&poc.encode()).unwrap();
        assert_eq!(decoded, poc);
        // Fig. 17: 796 B PoC.
        let len = poc.encode().len();
        assert!((500..=860).contains(&len), "PoC wire size {len}");
    }

    #[test]
    fn poc_accessors_resolve_roles() {
        let (edge, op) = keys();
        let (_, _, poc) = build_chain(&edge, &op);
        assert_eq!(poc.edge_usage(), 800);
        assert_eq!(poc.operator_usage(), 1000);
        assert_eq!(poc.signed_edge_nonce(), nonce(1));
        assert_eq!(poc.signed_operator_nonce(), nonce(2));
    }

    #[test]
    fn tampered_usage_breaks_signature() {
        let (edge, op) = keys();
        let (_, _, mut poc) = build_chain(&edge, &op);
        poc.charge = 1; // operator tries to bill a different volume
        assert!(matches!(
            poc.verify_chain(&edge.public, &op.public),
            Err(MessageError::BadSignature)
        ));
    }

    #[test]
    fn tampered_inner_cdr_breaks_chain() {
        let (edge, op) = keys();
        let (_, _, mut poc) = build_chain(&edge, &op);
        poc.cda.peer_cdr.usage = 999_999;
        // Outer signatures no longer cover the body.
        assert!(poc.verify_chain(&edge.public, &op.public).is_err());
    }

    #[test]
    fn wrong_keys_rejected() {
        let (edge, op) = keys();
        let (_, _, poc) = build_chain(&edge, &op);
        let stranger = KeyPair::generate_for_seed(1024, 999).unwrap();
        assert!(poc.verify_chain(&stranger.public, &op.public).is_err());
        assert!(poc.verify_chain(&edge.public, &stranger.public).is_err());
    }

    #[test]
    fn truncated_wire_rejected() {
        let (edge, op) = keys();
        let (cdr, cda, poc) = build_chain(&edge, &op);
        for msg in [cdr.encode(), cda.encode(), poc.encode()] {
            for cut in [0, 1, 5, msg.len() / 2, msg.len() - 1] {
                assert!(
                    CdrMsg::decode(&msg[..cut]).is_err()
                        && CdaMsg::decode(&msg[..cut]).is_err()
                        && PocMsg::decode(&msg[..cut]).is_err(),
                    "cut {cut} accepted"
                );
            }
        }
    }

    #[test]
    fn role_confusion_detected() {
        // A PoC whose CDA claims the finalizer's own role is malformed.
        let (edge, op) = keys();
        let plan = DataPlan::paper_default();
        let cdr_o = CdrMsg::sign(Role::Operator, plan, 1, nonce(2), 1000, &op.private).unwrap();
        // CDA *also* signed as operator (role confusion).
        let cda_o = CdaMsg::sign(Role::Operator, plan, nonce(1), 800, cdr_o, &op.private).unwrap();
        let poc = PocMsg::sign(
            Role::Operator,
            plan,
            900,
            cda_o,
            nonce(1),
            nonce(2),
            &op.private,
        )
        .unwrap();
        assert!(matches!(
            poc.verify_chain(&edge.public, &op.public),
            Err(MessageError::Malformed(_))
        ));
    }

    #[test]
    fn chain_digests_match_single_encodings() {
        let (edge, op) = keys();
        let (_, _, poc) = build_chain(&edge, &op);
        let d = poc.chain_digests();
        assert_eq!(d.poc, sha256::digest(&poc.body()));
        assert_eq!(d.cda, sha256::digest(&poc.cda.body()));
        assert_eq!(d.cdr, sha256::digest(&poc.cda.peer_cdr.body()));
    }

    #[test]
    fn batch_chain_verify_matches_sequential() {
        let (edge, op) = keys();
        let (_, _, good) = build_chain(&edge, &op);

        let plan = DataPlan::paper_default();
        // A PoC whose outer signature is corrupted.
        let mut bad_poc_sig = good.clone();
        bad_poc_sig.signature[10] ^= 0x40;
        // Corrupted CDA signature under a *valid* outer signature (the
        // finalizer re-signs over the tampered embedding), so the batch
        // must fail at the CDA arm specifically.
        let bad_cda_sig = {
            let mut cda = good.cda.clone();
            cda.signature[3] ^= 0x01;
            PocMsg::sign(
                good.role,
                plan,
                good.charge,
                cda,
                good.nonce_e,
                good.nonce_o,
                &op.private,
            )
            .unwrap()
        };
        // Corrupted CDR signature under valid CDA and PoC signatures.
        let bad_cdr_sig = {
            let mut cdr = good.cda.peer_cdr.clone();
            cdr.signature[0] ^= 0x80;
            let cda = CdaMsg::sign(
                Role::Edge,
                plan,
                good.cda.nonce,
                good.cda.usage,
                cdr,
                &edge.private,
            )
            .unwrap();
            PocMsg::sign(
                good.role,
                plan,
                good.charge,
                cda,
                good.nonce_e,
                good.nonce_o,
                &op.private,
            )
            .unwrap()
        };
        // Role confusion: CDA signed under the finalizer's own role.
        let cdr_o = CdrMsg::sign(Role::Operator, plan, 1, nonce(2), 1000, &op.private).unwrap();
        let cda_o = CdaMsg::sign(Role::Operator, plan, nonce(1), 800, cdr_o, &op.private).unwrap();
        let confused = PocMsg::sign(
            Role::Operator,
            plan,
            900,
            cda_o,
            nonce(1),
            nonce(2),
            &op.private,
        )
        .unwrap();

        let pocs = [&good, &bad_poc_sig, &bad_cda_sig, &bad_cdr_sig, &confused];
        let batch = verify_chains_batch(&pocs, &edge.public, &op.public);
        assert_eq!(batch.len(), pocs.len());
        for (i, poc) in pocs.iter().enumerate() {
            let sequential = poc.verify_chain(&edge.public, &op.public);
            assert_eq!(batch[i], sequential, "element {i} diverged");
        }
        // A failure isolates to its element: the good proof still passes.
        assert!(batch[0].is_ok());
        assert_eq!(batch[1], Err(MessageError::BadSignature));
        assert_eq!(batch[2], Err(MessageError::BadSignature));
        assert_eq!(batch[3], Err(MessageError::BadSignature));
        assert!(matches!(batch[4], Err(MessageError::Malformed(_))));
    }

    #[test]
    fn total_negotiation_overhead_matches_paper_scale() {
        // Fig. 17: 1393 bytes over 3 messages for a complete negotiation.
        let (edge, op) = keys();
        let (cdr, cda, poc) = build_chain(&edge, &op);
        let total = cdr.encode().len() + cda.encode().len() + poc.encode().len();
        assert!((1000..=1500).contains(&total), "total {total}");
    }
}
