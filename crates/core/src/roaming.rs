//! Three-party roaming settlement (DESIGN §14).
//!
//! The paper's charging game is two-party — one operator, one edge app
//! vendor. When a device roams, the cycle's traffic is served partly by
//! the subscriber's *home* operator and partly by a *visited* operator,
//! and the charged volume must settle across **three** parties:
//!
//! * the **edge vendor**, which keeps a fixed revenue share of every
//!   charged byte (its cut of the service it delivered),
//! * the **visited operator**, which is owed a wholesale fraction of
//!   the operator-side revenue for the bytes it carried,
//! * the **home operator**, which bills the subscriber and retains the
//!   remainder.
//!
//! Each serving segment is priced by the *same* loss–selfishness
//! cancellation as the two-party game (`charge_for` over the segment's
//! claim pair), so the gap-closure guarantees carry over unchanged; the
//! roaming plane only *splits* the already-negotiated volume.
//!
//! ## Exact conservation by construction
//!
//! Splits use [`LossWeight::scale_floor`] plus remainder assignment:
//! `vendor = ⌊share·x⌋`, `operator_part = x − vendor`, and (for
//! visited-served segments) `visited = ⌊wholesale·operator_part⌋`,
//! `home = operator_part − visited`. Every subtraction removes a value
//! floor-bounded by its minuend, so
//!
//! ```text
//! home + visited + vendor == x        (exactly, for every segment)
//! ```
//!
//! holds with no rounding slack — the `roaming_conformance` proptests
//! pin this for arbitrary volumes, shares, and handover schedules.
//!
//! ## Bonded multi-link devices
//!
//! A bonded device stripes one logical session over several links with
//! heterogeneous RTT/loss (cellular + satellite, dual-SIM, …). Each
//! link negotiates its own CDR; [`reconcile_bonded`] prices every link
//! with the shared loss weight and reconciles them into one charged
//! volume — the exact sum of the per-link charges, so
//! `Σ per-link charge == bonded charge` under any loss/reorder
//! schedule.
//!
//! ## Cross-operator replay scope
//!
//! A proof-of-charging settled through the home relationship must not
//! be creditable again through the visited relationship.
//! [`RoamingVerifier`] wraps both per-relationship [`Verifier`]s behind
//! one shared seen-nonce window, and — like the in-process verifier —
//! checks replay *before* crypto, so a cross-operator resubmission is
//! rejected as [`VerifyError::Replayed`] rather than merely failing its
//! signature check.

use crate::messages::PocMsg;
use crate::plan::{charge_for, DataPlan, LossWeight, UsagePair};
use crate::verify::{Verdict, Verifier, VerifyError, DEFAULT_REPLAY_CAPACITY};
use std::collections::{HashSet, VecDeque};

/// Which operator served a segment of the cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Serving {
    /// The subscriber's own operator carried the traffic.
    Home,
    /// A visited (roaming partner) operator carried the traffic.
    Visited,
}

impl Serving {
    /// Stable wire code (`SETTLE` frames carry it as one byte).
    pub fn code(self) -> u8 {
        match self {
            Serving::Home => 0,
            Serving::Visited => 1,
        }
    }

    /// Decodes a wire code; `None` for anything but 0/1.
    pub fn from_code(code: u8) -> Option<Serving> {
        match code {
            0 => Some(Serving::Home),
            1 => Some(Serving::Visited),
            _ => None,
        }
    }
}

/// The three-party commercial agreement a roaming relationship runs
/// under: the shared data plan plus the two revenue-split weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoamingAgreement {
    /// The data plan all three parties agreed to (fixes `c` and `T`).
    pub plan: DataPlan,
    /// The edge vendor's share of every charged byte.
    pub vendor_share: LossWeight,
    /// The visited operator's wholesale fraction of the operator-side
    /// revenue for bytes it carried.
    pub visited_wholesale: LossWeight,
}

impl RoamingAgreement {
    /// Evaluation defaults: the paper's plan (`c = 0.5`, 1-hour cycle),
    /// a 20 % vendor share, and a 75 % visited wholesale rate.
    pub fn paper_default() -> Self {
        RoamingAgreement {
            plan: DataPlan::paper_default(),
            vendor_share: LossWeight::new(1, 5),
            visited_wholesale: LossWeight::new(3, 4),
        }
    }

    /// Splits one segment's charged volume across the three parties.
    ///
    /// Exact: `home + visited + vendor == charged` always (floor-scale
    /// plus remainder assignment; the saturating subtractions never
    /// actually saturate because each cut is floor-bounded by its
    /// minuend).
    pub fn split_volume(&self, charged: u64, serving: Serving) -> SettlementSplit {
        let vendor_cut = self.vendor_share.scale_floor(charged);
        let operator_part = charged.saturating_sub(vendor_cut);
        match serving {
            Serving::Home => SettlementSplit {
                home: operator_part,
                visited: 0,
                vendor: vendor_cut,
            },
            Serving::Visited => {
                let visited_cut = self.visited_wholesale.scale_floor(operator_part);
                SettlementSplit {
                    home: operator_part.saturating_sub(visited_cut),
                    visited: visited_cut,
                    vendor: vendor_cut,
                }
            }
        }
    }

    /// Prices and splits every serving segment of one session's cycle.
    pub fn settle(&self, segments: &[Segment]) -> RoamingSettlement {
        let mut split = SettlementSplit::ZERO;
        let mut charged = 0u64;
        let mut settled = Vec::with_capacity(segments.len());
        for seg in segments {
            let x = charge_for(seg.claims, self.plan.loss_weight);
            let s = self.split_volume(x, seg.serving);
            charged = charged.saturating_add(x);
            split.merge(&s);
            settled.push(SegmentSettlement {
                serving: seg.serving,
                charged: x,
                split: s,
            });
        }
        RoamingSettlement {
            charged,
            split,
            segments: settled,
        }
    }
}

/// How one charged volume divides across the three parties, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SettlementSplit {
    /// The home operator's retained volume.
    pub home: u64,
    /// The visited operator's wholesale volume.
    pub visited: u64,
    /// The edge vendor's revenue-share volume.
    pub vendor: u64,
}

impl SettlementSplit {
    /// The all-zero split.
    pub const ZERO: SettlementSplit = SettlementSplit {
        home: 0,
        visited: 0,
        vendor: 0,
    };

    /// `home + visited + vendor` — equals the charged volume the split
    /// was derived from (the conservation law).
    pub fn total(&self) -> u64 {
        self.home
            .saturating_add(self.visited)
            .saturating_add(self.vendor)
    }

    /// Accumulates another split (saturating, like every charging
    /// counter in the workspace).
    pub fn merge(&mut self, other: &SettlementSplit) {
        self.home = self.home.saturating_add(other.home);
        self.visited = self.visited.saturating_add(other.visited);
        self.vendor = self.vendor.saturating_add(other.vendor);
    }
}

/// One serving segment of a cycle: who carried the traffic, and the
/// two parties' usage claims for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// The operator that served this segment.
    pub serving: Serving,
    /// The claim pair negotiated for this segment.
    pub claims: UsagePair,
}

/// One segment priced and split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentSettlement {
    /// The operator that served the segment.
    pub serving: Serving,
    /// The segment's negotiated charging volume.
    pub charged: u64,
    /// Its three-party split (`split.total() == charged`).
    pub split: SettlementSplit,
}

/// A whole cycle settled: the total charged volume, its aggregate
/// split, and the per-segment breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoamingSettlement {
    /// Total negotiated charging volume across all segments.
    pub charged: u64,
    /// Aggregate split (`split.total() == charged`).
    pub split: SettlementSplit,
    /// Per-segment settlements, in serving order.
    pub segments: Vec<SegmentSettlement>,
}

/// One link's CDR in a bonded multi-link session: the link's claim
/// pair plus the path characteristics that explain *why* its loss
/// differs from its siblings'.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkCdr {
    /// The link's negotiated claim pair (sent / delivered on this link).
    pub claims: UsagePair,
    /// Round-trip time of the link, microseconds (reporting only —
    /// pricing depends solely on the claims).
    pub rtt_us: u32,
    /// Loss rate of the link in basis points (reporting only).
    pub loss_bp: u32,
}

/// The per-link CDRs of a bonded session reconciled into one charged
/// volume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BondedReconciliation {
    /// The bonded session's single charged volume — the exact sum of
    /// the per-link charges.
    pub charged: u64,
    /// Each link's charge, in link order (`Σ == charged`).
    pub per_link: Vec<u64>,
}

/// Prices every link of a bonded session with the shared loss weight
/// and reconciles them into one charged volume. Each link runs the
/// same loss–selfishness cancellation as a standalone session; the
/// bonded charge is their exact sum, so per-link loss heterogeneity
/// (and any delivery reordering across links) cannot open a gap the
/// two-party analysis didn't already bound.
pub fn reconcile_bonded(links: &[LinkCdr], c: LossWeight) -> BondedReconciliation {
    let per_link: Vec<u64> = links.iter().map(|l| charge_for(l.claims, c)).collect();
    let mut charged = 0u64;
    for x in &per_link {
        charged = charged.saturating_add(*x);
    }
    BondedReconciliation { charged, per_link }
}

/// Total volume the bonded session's links claim as sent (the edge
/// side of every link CDR, saturating).
pub fn bonded_volume(links: &[LinkCdr]) -> u64 {
    let mut v = 0u64;
    for l in links {
        v = v.saturating_add(l.claims.edge);
    }
    v
}

/// Replay-scoped verification across a roaming pair: one shared
/// seen-nonce window over both per-relationship [`Verifier`]s, so a
/// proof settled with either operator cannot be re-credited through
/// the other. The shared window is FIFO-bounded exactly like each
/// relationship's own cache.
pub struct RoamingVerifier {
    home: Verifier,
    visited: Verifier,
    seen: HashSet<([u8; 16], [u8; 16])>,
    order: VecDeque<([u8; 16], [u8; 16])>,
    capacity: usize,
    cross_rejected: u64,
}

impl RoamingVerifier {
    /// Wraps the two relationship verifiers with the
    /// [default replay window](DEFAULT_REPLAY_CAPACITY).
    pub fn new(home: Verifier, visited: Verifier) -> Self {
        Self::with_capacity(home, visited, DEFAULT_REPLAY_CAPACITY)
    }

    /// Wraps the two relationship verifiers with a shared replay
    /// window retaining at most `capacity` accepted nonce pairs.
    pub fn with_capacity(home: Verifier, visited: Verifier, capacity: usize) -> Self {
        assert!(capacity > 0, "replay cache needs at least one slot");
        RoamingVerifier {
            home,
            visited,
            seen: HashSet::new(),
            order: VecDeque::new(),
            capacity,
            cross_rejected: 0,
        }
    }

    /// Verifies one proof through the named relationship, enforcing
    /// nonce freshness across *both* relationships. The shared replay
    /// check runs before any cryptography — mirroring
    /// [`Verifier::verify`] — so a cross-operator resubmission yields
    /// [`VerifyError::Replayed`], not a signature failure.
    pub fn verify(&mut self, serving: Serving, poc: &PocMsg) -> Result<Verdict, VerifyError> {
        let key = (poc.nonce_e, poc.nonce_o);
        if self.seen.contains(&key) {
            self.cross_rejected = self.cross_rejected.saturating_add(1);
            return Err(VerifyError::Replayed);
        }
        let judged = match serving {
            Serving::Home => self.home.verify(poc),
            Serving::Visited => self.visited.verify(poc),
        };
        if judged.is_ok() {
            self.remember(key);
        }
        judged
    }

    /// Commits an accepted nonce pair to the shared FIFO window.
    fn remember(&mut self, key: ([u8; 16], [u8; 16])) {
        if self.order.len() == self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.seen.remove(&oldest);
            }
        }
        self.seen.insert(key);
        self.order.push_back(key);
    }

    /// The home relationship's verifier.
    pub fn home(&self) -> &Verifier {
        &self.home
    }

    /// The visited relationship's verifier.
    pub fn visited(&self) -> &Verifier {
        &self.visited
    }

    /// Proofs rejected by the *shared* window (replays that the
    /// per-relationship caches alone would have missed or misreported).
    pub fn cross_rejected(&self) -> u64 {
        self.cross_rejected
    }

    /// Nonce pairs currently retained in the shared window.
    pub fn replay_window_len(&self) -> usize {
        self.order.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agreement() -> RoamingAgreement {
        RoamingAgreement::paper_default()
    }

    #[test]
    fn serving_codes_round_trip() {
        for s in [Serving::Home, Serving::Visited] {
            assert_eq!(Serving::from_code(s.code()), Some(s));
        }
        assert_eq!(Serving::from_code(2), None);
        assert_eq!(Serving::from_code(0xFF), None);
    }

    #[test]
    fn home_split_is_exact() {
        // x = 1000, vendor 20% -> 200; home keeps 800; visited gets 0.
        let s = agreement().split_volume(1000, Serving::Home);
        assert_eq!(
            s,
            SettlementSplit {
                home: 800,
                visited: 0,
                vendor: 200
            }
        );
        assert_eq!(s.total(), 1000);
    }

    #[test]
    fn visited_split_is_exact() {
        // x = 1000: vendor 200, operator part 800, visited 75% -> 600,
        // home retains 200.
        let s = agreement().split_volume(1000, Serving::Visited);
        assert_eq!(
            s,
            SettlementSplit {
                home: 200,
                visited: 600,
                vendor: 200
            }
        );
        assert_eq!(s.total(), 1000);
    }

    #[test]
    fn awkward_volumes_still_conserve() {
        let ag = RoamingAgreement {
            plan: DataPlan::paper_default(),
            vendor_share: LossWeight::new(1, 3),
            visited_wholesale: LossWeight::new(2, 7),
        };
        for x in [0u64, 1, 2, 6, 7, 999, 1_000_003, u64::MAX] {
            for serving in [Serving::Home, Serving::Visited] {
                let s = ag.split_volume(x, serving);
                assert_eq!(s.total(), x, "x={x} serving={serving:?}");
            }
        }
    }

    #[test]
    fn settle_prices_each_segment_with_the_two_party_formula() {
        // Home segment: (1000, 800) at c=0.5 -> 900.
        // Visited segment: (500, 400) at c=0.5 -> 450.
        let segs = [
            Segment {
                serving: Serving::Home,
                claims: UsagePair {
                    edge: 1000,
                    operator: 800,
                },
            },
            Segment {
                serving: Serving::Visited,
                claims: UsagePair {
                    edge: 500,
                    operator: 400,
                },
            },
        ];
        let out = agreement().settle(&segs);
        assert_eq!(out.charged, 1350);
        assert_eq!(out.segments.len(), 2);
        assert_eq!(out.segments[0].charged, 900);
        assert_eq!(out.segments[1].charged, 450);
        assert_eq!(out.split.total(), 1350);
        // Golden split: 900 home-served -> vendor 180, home 720;
        // 450 visited-served -> vendor 90, op part 360, visited 270,
        // home 90.
        assert_eq!(
            out.split,
            SettlementSplit {
                home: 810,
                visited: 270,
                vendor: 270
            }
        );
    }

    #[test]
    fn bonded_links_reconcile_to_exact_sum() {
        let links = [
            LinkCdr {
                claims: UsagePair {
                    edge: 1000,
                    operator: 900,
                },
                rtt_us: 20_000,
                loss_bp: 1000,
            },
            LinkCdr {
                claims: UsagePair {
                    edge: 400,
                    operator: 200,
                },
                rtt_us: 550_000,
                loss_bp: 5000,
            },
        ];
        let r = reconcile_bonded(&links, LossWeight::half());
        // 900 + 0.5*100 = 950; 200 + 0.5*200 = 300.
        assert_eq!(r.per_link, vec![950, 300]);
        assert_eq!(r.charged, 1250);
        assert_eq!(bonded_volume(&links), 1400);
    }

    #[test]
    fn empty_inputs_settle_to_zero() {
        let out = agreement().settle(&[]);
        assert_eq!(out.charged, 0);
        assert_eq!(out.split, SettlementSplit::ZERO);
        let r = reconcile_bonded(&[], LossWeight::half());
        assert_eq!(r.charged, 0);
        assert!(r.per_link.is_empty());
    }
}
