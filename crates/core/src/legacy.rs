//! The legacy 4G/5G charging baseline (§2.1, §3).
//!
//! In legacy charging the operator unilaterally bills from its gateway
//! CDRs: the edge has no say, no cross-check, and no proof. An honest
//! operator bills its gateway meter (which, for downlink, over-counts by
//! whatever the radio lost after the gateway); a selfish operator can bill
//! *anything* — the paper's point that legacy selfish charging is
//! unbounded.

use crate::plan::UsagePair;
use serde::{Deserialize, Serialize};

/// How the legacy operator sets the bill.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum LegacyOperator {
    /// Bills exactly the gateway meter (the paper's "(Honest) legacy
    /// 4G/5G" baseline).
    Honest,
    /// Bills `factor ×` the gateway meter — nothing in legacy 4G/5G
    /// stops this.
    Selfish {
        /// Over-claim factor (> 1 over-bills).
        factor: f64,
    },
    /// Bills an arbitrary fixed volume, demonstrating unboundedness.
    Arbitrary {
        /// The invented bill, bytes.
        volume: u64,
    },
}

/// Computes the legacy bill from the gateway meter.
pub fn legacy_charge(gateway_metered: u64, operator: LegacyOperator) -> u64 {
    match operator {
        LegacyOperator::Honest => gateway_metered,
        LegacyOperator::Selfish { factor } => {
            assert!(factor >= 0.0 && factor.is_finite());
            (gateway_metered as f64 * factor).round() as u64
        }
        LegacyOperator::Arbitrary { volume } => volume,
    }
}

/// The charging gap Δ = |x − x̂| of §7.1, in bytes.
pub fn absolute_gap(charged: u64, intended: u64) -> u64 {
    charged.abs_diff(intended)
}

/// The relative gap ratio ε = Δ / x̂ (0 when x̂ = 0 and x = x̂).
pub fn gap_ratio(charged: u64, intended: u64) -> f64 {
    if intended == 0 {
        return if charged == 0 { 0.0 } else { f64::INFINITY };
    }
    absolute_gap(charged, intended) as f64 / intended as f64
}

/// The gap-reduction ratio µ = (x_legacy − x_TLC) / x_legacy of Fig. 15,
/// computed on the *gaps*, i.e. µ = (Δ_legacy − Δ_TLC) / Δ_legacy.
pub fn gap_reduction(legacy_gap: u64, tlc_gap: u64) -> f64 {
    if legacy_gap == 0 {
        return 0.0;
    }
    (legacy_gap as f64 - tlc_gap as f64) / legacy_gap as f64
}

/// What the legacy operator's gateway meters for a (sent, received) truth
/// pair, per direction. Uplink: the gateway sits after the radio, so it
/// meters what was received. Downlink: the gateway sits before the radio,
/// so it meters what was sent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkDirection {
    /// Device → server.
    Uplink,
    /// Server → device.
    Downlink,
}

/// The gateway-metered volume for a ground-truth usage pair.
pub fn gateway_meter(truth: UsagePair, dir: LinkDirection) -> u64 {
    match dir {
        LinkDirection::Uplink => truth.operator, // received at the gateway
        LinkDirection::Downlink => truth.edge,   // counted at ingress, pre-loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_legacy_bills_gateway_meter() {
        assert_eq!(legacy_charge(123_456, LegacyOperator::Honest), 123_456);
    }

    #[test]
    fn selfish_legacy_is_unbounded() {
        assert_eq!(
            legacy_charge(1000, LegacyOperator::Selfish { factor: 100.0 }),
            100_000
        );
        assert_eq!(
            legacy_charge(0, LegacyOperator::Arbitrary { volume: u64::MAX }),
            u64::MAX
        );
    }

    #[test]
    fn gap_metrics() {
        assert_eq!(absolute_gap(900, 1000), 100);
        assert_eq!(absolute_gap(1100, 1000), 100);
        assert!((gap_ratio(900, 1000) - 0.1).abs() < 1e-12);
        assert_eq!(gap_ratio(0, 0), 0.0);
        assert!(gap_ratio(5, 0).is_infinite());
    }

    #[test]
    fn gap_reduction_ratio() {
        assert!((gap_reduction(100, 20) - 0.8).abs() < 1e-12);
        assert_eq!(gap_reduction(0, 0), 0.0);
        assert!(gap_reduction(10, 20) < 0.0); // TLC worse -> negative
    }

    #[test]
    fn gateway_meter_direction_asymmetry() {
        let truth = UsagePair {
            edge: 1000,
            operator: 800,
        };
        // Uplink: gateway only sees what survived the radio.
        assert_eq!(gateway_meter(truth, LinkDirection::Uplink), 800);
        // Downlink: gateway charges before the radio loses data.
        assert_eq!(gateway_meter(truth, LinkDirection::Downlink), 1000);
    }
}
