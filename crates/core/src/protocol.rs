//! The TLC negotiation protocol state machines (Fig. 7).
//!
//! Either party may initiate at the end of the charging cycle. Messages
//! implement Algorithm 1 at the wire level:
//!
//! * sending a **CDR** makes (or re-makes) a claim,
//! * replying a **CDA** accepts the peer's CDR and attaches one's own claim,
//! * replying a **PoC** accepts the CDA and finalizes — the PoC carries
//!   both parties' signatures and is stored by both as the charging receipt,
//! * replying a **CDR** to anything is an implicit reject + re-claim.
//!
//! An [`Endpoint`] drives one party; feed it incoming messages with
//! [`Endpoint::handle`] and it produces the response, updating the
//! Algorithm-1 bounds as rounds proceed.

use crate::cancellation::Bounds;
use crate::messages::{CdaMsg, CdrMsg, MessageError, Nonce, PocMsg};
use crate::plan::{charge_for, DataPlan, UsagePair};
use crate::strategy::{Decision, Knowledge, Role, Strategy};
use tlc_crypto::{PrivateKey, PublicKey};

/// Protocol-level failures.
#[derive(Debug)]
pub enum ProtocolError {
    /// Message decoding or signature failure.
    Message(MessageError),
    /// The peer's message referenced a different data plan.
    PlanMismatch,
    /// A CDA echoed a CDR we never sent (wrong nonce/seq/usage).
    EchoMismatch,
    /// The peer's claim violated the agreed bounds (line 12) — locally
    /// detected misbehavior; the negotiation is aborted.
    PeerBoundViolation {
        /// The offending claim.
        claim: u64,
        /// Bounds in force.
        bounds: Bounds,
    },
    /// A PoC carried a charge inconsistent with its embedded claims.
    ChargeMismatch {
        /// What the PoC said.
        claimed: u64,
        /// What the claims compute to.
        expected: u64,
    },
    /// Round cap exceeded (peer misbehaving per §5.1).
    Stalled {
        /// Rounds attempted.
        rounds: u32,
    },
    /// Message arrived in a state that cannot consume it.
    UnexpectedMessage(&'static str),
    /// Crypto failure while signing.
    Signing(tlc_crypto::CryptoError),
}

impl From<MessageError> for ProtocolError {
    fn from(e: MessageError) -> Self {
        ProtocolError::Message(e)
    }
}

impl From<tlc_crypto::CryptoError> for ProtocolError {
    fn from(e: tlc_crypto::CryptoError) -> Self {
        ProtocolError::Signing(e)
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Message(e) => write!(f, "message error: {e}"),
            ProtocolError::PlanMismatch => write!(f, "data plan mismatch"),
            ProtocolError::EchoMismatch => write!(f, "CDA echoed an unknown CDR"),
            ProtocolError::PeerBoundViolation { claim, bounds } => write!(
                f,
                "peer claim {claim} violates bounds [{}, {}]",
                bounds.lo, bounds.hi
            ),
            ProtocolError::ChargeMismatch { claimed, expected } => {
                write!(f, "PoC charge {claimed} != expected {expected}")
            }
            ProtocolError::Stalled { rounds } => write!(f, "stalled after {rounds} rounds"),
            ProtocolError::UnexpectedMessage(s) => write!(f, "unexpected message: {s}"),
            ProtocolError::Signing(e) => write!(f, "signing failure: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Any TLC protocol message.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// A claim (or re-claim).
    Cdr(CdrMsg),
    /// Acceptance of a CDR, with own claim attached.
    Cda(CdaMsg),
    /// Finalized proof.
    Poc(PocMsg),
}

impl Message {
    /// Wire encoding of whichever variant this is.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Message::Cdr(m) => m.encode(),
            Message::Cda(m) => m.encode(),
            Message::Poc(m) => m.encode(),
        }
    }
}

/// Protocol state (Fig. 7a), named by the last message sent.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum State {
    /// Nothing sent yet.
    Null,
    /// Sent a CDR; awaiting CDA (accept) or CDR (reject).
    SentCdr,
    /// Sent a CDA; awaiting PoC (accept) or CDR (reject).
    SentCda,
    /// Negotiation complete; PoC stored.
    Done,
}

/// Message/byte counters for overhead accounting (Fig. 17).
#[derive(Clone, Copy, Default, Debug)]
pub struct EndpointStats {
    /// Messages sent.
    pub msgs_sent: u64,
    /// Bytes sent.
    pub bytes_sent: u64,
    /// RSA signing operations performed.
    pub signatures_made: u64,
    /// RSA verifications performed.
    pub signatures_checked: u64,
}

/// One party's protocol endpoint.
pub struct Endpoint {
    role: Role,
    plan: DataPlan,
    knowledge: Knowledge,
    strategy: Box<dyn Strategy>,
    own_key: PrivateKey,
    peer_key: PublicKey,
    nonce: Nonce,
    state: State,
    bounds: Bounds,
    round: u32,
    max_rounds: u32,
    /// The last CDR we sent (to match CDA echoes).
    last_sent_cdr: Option<CdrMsg>,
    /// Our standing claim for the round in progress.
    last_own_claim: Option<u64>,
    /// The peer claim our standing claim was paired against (set once we
    /// have seen the peer's side of the round; used for catch-up
    /// tightening when the peer's next message shows it rejected).
    last_peer_claim: Option<u64>,
    completed: Option<PocMsg>,
    stats: EndpointStats,
    /// The last message consumed and the reply it produced. An exact
    /// re-delivery (retransmission on a lossy control channel) re-emits
    /// the cached reply instead of erroring — without advancing state or
    /// overhead counters, so retries are free on the protocol ledger.
    last_rx: LastRx,
}

/// Retransmission cache for [`Endpoint::handle`].
///
/// The proof-bearing paths are stored *symbolically* against
/// [`Endpoint::completed`] rather than as owned copies, so accepting a
/// CDA or consuming a PoC never clones the (large, signature-laden)
/// proof a second time just to arm the duplicate-delivery cache. The
/// owned clones are re-derived only on an actual retransmission, which
/// is the rare path.
// One cache lives inline per endpoint (as the old tuple field did);
// boxing the `Msg` variant would put a heap hop on every non-completion
// `handle` call to save bytes that were always resident anyway.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
enum LastRx {
    /// Nothing consumed yet.
    None,
    /// Ordinary cached `(message, reply)` pair.
    Msg(Message, Option<Message>),
    /// Last consumed message was the CDA now embedded in `completed`;
    /// the reply owed on retransmission is the stored PoC itself.
    AcceptedCda,
    /// Last consumed message was the stored PoC; no reply owed.
    ConsumedPoc,
}

impl Endpoint {
    /// Creates an endpoint ready to initiate or respond.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        role: Role,
        plan: DataPlan,
        knowledge: Knowledge,
        strategy: Box<dyn Strategy>,
        own_key: PrivateKey,
        peer_key: PublicKey,
        nonce: Nonce,
        max_rounds: u32,
    ) -> Self {
        assert_eq!(role, knowledge.role, "knowledge must match role");
        Endpoint {
            role,
            plan,
            knowledge,
            strategy,
            own_key,
            peer_key,
            nonce,
            state: State::Null,
            bounds: Bounds::unbounded(),
            round: 0,
            max_rounds,
            last_sent_cdr: None,
            last_own_claim: None,
            last_peer_claim: None,
            completed: None,
            stats: EndpointStats::default(),
            last_rx: LastRx::None,
        }
    }

    /// Starts the negotiation by sending the first CDR.
    pub fn initiate(&mut self) -> Result<Message, ProtocolError> {
        assert_eq!(self.state, State::Null, "initiate only from Null");
        let cdr = self.make_cdr()?;
        self.state = State::SentCdr;
        Ok(Message::Cdr(cdr))
    }

    fn make_cdr(&mut self) -> Result<CdrMsg, ProtocolError> {
        self.round += 1;
        if self.round > self.max_rounds {
            return Err(ProtocolError::Stalled {
                rounds: self.round - 1,
            });
        }
        let claim = self
            .strategy
            .claim(&self.knowledge, &self.bounds, self.round);
        let cdr = CdrMsg::sign(
            self.role,
            self.plan,
            self.round as u64,
            self.nonce,
            claim,
            &self.own_key,
        )?;
        self.stats.signatures_made += 1;
        self.note_sent(cdr.encode().len());
        self.last_sent_cdr = Some(cdr.clone());
        self.last_own_claim = Some(claim);
        self.last_peer_claim = None;
        Ok(cdr)
    }

    fn note_sent(&mut self, bytes: usize) {
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += bytes as u64;
    }

    fn check_plan(&self, plan: &DataPlan) -> Result<(), ProtocolError> {
        if *plan != self.plan {
            return Err(ProtocolError::PlanMismatch);
        }
        Ok(())
    }

    fn check_peer_bounds(&self, claim: u64) -> Result<(), ProtocolError> {
        if !self.bounds.admits(claim) {
            return Err(ProtocolError::PeerBoundViolation {
                claim,
                bounds: self.bounds,
            });
        }
        Ok(())
    }

    /// Consumes an incoming message and produces the reply, if any.
    ///
    /// `Ok(None)` means the negotiation just completed on our side with no
    /// further message owed (only happens on receiving a valid PoC).
    pub fn handle(&mut self, msg: &Message) -> Result<Option<Message>, ProtocolError> {
        // Idempotent duplicate consumption: an exact re-delivery of the
        // last message (a retransmission) re-emits the previous reply
        // without re-running the state machine.
        match &self.last_rx {
            LastRx::Msg(seen, reply) if seen == msg => return Ok(reply.clone()),
            LastRx::AcceptedCda => {
                if let (Message::Cda(cda), Some(poc)) = (msg, &self.completed) {
                    if poc.cda == *cda {
                        return Ok(Some(Message::Poc(poc.clone())));
                    }
                }
            }
            LastRx::ConsumedPoc => {
                if let (Message::Poc(rx), Some(poc)) = (msg, &self.completed) {
                    if rx == poc {
                        return Ok(None);
                    }
                }
            }
            _ => {}
        }
        let reply = match msg {
            Message::Cdr(cdr) => self.on_cdr(cdr),
            Message::Cda(cda) => self.on_cda(cda),
            Message::Poc(poc) => self.on_poc(poc),
        }?;
        self.last_rx = match (msg, &reply) {
            // The completion paths just stored the proof in `completed`;
            // arm the cache by reference instead of cloning the PoC (and
            // its three signatures) all over again.
            (Message::Cda(_), Some(Message::Poc(_))) => LastRx::AcceptedCda,
            (Message::Poc(_), None) => LastRx::ConsumedPoc,
            _ => LastRx::Msg(msg.clone(), reply.clone()),
        };
        Ok(reply)
    }

    fn on_cdr(&mut self, cdr: &CdrMsg) -> Result<Option<Message>, ProtocolError> {
        cdr.verify(&self.peer_key)?;
        self.stats.signatures_checked += 1;
        self.check_plan(&cdr.plan)?;

        // Catch-up tightening: a fresh CDR while we hold a resolved claim
        // pair (we sent a CDA the peer is now rejecting) means the previous
        // round failed — apply line 12 for it first, exactly as the peer
        // did on its side.
        if let (Some(own), Some(peer)) = (self.last_own_claim, self.last_peer_claim) {
            self.bounds = self.bounds.tighten(own, peer);
            self.last_own_claim = None;
            self.last_peer_claim = None;
        }
        self.check_peer_bounds(cdr.usage)?;

        // Our claim for this round: the standing one from our own CDR, or
        // a fresh one if we are (re-)responding.
        let own_claim = match (self.state, self.last_own_claim) {
            (State::SentCdr, Some(claim)) => claim,
            _ => {
                // Compute a fresh claim; it travels inside the CDA (accept)
                // or a counter-CDR (reject) — build the CDR but only count
                // its transmission if we actually send it.
                let c = self.make_unsent_cdr()?;
                let usage = c.usage;
                self.last_sent_cdr = Some(c);
                self.last_own_claim = Some(usage);
                usage
            }
        };
        self.last_peer_claim = Some(cdr.usage);

        let decision = self.strategy.decide(&self.knowledge, own_claim, cdr.usage);
        if decision == Decision::Accept {
            let cda = CdaMsg::sign(
                self.role,
                self.plan,
                self.nonce,
                own_claim,
                cdr.clone(),
                &self.own_key,
            )?;
            self.stats.signatures_made += 1;
            self.note_sent(cda.encode().len());
            self.state = State::SentCda;
            Ok(Some(Message::Cda(cda)))
        } else {
            // Implicit reject. If our claim for this round was never
            // transmitted, the counter-CDR carrying it is our rejection;
            // otherwise both claims are on the table and we open the next
            // round with a fresh claim under tightened bounds.
            self.bounds = self.bounds.tighten(own_claim, cdr.usage);
            self.last_own_claim = None;
            self.last_peer_claim = None;
            let reply = match (self.state, &self.last_sent_cdr) {
                (State::Null, Some(mine)) | (State::SentCda, Some(mine))
                    if mine.usage == own_claim =>
                {
                    // Send the standing (untransmitted) claim as-is.
                    let cdr_out = mine.clone();
                    self.note_sent(cdr_out.encode().len());
                    self.last_own_claim = Some(cdr_out.usage);
                    cdr_out
                }
                _ => self.make_cdr()?,
            };
            self.state = State::SentCdr;
            Ok(Some(Message::Cdr(reply)))
        }
    }

    /// Builds and signs a CDR for this round without counting it as
    /// transmitted (it may travel embedded in a CDA instead).
    fn make_unsent_cdr(&mut self) -> Result<CdrMsg, ProtocolError> {
        self.round += 1;
        if self.round > self.max_rounds {
            return Err(ProtocolError::Stalled {
                rounds: self.round - 1,
            });
        }
        let claim = self
            .strategy
            .claim(&self.knowledge, &self.bounds, self.round);
        let cdr = CdrMsg::sign(
            self.role,
            self.plan,
            self.round as u64,
            self.nonce,
            claim,
            &self.own_key,
        )?;
        self.stats.signatures_made += 1;
        Ok(cdr)
    }

    fn on_cda(&mut self, cda: &CdaMsg) -> Result<Option<Message>, ProtocolError> {
        if self.state != State::SentCdr {
            return Err(ProtocolError::UnexpectedMessage("CDA without pending CDR"));
        }
        cda.verify(&self.peer_key, &self.own_key.public)?;
        self.stats.signatures_checked += 2;
        self.check_plan(&cda.plan)?;
        // The CDA must echo exactly the CDR we last sent.
        let mine = self.last_sent_cdr.as_ref().expect("SentCdr implies a CDR");
        if cda.peer_cdr != *mine {
            return Err(ProtocolError::EchoMismatch);
        }
        self.check_peer_bounds(cda.usage)?;

        let own_claim = mine.usage;
        let decision = self.strategy.decide(&self.knowledge, own_claim, cda.usage);
        if decision == Decision::Accept {
            let (edge_claim, op_claim) = match self.role {
                Role::Edge => (own_claim, cda.usage),
                Role::Operator => (cda.usage, own_claim),
            };
            let charge = charge_for(
                UsagePair {
                    edge: edge_claim,
                    operator: op_claim,
                },
                self.plan.loss_weight,
            );
            let (nonce_e, nonce_o) = match self.role {
                Role::Edge => (self.nonce, cda.nonce),
                Role::Operator => (cda.nonce, self.nonce),
            };
            let poc = PocMsg::sign(
                self.role,
                self.plan,
                charge,
                cda.clone(),
                nonce_e,
                nonce_o,
                &self.own_key,
            )?;
            self.stats.signatures_made += 1;
            self.note_sent(poc.encode().len());
            self.completed = Some(poc.clone());
            self.state = State::Done;
            Ok(Some(Message::Poc(poc)))
        } else {
            self.bounds = self.bounds.tighten(own_claim, cda.usage);
            let reclaim = self.make_cdr()?;
            self.state = State::SentCdr;
            Ok(Some(Message::Cdr(reclaim)))
        }
    }

    fn on_poc(&mut self, poc: &PocMsg) -> Result<Option<Message>, ProtocolError> {
        if self.state != State::SentCda {
            return Err(ProtocolError::UnexpectedMessage("PoC without pending CDA"));
        }
        let (edge_key, op_key) = match self.role {
            Role::Edge => (&self.own_key.public, &self.peer_key),
            Role::Operator => (&self.peer_key, &self.own_key.public),
        };
        poc.verify_chain(edge_key, op_key)?;
        self.stats.signatures_checked += 3;
        self.check_plan(&poc.plan)?;
        // Recompute the charge from the embedded claims.
        let expected = charge_for(
            UsagePair {
                edge: poc.edge_usage(),
                operator: poc.operator_usage(),
            },
            self.plan.loss_weight,
        );
        if poc.charge != expected {
            return Err(ProtocolError::ChargeMismatch {
                claimed: poc.charge,
                expected,
            });
        }
        self.completed = Some(poc.clone());
        self.state = State::Done;
        Ok(None)
    }

    /// The stored PoC once the negotiation completed.
    pub fn proof(&self) -> Option<&PocMsg> {
        self.completed.as_ref()
    }

    /// Current protocol state.
    pub fn state(&self) -> State {
        self.state
    }

    /// Rounds of claims made so far.
    pub fn rounds(&self) -> u32 {
        self.round
    }

    /// Overhead counters.
    pub fn stats(&self) -> EndpointStats {
        self.stats
    }

    /// This endpoint's role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// What this endpoint believes about usage (drives the legacy
    /// fallback charge when a session gives up on negotiating).
    pub fn knowledge(&self) -> &Knowledge {
        &self.knowledge
    }

    /// The plan this endpoint negotiates under.
    pub fn plan(&self) -> DataPlan {
        self.plan
    }

    /// Captures the protocol-relevant state for crash/restart recovery.
    ///
    /// Keys and the strategy are deliberately *not* part of the snapshot:
    /// they live in the device's long-term configuration and are
    /// re-supplied to [`Endpoint::restore`].
    pub fn snapshot(&self) -> EndpointSnapshot {
        EndpointSnapshot {
            nonce: self.nonce,
            state: self.state,
            bounds: self.bounds,
            round: self.round,
            last_sent_cdr: self.last_sent_cdr.clone(),
            last_own_claim: self.last_own_claim,
            last_peer_claim: self.last_peer_claim,
            completed: self.completed.clone(),
            stats: self.stats,
            last_rx: self.last_rx.clone(),
        }
    }

    /// Rebuilds an endpoint from a [`snapshot`](Endpoint::snapshot) plus
    /// the long-term configuration (role, plan, knowledge, strategy and
    /// keys), resuming mid-negotiation after a crash.
    #[allow(clippy::too_many_arguments)]
    pub fn restore(
        snapshot: EndpointSnapshot,
        role: Role,
        plan: DataPlan,
        knowledge: Knowledge,
        strategy: Box<dyn Strategy>,
        own_key: PrivateKey,
        peer_key: PublicKey,
        max_rounds: u32,
    ) -> Self {
        assert_eq!(role, knowledge.role, "knowledge must match role");
        Endpoint {
            role,
            plan,
            knowledge,
            strategy,
            own_key,
            peer_key,
            nonce: snapshot.nonce,
            state: snapshot.state,
            bounds: snapshot.bounds,
            round: snapshot.round,
            max_rounds,
            last_sent_cdr: snapshot.last_sent_cdr,
            last_own_claim: snapshot.last_own_claim,
            last_peer_claim: snapshot.last_peer_claim,
            completed: snapshot.completed,
            stats: snapshot.stats,
            last_rx: snapshot.last_rx,
        }
    }
}

/// Checkpoint of an [`Endpoint`]'s negotiation state (everything except
/// keys and strategy), used by the session layer for crash/restart
/// recovery.
#[derive(Clone, Debug)]
pub struct EndpointSnapshot {
    nonce: Nonce,
    state: State,
    bounds: Bounds,
    round: u32,
    last_sent_cdr: Option<CdrMsg>,
    last_own_claim: Option<u64>,
    last_peer_claim: Option<u64>,
    completed: Option<PocMsg>,
    stats: EndpointStats,
    last_rx: LastRx,
}

/// Runs a full negotiation between two endpoints in memory, shuttling
/// messages until both complete. Returns the PoC and the number of
/// messages exchanged.
pub fn run_negotiation(
    initiator: &mut Endpoint,
    responder: &mut Endpoint,
) -> Result<(PocMsg, u32), ProtocolError> {
    let mut msg = initiator.initiate()?;
    let mut msgs = 1u32;
    // Alternate until someone completes. The message cap is generous: each
    // Algorithm-1 round costs at most 2 messages plus the final PoC.
    let cap = initiator.max_rounds * 2 + 2;
    let mut turn_responder = true;
    while msgs <= cap {
        let reply = if turn_responder {
            responder.handle(&msg)?
        } else {
            initiator.handle(&msg)?
        };
        match reply {
            Some(next) => {
                msg = next;
                msgs += 1;
                turn_responder = !turn_responder;
            }
            None => {
                // Receiver consumed a PoC: both sides are done.
                let poc = initiator
                    .proof()
                    .or(responder.proof())
                    .expect("completion implies a stored proof")
                    .clone();
                return Ok((poc, msgs));
            }
        }
        // If the last reply was a PoC, the *sender* is done and the
        // receiver will consume it next iteration, returning None.
    }
    Err(ProtocolError::Stalled {
        rounds: initiator.rounds().max(responder.rounds()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{
        HonestStrategy, OptimalStrategy, RandomSelfishStrategy, RejectAllStrategy,
    };
    use tlc_crypto::KeyPair;
    use tlc_net::rng::SimRng;

    fn setup(
        edge_strategy: Box<dyn Strategy>,
        op_strategy: Box<dyn Strategy>,
        sent: u64,
        received: u64,
    ) -> (Endpoint, Endpoint) {
        let plan = DataPlan::paper_default();
        let edge_keys = KeyPair::generate_for_seed(1024, 11).unwrap();
        let op_keys = KeyPair::generate_for_seed(1024, 22).unwrap();
        let edge = Endpoint::new(
            Role::Edge,
            plan,
            Knowledge {
                role: Role::Edge,
                own_truth: sent,
                inferred_peer_truth: received,
            },
            edge_strategy,
            edge_keys.private.clone(),
            op_keys.public.clone(),
            [0xEE; 16],
            32,
        );
        let op = Endpoint::new(
            Role::Operator,
            plan,
            Knowledge {
                role: Role::Operator,
                own_truth: received,
                inferred_peer_truth: sent,
            },
            op_strategy,
            op_keys.private.clone(),
            edge_keys.public.clone(),
            [0x00; 16],
            32,
        );
        (edge, op)
    }

    #[test]
    fn optimal_pair_one_round_three_messages() {
        let (mut edge, mut op) = setup(
            Box::new(OptimalStrategy),
            Box::new(OptimalStrategy),
            1000,
            800,
        );
        // Operator initiates (Fig. 7).
        let (poc, msgs) = run_negotiation(&mut op, &mut edge).unwrap();
        assert_eq!(msgs, 3, "CDR, CDA, PoC");
        assert_eq!(poc.charge, 900);
        assert_eq!(op.rounds(), 1);
        assert_eq!(edge.state(), State::Done);
        assert_eq!(op.state(), State::Done);
        // Both stored the same proof.
        assert_eq!(edge.proof().unwrap(), op.proof().unwrap());
    }

    #[test]
    fn duplicate_deliveries_are_idempotent() {
        let (mut edge, mut op) = setup(
            Box::new(OptimalStrategy),
            Box::new(OptimalStrategy),
            1000,
            800,
        );
        let cdr = op.initiate().unwrap();
        let cda = edge.handle(&cdr).unwrap().unwrap();
        // Retransmitted CDR: the edge re-emits the same CDA without
        // advancing state or counters.
        let stats_before = edge.stats();
        let cda_again = edge.handle(&cdr).unwrap().unwrap();
        assert_eq!(cda, cda_again);
        assert_eq!(edge.stats().msgs_sent, stats_before.msgs_sent);
        assert_eq!(edge.stats().signatures_made, stats_before.signatures_made);
        assert_eq!(edge.state(), State::SentCda);

        let poc = op.handle(&cda).unwrap().unwrap();
        // Retransmitted CDA: the operator re-emits the identical PoC.
        let poc_again = op.handle(&cda).unwrap().unwrap();
        assert_eq!(poc, poc_again);
        assert_eq!(op.state(), State::Done);

        // Retransmitted PoC: the edge stays Done and still owes nothing.
        assert!(edge.handle(&poc).unwrap().is_none());
        assert!(edge.handle(&poc).unwrap().is_none());
        assert_eq!(edge.state(), State::Done);
        assert_eq!(edge.proof().unwrap(), op.proof().unwrap());
    }

    #[test]
    fn snapshot_restore_resumes_mid_negotiation() {
        let (mut edge, mut op) = setup(
            Box::new(OptimalStrategy),
            Box::new(OptimalStrategy),
            1000,
            800,
        );
        let cdr = op.initiate().unwrap();
        let cda = edge.handle(&cdr).unwrap().unwrap();

        // Operator "crashes" after sending its CDR and restarts from the
        // checkpoint; the restored endpoint finishes the negotiation.
        let snap = op.snapshot();
        let plan = DataPlan::paper_default();
        let op_keys = KeyPair::generate_for_seed(1024, 22).unwrap();
        let edge_keys = KeyPair::generate_for_seed(1024, 11).unwrap();
        let mut op2 = Endpoint::restore(
            snap,
            Role::Operator,
            plan,
            Knowledge {
                role: Role::Operator,
                own_truth: 800,
                inferred_peer_truth: 1000,
            },
            Box::new(OptimalStrategy),
            op_keys.private.clone(),
            edge_keys.public.clone(),
            32,
        );
        assert_eq!(op2.state(), State::SentCdr);
        let poc = op2.handle(&cda).unwrap().unwrap();
        assert!(edge.handle(&poc).unwrap().is_none());
        assert_eq!(edge.proof().unwrap().charge, 900);
    }

    #[test]
    fn edge_can_initiate_too() {
        let (mut edge, mut op) = setup(
            Box::new(OptimalStrategy),
            Box::new(OptimalStrategy),
            1000,
            800,
        );
        let (poc, msgs) = run_negotiation(&mut edge, &mut op).unwrap();
        assert_eq!(msgs, 3);
        assert_eq!(poc.charge, 900);
    }

    #[test]
    fn honest_pair_converges_to_intended() {
        let (mut edge, mut op) = setup(
            Box::new(HonestStrategy),
            Box::new(HonestStrategy),
            5000,
            4000,
        );
        let (poc, _) = run_negotiation(&mut op, &mut edge).unwrap();
        assert_eq!(poc.charge, 4500);
        assert_eq!(poc.edge_usage(), 5000);
        assert_eq!(poc.operator_usage(), 4000);
    }

    #[test]
    fn random_selfish_pair_converges_bounded() {
        for seed in 0..20 {
            let (mut edge, mut op) = setup(
                Box::new(RandomSelfishStrategy::new(SimRng::new(seed))),
                Box::new(RandomSelfishStrategy::new(SimRng::new(seed + 700))),
                1_000_000,
                900_000,
            );
            let (poc, _) = run_negotiation(&mut op, &mut edge).unwrap();
            assert!(
                (900_000..=1_000_000).contains(&poc.charge),
                "seed {seed}: {}",
                poc.charge
            );
        }
    }

    #[test]
    fn reject_all_stalls() {
        let (mut edge, mut op) = setup(
            Box::new(RejectAllStrategy),
            Box::new(OptimalStrategy),
            1000,
            800,
        );
        let err = run_negotiation(&mut op, &mut edge).unwrap_err();
        assert!(matches!(err, ProtocolError::Stalled { .. }));
    }

    #[test]
    fn protocol_matches_abstract_algorithm() {
        // The wire protocol must compute exactly what `negotiate()` does
        // for the same strategies and knowledge.
        use crate::cancellation::negotiate;
        let plan = DataPlan::paper_default();
        let ke = Knowledge {
            role: Role::Edge,
            own_truth: 123_456,
            inferred_peer_truth: 98_765,
        };
        let ko = Knowledge {
            role: Role::Operator,
            own_truth: 98_765,
            inferred_peer_truth: 123_456,
        };
        let abstract_out = negotiate(
            &plan,
            &mut OptimalStrategy,
            &ke,
            &mut OptimalStrategy,
            &ko,
            32,
        )
        .unwrap();
        let (mut edge, mut op) = setup(
            Box::new(OptimalStrategy),
            Box::new(OptimalStrategy),
            123_456,
            98_765,
        );
        let (poc, _) = run_negotiation(&mut op, &mut edge).unwrap();
        assert_eq!(poc.charge, abstract_out.charge);
    }

    #[test]
    fn stats_track_messages_and_crypto() {
        let (mut edge, mut op) = setup(
            Box::new(OptimalStrategy),
            Box::new(OptimalStrategy),
            1000,
            800,
        );
        run_negotiation(&mut op, &mut edge).unwrap();
        let os = op.stats();
        let es = edge.stats();
        assert_eq!(os.msgs_sent, 2); // CDR + PoC
        assert_eq!(es.msgs_sent, 1); // CDA
        assert!(os.signatures_made >= 2 && es.signatures_made >= 1);
        assert!(os.bytes_sent > 0 && es.bytes_sent > 0);
        // Total wire bytes in the ballpark of Fig. 17's 1393 B.
        let total = os.bytes_sent + es.bytes_sent;
        assert!((1000..=1500).contains(&total), "total {total}");
    }

    /// A strategy that claims like the optimal play but rejects its first
    /// `reject_first` decisions — to force Fig. 7b's multi-message cases.
    struct GrumpyOptimal {
        reject_first: u32,
        decisions: u32,
    }
    impl Strategy for GrumpyOptimal {
        fn claim(
            &mut self,
            k: &Knowledge,
            bounds: &crate::cancellation::Bounds,
            round: u32,
        ) -> u64 {
            OptimalStrategy.claim(k, bounds, round)
        }
        fn decide(&mut self, k: &Knowledge, own: u64, peer: u64) -> Decision {
            self.decisions += 1;
            if self.decisions <= self.reject_first {
                Decision::Reject
            } else {
                OptimalStrategy.decide(k, own, peer)
            }
        }
    }

    #[test]
    fn fig7b_case2_operator_rejects_cda_and_reinitiates() {
        // Operator: CDR -> (edge CDA) -> reject -> CDR -> (edge CDA) -> PoC.
        let (mut edge, mut op) = setup(
            Box::new(OptimalStrategy),
            Box::new(GrumpyOptimal {
                reject_first: 1,
                decisions: 0,
            }),
            1000,
            800,
        );
        let m1 = op.initiate().unwrap();
        assert!(matches!(m1, Message::Cdr(_)));
        let m2 = edge.handle(&m1).unwrap().unwrap();
        assert!(matches!(m2, Message::Cda(_)), "edge accepts with CDA");
        let m3 = op.handle(&m2).unwrap().unwrap();
        assert!(matches!(m3, Message::Cdr(_)), "operator rejects by re-CDR");
        let m4 = edge.handle(&m3).unwrap().unwrap();
        assert!(matches!(m4, Message::Cda(_)), "edge re-accepts");
        let m5 = op.handle(&m4).unwrap().unwrap();
        assert!(matches!(m5, Message::Poc(_)), "operator finalizes");
        assert!(edge.handle(&m5).unwrap().is_none());
        assert_eq!(edge.state(), State::Done);
        assert_eq!(op.state(), State::Done);
        let poc = op.proof().unwrap();
        assert!(
            (800..=1000).contains(&poc.charge),
            "Theorem 2 through case 2"
        );
    }

    #[test]
    fn fig7b_case3_edge_rejects_cdr_with_counterclaim() {
        // Operator: CDR -> (edge rejects with its own CDR) -> CDA -> PoC.
        let (mut edge, mut op) = setup(
            Box::new(GrumpyOptimal {
                reject_first: 1,
                decisions: 0,
            }),
            Box::new(OptimalStrategy),
            1000,
            800,
        );
        let m1 = op.initiate().unwrap();
        let m2 = edge.handle(&m1).unwrap().unwrap();
        assert!(matches!(m2, Message::Cdr(_)), "edge rejects by counter-CDR");
        let m3 = op.handle(&m2).unwrap().unwrap();
        assert!(
            matches!(m3, Message::Cda(_)),
            "operator accepts the counterclaim"
        );
        let m4 = edge.handle(&m3).unwrap().unwrap();
        assert!(matches!(m4, Message::Poc(_)), "edge finalizes");
        assert!(op.handle(&m4).unwrap().is_none());
        let poc = edge.proof().unwrap();
        assert!(
            (800..=1000).contains(&poc.charge),
            "Theorem 2 through case 3"
        );
        // The verifier accepts the multi-round proof too.
        let edge_pub = &edge.own_key.public;
        let op_pub = &op.own_key.public;
        crate::verify::verify_poc(poc, &DataPlan::paper_default(), edge_pub, op_pub).unwrap();
    }

    #[test]
    fn plan_mismatch_rejected() {
        let (mut edge, mut op) = setup(
            Box::new(OptimalStrategy),
            Box::new(OptimalStrategy),
            1000,
            800,
        );
        // Operator initiates with a *different* plan by tampering the CDR.
        let msg = op.initiate().unwrap();
        let tampered = match msg {
            Message::Cdr(mut cdr) => {
                cdr.plan.cycle = crate::plan::ChargingCycle::new(0, 7200);
                Message::Cdr(cdr)
            }
            _ => unreachable!(),
        };
        // Signature no longer matches the body (plan is signed).
        assert!(edge.handle(&tampered).is_err());
    }

    #[test]
    fn unexpected_poc_rejected() {
        let (mut edge, mut op) = setup(
            Box::new(OptimalStrategy),
            Box::new(OptimalStrategy),
            1000,
            800,
        );
        let (poc, _) = {
            let (mut e2, mut o2) = setup(
                Box::new(OptimalStrategy),
                Box::new(OptimalStrategy),
                1000,
                800,
            );
            run_negotiation(&mut o2, &mut e2).unwrap()
        };
        // Fresh endpoints can't consume a PoC out of the blue.
        let err = edge.handle(&Message::Poc(poc.clone())).unwrap_err();
        assert!(matches!(err, ProtocolError::UnexpectedMessage(_)));
        let err = op.handle(&Message::Poc(poc)).unwrap_err();
        assert!(matches!(err, ProtocolError::UnexpectedMessage(_)));
    }
}
