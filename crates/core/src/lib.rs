//! # tlc-core
//!
//! TLC — **T**rusted, **L**oss-tolerant **C**harging for the cellular edge:
//! the primary contribution of *"Bridging the Data Charging Gap in the
//! Cellular Edge"* (Li, Kim, Vlachou, Xie — SIGCOMM '19), reimplemented as
//! a Rust library.
//!
//! TLC bridges the charging gap between a cellular operator and an edge
//! application vendor by letting data loss and selfish claims *cancel out*:
//!
//! * [`plan`] — the data plan `(c, T)` and the charging formula
//!   `x = x_o + c·(x_e − x_o)` (Eq. 1),
//! * [`cancellation`] — Algorithm 1, the loss–selfishness cancellation
//!   negotiation with tightening bounds,
//! * [`strategy`] — honest, rational-optimal (minimax, Theorem 3),
//!   random-selfish, and misbehaving party behaviours,
//! * [`messages`] — RSA-signed CDR / CDA / PoC wire messages (§5.3.2),
//! * [`protocol`] — the Fig. 7 endpoint state machines and an in-memory
//!   negotiation driver,
//! * [`session`] — loss-tolerant negotiation sessions: sequence-tracked
//!   stop-and-wait ARQ with retransmission, crash recovery, and graceful
//!   fallback to the legacy charge,
//! * [`verify`] — Algorithm 2 public verification with replay defence,
//! * [`roaming`] — three-party (home/visited/vendor) roaming settlement
//!   with exact conservation, bonded multi-link CDR reconciliation, and
//!   cross-operator replay scoping,
//! * [`legacy`] — the legacy 4G/5G baseline and the gap metrics
//!   (Δ, ε, µ) used throughout the evaluation,
//! * [`game`] — numeric minimax/maximin machinery behind Theorems 2–4 and
//!   Appendix D's generic-charging bound.
//!
//! ## Quickstart
//!
//! ```
//! use tlc_core::plan::DataPlan;
//! use tlc_core::strategy::{Knowledge, OptimalStrategy, Role};
//! use tlc_core::cancellation::{negotiate, DEFAULT_MAX_ROUNDS};
//!
//! // Ground truth: the edge sent 1 GB, the network delivered 0.9 GB.
//! let sent = 1_000_000_000u64;
//! let received = 900_000_000u64;
//! let plan = DataPlan::paper_default(); // c = 0.5, 1-hour cycle
//!
//! let edge_knowledge = Knowledge {
//!     role: Role::Edge, own_truth: sent, inferred_peer_truth: received,
//! };
//! let operator_knowledge = Knowledge {
//!     role: Role::Operator, own_truth: received, inferred_peer_truth: sent,
//! };
//! let out = negotiate(
//!     &plan,
//!     &mut OptimalStrategy, &edge_knowledge,
//!     &mut OptimalStrategy, &operator_knowledge,
//!     DEFAULT_MAX_ROUNDS,
//! ).unwrap();
//! // Rational parties converge in one round to the plan-intended charge.
//! assert_eq!(out.rounds, 1);
//! assert_eq!(out.charge, 950_000_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cancellation;
pub mod game;
pub mod legacy;
pub mod messages;
pub mod plan;
pub mod protocol;
pub mod roaming;
pub mod session;
pub mod strategy;
pub mod verify;

pub use cancellation::{
    negotiate, Bounds, NegotiationError, NegotiationOutcome, DEFAULT_MAX_ROUNDS,
};
pub use messages::{CdaMsg, CdrMsg, MessageError, Nonce, PocMsg, NONCE_LEN};
pub use plan::{charge_for, intended_charge, ChargingCycle, DataPlan, LossWeight, UsagePair};
pub use protocol::{run_negotiation, Endpoint, Message, ProtocolError, State};
pub use roaming::{
    reconcile_bonded, LinkCdr, RoamingAgreement, RoamingVerifier, Segment, Serving, SettlementSplit,
};
pub use session::{
    run_session_pair, FallbackReason, PairReport, Session, SessionConfig, SessionOutcome,
    SessionStats,
};
pub use strategy::{
    BoundViolatorStrategy, Decision, HonestStrategy, InsistStrategy, Knowledge, OptimalStrategy,
    RandomSelfishStrategy, RejectAllStrategy, Role, Strategy,
};
pub use verify::{verify_poc, Verdict, Verifier, VerifyError};
