//! Adversarial decoder properties for the roaming settlement grammar
//! (SETTLE / SETTLE_VERDICT, DESIGN §14), plus version-skew handling:
//! a PROTOCOL_VERSION 2 peer — the pre-settlement protocol — must be
//! turned away with a typed `BadVersion` on both sides of the wire.

use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use tlc_core::roaming::{Serving, SettlementSplit};
use tlc_core::verify::remote::codec::{
    Fault, Hello, HelloAck, SettleMsg, SettleResult, SettleVerdictMsg, MAGIC, PROTOCOL_VERSION,
};
use tlc_core::verify::remote::{IngressConfig, IngressServer, RemoteError, RemoteVerifier};
use tlc_core::verify::service::ServiceConfig;
use tlc_net::wire::{Frame, FrameDecoder, FrameKind};

fn arb_settle() -> impl Strategy<Value = SettleMsg> {
    (
        any::<u64>(),
        any::<u64>(),
        0u8..2,
        any::<u64>(),
        (any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |(rel, tag, serving, charged, (home, visited, vendor))| SettleMsg {
                rel,
                tag,
                serving: if serving == 0 {
                    Serving::Home
                } else {
                    Serving::Visited
                },
                charged,
                split: SettlementSplit {
                    home,
                    visited,
                    vendor,
                },
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// SETTLE roundtrips bit-for-bit, and the frame kind and grammar
    /// length are pinned (49 B — the wire contract the twin's outbox
    /// and the verifier ingress both assume).
    #[test]
    fn prop_settle_roundtrips(msg in arb_settle()) {
        let frame = msg.to_frame();
        prop_assert_eq!(frame.kind, FrameKind::Settle);
        prop_assert_eq!(frame.payload.len(), 49);
        prop_assert_eq!(SettleMsg::decode(&frame.payload), Ok(msg));
    }

    /// Any payload that is not exactly grammar-length draws a typed
    /// truncation error — never a panic, never a partial decode.
    #[test]
    fn prop_settle_truncation_is_typed(
        msg in arb_settle(),
        cut in 0usize..49,
        pad in proptest::collection::vec(0u8..=255, 1..32),
    ) {
        let full = msg.to_frame().payload;
        prop_assert_eq!(SettleMsg::decode(&full[..cut]), Err("truncated SETTLE"));
        let mut over = full.clone();
        over.extend(&pad);
        prop_assert_eq!(SettleMsg::decode(&over), Err("truncated SETTLE"));
    }

    /// A poisoned serving code (anything ≥ 2) is rejected typed, no
    /// matter what the rest of the payload says.
    #[test]
    fn prop_settle_poisoned_serving_code(
        msg in arb_settle(),
        bad in 2u8..=255,
    ) {
        let mut payload = msg.to_frame().payload;
        payload[16] = bad; // rel(8) | tag(8) | serving
        prop_assert_eq!(SettleMsg::decode(&payload), Err("unknown serving code"));
    }

    /// SETTLE_VERDICT: roundtrip, grammar length, truncation, and a
    /// poisoned result code — the full adversarial sweep for the
    /// 17-byte verdict grammar.
    #[test]
    fn prop_settle_verdict_adversarial(
        rel in any::<u64>(),
        tag in any::<u64>(),
        conserved in any::<bool>(),
        cut in 0usize..17,
        bad in 2u8..=255,
    ) {
        let msg = SettleVerdictMsg {
            rel,
            tag,
            result: if conserved {
                SettleResult::Conserved
            } else {
                SettleResult::SplitMismatch
            },
        };
        let frame = msg.to_frame();
        prop_assert_eq!(frame.kind, FrameKind::SettleVerdict);
        prop_assert_eq!(frame.payload.len(), 17);
        prop_assert_eq!(SettleVerdictMsg::decode(&frame.payload), Ok(msg));
        prop_assert_eq!(
            SettleVerdictMsg::decode(&frame.payload[..cut]),
            Err("truncated SETTLE_VERDICT")
        );
        let mut poisoned = frame.payload.clone();
        poisoned[16] = bad;
        prop_assert_eq!(
            SettleVerdictMsg::decode(&poisoned),
            Err("unknown settlement result")
        );
    }

    /// Arbitrary garbage never decodes as a settlement — only an exact
    /// re-encode of the decoded value can be valid (the grammar has no
    /// slack bytes for an attacker to hide state in).
    #[test]
    fn prop_settle_garbage_is_total(
        bytes in proptest::collection::vec(0u8..=255, 0..120),
    ) {
        if let Ok(msg) = SettleMsg::decode(&bytes) {
            prop_assert_eq!(msg.to_frame().payload, bytes);
        }
        if let Ok(msg) = SettleVerdictMsg::decode(&bytes) {
            prop_assert_eq!(msg.to_frame().payload, bytes);
        }
    }
}

/// Reads exactly one frame off a raw socket.
fn read_frame(stream: &mut TcpStream) -> Option<Frame> {
    let mut decoder = FrameDecoder::new(1 << 20);
    let mut buf = [0u8; 4096];
    loop {
        let n = stream.read(&mut buf).ok()?;
        if n == 0 {
            return None;
        }
        decoder.push(&buf[..n]).ok()?;
        if let Some(f) = decoder.next_frame() {
            return Some(f);
        }
    }
}

/// A peer speaking protocol version 2 (or any other non-current
/// version) opens with HELLO{v} and must get back a typed ERROR frame
/// carrying `Fault::BadVersion{server: 3}`, then a close — never a
/// HELLO_ACK that would let a pre-settlement peer submit splits it
/// cannot encode.
#[test]
fn v2_peer_is_rejected_with_bad_version() {
    let server = IngressServer::bind(
        ("127.0.0.1", 0),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
        IngressConfig::default(),
    )
    .unwrap();
    let handle = server.spawn().unwrap();
    for skewed in [0u16, 1, 2, 4, u16::MAX] {
        let mut raw = TcpStream::connect(handle.addr()).unwrap();
        let hello = Hello {
            magic: MAGIC,
            version: skewed,
            window: 0,
        };
        raw.write_all(&hello.to_frame().encode().unwrap()).unwrap();
        let frame = read_frame(&mut raw).expect("expected an ERROR frame before close");
        assert_eq!(frame.kind, FrameKind::Error, "version {skewed}");
        assert_eq!(
            Fault::decode(&frame.payload),
            Ok(Fault::BadVersion {
                server: PROTOCOL_VERSION
            }),
            "version {skewed}"
        );
        // The server closes after the fault; no second frame arrives.
        assert!(read_frame(&mut raw).is_none(), "version {skewed}");
    }
    handle.shutdown().unwrap();
}

/// End-to-end over a real socket: the client's `settle()` and the
/// server's conservation audit agree on the wire grammar. A split
/// produced by the agreement arithmetic is judged `Conserved`; a
/// tampered split draws `SplitMismatch`; a settlement under a
/// relationship this session never registered is refused before any
/// bytes leave the client.
#[test]
fn settle_round_trips_over_a_real_socket() {
    use tlc_core::plan::DataPlan;
    use tlc_core::roaming::RoamingAgreement;
    use tlc_core::verify::service::ServiceError;
    use tlc_crypto::KeyPair;

    let server = IngressServer::bind(
        ("127.0.0.1", 0),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
        IngressConfig::default(),
    )
    .unwrap();
    let handle = server.spawn().unwrap();
    let plan = DataPlan::paper_default();
    let edge = KeyPair::generate_for_seed(1024, 9400).unwrap();
    let op = KeyPair::generate_for_seed(1024, 9401).unwrap();
    let mut client = RemoteVerifier::connect(handle.addr(), 0).unwrap();
    let rel = client
        .register(plan, edge.public.clone(), op.public.clone())
        .unwrap();

    let ag = RoamingAgreement::paper_default();
    let charged = 1_234_567u64;
    let split = ag.split_volume(charged, Serving::Visited);
    assert_eq!(split.total(), charged);
    assert_eq!(
        client
            .settle(rel, Serving::Visited, charged, split)
            .unwrap(),
        SettleResult::Conserved
    );

    let mut broken = split;
    broken.vendor += 1;
    assert_eq!(
        client
            .settle(rel, Serving::Visited, charged, broken)
            .unwrap(),
        SettleResult::SplitMismatch
    );

    // A relationship this session never registered: refused typed,
    // before any SETTLE frame is emitted.
    let stranger = RemoteVerifier::connect(handle.addr(), 0).unwrap();
    drop(stranger);
    let mut other = RemoteVerifier::connect(handle.addr(), 0).unwrap();
    let got = other.settle(rel, Serving::Home, charged, split).err();
    assert!(matches!(
        got,
        Some(RemoteError::Service(ServiceError::UnknownRelationship(_)))
    ));

    client.goodbye().unwrap();
    handle.shutdown().unwrap();
}

/// The mirror-image skew: a *server* still speaking version 2 answers
/// our HELLO with HELLO_ACK{version: 2}; the client must refuse the
/// session with `RemoteError::BadVersion{server: 2}` rather than
/// proceed and have its SETTLE frames land on a peer that cannot
/// parse them.
#[test]
fn client_refuses_a_v2_server() {
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let hello = read_frame(&mut stream).expect("client must open with HELLO");
        assert_eq!(hello.kind, FrameKind::Hello);
        assert_eq!(
            Hello::decode(&hello.payload).map(|h| h.version),
            Ok(PROTOCOL_VERSION)
        );
        let ack = HelloAck {
            version: 2,
            window: 1,
            max_payload: 1 << 20,
        };
        stream.write_all(&ack.to_frame().encode().unwrap()).unwrap();
    });
    let got = RemoteVerifier::connect(addr, 0).err();
    assert!(
        matches!(got, Some(RemoteError::BadVersion { server: 2 })),
        "expected BadVersion {{server: 2}}, got {got:?}"
    );
    fake.join().unwrap();
}
