//! Golden-payload conformance for the verifier ingress protocol
//! (`verify::remote::codec`), plus the end-to-end guarantee the ISSUE
//! pins: a tampered PoC submitted over TCP is rejected with the same
//! `VerifyError` the in-process service returns.
//!
//! Fixtures are hand-assembled from the documented grammars — if an
//! encoder drifts, the mismatch points at the exact field. Keys in
//! fixtures are synthetic (`PublicKey::new` over fixed bytes), never
//! generated, so fixture bytes cannot move when keygen changes.

use tlc_core::messages::{MessageError, PocMsg, NONCE_LEN};
use tlc_core::plan::{ChargingCycle, DataPlan, LossWeight};
use tlc_core::protocol::{run_negotiation, Endpoint};
use tlc_core::strategy::{Knowledge, OptimalStrategy, Role};
use tlc_core::verify::remote::codec::{
    Fault, Hello, HelloAck, Register, Registered, StatsSnapshot, Submit, SubmitBatch, VerdictMsg,
    MAGIC, PROTOCOL_VERSION,
};
use tlc_core::verify::remote::{IngressConfig, IngressServer, RemoteVerifier};
use tlc_core::verify::service::{ServiceConfig, VerifierService};
use tlc_core::verify::{Verdict, VerifyError};
use tlc_crypto::encoding::encode_public_key;
use tlc_crypto::{BigUint, KeyPair, PublicKey};
use tlc_net::wire::FrameKind;

/// A tiny synthetic key with a hand-computable TLV encoding.
fn tiny_key() -> PublicKey {
    PublicKey::new(
        BigUint::from_bytes_be(&[0x0B, 0xAD, 0xC0, 0xDE]),
        BigUint::from_bytes_be(&[0x01, 0x00, 0x01]),
    )
}

/// The TLV bytes of [`tiny_key`], written out by hand from the spec:
/// `01 | len | (02 | len | n) (02 | len | e)`.
fn tiny_key_tlv() -> Vec<u8> {
    vec![
        0x01, 0, 0, 0, 17, // public-key container, 17 inner bytes
        0x02, 0, 0, 0, 4, 0x0B, 0xAD, 0xC0, 0xDE, // n
        0x02, 0, 0, 0, 3, 0x01, 0x00, 0x01, // e
    ]
}

fn fixture_plan() -> DataPlan {
    DataPlan {
        cycle: ChargingCycle::new(0x1122, 0x3344),
        loss_weight: LossWeight::new(5000, 10_000),
    }
}

#[test]
fn hello_payload_golden() {
    let h = Hello {
        magic: MAGIC,
        version: PROTOCOL_VERSION,
        window: 7,
    };
    let frame = h.to_frame();
    assert_eq!(frame.kind, FrameKind::Hello);
    assert_eq!(
        frame.payload,
        vec![0x54, 0x4C, 0x43, 0x56, 0, 3, 0, 0, 0, 7],
        "HELLO drifted: magic|version|window"
    );
    assert_eq!(Hello::decode(&frame.payload), Ok(h));
}

#[test]
fn hello_ack_payload_golden() {
    let a = HelloAck {
        version: 1,
        window: 64,
        max_payload: 0x0004_0000,
    };
    let frame = a.to_frame();
    assert_eq!(frame.kind, FrameKind::HelloAck);
    assert_eq!(frame.payload, vec![0, 1, 0, 0, 0, 64, 0, 4, 0, 0]);
    assert_eq!(HelloAck::decode(&frame.payload), Ok(a));
}

#[test]
fn register_payload_golden() {
    let reg = Register {
        req: 3,
        capacity: 0x100,
        plan: fixture_plan(),
        edge_key: tiny_key(),
        operator_key: tiny_key(),
    };
    // Sanity: the synthetic key really has the hand-written TLV form.
    assert_eq!(encode_public_key(&tiny_key()), tiny_key_tlv());
    let frame = reg.to_frame();
    assert_eq!(frame.kind, FrameKind::Register);
    let mut expect = vec![0, 0, 0, 3]; // req
    expect.extend([0, 0, 0, 0, 0, 0, 1, 0]); // capacity
    expect.extend([0, 0, 0, 0, 0, 0, 0x11, 0x22]); // cycle start
    expect.extend([0, 0, 0, 0, 0, 0, 0x33, 0x44]); // cycle end
    expect.extend([0, 0, 0x13, 0x88]); // loss weight x 1e4 = 5000
    expect.extend((tiny_key_tlv().len() as u32).to_be_bytes());
    expect.extend(tiny_key_tlv());
    expect.extend((tiny_key_tlv().len() as u32).to_be_bytes());
    expect.extend(tiny_key_tlv());
    assert_eq!(frame.payload, expect, "REGISTER grammar drifted");
    let back = Register::decode(&frame.payload).unwrap();
    assert_eq!(back.req, 3);
    assert_eq!(back.capacity, 0x100);
    assert_eq!(back.plan, fixture_plan());
    assert_eq!(encode_public_key(&back.edge_key), tiny_key_tlv());
}

#[test]
fn registered_payload_golden() {
    let r = Registered {
        req: 9,
        rel: 0x0A0B,
    };
    let frame = r.to_frame();
    assert_eq!(frame.kind, FrameKind::Registered);
    assert_eq!(
        frame.payload,
        vec![0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0x0A, 0x0B]
    );
    assert_eq!(Registered::decode(&frame.payload), Ok(r));
}

#[test]
fn submit_payload_golden() {
    let s = Submit {
        rel: 1,
        tag: 0x0203,
        poc: vec![0xAA, 0xBB, 0xCC],
    };
    let frame = s.to_frame();
    assert_eq!(frame.kind, FrameKind::Submit);
    assert_eq!(
        frame.payload,
        vec![
            0, 0, 0, 0, 0, 0, 0, 1, // rel
            0, 0, 0, 0, 0, 0, 2, 3, // tag
            0, 0, 0, 3, 0xAA, 0xBB, 0xCC, // poc
        ]
    );
    assert_eq!(Submit::decode(&frame.payload), Ok(s));
}

#[test]
fn submit_batch_payload_golden() {
    let b = SubmitBatch {
        rel: 2,
        first_tag: 5,
        pocs: vec![vec![0x01], vec![0x02, 0x03]],
    };
    let frame = b.to_frame();
    assert_eq!(frame.kind, FrameKind::SubmitBatch);
    assert_eq!(
        frame.payload,
        vec![
            0, 0, 0, 0, 0, 0, 0, 2, // rel
            0, 0, 0, 0, 0, 0, 0, 5, // first_tag
            0, 0, 0, 2, // count
            0, 0, 0, 1, 0x01, // poc 0
            0, 0, 0, 2, 0x02, 0x03, // poc 1
        ]
    );
    assert_eq!(SubmitBatch::decode(&frame.payload), Ok(b));
}

#[test]
fn verdict_payload_golden_accept() {
    let v = VerdictMsg {
        rel: 1,
        tag: 2,
        shard: 3,
        result: Ok(Verdict {
            charge: 0x10,
            edge_claim: 0x20,
            operator_claim: 0x30,
            rounds: 0x40,
        }),
    };
    let frame = v.to_frame();
    assert_eq!(frame.kind, FrameKind::Verdict);
    assert_eq!(
        frame.payload,
        vec![
            0, 0, 0, 0, 0, 0, 0, 1, // rel
            0, 0, 0, 0, 0, 0, 0, 2, // tag
            0, 0, 0, 3, // shard
            0, // result code: Ok
            0, 0, 0, 0, 0, 0, 0, 0x10, // charge
            0, 0, 0, 0, 0, 0, 0, 0x20, // edge claim
            0, 0, 0, 0, 0, 0, 0, 0x30, // operator claim
            0, 0, 0, 0, 0, 0, 0, 0x40, // rounds
        ]
    );
    assert_eq!(VerdictMsg::decode(&frame.payload), Ok(v));
}

#[test]
fn verdict_payload_golden_rejections() {
    // BadSignature: the commonest rejection, byte-pinned.
    let v = VerdictMsg {
        rel: 0,
        tag: 0,
        shard: 0,
        result: Err(VerifyError::Signature(MessageError::BadSignature)),
    };
    assert_eq!(
        v.to_frame().payload,
        vec![
            0, 0, 0, 0, 0, 0, 0, 0, // rel
            0, 0, 0, 0, 0, 0, 0, 0, // tag
            0, 0, 0, 0, // shard
            1, 0, // Signature / BadSignature
        ]
    );
    // ChargeMismatch carries its operands.
    let v = VerdictMsg {
        rel: 0,
        tag: 0,
        shard: 0,
        result: Err(VerifyError::ChargeMismatch {
            claimed: 9,
            expected: 7,
        }),
    };
    assert_eq!(
        v.to_frame().payload[20..],
        [
            5, // ChargeMismatch
            0, 0, 0, 0, 0, 0, 0, 9, // claimed
            0, 0, 0, 0, 0, 0, 0, 7, // expected
        ]
    );
    // Replayed is a bare code.
    let v = VerdictMsg {
        rel: 0,
        tag: 0,
        shard: 0,
        result: Err(VerifyError::Replayed),
    };
    assert_eq!(v.to_frame().payload[20..], [6]);
}

#[test]
fn stats_payload_golden() {
    let s = StatsSnapshot {
        connections: 1,
        submissions: 2,
        service_outstanding: 3,
        ..StatsSnapshot::default()
    };
    let frame = s.to_frame(FrameKind::Stats);
    assert_eq!(frame.kind, FrameKind::Stats);
    assert_eq!(
        frame.payload.len(),
        8 * 16,
        "STATS field count is wire format"
    );
    assert_eq!(frame.payload[..8], [0, 0, 0, 0, 0, 0, 0, 1]);
    assert_eq!(frame.payload[4 * 8..5 * 8], [0, 0, 0, 0, 0, 0, 0, 2]);
    assert_eq!(frame.payload[11 * 8..12 * 8], [0, 0, 0, 0, 0, 0, 0, 3]);
    assert_eq!(StatsSnapshot::decode(&frame.payload), Ok(s));
}

#[test]
fn busy_payload_golden() {
    use tlc_core::verify::remote::codec::{BusyMsg, BusyScope};
    let b = BusyMsg {
        scope: BusyScope::Submit,
        retry_after_ms: 50,
        rel: 2,
        tag: 0x0304,
    };
    let frame = b.to_frame();
    assert_eq!(frame.kind, FrameKind::Busy);
    assert_eq!(
        frame.payload,
        vec![
            1, // scope: Submit
            0, 0, 0, 50, // retry_after_ms
            0, 0, 0, 0, 0, 0, 0, 2, // rel
            0, 0, 0, 0, 0, 0, 3, 4, // tag
        ],
        "BUSY grammar drifted: scope|retry_after_ms|rel|tag"
    );
    assert_eq!(BusyMsg::decode(&frame.payload), Ok(b));
}

#[test]
fn fault_payload_golden() {
    assert_eq!(
        Fault::ShardDown { shard: 2 }.to_frame().payload,
        vec![0, 0, 0, 0, 2]
    );
    assert_eq!(
        Fault::ResultsClosed { outstanding: 5 }.to_frame().payload,
        vec![1, 0, 0, 0, 5]
    );
    assert_eq!(
        Fault::UnknownRelationship(7).to_frame().payload,
        vec![2, 0, 0, 0, 0, 0, 0, 0, 7]
    );
    assert_eq!(
        Fault::BadVersion { server: 1 }.to_frame().payload,
        vec![3, 0, 1]
    );
    // "bad magic" interns at index 2 of PROTOCOL_STRINGS.
    assert_eq!(
        Fault::Protocol("bad magic").to_frame().payload,
        vec![4, 0, 2]
    );
    assert_eq!(Fault::Shutdown.to_frame().payload, vec![5]);
}

// ---------------------------------------------------------------------
// End-to-end: same rejections over TCP as in-process.
// ---------------------------------------------------------------------

fn negotiate(edge: &KeyPair, op: &KeyPair, plan: DataPlan, ne: u8, no: u8) -> PocMsg {
    let mut e = Endpoint::new(
        Role::Edge,
        plan,
        Knowledge {
            role: Role::Edge,
            own_truth: 1000,
            inferred_peer_truth: 800,
        },
        Box::new(OptimalStrategy),
        edge.private.clone(),
        op.public.clone(),
        [ne; NONCE_LEN],
        32,
    );
    let mut o = Endpoint::new(
        Role::Operator,
        plan,
        Knowledge {
            role: Role::Operator,
            own_truth: 800,
            inferred_peer_truth: 1000,
        },
        Box::new(OptimalStrategy),
        op.private.clone(),
        edge.public.clone(),
        [no; NONCE_LEN],
        32,
    );
    run_negotiation(&mut o, &mut e).unwrap().0
}

/// A valid, a tampered, and a replayed PoC take the exact same verdicts
/// over TCP as through the in-process service.
#[test]
fn remote_verdicts_match_in_process_bit_for_bit() {
    let plan = DataPlan::paper_default();
    let edge = KeyPair::generate_for_seed(1024, 9100).unwrap();
    let op = KeyPair::generate_for_seed(1024, 9101).unwrap();
    let valid = negotiate(&edge, &op, plan, 0x61, 0x62);
    let mut tampered = negotiate(&edge, &op, plan, 0x63, 0x64);
    tampered.charge += 1; // breaks the PoC signature
    let replay = valid.clone();
    let pocs = [valid, tampered, replay];

    // In-process reference run.
    let mut svc = VerifierService::new(1);
    let rel = svc
        .register(plan, edge.public.clone(), op.public.clone())
        .unwrap();
    for poc in &pocs {
        svc.submit(rel, poc.clone()).unwrap();
    }
    let mut reference = svc.collect_results().unwrap();
    reference.sort_by_key(|r| r.tag);
    svc.finish();

    // Same proofs over a real socket.
    let server = IngressServer::bind(
        ("127.0.0.1", 0),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
        IngressConfig::default(),
    )
    .unwrap();
    let handle = server.spawn().unwrap();
    let mut client = RemoteVerifier::connect(handle.addr(), 0).unwrap();
    let remote_rel = client
        .register(plan, edge.public.clone(), op.public.clone())
        .unwrap();
    for poc in &pocs {
        client.submit(remote_rel, poc).unwrap();
    }
    let mut remote = client.collect_results().unwrap();
    remote.sort_by_key(|r| r.tag);
    client.goodbye().unwrap();
    let report = handle.shutdown().unwrap();

    assert_eq!(reference.len(), 3);
    assert_eq!(remote.len(), 3);
    for (r, e) in remote.iter().zip(reference.iter()) {
        assert_eq!(r.tag, e.tag);
        assert_eq!(r.result, e.result, "verdict diverged across the wire");
    }
    // The pinned acceptance case: the tampered PoC is rejected with the
    // same typed error on both paths.
    assert_eq!(
        remote[1].result,
        Err(VerifyError::Signature(MessageError::BadSignature))
    );
    assert_eq!(remote[2].result, Err(VerifyError::Replayed));
    assert_eq!(report.ingress.submissions, 3);
    assert_eq!(report.ingress.verdicts, 3);
    assert_eq!(report.service.unclaimed_results, 0);
}

/// Submitting under a relationship the server never issued surfaces the
/// same `ServiceError::UnknownRelationship` the in-process API returns.
#[test]
fn unknown_relationship_is_mirrored_client_side() {
    use tlc_core::verify::remote::RemoteError;
    use tlc_core::verify::service::ServiceError;

    let server = IngressServer::bind(
        ("127.0.0.1", 0),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
        IngressConfig::default(),
    )
    .unwrap();
    let handle = server.spawn().unwrap();
    let plan = DataPlan::paper_default();
    let edge = KeyPair::generate_for_seed(1024, 9200).unwrap();
    let op = KeyPair::generate_for_seed(1024, 9201).unwrap();
    let mut client = RemoteVerifier::connect(handle.addr(), 0).unwrap();
    let rel = client
        .register(plan, edge.public.clone(), op.public.clone())
        .unwrap();
    // A different client session that never registered anything.
    let mut stranger = RemoteVerifier::connect(handle.addr(), 0).unwrap();
    let poc = negotiate(&edge, &op, plan, 0x71, 0x72);
    let got = stranger.submit(rel, &poc);
    assert!(matches!(
        got,
        Err(RemoteError::Service(ServiceError::UnknownRelationship(_)))
    ));
    drop(stranger);
    client.goodbye().unwrap();
    handle.shutdown().unwrap();
}

/// A protocol violation (first frame is not HELLO) draws a typed ERROR
/// frame and a close, not a hang or a panic.
#[test]
fn non_hello_opening_is_rejected() {
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use tlc_net::wire::{Frame, FrameDecoder};

    let server = IngressServer::bind(
        ("127.0.0.1", 0),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
        IngressConfig::default(),
    )
    .unwrap();
    let handle = server.spawn().unwrap();
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.write_all(
        &Frame::new(FrameKind::StatsReq, Vec::new())
            .encode()
            .unwrap(),
    )
    .unwrap();
    let mut decoder = FrameDecoder::new(1 << 20);
    let mut frame = None;
    let mut buf = [0u8; 4096];
    loop {
        let n = raw.read(&mut buf).unwrap();
        if n == 0 {
            break; // server closed after the error, as specified
        }
        decoder.push(&buf[..n]).unwrap();
        if let Some(f) = decoder.next_frame() {
            frame = Some(f);
            break;
        }
    }
    let frame = frame.expect("expected an ERROR frame before close");
    assert_eq!(frame.kind, FrameKind::Error);
    assert_eq!(
        Fault::decode(&frame.payload),
        Ok(Fault::Protocol("expected HELLO"))
    );
    handle.shutdown().unwrap();
}

/// The stop flag alone shuts the server down even with clients mid-
/// session; their outstanding results are drained and accounted.
#[test]
fn shutdown_accounts_for_unclaimed_results() {
    let plan = DataPlan::paper_default();
    let edge = KeyPair::generate_for_seed(1024, 9300).unwrap();
    let op = KeyPair::generate_for_seed(1024, 9301).unwrap();
    let server = IngressServer::bind(
        ("127.0.0.1", 0),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
        IngressConfig::default(),
    )
    .unwrap();
    let handle = server.spawn().unwrap();
    let mut client = RemoteVerifier::connect(handle.addr(), 0).unwrap();
    let rel = client
        .register(plan, edge.public.clone(), op.public.clone())
        .unwrap();
    let poc = negotiate(&edge, &op, plan, 0x81, 0x82);
    client.submit(rel, &poc).unwrap();
    // Disconnect without collecting: the verdict is now orphaned.
    drop(client);
    // Give the server a moment to relay and observe the hangup, then
    // stop. The counters must reconcile no matter which side of the
    // race the verdict landed on.
    std::thread::sleep(std::time::Duration::from_millis(200));
    let report = handle.shutdown().unwrap();
    let accounted = report.ingress.orphaned_verdicts
        + report.ingress.verdicts
        + report.service.unclaimed_results as u64;
    assert_eq!(report.ingress.submissions, 1);
    assert_eq!(
        accounted, 1,
        "the verdict must be drained or orphaned, not lost"
    );
}
