//! Property-based tests of the loss-tolerant session layer: honest and
//! optimal pairs driven through arbitrary fault schedules (loss,
//! duplication, reordering, byte corruption) must always terminate, and
//! every terminating outcome is either a PoC obeying Theorem 2's bound
//! (Theorem 3's exact value for these strategy pairs) or a deterministic
//! fallback to the legacy charge shared by both parties.

use proptest::prelude::*;
use std::sync::OnceLock;
use tlc_core::plan::{intended_charge, DataPlan, UsagePair};
use tlc_core::protocol::Endpoint;
use tlc_core::session::{
    run_session_pair, FallbackReason, PairReport, Session, SessionConfig, SessionOutcome,
};
use tlc_core::strategy::{
    HonestStrategy, Knowledge, OptimalStrategy, Role, Strategy as TlcStrategy,
};
use tlc_crypto::KeyPair;
use tlc_net::channel::{FaultSpec, FaultyChannel};
use tlc_net::loss::{LossModel, NoLoss, UniformLoss};
use tlc_net::rng::SimRng;
use tlc_net::time::{SimDuration, SimTime};

fn keys() -> &'static (KeyPair, KeyPair) {
    static KEYS: OnceLock<(KeyPair, KeyPair)> = OnceLock::new();
    KEYS.get_or_init(|| {
        (
            KeyPair::generate_for_seed(1024, 0x5E55).unwrap(),
            KeyPair::generate_for_seed(1024, 0x5E56).unwrap(),
        )
    })
}

fn strategy_of(kind: u8) -> Box<dyn TlcStrategy> {
    if kind == 0 {
        Box::new(HonestStrategy)
    } else {
        Box::new(OptimalStrategy)
    }
}

fn channel(loss: f64, spec: &FaultSpec, seed: u64) -> FaultyChannel {
    let model: Box<dyn LossModel> = if loss == 0.0 {
        Box::new(NoLoss)
    } else {
        Box::new(UniformLoss::new(loss))
    };
    FaultyChannel::new(spec.clone(), model, SimRng::new(seed))
}

/// Runs one honest/optimal session pair through a fault schedule.
fn run_faulty_session(
    sent: u64,
    received: u64,
    edge_kind: u8,
    op_kind: u8,
    loss: f64,
    spec: &FaultSpec,
    seed: u64,
) -> PairReport {
    let (edge_keys, op_keys) = keys();
    let plan = DataPlan::paper_default();
    let edge = Endpoint::new(
        Role::Edge,
        plan,
        Knowledge {
            role: Role::Edge,
            own_truth: sent,
            inferred_peer_truth: received,
        },
        strategy_of(edge_kind),
        edge_keys.private.clone(),
        op_keys.public.clone(),
        [0xEE; 16],
        32,
    );
    let op = Endpoint::new(
        Role::Operator,
        plan,
        Knowledge {
            role: Role::Operator,
            own_truth: received,
            inferred_peer_truth: sent,
        },
        strategy_of(op_kind),
        op_keys.private.clone(),
        edge_keys.public.clone(),
        [0x00; 16],
        32,
    );
    let mut initiator = Session::new(op, SessionConfig::default());
    let mut responder = Session::new(edge, SessionConfig::default());
    let mut rng = SimRng::new(seed);
    let mut fwd = channel(loss, spec, rng.next_u64());
    let mut back = channel(loss, spec, rng.next_u64());
    run_session_pair(
        &mut initiator,
        &mut responder,
        &mut fwd,
        &mut back,
        SimTime::from_millis(0),
        SimDuration::from_secs(120),
    )
    .expect("fresh endpoints always initiate")
}

/// (received ≤ sent) truth pairs, bounded so the test stays fast.
fn truth_pair() -> impl Strategy<Value = (u64, u64)> {
    (0u64..10_000_000).prop_flat_map(|sent| (Just(sent), 0..=sent))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Through any fault schedule, both sides terminate, and a completed
    /// negotiation satisfies Theorem 2 (charge within the truth claims)
    /// and Theorem 3 (honest/optimal pairs land exactly on x̂).
    #[test]
    fn theorems_survive_fault_schedules(
        (sent, received) in truth_pair(),
        edge_kind in 0u8..2,
        op_kind in 0u8..2,
        loss in 0.0f64..0.35,
        dup in 0.0f64..0.3,
        reorder in 0.0f64..0.3,
        corrupt in 0.0f64..0.2,
        seed in any::<u64>(),
    ) {
        let spec = FaultSpec::with_faults(dup, reorder, corrupt);
        let report =
            run_faulty_session(sent, received, edge_kind, op_kind, loss, &spec, seed);
        // run_session_pair returning at all proves termination; every
        // outcome is set.
        match (&report.initiator, &report.responder) {
            (SessionOutcome::Proof(a), SessionOutcome::Proof(b)) => {
                prop_assert_eq!(&a.charge, &b.charge, "both sides hold the same proof");
                // Theorem 2: the charge lies within [x̂_o, x̂_e].
                prop_assert!(a.charge >= received && a.charge <= sent,
                    "charge {} outside [{received}, {sent}]", a.charge);
                // Theorem 3/4: pure honest and pure optimal pairs reach
                // exactly x̂ (mixed pairings only guarantee the bound).
                if edge_kind == op_kind {
                    let x_hat = intended_charge(
                        UsagePair { edge: sent, operator: received },
                        DataPlan::paper_default().loss_weight,
                    );
                    prop_assert_eq!(a.charge, x_hat);
                }
            }
            _ => {
                // Fallback: honest parties only abandon for channel
                // reasons — retry exhaustion or the peer going silent —
                // never detected misbehavior.
                for outcome in [&report.initiator, &report.responder] {
                    if let SessionOutcome::Fallback { reason, .. } = outcome {
                        prop_assert!(
                            matches!(
                                reason,
                                FallbackReason::RetryBudgetExhausted
                                    | FallbackReason::Abandoned
                            ),
                            "honest pair fell back with {reason:?}"
                        );
                    }
                }
                // One side may hold the proof while the other's final ack
                // window died; any fallback charge is the gateway meter.
                for outcome in [&report.initiator, &report.responder] {
                    if let SessionOutcome::Fallback { charge, .. } = outcome {
                        prop_assert_eq!(*charge, received);
                    }
                }
            }
        }
    }

    /// A channel that drops everything exhausts the initiator's retry
    /// budget — fallback fires exactly then, deterministically, with both
    /// parties agreeing on the legacy charge.
    #[test]
    fn total_loss_exhausts_retry_budget(
        (sent, received) in truth_pair(),
        seed in any::<u64>(),
    ) {
        let spec = FaultSpec::clean();
        let report = run_faulty_session(sent, received, 1, 1, 1.0, &spec, seed);
        prop_assert!(!report.converged());
        prop_assert!(matches!(
            report.initiator,
            SessionOutcome::Fallback { reason: FallbackReason::RetryBudgetExhausted, .. }
        ));
        prop_assert_eq!(report.initiator.charge(), report.responder.charge());
        prop_assert_eq!(report.settled_charge(), received);
    }

    /// Fault schedules are deterministic: the same seed replays the exact
    /// same session, frame for frame.
    #[test]
    fn fault_schedules_replay_deterministically(
        (sent, received) in truth_pair(),
        loss in 0.0f64..0.3,
        seed in any::<u64>(),
    ) {
        let spec = FaultSpec::with_faults(0.1, 0.1, 0.1);
        let a = run_faulty_session(sent, received, 1, 1, loss, &spec, seed);
        let b = run_faulty_session(sent, received, 1, 1, loss, &spec, seed);
        prop_assert_eq!(a.converged(), b.converged());
        prop_assert_eq!(a.settled_charge(), b.settled_charge());
        prop_assert_eq!(a.frames_sent, b.frames_sent);
        prop_assert_eq!(a.retransmits, b.retransmits);
        prop_assert_eq!(a.elapsed.as_micros(), b.elapsed.as_micros());
    }
}
