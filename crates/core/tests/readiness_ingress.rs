//! Backend-equivalence and resource-bound tests for the readiness
//! (epoll/`SO_REUSEPORT`) ingress, DESIGN §12.
//!
//! `wire_conformance` and `soak_overload` already run against both
//! backends via `TLC_INGRESS_BACKEND`; this suite pins the properties
//! that only make sense when the backend is chosen *explicitly* in
//! config rather than ambiently:
//!
//! * the epoll loop returns the same verdicts as the legacy poll loop
//!   for the same proof set — accept and reject alike;
//! * a multi-shard server (distinct `SO_REUSEPORT` listeners, one
//!   connection table slice each) accounts every submission across
//!   concurrent clients, and the merged report reconciles;
//! * buffer-pool exhaustion defers reads instead of allocating
//!   unboundedly or dropping connections: with more partial frames in
//!   flight than pooled buffers, every connection still completes once
//!   buffers recycle, and the report shows the deferrals;
//! * a framing violation poisons only its own connection — the typed
//!   `ERROR`/`Protocol` close, with neighbours unaffected.
//!
//! Tests construct `IngressConfig { backend, shards, .. }` directly so
//! they hold regardless of the environment's backend selection.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;
use tlc_core::messages::{PocMsg, NONCE_LEN};
use tlc_core::plan::DataPlan;
use tlc_core::protocol::{run_negotiation, Endpoint};
use tlc_core::strategy::{Knowledge, OptimalStrategy, Role};
use tlc_core::verify::remote::codec::{Fault, Hello, HelloAck, MAGIC, PROTOCOL_VERSION};
use tlc_core::verify::remote::{
    IngressBackend, IngressConfig, IngressHandle, IngressServer, RemoteVerifier,
};
use tlc_core::verify::service::ServiceConfig;
use tlc_crypto::KeyPair;
use tlc_net::wire::{FrameDecoder, FrameKind, DEFAULT_MAX_PAYLOAD};

// ---------------------------------------------------------------------
// Material (seed range 60_000.. — disjoint from the other soak suites)
// ---------------------------------------------------------------------

fn negotiate(edge: &KeyPair, op: &KeyPair, plan: DataPlan, ne: u8, no: u8) -> PocMsg {
    let mut e = Endpoint::new(
        Role::Edge,
        plan,
        Knowledge {
            role: Role::Edge,
            own_truth: 1000,
            inferred_peer_truth: 800,
        },
        Box::new(OptimalStrategy),
        edge.private.clone(),
        op.public.clone(),
        [ne; NONCE_LEN],
        32,
    );
    let mut o = Endpoint::new(
        Role::Operator,
        plan,
        Knowledge {
            role: Role::Operator,
            own_truth: 800,
            inferred_peer_truth: 1000,
        },
        Box::new(OptimalStrategy),
        op.private.clone(),
        edge.public.clone(),
        [no; NONCE_LEN],
        32,
    );
    run_negotiation(&mut o, &mut e).unwrap().0
}

struct Material {
    edge: KeyPair,
    op: KeyPair,
    plan: DataPlan,
    pocs: Vec<PocMsg>,
}

fn material(idx: u64, n: usize) -> Material {
    let plan = DataPlan::paper_default();
    let edge = KeyPair::generate_for_seed(1024, 60_000 + idx * 2).unwrap();
    let op = KeyPair::generate_for_seed(1024, 60_001 + idx * 2).unwrap();
    let base = (idx as u8).wrapping_mul(16).wrapping_add(7);
    let pocs = (0..n)
        .map(|k| {
            let k = k as u8;
            negotiate(
                &edge,
                &op,
                plan,
                base.wrapping_add(k.wrapping_mul(2)),
                base.wrapping_add(k.wrapping_mul(2)).wrapping_add(1),
            )
        })
        .collect();
    Material {
        edge,
        op,
        plan,
        pocs,
    }
}

fn spawn_backend(backend: IngressBackend, shards: usize, ingress: IngressConfig) -> IngressHandle {
    IngressServer::bind(
        ("127.0.0.1", 0),
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
        IngressConfig {
            backend,
            shards,
            ..ingress
        },
    )
    .unwrap()
    .spawn()
    .unwrap()
}

// ---------------------------------------------------------------------
// Backend equivalence: same proofs, same verdicts
// ---------------------------------------------------------------------

/// Runs one client workload — good proofs plus a corrupted one — and
/// returns every (tag, rendered result) pair.
fn run_workload(handle: &IngressHandle, m: &Material, bad: &PocMsg) -> Vec<(u64, String)> {
    let mut client = RemoteVerifier::connect(handle.addr(), 0).unwrap();
    let rel = client
        .register(m.plan, m.edge.public.clone(), m.op.public.clone())
        .unwrap();
    for poc in &m.pocs {
        client.submit(rel, poc).unwrap();
    }
    client.submit(rel, bad).unwrap();
    let mut out: Vec<(u64, String)> = client
        .collect_results()
        .unwrap()
        .into_iter()
        .map(|r| (r.tag, format!("{:?}", r.result)))
        .collect();
    client.goodbye().unwrap();
    out.sort();
    out
}

/// The epoll backend must be a drop-in: identical verdicts (accepts
/// and the typed rejection for a cross-relationship proof) for the
/// same submissions, in the same tag order.
#[test]
fn epoll_backend_matches_poll_verdicts() {
    let m = material(0, 4);
    // A proof from a different relationship: valid bytes, wrong keys —
    // the service rejects it for cause, exercising the error path.
    let stranger = material(1, 1);
    let bad = &stranger.pocs[0];

    let poll = spawn_backend(IngressBackend::Poll, 1, IngressConfig::default());
    let poll_results = run_workload(&poll, &m, bad);
    let poll_report = poll.shutdown().unwrap();

    let epoll = spawn_backend(IngressBackend::Epoll, 1, IngressConfig::default());
    let epoll_results = run_workload(&epoll, &m, bad);
    let epoll_report = epoll.shutdown().unwrap();

    assert_eq!(
        poll_results, epoll_results,
        "backends disagreed on verdicts"
    );
    // Both saw one rejection (the stranger's proof) and m.pocs accepts.
    for report in [&poll_report, &epoll_report] {
        assert_eq!(report.ingress.accepted, m.pocs.len() as u64);
        assert_eq!(report.ingress.rejected_malformed, 1);
        assert_eq!(report.ingress.submissions, m.pocs.len() as u64 + 1);
    }
    // The epoll backend actually pooled buffers for its reads.
    if tlc_net::Readiness::available() {
        assert!(epoll_report.pool.checkouts > 0, "epoll loop never pooled");
        assert_eq!(epoll_report.pool.checkouts, epoll_report.pool.recycles);
    }
    assert_eq!(poll_report.pool.checkouts, 0, "legacy loop must not pool");
}

// ---------------------------------------------------------------------
// Multi-shard soak: concurrent clients over SO_REUSEPORT listeners
// ---------------------------------------------------------------------

/// Several clients drive a two-shard epoll server concurrently; every
/// proof draws an accept, and the merged report accounts connections,
/// registrations, and submissions across shard-local counters.
#[test]
fn multi_shard_soak_accounts_every_submission() {
    const CLIENTS: usize = 4;
    const POCS_EACH: usize = 3;
    let handle = spawn_backend(IngressBackend::Epoll, 2, IngressConfig::default());
    let addr = handle.addr();

    let mats: Vec<Material> = (10..10 + CLIENTS as u64)
        .map(|i| material(i, POCS_EACH))
        .collect();

    std::thread::scope(|scope| {
        for m in &mats {
            scope.spawn(move || {
                let mut client = RemoteVerifier::connect(addr, 0).unwrap();
                let rel = client
                    .register(m.plan, m.edge.public.clone(), m.op.public.clone())
                    .unwrap();
                for poc in &m.pocs {
                    client.submit(rel, poc).unwrap();
                }
                let results = client.collect_results().unwrap();
                assert_eq!(results.len(), POCS_EACH);
                for r in &results {
                    assert!(r.result.is_ok(), "sharded verdict: {:?}", r.result);
                }
                client.goodbye().unwrap();
            });
        }
    });

    let report = handle.shutdown().unwrap();
    let total = (CLIENTS * POCS_EACH) as u64;
    assert_eq!(report.ingress.connections, CLIENTS as u64);
    assert_eq!(report.ingress.registers, CLIENTS as u64);
    assert_eq!(report.ingress.submissions, total);
    assert_eq!(report.ingress.accepted, total);
    assert_eq!(report.ingress.rejected_malformed, 0);
    assert_eq!(report.ingress.protocol_errors, 0);
    // Service-side accounting agrees with the wire-side tally.
    assert_eq!(report.service.accepted, total);
    assert_eq!(report.service.rejected, 0);
}

// ---------------------------------------------------------------------
// Pool exhaustion: defer reads, never drop or balloon
// ---------------------------------------------------------------------

/// More partial frames in flight than pooled buffers: the shard must
/// defer the overflow reads (counted in `pool.exhausted`) and finish
/// every handshake once buffers recycle — no connection is dropped,
/// no unpooled allocation papers over the shortage.
#[test]
#[cfg_attr(not(unix), ignore = "readiness backend is unix-only")]
fn pool_exhaustion_defers_reads_without_losing_connections() {
    if !tlc_net::Readiness::available() {
        return;
    }
    // max_conns 128 clamps the pool to its 64-buffer floor; 96 partial
    // HELLOs then oversubscribe the pool by 32.
    const CONNS: usize = 96;
    let handle = spawn_backend(
        IngressBackend::Epoll,
        1,
        IngressConfig {
            max_conns: 128,
            shed_conn_watermark: usize::MAX,
            ..IngressConfig::default()
        },
    );
    let addr = handle.addr();

    let hello = Hello {
        magic: MAGIC,
        version: PROTOCOL_VERSION,
        window: 0,
    }
    .to_frame()
    .encode()
    .unwrap();
    // Split inside the payload so the retained partial holds a buffer.
    let cut = 7;

    let mut streams: Vec<TcpStream> = (0..CONNS)
        .map(|_| {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_nodelay(true).unwrap();
            s.write_all(&hello[..cut]).unwrap();
            s
        })
        .collect();
    // Let every partial land: 64 buffers retained, 32 reads deferred.
    std::thread::sleep(Duration::from_millis(300));
    for s in &mut streams {
        s.write_all(&hello[cut..]).unwrap();
    }
    // Every connection — deferred or not — must complete its HELLO.
    for s in &mut streams {
        let mut decoder = FrameDecoder::new(DEFAULT_MAX_PAYLOAD);
        let ack = loop {
            if let Some(f) = decoder.next_frame() {
                break f;
            }
            let mut buf = [0u8; 256];
            let n = s.read(&mut buf).unwrap();
            assert!(n > 0, "server closed a deferred connection");
            decoder.push(&buf[..n]).unwrap();
        };
        assert_eq!(ack.kind, FrameKind::HelloAck);
        HelloAck::decode(&ack.payload).unwrap();
    }
    drop(streams);

    let report = handle.shutdown().unwrap();
    assert_eq!(report.ingress.connections, CONNS as u64);
    assert!(
        report.pool.exhausted > 0,
        "pool never ran dry: the test lost its oversubscription"
    );
    // Every checkout was eventually returned — nothing leaked.
    assert_eq!(report.pool.checkouts, report.pool.recycles);
}

// ---------------------------------------------------------------------
// Decode poisoning: a framing violation closes only its connection
// ---------------------------------------------------------------------

/// A garbage kind byte mid-stream draws the typed `ERROR`/`Protocol`
/// fault and a close on that connection alone; a neighbour connected
/// to the same shard keeps its session, and the poisoned bytes never
/// leak into a recycled buffer's next parse.
#[test]
#[cfg_attr(not(unix), ignore = "readiness backend is unix-only")]
fn framing_violation_poisons_only_its_connection() {
    if !tlc_net::Readiness::available() {
        return;
    }
    let handle = spawn_backend(IngressBackend::Epoll, 1, IngressConfig::default());
    let addr = handle.addr();
    let m = material(30, 2);

    // Neighbour: a healthy session opened first.
    let mut good = RemoteVerifier::connect(addr, 0).unwrap();
    let rel = good
        .register(m.plan, m.edge.public.clone(), m.op.public.clone())
        .unwrap();

    // Offender: handshake, then a frame with an unknown kind byte.
    let mut bad = TcpStream::connect(addr).unwrap();
    bad.set_nodelay(true).unwrap();
    bad.write_all(
        &Hello {
            magic: MAGIC,
            version: PROTOCOL_VERSION,
            window: 0,
        }
        .to_frame()
        .encode()
        .unwrap(),
    )
    .unwrap();
    let mut decoder = FrameDecoder::new(DEFAULT_MAX_PAYLOAD);
    let mut frames = Vec::new();
    let mut buf = [0u8; 4096];
    // 0xFF is no FrameKind; the bytes after it must be discarded with
    // the buffer, not reinterpreted once the buffer is recycled.
    bad.write_all(&[0xFF, 0, 0, 0, 4, 0xDE, 0xAD, 0xBE, 0xEF])
        .unwrap();
    loop {
        match bad.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                if decoder.push(&buf[..n]).is_err() {
                    break;
                }
                while let Some(f) = decoder.next_frame() {
                    frames.push(f);
                }
            }
            Err(_) => break,
        }
    }
    assert!(
        frames.iter().any(|f| {
            f.kind == FrameKind::Error
                && matches!(Fault::decode(&f.payload), Ok(Fault::Protocol(_)))
        }),
        "offender saw no typed protocol fault: {frames:?}"
    );

    // The neighbour's session survived the other connection's close.
    for poc in &m.pocs {
        good.submit(rel, poc).unwrap();
    }
    let results = good.collect_results().unwrap();
    assert_eq!(results.len(), m.pocs.len());
    for r in &results {
        assert!(r.result.is_ok(), "neighbour verdict: {:?}", r.result);
    }
    good.goodbye().unwrap();

    let report = handle.shutdown().unwrap();
    assert_eq!(report.ingress.protocol_errors, 1);
    assert_eq!(report.ingress.accepted, m.pocs.len() as u64);
}
