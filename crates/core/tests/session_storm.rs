//! Acceptance storm: 1000 honest-vs-optimal negotiations over a control
//! channel with 20% loss plus duplication and reordering, fixed seed.
//! Every session must terminate — no panics, no hangs — and every outcome
//! is either a PoC within Theorem 2's bounds or a deterministic fallback
//! to the legacy charge agreed by both parties.

use tlc_core::plan::DataPlan;
use tlc_core::protocol::Endpoint;
use tlc_core::session::{run_session_pair, Session, SessionConfig, SessionOutcome};
use tlc_core::strategy::{HonestStrategy, Knowledge, OptimalStrategy, Role};
use tlc_crypto::KeyPair;
use tlc_net::channel::{FaultSpec, FaultyChannel};
use tlc_net::loss::UniformLoss;
use tlc_net::rng::SimRng;
use tlc_net::time::{SimDuration, SimTime};

const SESSIONS: u64 = 1000;
const LOSS: f64 = 0.20;
const MASTER_SEED: u64 = 0x20_25_08_05;

#[test]
fn thousand_sessions_at_20pct_loss_all_terminate() {
    let edge_keys = KeyPair::generate_for_seed(1024, 0xACCE).unwrap();
    let op_keys = KeyPair::generate_for_seed(1024, 0xACC0).unwrap();
    let plan = DataPlan::paper_default();
    let spec = FaultSpec::with_faults(0.10, 0.10, 0.0);
    let mut master = SimRng::new(MASTER_SEED);

    let mut converged = 0u64;
    let mut fallbacks = 0u64;
    for i in 0..SESSIONS {
        let sent = 1_000_000 + i * 1_000;
        let received = sent - (i % 100) * 1_000; // loss of 0–9.9%
        let edge = Endpoint::new(
            Role::Edge,
            plan,
            Knowledge {
                role: Role::Edge,
                own_truth: sent,
                inferred_peer_truth: received,
            },
            Box::new(HonestStrategy),
            edge_keys.private.clone(),
            op_keys.public.clone(),
            [(i % 251) as u8; 16],
            32,
        );
        let op = Endpoint::new(
            Role::Operator,
            plan,
            Knowledge {
                role: Role::Operator,
                own_truth: received,
                inferred_peer_truth: sent,
            },
            Box::new(OptimalStrategy),
            op_keys.private.clone(),
            edge_keys.public.clone(),
            [(i % 251) as u8 ^ 0xFF; 16],
            32,
        );
        let mut initiator = Session::new(op, SessionConfig::default());
        let mut responder = Session::new(edge, SessionConfig::default());
        let mut fwd = FaultyChannel::new(
            spec.clone(),
            Box::new(UniformLoss::new(LOSS)),
            SimRng::new(master.next_u64()),
        );
        let mut back = FaultyChannel::new(
            spec.clone(),
            Box::new(UniformLoss::new(LOSS)),
            SimRng::new(master.next_u64()),
        );
        let report = run_session_pair(
            &mut initiator,
            &mut responder,
            &mut fwd,
            &mut back,
            SimTime::from_millis(0),
            SimDuration::from_secs(120),
        )
        .expect("session {i} failed to start");

        match (&report.initiator, &report.responder) {
            (SessionOutcome::Proof(a), SessionOutcome::Proof(b)) => {
                assert_eq!(a.charge, b.charge, "session {i}: proofs disagree");
                assert!(
                    a.charge >= received && a.charge <= sent,
                    "session {i}: charge {} outside [{received}, {sent}]",
                    a.charge
                );
                converged += 1;
            }
            (a, b) => {
                // At least one side fell back; every fallback charge is
                // the deterministic gateway meter.
                for outcome in [a, b] {
                    if let SessionOutcome::Fallback { charge, .. } = outcome {
                        assert_eq!(*charge, received, "session {i}: fallback charge");
                    }
                }
                fallbacks += 1;
            }
        }
    }

    assert_eq!(converged + fallbacks, SESSIONS);
    // 20% loss with an 8-retry budget: the overwhelming majority converge.
    assert!(
        converged >= SESSIONS * 95 / 100,
        "only {converged}/{SESSIONS} sessions converged"
    );
    println!("storm: {converged} converged, {fallbacks} fallbacks");
}
