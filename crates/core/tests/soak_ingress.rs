//! Concurrency soak for the verifier ingress: N client threads × M
//! relationships submitting interleaved valid / tampered / replayed
//! PoCs over real sockets. Every per-relationship verdict sequence
//! must match an in-process `VerifierService` run bit-for-bit, and
//! `collect_results` must preserve per-relationship submission order.
//!
//! Scale with `TLC_SOAK_SESSIONS` (client thread count, default 3; CI
//! uses 2).

use std::collections::HashMap;
use tlc_core::messages::{PocMsg, NONCE_LEN};
use tlc_core::plan::DataPlan;
use tlc_core::protocol::{run_negotiation, Endpoint};
use tlc_core::strategy::{Knowledge, OptimalStrategy, Role};
use tlc_core::verify::remote::{IngressConfig, IngressServer, RemoteVerifier};
use tlc_core::verify::service::{ServiceConfig, VerifierService};
use tlc_core::verify::{Verdict, VerifyError};
use tlc_crypto::KeyPair;

fn sessions() -> usize {
    std::env::var("TLC_SOAK_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|n| *n > 0)
        .unwrap_or(3)
}

const RELS_PER_CLIENT: usize = 2;

fn negotiate(edge: &KeyPair, op: &KeyPair, plan: DataPlan, ne: u8, no: u8) -> PocMsg {
    let mut e = Endpoint::new(
        Role::Edge,
        plan,
        Knowledge {
            role: Role::Edge,
            own_truth: 1000,
            inferred_peer_truth: 800,
        },
        Box::new(OptimalStrategy),
        edge.private.clone(),
        op.public.clone(),
        [ne; NONCE_LEN],
        32,
    );
    let mut o = Endpoint::new(
        Role::Operator,
        plan,
        Knowledge {
            role: Role::Operator,
            own_truth: 800,
            inferred_peer_truth: 1000,
        },
        Box::new(OptimalStrategy),
        op.private.clone(),
        edge.public.clone(),
        [no; NONCE_LEN],
        32,
    );
    run_negotiation(&mut o, &mut e).unwrap().0
}

/// One relationship's worth of test material: distinct keys (so the
/// service's dedup registry cannot merge relationships) and a proof
/// schedule mixing valid, tampered, and replayed submissions.
struct RelMaterial {
    edge: KeyPair,
    op: KeyPair,
    plan: DataPlan,
    pocs: Vec<PocMsg>,
}

fn build_material(client: usize, rel: usize) -> RelMaterial {
    let plan = DataPlan::paper_default();
    let idx = (client * RELS_PER_CLIENT + rel) as u64;
    let edge = KeyPair::generate_for_seed(1024, 20_000 + idx * 2).unwrap();
    let op = KeyPair::generate_for_seed(1024, 20_001 + idx * 2).unwrap();
    let base = (idx as u8).wrapping_mul(16);
    let a = negotiate(&edge, &op, plan, base.wrapping_add(1), base.wrapping_add(2));
    let b = negotiate(&edge, &op, plan, base.wrapping_add(3), base.wrapping_add(4));
    let mut tampered = negotiate(&edge, &op, plan, base.wrapping_add(5), base.wrapping_add(6));
    tampered.charge += 1; // invalidates the outer signature
    let replay = a.clone();
    let c = negotiate(&edge, &op, plan, base.wrapping_add(7), base.wrapping_add(8));
    RelMaterial {
        edge,
        op,
        plan,
        pocs: vec![a, b, tampered, replay, c],
    }
}

type VerdictSeq = Vec<Result<Verdict, VerifyError>>;
type TaggedVerdicts = Vec<(u64, Result<Verdict, VerifyError>)>;

/// Reference run through the in-process service: per-(client, rel)
/// ordered verdict sequences.
fn in_process_reference(
    material: &HashMap<(usize, usize), RelMaterial>,
    workers: usize,
) -> HashMap<(usize, usize), VerdictSeq> {
    let mut svc = VerifierService::with_config(ServiceConfig {
        workers,
        ..ServiceConfig::default()
    });
    let mut rel_ids = HashMap::new();
    let mut keys: Vec<&(usize, usize)> = material.keys().collect();
    keys.sort();
    for key in &keys {
        let m = &material[key];
        let rel = svc
            .register(m.plan, m.edge.public.clone(), m.op.public.clone())
            .unwrap();
        rel_ids.insert(**key, rel);
    }
    // Interleave across relationships round-robin, like the clients do.
    let mut tag_owner = HashMap::new();
    for k in 0..material.values().map(|m| m.pocs.len()).max().unwrap_or(0) {
        for key in &keys {
            let m = &material[key];
            if let Some(poc) = m.pocs.get(k) {
                let tag = svc.submit(rel_ids[key], poc.clone()).unwrap();
                tag_owner.insert(tag, **key);
            }
        }
    }
    let results = svc.collect_results().unwrap();
    svc.finish();
    let mut by_rel: HashMap<(usize, usize), TaggedVerdicts> = HashMap::new();
    for r in results {
        by_rel
            .entry(tag_owner[&r.tag])
            .or_default()
            .push((r.tag, r.result));
    }
    by_rel
        .into_iter()
        .map(|(key, mut seq)| {
            seq.sort_by_key(|(tag, _)| *tag);
            (key, seq.into_iter().map(|(_, v)| v).collect())
        })
        .collect()
}

#[test]
fn soak_remote_matches_in_process_bit_for_bit() {
    let n_clients = sessions();
    let workers = 2;

    // Generate all material up front (keygen + negotiation dominate).
    let mut material = HashMap::new();
    for c in 0..n_clients {
        for r in 0..RELS_PER_CLIENT {
            material.insert((c, r), build_material(c, r));
        }
    }
    let reference = in_process_reference(&material, workers);

    let server = IngressServer::bind(
        ("127.0.0.1", 0),
        ServiceConfig {
            workers,
            ..ServiceConfig::default()
        },
        IngressConfig {
            // A tight window exercises the backpressure path under load.
            window: 4,
            ..IngressConfig::default()
        },
    )
    .unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();

    // N concurrent sessions over real sockets.
    let mut remote: HashMap<(usize, usize), VerdictSeq> = HashMap::new();
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for c in 0..n_clients {
            let material = &material;
            joins.push(scope.spawn(move || {
                let mut client = RemoteVerifier::connect(addr, 0).unwrap();
                let mut rels = Vec::new();
                for r in 0..RELS_PER_CLIENT {
                    let m = &material[&(c, r)];
                    let rel = client
                        .register(m.plan, m.edge.public.clone(), m.op.public.clone())
                        .unwrap();
                    rels.push(rel);
                }
                // Interleave submissions across this client's rels.
                let mut tag_map: HashMap<u64, (usize, u64)> = HashMap::new();
                let mut per_rel_seq: HashMap<usize, u64> = HashMap::new();
                let depth = material[&(c, 0)].pocs.len();
                for k in 0..depth {
                    for (r, rel) in rels.iter().enumerate() {
                        if let Some(poc) = material[&(c, r)].pocs.get(k) {
                            let tag = client.submit(*rel, poc).unwrap();
                            let seq = per_rel_seq.entry(r).or_insert(0);
                            tag_map.insert(tag, (r, *seq));
                            *seq += 1;
                        }
                    }
                }
                let results = client.collect_results().unwrap();
                client.goodbye().unwrap();
                // Ordering guarantee: per relationship, verdicts arrive
                // in submission order.
                let mut last_seq: HashMap<usize, i64> = HashMap::new();
                let mut by_rel: HashMap<usize, VerdictSeq> = HashMap::new();
                for res in results {
                    let (r, seq) = tag_map[&res.tag];
                    let prev = last_seq.entry(r).or_insert(-1);
                    assert!(
                        (seq as i64) > *prev,
                        "relationship {r} verdicts out of submission order"
                    );
                    *prev = seq as i64;
                    by_rel.entry(r).or_default().push(res.result);
                }
                (c, by_rel)
            }));
        }
        for j in joins {
            let (c, by_rel) = j.join().unwrap();
            for (r, seq) in by_rel {
                remote.insert((c, r), seq);
            }
        }
    });

    let report = handle.shutdown().unwrap();

    // Bit-for-bit: every relationship's verdict sequence matches the
    // in-process run exactly.
    assert_eq!(remote.len(), reference.len());
    for (key, expected) in &reference {
        let got = remote.get(key).unwrap_or_else(|| {
            panic!("relationship {key:?} produced no remote verdicts");
        });
        assert_eq!(
            got, expected,
            "verdicts diverged from in-process service for {key:?}"
        );
    }

    // Counters reconcile: every submission produced exactly one verdict
    // that reached its client.
    let total: u64 = (n_clients * RELS_PER_CLIENT * 5) as u64;
    assert_eq!(report.ingress.submissions, total);
    assert_eq!(report.ingress.verdicts, total);
    assert_eq!(report.ingress.orphaned_verdicts, 0);
    assert_eq!(report.service.unclaimed_results, 0);
    assert_eq!(report.ingress.protocol_errors, 0);
    // Per relationship: 4 accepted (one of them lowers to a reject? no:
    // a, b, c valid = 3 accepted; tampered + replay rejected = 2).
    assert_eq!(
        report.ingress.accepted,
        (n_clients * RELS_PER_CLIENT * 3) as u64
    );
    assert_eq!(
        report.ingress.rejected_malformed,
        (n_clients * RELS_PER_CLIENT * 2) as u64
    );
}

/// Tight-window backpressure under a single bulk batch: the client
/// chunks, the server pauses reads, and everything still completes
/// with exact counts.
#[test]
fn batch_submission_respects_window_and_completes() {
    let m = build_material(90, 0);
    let server = IngressServer::bind(
        ("127.0.0.1", 0),
        ServiceConfig {
            workers: 1,
            batch_size: 2,
            ..ServiceConfig::default()
        },
        IngressConfig {
            window: 2,
            ..IngressConfig::default()
        },
    )
    .unwrap();
    let handle = server.spawn().unwrap();
    let mut client = RemoteVerifier::connect(handle.addr(), 0).unwrap();
    assert_eq!(client.window(), 2);
    let rel = client
        .register(m.plan, m.edge.public.clone(), m.op.public.clone())
        .unwrap();
    let (first, count) = client.submit_batch(rel, m.pocs.iter()).unwrap();
    assert_eq!((first, count), (0, 5));
    let results = client.collect_results().unwrap();
    assert_eq!(results.len(), 5);
    let verdicts: VerdictSeq = results.into_iter().map(|r| r.result).collect();
    assert!(verdicts[0].is_ok());
    assert!(verdicts[1].is_ok());
    assert!(verdicts[2].is_err()); // tampered
    assert_eq!(verdicts[3], Err(VerifyError::Replayed));
    assert!(verdicts[4].is_ok());
    client.goodbye().unwrap();
    let report = handle.shutdown().unwrap();
    assert_eq!(report.ingress.submissions, 5);
    assert_eq!(report.ingress.verdicts, 5);
}
