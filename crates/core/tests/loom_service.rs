//! Concurrency models for the verification pipeline, compiled only
//! under `RUSTFLAGS="--cfg loom"`:
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p tlc-core --test loom_service
//! ```
//!
//! Three models, from most abstract to most concrete:
//!
//! 1. the bounded hash→signature stage queue (the protocol the vendored
//!    crossbeam bounded channel implements): producers block on a full
//!    queue, the consumer wakes them, nothing is lost or reordered;
//! 2. the signature stage's flush-on-shutdown protocol: size-triggered
//!    flushes racing a producer hang-up must still deliver exactly one
//!    result per submission, in submission order;
//! 3. the real [`VerifierService`] torn down with a partial batch still
//!    buffered: `finish()` must flush it and account every proof.
//!
//! `loom::model` re-runs each body under perturbed schedules
//! (`LOOM_ITERS` controls how many), so the assertions hold across
//! interleavings, not just the lucky one.

#![cfg(loom)]

use loom::sync::{Arc, Condvar, Mutex};
use loom::thread;
use std::collections::VecDeque;
use std::sync::OnceLock;
use std::time::Duration;

use tlc_core::plan::DataPlan;
use tlc_core::protocol::{run_negotiation, Endpoint};
use tlc_core::strategy::{Knowledge, OptimalStrategy, Role};
use tlc_core::verify::service::{ServiceConfig, VerifierService};
use tlc_core::PocMsg;
use tlc_crypto::KeyPair;

/// Minimal bounded MPSC queue built on loom primitives, mirroring the
/// protocol of `vendor/crossbeam`'s bounded channel (mutex + condvars,
/// senders block while full, disconnect observed on drop).
struct BoundedQueue<T> {
    inner: Mutex<QueueState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

struct QueueState<T> {
    buf: VecDeque<T>,
    cap: usize,
    senders: usize,
}

impl<T> BoundedQueue<T> {
    fn new(cap: usize, senders: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(QueueState {
                buf: VecDeque::new(),
                cap,
                senders,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    fn send(&self, v: T) {
        let mut st = self.inner.lock().unwrap();
        while st.buf.len() >= st.cap {
            st = self.not_full.wait(st).unwrap();
        }
        st.buf.push_back(v);
        drop(st);
        self.not_empty.notify_one();
    }

    fn sender_done(&self) {
        let mut st = self.inner.lock().unwrap();
        st.senders -= 1;
        drop(st);
        self.not_empty.notify_all();
    }

    /// `None` once every sender hung up and the buffer drained.
    fn recv(&self) -> Option<T> {
        let mut st = self.inner.lock().unwrap();
        loop {
            if let Some(v) = st.buf.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return Some(v);
            }
            if st.senders == 0 {
                return None;
            }
            st = self.not_empty.wait(st).unwrap();
        }
    }
}

#[test]
fn bounded_stage_queue_delivers_everything_in_order() {
    loom::model(|| {
        const PER_PRODUCER: u64 = 8;
        // Capacity far below the item count, so producers must block
        // and be woken (the interesting schedules).
        let q = Arc::new(BoundedQueue::new(2, 2));
        let mut producers = Vec::new();
        for p in 0..2u64 {
            let q = Arc::clone(&q);
            producers.push(thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    q.send((p, i));
                }
                q.sender_done();
            }));
        }
        let mut last = [None::<u64>; 2];
        let mut total = 0u64;
        while let Some((p, i)) = q.recv() {
            // Per-producer FIFO: sequence numbers strictly increase.
            assert!(last[p as usize].is_none_or(|prev| i > prev));
            last[p as usize] = Some(i);
            total += 1;
        }
        assert_eq!(total, 2 * PER_PRODUCER, "no item lost or duplicated");
        for h in producers {
            h.join().unwrap();
        }
    });
}

#[test]
fn flush_on_shutdown_delivers_exactly_one_result_per_tag() {
    loom::model(|| {
        // 11 submissions at batch size 4: two size-triggered flushes
        // race the hang-up, and a 3-entry partial batch must be flushed
        // by the shutdown path — the same protocol signature_worker
        // runs when the hash stage disconnects.
        const SUBMITTED: u64 = 11;
        const BATCH: usize = 4;
        let q = Arc::new(BoundedQueue::new(4, 1));
        let results = Arc::new(Mutex::new(Vec::new()));

        let worker = {
            let q = Arc::clone(&q);
            let results = Arc::clone(&results);
            thread::spawn(move || {
                let mut pending: Vec<u64> = Vec::new();
                loop {
                    match q.recv() {
                        Some(tag) => {
                            pending.push(tag);
                            if pending.len() >= BATCH {
                                results.lock().unwrap().extend(pending.drain(..));
                            }
                        }
                        None => {
                            // Producer hung up: flush the partial batch.
                            results.lock().unwrap().extend(pending.drain(..));
                            return;
                        }
                    }
                }
            })
        };

        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                for tag in 0..SUBMITTED {
                    q.send(tag);
                }
                q.sender_done();
            })
        };

        producer.join().unwrap();
        worker.join().unwrap();
        let got = results.lock().unwrap().clone();
        let want: Vec<u64> = (0..SUBMITTED).collect();
        assert_eq!(got, want, "every tag exactly once, in submission order");
    });
}

/// Keys and proofs are expensive to make and pure data — generate them
/// once, clone per iteration.
fn proof_corpus() -> &'static (DataPlan, KeyPair, KeyPair, Vec<PocMsg>) {
    static CORPUS: OnceLock<(DataPlan, KeyPair, KeyPair, Vec<PocMsg>)> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let plan = DataPlan::paper_default();
        let edge = KeyPair::generate_for_seed(1024, 9400).unwrap();
        let op = KeyPair::generate_for_seed(1024, 9401).unwrap();
        let pocs = (0..3u8)
            .map(|i| {
                let mut e = Endpoint::new(
                    Role::Edge,
                    plan,
                    Knowledge {
                        role: Role::Edge,
                        own_truth: 1000,
                        inferred_peer_truth: 800,
                    },
                    Box::new(OptimalStrategy),
                    edge.private.clone(),
                    op.public.clone(),
                    [2 * i + 1; 16],
                    32,
                );
                let mut o = Endpoint::new(
                    Role::Operator,
                    plan,
                    Knowledge {
                        role: Role::Operator,
                        own_truth: 800,
                        inferred_peer_truth: 1000,
                    },
                    Box::new(OptimalStrategy),
                    op.private.clone(),
                    edge.public.clone(),
                    [2 * i + 2; 16],
                    32,
                );
                run_negotiation(&mut o, &mut e).unwrap().0
            })
            .collect();
        (plan, edge, op, pocs)
    })
}

#[test]
fn service_finish_flushes_partial_batches() {
    let (plan, edge, op, pocs) = proof_corpus();
    loom::model(move || {
        // Batch size far above the submission count and an hour-long
        // deadline: only the shutdown path can flush these, and it
        // races the submissions still crossing the stage queue.
        let mut svc = VerifierService::with_config(ServiceConfig {
            workers: 2,
            batch_size: 64,
            flush_deadline: Duration::from_secs(3600),
            stage_queue_depth: 2,
        });
        let rel = svc
            .register(*plan, edge.public.clone(), op.public.clone())
            .unwrap();
        for poc in pocs {
            svc.submit(rel, poc.clone()).unwrap();
        }
        let report = svc.finish();
        assert_eq!(report.worker_panics, 0);
        assert_eq!(
            (report.accepted, report.rejected),
            (pocs.len() as u64, 0),
            "shutdown must flush the partial batch, dropping nothing"
        );
    });
}
