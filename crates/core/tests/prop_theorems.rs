//! Property-based tests of the paper's theorems over the whole parameter
//! space: arbitrary true usage pairs, plan weights, and strategy pairings.

use proptest::prelude::*;
use tlc_core::cancellation::{negotiate, Bounds, DEFAULT_MAX_ROUNDS};
use tlc_core::game::ClaimSpace;
use tlc_core::plan::{charge_for, intended_charge, ChargingCycle, DataPlan, LossWeight, UsagePair};
use tlc_core::strategy::{
    HonestStrategy, Knowledge, OptimalStrategy, RandomSelfishStrategy, Role,
    Strategy as TlcStrategy,
};
use tlc_net::rng::SimRng;

fn plan(c_e4: u32) -> DataPlan {
    DataPlan {
        loss_weight: LossWeight::new(c_e4, 10_000),
        cycle: ChargingCycle::one_hour(),
    }
}

fn kn(sent: u64, received: u64) -> (Knowledge, Knowledge) {
    (
        Knowledge {
            role: Role::Edge,
            own_truth: sent,
            inferred_peer_truth: received,
        },
        Knowledge {
            role: Role::Operator,
            own_truth: received,
            inferred_peer_truth: sent,
        },
    )
}

/// (received ≤ sent) pairs over a wide dynamic range.
fn truth_pair() -> impl Strategy<Value = (u64, u64)> {
    (0u64..u64::MAX / 4).prop_flat_map(|sent| (Just(sent), 0..=sent))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The pricing formula is always bounded by the claims and monotone
    /// in each claim (the lemma behind Theorem 2).
    #[test]
    fn charge_bounded_and_monotone(
        (xe, xo) in truth_pair(),
        c_e4 in 0u32..=10_000,
        bump in 1u64..1_000_000,
    ) {
        let w = LossWeight::new(c_e4, 10_000);
        let x = charge_for(UsagePair { edge: xe, operator: xo }, w);
        prop_assert!(x >= xo && x <= xe);
        // Monotone in the edge claim.
        let x_up = charge_for(UsagePair { edge: xe.saturating_add(bump), operator: xo }, w);
        prop_assert!(x_up >= x);
        // Monotone in the operator claim (stays within [xo, xe]).
        let xo_up = (xo.saturating_add(bump)).min(xe);
        let x_up2 = charge_for(UsagePair { edge: xe, operator: xo_up }, w);
        prop_assert!(x_up2 >= x);
    }

    /// Theorem 3: rational (optimal) pairs converge to the plan-intended
    /// charge for every truth pair and plan weight.
    #[test]
    fn theorem3_optimal_pair_reaches_intended(
        (sent, received) in truth_pair(),
        c_e4 in 0u32..=10_000,
    ) {
        let p = plan(c_e4);
        let (ke, ko) = kn(sent, received);
        let out = negotiate(
            &p, &mut OptimalStrategy, &ke, &mut OptimalStrategy, &ko, DEFAULT_MAX_ROUNDS,
        ).unwrap();
        prop_assert_eq!(out.charge, intended_charge(UsagePair { edge: sent, operator: received }, p.loss_weight));
        // Theorem 4: and in exactly one round.
        prop_assert_eq!(out.rounds, 1);
    }

    /// Honest pairs also converge to x̂ in one round (Theorem 4 case 1).
    #[test]
    fn honest_pair_reaches_intended(
        (sent, received) in truth_pair(),
        c_e4 in 0u32..=10_000,
    ) {
        let p = plan(c_e4);
        let (ke, ko) = kn(sent, received);
        let out = negotiate(
            &p, &mut HonestStrategy, &ke, &mut HonestStrategy, &ko, DEFAULT_MAX_ROUNDS,
        ).unwrap();
        prop_assert_eq!(out.charge, intended_charge(UsagePair { edge: sent, operator: received }, p.loss_weight));
        prop_assert_eq!(out.rounds, 1);
    }

    /// Theorem 2: for every pairing of {honest, optimal, random} the
    /// negotiated charge lies in [x̂_o, x̂_e].
    #[test]
    fn theorem2_bound_for_all_pairings(
        (sent, received) in truth_pair(),
        c_e4 in 0u32..=10_000,
        seed in any::<u64>(),
        edge_kind in 0u8..3,
        op_kind in 0u8..3,
    ) {
        let p = plan(c_e4);
        let (ke, ko) = kn(sent, received);
        let mk = |kind: u8, s: u64| -> Box<dyn TlcStrategy> {
            match kind {
                0 => Box::new(HonestStrategy),
                1 => Box::new(OptimalStrategy),
                _ => Box::new(RandomSelfishStrategy::new(SimRng::new(s))),
            }
        };
        let out = negotiate(
            &p, mk(edge_kind, seed).as_mut(), &ke, mk(op_kind, seed ^ 0xFFFF).as_mut(), &ko,
            DEFAULT_MAX_ROUNDS,
        ).unwrap();
        prop_assert!(out.charge >= received && out.charge <= sent,
            "charge {} outside [{received}, {sent}]", out.charge);
    }

    /// Mixed honest/rational pairings still converge (possibly not to x̂)
    /// and the transcript's bounds shrink monotonically.
    #[test]
    fn transcript_bounds_shrink(
        (sent, received) in truth_pair(),
        seed in any::<u64>(),
    ) {
        let p = plan(5000);
        let (ke, ko) = kn(sent, received);
        let out = negotiate(
            &p,
            &mut RandomSelfishStrategy::new(SimRng::new(seed)),
            &ke,
            &mut RandomSelfishStrategy::new(SimRng::new(seed ^ 1)),
            &ko,
            DEFAULT_MAX_ROUNDS,
        ).unwrap();
        for w in out.transcript.windows(2) {
            prop_assert!(w[1].bounds.lo >= w[0].bounds.lo);
            prop_assert!(w[1].bounds.hi <= w[0].bounds.hi);
        }
    }

    /// The numeric game matches the closed form: minimax == maximin == x̂
    /// over sampled claim spaces (Von Neumann's theorem instantiated).
    #[test]
    fn minimax_equals_maximin(
        received in 0u64..1_000_000,
        loss in 0u64..1_000_000,
        c_e4 in 0u32..=10_000,
    ) {
        let space = ClaimSpace::new(received, received + loss);
        let w = LossWeight::new(c_e4, 10_000);
        let x_hat = space.intended(w);
        prop_assert_eq!(space.minimax(w), x_hat);
        prop_assert_eq!(space.maximin(w), x_hat);
    }

    /// Bounds helpers: tighten always yields a sub-range containing both
    /// inputs; clamp lands inside.
    #[test]
    fn bounds_algebra(a in any::<u64>(), b in any::<u64>(), v in any::<u64>()) {
        let t = Bounds::unbounded().tighten(a, b);
        prop_assert!(t.admits(a) && t.admits(b));
        prop_assert!(t.admits(t.clamp(v)));
        let t2 = t.tighten(t.clamp(v), a);
        prop_assert!(t2.lo >= t.lo && t2.hi <= t.hi);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Wire codec fuzz: CDR encode/decode round-trips for arbitrary field
    /// values, and arbitrary byte soup never panics the decoders.
    #[test]
    fn message_codec_roundtrip_and_fuzz(
        seq in any::<u64>(),
        usage in any::<u64>(),
        nonce in any::<[u8; 16]>(),
        soup in proptest::collection::vec(any::<u8>(), 0..400),
    ) {
        use tlc_core::messages::{CdaMsg, CdrMsg, PocMsg};
        use tlc_crypto::KeyPair;
        let kp = KeyPair::generate_for_seed(1024, 0xBEEF).unwrap();
        let p = DataPlan::paper_default();
        let cdr = CdrMsg::sign(Role::Edge, p, seq, nonce, usage, &kp.private).unwrap();
        prop_assert_eq!(CdrMsg::decode(&cdr.encode()).unwrap(), cdr);
        // Decoders must reject or parse garbage without panicking.
        let _ = CdrMsg::decode(&soup);
        let _ = CdaMsg::decode(&soup);
        let _ = PocMsg::decode(&soup);
    }
}
