//! Cross-operator replay scoping (DESIGN §14).
//!
//! A roaming subscriber's edge vendor holds *two* verification
//! relationships — one with the home operator, one with the visited
//! operator. A proof-of-charging settled through either relationship
//! must not be creditable again through the other: the roaming
//! verifier shares one replay window across both, and — like the
//! single-relationship verifier — checks it *before* any
//! cryptography, so the resubmission is rejected as `Replayed`
//! rather than merely failing its signature check.

use tlc_core::plan::DataPlan;
use tlc_core::protocol::{run_negotiation, Endpoint};
use tlc_core::roaming::{RoamingVerifier, Serving};
use tlc_core::strategy::{Knowledge, OptimalStrategy, Role};
use tlc_core::verify::{Verifier, VerifyError};
use tlc_core::PocMsg;
use tlc_crypto::KeyPair;

/// Negotiates one PoC between the edge and the given operator key,
/// with caller-chosen clear nonces (distinct nonces → distinct replay
/// cache keys).
fn negotiate(plan: &DataPlan, edge: &KeyPair, op: &KeyPair, ne: u8, no: u8) -> PocMsg {
    let mut e = Endpoint::new(
        Role::Edge,
        *plan,
        Knowledge {
            role: Role::Edge,
            own_truth: 1000,
            inferred_peer_truth: 800,
        },
        Box::new(OptimalStrategy),
        edge.private.clone(),
        op.public.clone(),
        [ne; 16],
        32,
    );
    let mut o = Endpoint::new(
        Role::Operator,
        *plan,
        Knowledge {
            role: Role::Operator,
            own_truth: 800,
            inferred_peer_truth: 1000,
        },
        Box::new(OptimalStrategy),
        op.private.clone(),
        edge.public.clone(),
        [no; 16],
        32,
    );
    run_negotiation(&mut o, &mut e).unwrap().0
}

struct Fixture {
    plan: DataPlan,
    edge: KeyPair,
    home_op: KeyPair,
    visited_op: KeyPair,
}

impl Fixture {
    fn new() -> Self {
        let plan = DataPlan::paper_default();
        Fixture {
            plan,
            edge: KeyPair::generate_for_seed(1024, 41).unwrap(),
            home_op: KeyPair::generate_for_seed(1024, 42).unwrap(),
            visited_op: KeyPair::generate_for_seed(1024, 43).unwrap(),
        }
    }

    fn roaming_verifier(&self) -> RoamingVerifier {
        RoamingVerifier::new(
            Verifier::new(
                self.plan,
                self.edge.public.clone(),
                self.home_op.public.clone(),
            ),
            Verifier::new(
                self.plan,
                self.edge.public.clone(),
                self.visited_op.public.clone(),
            ),
        )
    }
}

#[test]
fn home_settled_proof_replays_through_visited_relationship() {
    let f = Fixture::new();
    let mut rv = f.roaming_verifier();
    let poc = negotiate(&f.plan, &f.edge, &f.home_op, 0x11, 0x22);

    // First submission through the home relationship settles cleanly.
    let v = rv.verify(Serving::Home, &poc).unwrap();
    assert_eq!(v.charge, 900);
    assert_eq!(rv.home().accepted(), 1);

    // Resubmitting the *same* proof through the visited relationship
    // must be rejected as a replay — not as a bad signature — because
    // the shared window is checked before any crypto runs.
    assert_eq!(
        rv.verify(Serving::Visited, &poc),
        Err(VerifyError::Replayed)
    );
    assert_eq!(rv.cross_rejected(), 1);
    // The visited relationship's own verifier never even saw it.
    assert_eq!(rv.visited().accepted(), 0);
    assert_eq!(rv.visited().rejected(), 0);
}

#[test]
fn visited_settled_proof_replays_through_home_relationship() {
    let f = Fixture::new();
    let mut rv = f.roaming_verifier();
    let poc = negotiate(&f.plan, &f.edge, &f.visited_op, 0x33, 0x44);

    rv.verify(Serving::Visited, &poc).unwrap();
    assert_eq!(rv.verify(Serving::Home, &poc), Err(VerifyError::Replayed));
    assert_eq!(rv.cross_rejected(), 1);
    assert_eq!(rv.home().accepted(), 0);
}

#[test]
fn distinct_proofs_settle_through_both_relationships() {
    let f = Fixture::new();
    let mut rv = f.roaming_verifier();
    let home_poc = negotiate(&f.plan, &f.edge, &f.home_op, 0x55, 0x66);
    let visited_poc = negotiate(&f.plan, &f.edge, &f.visited_op, 0x77, 0x88);

    rv.verify(Serving::Home, &home_poc).unwrap();
    rv.verify(Serving::Visited, &visited_poc).unwrap();
    assert_eq!(rv.cross_rejected(), 0);
    assert_eq!(rv.replay_window_len(), 2);
    assert_eq!(rv.home().accepted(), 1);
    assert_eq!(rv.visited().accepted(), 1);

    // Same-relationship replays still trip too, of course.
    assert_eq!(
        rv.verify(Serving::Home, &home_poc),
        Err(VerifyError::Replayed)
    );
}

#[test]
fn rejected_proofs_do_not_poison_the_shared_window() {
    let f = Fixture::new();
    let mut rv = f.roaming_verifier();
    // Negotiated against the *home* operator, but submitted through
    // the visited relationship first: fresh nonces, so the shared
    // window passes and the signature check rejects it.
    let poc = negotiate(&f.plan, &f.edge, &f.home_op, 0x99, 0xAA);
    assert!(matches!(
        rv.verify(Serving::Visited, &poc),
        Err(VerifyError::Signature(_))
    ));
    assert_eq!(rv.replay_window_len(), 0, "rejects must not be remembered");

    // The legitimate submission through the right relationship still
    // succeeds afterwards.
    rv.verify(Serving::Home, &poc).unwrap();
    assert_eq!(rv.replay_window_len(), 1);
}

#[test]
fn shared_window_is_fifo_bounded() {
    let f = Fixture::new();
    let mut rv = RoamingVerifier::with_capacity(
        Verifier::new(f.plan, f.edge.public.clone(), f.home_op.public.clone()),
        Verifier::new(f.plan, f.edge.public.clone(), f.visited_op.public.clone()),
        2,
    );
    let a = negotiate(&f.plan, &f.edge, &f.home_op, 1, 2);
    let b = negotiate(&f.plan, &f.edge, &f.visited_op, 3, 4);
    let c = negotiate(&f.plan, &f.edge, &f.home_op, 5, 6);

    rv.verify(Serving::Home, &a).unwrap();
    rv.verify(Serving::Visited, &b).unwrap();
    assert_eq!(rv.replay_window_len(), 2);
    assert_eq!(rv.verify(Serving::Visited, &a), Err(VerifyError::Replayed));

    // A third acceptance evicts the oldest shared entry (a).
    rv.verify(Serving::Home, &c).unwrap();
    assert_eq!(rv.replay_window_len(), 2);
    assert_eq!(rv.verify(Serving::Home, &b), Err(VerifyError::Replayed));
    // `a` aged out of the shared retention window: the documented
    // bound of a finite cache, but note its *home* verifier still
    // remembers it (per-relationship windows are larger here).
    assert_eq!(rv.verify(Serving::Home, &a), Err(VerifyError::Replayed));
    assert_eq!(rv.cross_rejected(), 2);
}
