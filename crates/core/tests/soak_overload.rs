//! Overload, fairness, and chaos soak for the verifier ingress.
//!
//! Where `soak_ingress` proves the happy path matches the in-process
//! service bit-for-bit, this suite drives the server through its
//! admission ladder (DESIGN §11) and asserts the robustness pins:
//!
//! * overload is never a silent drop — every shed submission draws a
//!   typed BUSY, and server shed counters reconcile with what clients
//!   observed;
//! * one abusive client cannot starve well-behaved ones — their
//!   goodput stays at 100% of demand (the ISSUE floor is 80%);
//! * the misbehavior ladder escalates: oversize bursts quarantine,
//!   repeat offenders draw a typed goodbye;
//! * `finish()` accounts every submission exactly once across
//!   verdicts, orphans, and unclaimed results — including mid-batch
//!   connection death and server crash/restart;
//! * chaos faults (slow-loris dribble, mid-frame resets, stalled
//!   readers) replay deterministically per seed and never wedge the
//!   server.
//!
//! Pin a single chaos seed with `TLC_CHAOS_SEED=<n>`; by default the
//! determinism test sweeps the three seeds CI pins.

use std::io::{Read, Write};
use std::net::TcpStream;
use tlc_core::messages::{PocMsg, NONCE_LEN};
use tlc_core::plan::DataPlan;
use tlc_core::protocol::{run_negotiation, Endpoint};
use tlc_core::strategy::{Knowledge, OptimalStrategy, Role};
use tlc_core::verify::remote::codec::{
    BusyMsg, BusyScope, Fault, Hello, HelloAck, Register, Registered, Submit, SubmitBatch,
    VerdictMsg, MAGIC, PROTOCOL_VERSION,
};
use tlc_core::verify::remote::{
    BackoffConfig, IngressConfig, IngressHandle, IngressServer, RemoteError, RemoteVerifier,
};
use tlc_core::verify::service::{ServiceConfig, ServiceError};
use tlc_crypto::KeyPair;
use tlc_net::chaos::{ChaosSpec, ChaosStream};
use tlc_net::wire::{Frame, FrameDecoder, FrameKind, DEFAULT_MAX_PAYLOAD};

// ---------------------------------------------------------------------
// Material
// ---------------------------------------------------------------------

fn negotiate(edge: &KeyPair, op: &KeyPair, plan: DataPlan, ne: u8, no: u8) -> PocMsg {
    let mut e = Endpoint::new(
        Role::Edge,
        plan,
        Knowledge {
            role: Role::Edge,
            own_truth: 1000,
            inferred_peer_truth: 800,
        },
        Box::new(OptimalStrategy),
        edge.private.clone(),
        op.public.clone(),
        [ne; NONCE_LEN],
        32,
    );
    let mut o = Endpoint::new(
        Role::Operator,
        plan,
        Knowledge {
            role: Role::Operator,
            own_truth: 800,
            inferred_peer_truth: 1000,
        },
        Box::new(OptimalStrategy),
        op.private.clone(),
        edge.public.clone(),
        [no; NONCE_LEN],
        32,
    );
    run_negotiation(&mut o, &mut e).unwrap().0
}

/// One relationship's material: its own keys plus `n` distinct valid
/// proofs. `idx` keeps key seeds and nonces disjoint across callers
/// (and from the other soak suites, which use the 20_000 range).
struct Material {
    edge: KeyPair,
    op: KeyPair,
    plan: DataPlan,
    pocs: Vec<PocMsg>,
}

fn material(idx: u64, n: usize) -> Material {
    let plan = DataPlan::paper_default();
    let edge = KeyPair::generate_for_seed(1024, 40_000 + idx * 2).unwrap();
    let op = KeyPair::generate_for_seed(1024, 40_001 + idx * 2).unwrap();
    let base = (idx as u8).wrapping_mul(32);
    let pocs = (0..n)
        .map(|k| {
            let k = k as u8;
            negotiate(
                &edge,
                &op,
                plan,
                base.wrapping_add(k.wrapping_mul(2)),
                base.wrapping_add(k.wrapping_mul(2)).wrapping_add(1),
            )
        })
        .collect();
    Material {
        edge,
        op,
        plan,
        pocs,
    }
}

fn spawn_server(ingress: IngressConfig, workers: usize) -> IngressHandle {
    IngressServer::bind(
        ("127.0.0.1", 0),
        ServiceConfig {
            workers,
            ..ServiceConfig::default()
        },
        ingress,
    )
    .unwrap()
    .spawn()
    .unwrap()
}

// ---------------------------------------------------------------------
// A raw frame-level client, for driving the protocol off the paved path
// (oversize bursts, stalled reads) the typed client refuses to take.
// ---------------------------------------------------------------------

struct RawClient {
    stream: TcpStream,
    decoder: FrameDecoder,
}

impl RawClient {
    /// Connects and completes the HELLO exchange; returns the granted
    /// window alongside the client.
    fn handshake(addr: std::net::SocketAddr) -> (RawClient, u32) {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut c = RawClient {
            stream,
            decoder: FrameDecoder::new(DEFAULT_MAX_PAYLOAD),
        };
        c.send(
            &Hello {
                magic: MAGIC,
                version: PROTOCOL_VERSION,
                window: 0,
            }
            .to_frame(),
        );
        let ack = c.recv();
        assert_eq!(ack.kind, FrameKind::HelloAck);
        let ack = HelloAck::decode(&ack.payload).unwrap();
        let window = ack.window;
        (c, window)
    }

    /// Registers `m`'s relationship and returns its raw id.
    fn register(&mut self, m: &Material) -> u64 {
        self.send(
            &Register {
                req: 1,
                capacity: 0,
                plan: m.plan,
                edge_key: m.edge.public.clone(),
                operator_key: m.op.public.clone(),
            }
            .to_frame(),
        );
        let frame = self.recv();
        assert_eq!(frame.kind, FrameKind::Registered);
        Registered::decode(&frame.payload).unwrap().rel
    }

    fn send(&mut self, frame: &Frame) {
        self.stream.write_all(&frame.encode().unwrap()).unwrap();
    }

    /// Blocks until one whole frame arrives.
    fn recv(&mut self) -> Frame {
        loop {
            if let Some(f) = self.decoder.next_frame() {
                return f;
            }
            let mut buf = [0u8; 4096];
            let n = self.stream.read(&mut buf).unwrap();
            assert!(n > 0, "peer closed mid-read");
            self.decoder.push(&buf[..n]).unwrap();
        }
    }

    /// Reads until EOF, returning every frame seen on the way.
    fn drain_to_eof(&mut self) -> Vec<Frame> {
        let mut frames = Vec::new();
        let mut buf = [0u8; 4096];
        loop {
            while let Some(f) = self.decoder.next_frame() {
                frames.push(f);
            }
            match self.stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => self.decoder.push(&buf[..n]).unwrap(),
                Err(_) => break,
            }
        }
        while let Some(f) = self.decoder.next_frame() {
            frames.push(f);
        }
        frames
    }
}

// ---------------------------------------------------------------------
// Graceful degradation: one abusive client, N well-behaved ones.
// ---------------------------------------------------------------------

/// One client blasts an oversize burst (quarantine-grade misbehavior)
/// and then keeps submitting; three well-behaved clients run their
/// full workload alongside. The pins: well-behaved goodput is 100% of
/// demand (ISSUE floor: 80%), every response the abuser gets is typed
/// (BUSY or a verdict, never silence), the abuser is quarantined, and
/// the final report accounts every submission and every shed exactly.
#[test]
fn abusive_client_cannot_starve_the_well_behaved() {
    const WELL_BEHAVED: usize = 3;
    const POCS_EACH: usize = 5;
    let handle = spawn_server(
        IngressConfig {
            window: 8,
            max_batch: 4,
            quarantine_threshold: 8,
            // Long enough that the quarantine outlives the burst, short
            // enough that a read-race never wedges the test.
            quarantine_polls: 200,
            goodbye_threshold: 1_000_000,
            ..IngressConfig::default()
        },
        2,
    );
    let addr = handle.addr();

    let mats: Vec<Material> = (0..WELL_BEHAVED)
        .map(|c| material(c as u64, POCS_EACH))
        .collect();
    let abuse_mat = material(100, 1);

    let mut abusive_busys = 0u64;
    let mut well_behaved_sheds = 0u64;
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for m in &mats {
            joins.push(scope.spawn(move || {
                let mut client = RemoteVerifier::connect(addr, 0).unwrap();
                let rel = client
                    .register(m.plan, m.edge.public.clone(), m.op.public.clone())
                    .unwrap();
                for poc in &m.pocs {
                    client.submit(rel, poc).unwrap();
                }
                let results = client.collect_results().unwrap();
                assert_eq!(results.len(), POCS_EACH, "goodput below demand");
                for r in &results {
                    assert!(
                        r.result.is_ok(),
                        "well-behaved proof rejected: {:?}",
                        r.result
                    );
                }
                let sheds = client.shed_notices();
                client.goodbye().unwrap();
                sheds
            }));
        }

        // The abuser: an oversize burst (5 > max_batch 4) followed by
        // six copies of one proof, all in a single write.
        let abuser = scope.spawn(|| {
            const FOLLOW_UPS: usize = 6;
            let (mut raw, _window) = RawClient::handshake(addr);
            let rel = raw.register(&abuse_mat);
            let poc = abuse_mat.pocs[0].encode();
            let mut blast = SubmitBatch {
                rel,
                first_tag: 0,
                pocs: vec![vec![0xEE; 8]; 5],
            }
            .to_frame()
            .encode()
            .unwrap();
            for k in 0..FOLLOW_UPS {
                blast.extend(
                    Submit {
                        rel,
                        tag: 100 + k as u64,
                        poc: poc.clone(),
                    }
                    .to_frame()
                    .encode()
                    .unwrap(),
                );
            }
            raw.stream.write_all(&blast).unwrap();
            // Every submission must draw a typed answer: the burst an
            // ERROR, each follow-up either BUSY (shed while
            // quarantined) or a verdict (admitted after the sentence
            // expires) — silence is the one forbidden outcome.
            let mut errors = 0u32;
            let mut busys = 0u64;
            let mut verdicts = 0u32;
            while errors < 1 || (busys as usize + verdicts as usize) < FOLLOW_UPS {
                let frame = raw.recv();
                match frame.kind {
                    FrameKind::Error => {
                        assert_eq!(
                            Fault::decode(&frame.payload),
                            Ok(Fault::Protocol("batch exceeds server limit"))
                        );
                        errors += 1;
                    }
                    FrameKind::Busy => {
                        let busy = BusyMsg::decode(&frame.payload).unwrap();
                        assert_eq!(busy.scope, BusyScope::Submit);
                        assert_eq!(busy.rel, rel);
                        assert!(busy.retry_after_ms > 0);
                        busys += 1;
                    }
                    FrameKind::Verdict => {
                        VerdictMsg::decode(&frame.payload).unwrap();
                        verdicts += 1;
                    }
                    other => panic!("unexpected frame under abuse: {other:?}"),
                }
            }
            busys
        });

        abusive_busys = abuser.join().unwrap();
        for j in joins {
            well_behaved_sheds += j.join().unwrap();
        }
    });

    let report = handle.shutdown().unwrap();
    let ing = &report.ingress;
    // The burst was a protocol error and a quarantine, not a close.
    assert!(ing.protocol_errors >= 1);
    assert!(ing.quarantines >= 1, "oversize burst must quarantine");
    assert_eq!(ing.misbehavior_closes, 0);
    // Every BUSY the server counted was received by some client.
    assert_eq!(
        ing.shed_overload,
        abusive_busys + well_behaved_sheds,
        "shed counters must reconcile with client-observed BUSYs"
    );
    // Exact submission accounting: everything admitted was resolved.
    assert_eq!(
        ing.submissions,
        ing.verdicts + ing.orphaned_verdicts + report.service.unclaimed_results as u64
    );
    assert_eq!(report.service.unclaimed_results, 0);
}

// ---------------------------------------------------------------------
// The ShedSubmits rung: deterministic sheds, transparent recovery.
// ---------------------------------------------------------------------

/// With the shed watermark at half the client's window, one batch of
/// `window` proofs deterministically sheds its tail. The typed client
/// retries behind capped backoff and still completes the full batch —
/// and the server's shed counter equals the client's BUSY count.
#[test]
fn shed_submits_draw_busy_and_retry_to_completion() {
    let handle = spawn_server(
        IngressConfig {
            window: 8,
            service_inflight_cap: 2,
            shed_submit_watermark: 4,
            retry_after_ms: 2,
            ..IngressConfig::default()
        },
        1,
    );
    let m = material(200, 8);
    let mut client = RemoteVerifier::connect(handle.addr(), 0).unwrap();
    let rel = client
        .register(m.plan, m.edge.public.clone(), m.op.public.clone())
        .unwrap();
    let (first, count) = client.submit_batch(rel, &m.pocs).unwrap();
    assert_eq!((first, count), (0, 8));
    let results = client.collect_results().unwrap();
    assert_eq!(results.len(), 8);
    for r in &results {
        assert!(
            r.result.is_ok(),
            "shed-and-retried proof rejected: {:?}",
            r.result
        );
    }
    // Relaying a window-8 batch against a watermark of 4 must shed: the
    // service cannot resolve 1024-bit proofs in the microseconds the
    // relay loop takes.
    assert!(client.shed_notices() >= 4, "expected the batch tail shed");
    assert!(client.retries() >= client.shed_notices());
    assert_eq!(client.shed_pending(), 0);
    let sheds = client.shed_notices();
    client.goodbye().unwrap();

    let report = handle.shutdown().unwrap();
    assert_eq!(report.ingress.shed_overload, sheds);
    assert_eq!(report.ingress.submissions, 8);
    assert_eq!(report.ingress.verdicts, 8);
    assert_eq!(report.ingress.accepted, 8);
    assert_eq!(report.ingress.orphaned_verdicts, 0);
}

// ---------------------------------------------------------------------
// The ShedConnections rung.
// ---------------------------------------------------------------------

/// At the connection cap, a new arrival draws BUSY (scope Connection),
/// surfaced as the same typed `ServiceError::Overloaded` the rest of
/// the ladder uses — and once the incumbent leaves, reconnection with
/// backoff succeeds.
#[test]
fn connection_shed_is_typed_and_recoverable() {
    let handle = spawn_server(
        IngressConfig {
            max_conns: 1,
            retry_after_ms: 2,
            ..IngressConfig::default()
        },
        1,
    );
    let addr = handle.addr();
    let m = material(300, 1);
    let mut incumbent = RemoteVerifier::connect(addr, 0).unwrap();
    let rel = incumbent
        .register(m.plan, m.edge.public.clone(), m.op.public.clone())
        .unwrap();
    incumbent.submit(rel, &m.pocs[0]).unwrap();

    // A bare handshake (no reconnect loop) sees the typed shed.
    let stream = TcpStream::connect(addr).unwrap();
    let got = RemoteVerifier::handshake(stream, 0, BackoffConfig::default());
    match got {
        Err(RemoteError::Service(ServiceError::Overloaded { retry_after_ms })) => {
            assert!(retry_after_ms > 0)
        }
        Err(other) => panic!("expected typed Overloaded, got {other:?}"),
        Ok(_) => panic!("handshake must be shed at the connection cap"),
    }

    // Incumbent leaves; the reconnect loop gets in within its budget.
    incumbent.collect_results().unwrap();
    incumbent.goodbye().unwrap();
    let late = RemoteVerifier::connect_with(
        addr,
        0,
        BackoffConfig {
            max_attempts: 50,
            ..BackoffConfig::default()
        },
    )
    .unwrap();
    drop(late);
    let report = handle.shutdown().unwrap();
    assert!(report.ingress.shed_connections >= 1);
}

// ---------------------------------------------------------------------
// Misbehavior goodbye.
// ---------------------------------------------------------------------

/// Past the goodbye threshold the server closes with a typed protocol
/// fault, not a bare reset — and counts the close.
#[test]
fn misbehavior_limit_draws_typed_goodbye() {
    let handle = spawn_server(
        IngressConfig {
            max_batch: 4,
            quarantine_threshold: 4,
            goodbye_threshold: 8,
            ..IngressConfig::default()
        },
        1,
    );
    let m = material(400, 0);
    let (mut raw, _) = RawClient::handshake(handle.addr());
    let rel = raw.register(&m);
    // One oversize burst scores 8 — straight past goodbye.
    raw.send(
        &SubmitBatch {
            rel,
            first_tag: 0,
            pocs: vec![vec![0xEE; 8]; 5],
        }
        .to_frame(),
    );
    let frames = raw.drain_to_eof();
    let faults: Vec<_> = frames
        .iter()
        .filter(|f| f.kind == FrameKind::Error)
        .map(|f| Fault::decode(&f.payload).unwrap())
        .collect();
    assert!(faults.contains(&Fault::Protocol("batch exceeds server limit")));
    assert!(
        faults.contains(&Fault::Protocol("misbehavior limit exceeded")),
        "close must carry the typed goodbye, got {faults:?}"
    );
    let report = handle.shutdown().unwrap();
    assert_eq!(report.ingress.misbehavior_closes, 1);
    assert_eq!(report.ingress.submissions, 0);
}

// ---------------------------------------------------------------------
// Stalled reader: the per-connection debt cap, with exact counters.
// ---------------------------------------------------------------------

/// A client that submits far past its window and never reads verdicts
/// is capped at `window × debt_factor` in-flight; the overflow is shed
/// with BUSY. A normal client alongside is untouched. All counters are
/// exact because the whole burst is one frame.
#[test]
fn stalled_reader_is_capped_and_accounted_exactly() {
    const BURST: usize = 20;
    let handle = spawn_server(
        IngressConfig {
            window: 4,
            debt_factor: 2,
            max_batch: 64,
            ..IngressConfig::default()
        },
        1,
    );
    let addr = handle.addr();
    let stalled_mat = material(500, 1);
    let normal_mat = material(501, 2);

    // The stalled reader: 20 copies of one proof in a single batch
    // frame, then never reads. Debt cap = 4 × 2 = 8, so exactly 8 are
    // relayed (1 accept + 7 replays) and 12 shed.
    let (mut stalled, window) = RawClient::handshake(addr);
    assert_eq!(window, 4);
    let rel = stalled.register(&stalled_mat);
    let poc = stalled_mat.pocs[0].encode();
    stalled.send(
        &SubmitBatch {
            rel,
            first_tag: 0,
            pocs: vec![poc; BURST],
        }
        .to_frame(),
    );

    // A normal client alongside completes its full workload.
    let mut client = RemoteVerifier::connect(addr, 0).unwrap();
    let nrel = client
        .register(
            normal_mat.plan,
            normal_mat.edge.public.clone(),
            normal_mat.op.public.clone(),
        )
        .unwrap();
    for p in &normal_mat.pocs {
        client.submit(nrel, p).unwrap();
    }
    let results = client.collect_results().unwrap();
    assert_eq!(results.len(), 2);
    assert!(results.iter().all(|r| r.result.is_ok()));
    client.goodbye().unwrap();

    // Give the server time to resolve the stalled client's debt (its
    // verdicts land in the unread socket buffer), then stop.
    std::thread::sleep(std::time::Duration::from_millis(300));
    drop(stalled);
    let report = handle.shutdown().unwrap();
    let ing = &report.ingress;
    let debt_cap = (BURST - 12) as u64; // window 4 × debt_factor 2
    assert_eq!(ing.shed_overload, BURST as u64 - debt_cap);
    assert_eq!(ing.submissions, debt_cap + 2);
    assert_eq!(ing.accepted, 1 + 2, "one accept from the burst, two normal");
    assert_eq!(ing.rejected_malformed, debt_cap - 1, "burst copies replay");
    assert_eq!(
        ing.submissions,
        ing.verdicts + ing.orphaned_verdicts + report.service.unclaimed_results as u64
    );
}

// ---------------------------------------------------------------------
// Mid-batch connection death: exact orphan accounting (ISSUE item).
// ---------------------------------------------------------------------

/// A client submits a batch and dies before collecting anything. Every
/// one of its submissions must land in exactly one bucket — streamed
/// verdict, orphaned verdict, or unclaimed result — with nothing lost
/// and nothing double-counted.
#[test]
fn mid_batch_death_accounts_every_orphan() {
    const N: usize = 5;
    let handle = spawn_server(IngressConfig::default(), 1);
    let m = material(600, N);
    let mut client = RemoteVerifier::connect(handle.addr(), 0).unwrap();
    let rel = client
        .register(m.plan, m.edge.public.clone(), m.op.public.clone())
        .unwrap();
    let (_, count) = client.submit_batch(rel, &m.pocs).unwrap();
    assert_eq!(count, N);
    // Death, mid-batch: nothing collected, socket dropped.
    drop(client);
    std::thread::sleep(std::time::Duration::from_millis(300));
    let report = handle.shutdown().unwrap();
    let ing = &report.ingress;
    assert_eq!(ing.submissions, N as u64, "the whole batch was relayed");
    assert_eq!(
        ing.verdicts + ing.orphaned_verdicts + report.service.unclaimed_results as u64,
        N as u64,
        "every submission must be verdict, orphan, or unclaimed"
    );
    // The client was gone before anything could stream back.
    assert!(ing.orphaned_verdicts + report.service.unclaimed_results as u64 >= 1);
}

// ---------------------------------------------------------------------
// Server crash/restart between frames.
// ---------------------------------------------------------------------

/// The server dies with work outstanding; the client surfaces the same
/// typed `ResultsClosed` the in-process API uses, then re-registers
/// against a restarted server and completes the same proofs.
#[test]
fn server_restart_resubmits_and_completes() {
    let m = material(700, 2);
    let handle = spawn_server(IngressConfig::default(), 1);
    let mut client = RemoteVerifier::connect(handle.addr(), 0).unwrap();
    let rel = client
        .register(m.plan, m.edge.public.clone(), m.op.public.clone())
        .unwrap();
    for p in &m.pocs {
        client.submit(rel, p).unwrap();
    }
    // Crash: the server tears down mid-session. Whatever it admitted
    // before dying must still be accounted, not lost.
    let report = handle.shutdown().unwrap();
    assert_eq!(
        report.ingress.submissions,
        report.ingress.verdicts
            + report.ingress.orphaned_verdicts
            + report.service.unclaimed_results as u64
    );
    match client.collect_results() {
        // The shutdown raced the verdict stream and lost: typed close.
        Err(RemoteError::Service(ServiceError::ResultsClosed { .. })) => {}
        // ... or won: results complete before the goodbye landed.
        Ok(results) if results.len() == m.pocs.len() => return,
        other => panic!("expected ResultsClosed or full results, got {other:?}"),
    }

    // Restart: fresh server, fresh replay cache — resubmit everything.
    let handle = spawn_server(IngressConfig::default(), 1);
    let mut client = RemoteVerifier::connect(handle.addr(), 0).unwrap();
    let rel = client
        .register(m.plan, m.edge.public.clone(), m.op.public.clone())
        .unwrap();
    for p in &m.pocs {
        client.submit(rel, p).unwrap();
    }
    let results = client.collect_results().unwrap();
    assert_eq!(results.len(), m.pocs.len());
    assert!(results.iter().all(|r| r.result.is_ok()));
    client.goodbye().unwrap();
    handle.shutdown().unwrap();
}

// ---------------------------------------------------------------------
// Chaos: deterministic replay, and resets that don't hurt the server.
// ---------------------------------------------------------------------

fn chaos_seeds() -> Vec<u64> {
    match std::env::var("TLC_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        Some(seed) => vec![seed],
        None => vec![1, 2, 3],
    }
}

/// One slow-loris session's write-side chaos decisions, replayed twice
/// per seed against fresh servers, must be identical: same accepted-
/// write count, same bytes. (Read-side chunking depends on socket
/// timing, so only the write side is pinned.)
#[test]
fn chaos_seeds_replay_deterministically() {
    let m = material(800, 3);
    let spec = ChaosSpec {
        write_dribble: Some(5),
        read_dribble: None,
        reset_after: None,
    };
    let run = |seed: u64| {
        let handle = spawn_server(IngressConfig::default(), 1);
        let stream = TcpStream::connect(handle.addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        let chaos = ChaosStream::new(stream, spec, seed);
        let mut client = RemoteVerifier::handshake(chaos, 0, BackoffConfig::default()).unwrap();
        let rel = client
            .register(m.plan, m.edge.public.clone(), m.op.public.clone())
            .unwrap();
        for p in &m.pocs {
            client.submit(rel, p).unwrap();
        }
        let results = client.collect_results().unwrap();
        assert_eq!(results.len(), m.pocs.len());
        assert!(results.iter().all(|r| r.result.is_ok()));
        let stats = client.stream().stats();
        client.goodbye().unwrap();
        handle.shutdown().unwrap();
        (stats.writes, stats.bytes_tx)
    };
    for seed in chaos_seeds() {
        let a = run(seed);
        let b = run(seed);
        assert_eq!(a, b, "seed {seed} did not replay deterministically");
        // Dribble really happened: more writes than frames sent.
        assert!(a.0 > a.1 / 5, "write dribble was not exercised");
    }
}

/// A connection reset mid-frame (the chaos stream kills the session
/// partway through REGISTER) surfaces as a typed I/O error on the
/// client and leaves the server fully healthy for the next client.
#[test]
fn mid_frame_reset_leaves_server_healthy() {
    let m = material(900, 1);
    let handle = spawn_server(IngressConfig::default(), 1);
    let addr = handle.addr();

    // Budget of 40 bytes: past the 15-byte HELLO exchange, inside the
    // several-hundred-byte REGISTER frame.
    let stream = TcpStream::connect(addr).unwrap();
    let chaos = ChaosStream::new(
        stream,
        ChaosSpec {
            write_dribble: None,
            read_dribble: None,
            reset_after: Some(40),
        },
        7,
    );
    let mut doomed = RemoteVerifier::handshake(chaos, 0, BackoffConfig::default()).unwrap();
    let got = doomed.register(m.plan, m.edge.public.clone(), m.op.public.clone());
    match got {
        Err(RemoteError::Io(kind)) => {
            assert_eq!(kind, std::io::ErrorKind::ConnectionReset)
        }
        other => panic!("expected injected reset, got {other:?}"),
    }
    assert!(doomed.stream().is_reset());
    drop(doomed);

    // The server shrugs it off: a clean client completes normally.
    let mut client = RemoteVerifier::connect(addr, 0).unwrap();
    let rel = client
        .register(m.plan, m.edge.public.clone(), m.op.public.clone())
        .unwrap();
    client.submit(rel, &m.pocs[0]).unwrap();
    let results = client.collect_results().unwrap();
    assert_eq!(results.len(), 1);
    assert!(results[0].result.is_ok());
    client.goodbye().unwrap();
    let report = handle.shutdown().unwrap();
    assert_eq!(report.ingress.submissions, 1);
    assert_eq!(report.ingress.verdicts, 1);
}

/// Mixed-fleet soak driven by the chaos plan: `plan_roles` assigns
/// each slot a deterministic role; clean clients must complete their
/// workload no matter what the chaotic ones do.
#[test]
fn planned_chaos_fleet_never_starves_clean_clients() {
    use tlc_net::chaos::{plan_roles, ChaosRole};
    const FLEET: usize = 6;
    let seed = chaos_seeds()[0];
    let roles = plan_roles(seed, FLEET);
    assert!(roles.contains(&ChaosRole::Clean));
    let mats: Vec<Material> = (0..FLEET).map(|i| material(1000 + i as u64, 2)).collect();
    let handle = spawn_server(
        IngressConfig {
            window: 4,
            debt_factor: 2,
            ..IngressConfig::default()
        },
        2,
    );
    let addr = handle.addr();

    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for (i, role) in roles.iter().enumerate() {
            let m = &mats[i];
            let role = *role;
            joins.push(scope.spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                stream.set_nodelay(true).unwrap();
                let chaos = ChaosStream::new(stream, role.spec(), seed.wrapping_add(i as u64));
                let client = RemoteVerifier::handshake(chaos, 0, BackoffConfig::default());
                let mut client = match client {
                    Ok(c) => c,
                    // A reset role can die in the handshake; that is
                    // its job.
                    Err(RemoteError::Io(_)) => return,
                    Err(e) => panic!("unexpected handshake failure: {e:?}"),
                };
                let rel = match client.register(m.plan, m.edge.public.clone(), m.op.public.clone())
                {
                    Ok(rel) => rel,
                    Err(RemoteError::Io(_)) => return,
                    Err(e) => panic!("unexpected register failure: {e:?}"),
                };
                let mut submitted = 0usize;
                for p in &m.pocs {
                    match client.submit(rel, p) {
                        Ok(_) => submitted += 1,
                        Err(RemoteError::Io(_)) => return,
                        Err(e) => panic!("unexpected submit failure: {e:?}"),
                    }
                }
                if role == ChaosRole::StalledReader {
                    // Submits, never collects, then hangs up: the
                    // harness half of the role. The server's debt cap
                    // and orphan accounting absorb it.
                    std::thread::sleep(std::time::Duration::from_millis(100));
                    return;
                }
                match client.collect_results() {
                    Ok(results) => {
                        if role == ChaosRole::Clean {
                            assert_eq!(results.len(), submitted);
                            assert!(results.iter().all(|r| r.result.is_ok()));
                        }
                    }
                    Err(RemoteError::Io(_)) => (),
                    Err(e) => panic!("unexpected collect failure: {e:?}"),
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    });

    std::thread::sleep(std::time::Duration::from_millis(300));
    let report = handle.shutdown().unwrap();
    let ing = &report.ingress;
    assert_eq!(
        ing.submissions,
        ing.verdicts + ing.orphaned_verdicts + report.service.unclaimed_results as u64,
        "chaos fleet broke submission accounting"
    );
}
