//! Library stub for the bench crate; the real content lives in
//! `benches/` and `src/bin/`.

#![forbid(unsafe_code)]
