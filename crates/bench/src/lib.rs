pub fn placeholder() {}
