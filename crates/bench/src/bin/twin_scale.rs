//! Scale benchmark for the digital twin (DESIGN §13): runs the sharded
//! event-wheel simulator across population tiers and records the
//! numbers the million-session claim rests on — sessions/sec of
//! simulated churn, wheel events/sec, settled cycles/sec, and the
//! gap-accuracy-vs-scale curve (the aggregate legacy/TLC gap ratios
//! must not drift as the population grows, since the gap is a property
//! of the workload mix, not of how many sessions carry it).
//!
//! Results land in `BENCH_twin.json` in the working directory:
//!
//! ```text
//! twin_scale                       # full sweep: 10k, 100k, 1M sessions
//! twin_scale --tiers 10000         # CI smoke tier
//! twin_scale --backend heap        # cross-check the legacy scheduler
//! ```
//!
//! Exits nonzero if any tier leaks a stale event, under-populates, or
//! drifts its gap ratio more than `GAP_DRIFT_TOL` from the first tier.

use std::time::Instant;
use tlc_sim::experiments::twin::tier_config;
use tlc_sim::twin::{run_twin, NullSink};
use tlc_sim::wheel::WheelBackend;

/// Absolute drift in the aggregate gap ratio tolerated between the
/// smallest tier and any larger one.
const GAP_DRIFT_TOL: f64 = 0.02;

struct TierRun {
    sessions: usize,
    shards: usize,
    threads: usize,
    created: u64,
    peak_concurrent: u64,
    events: u64,
    cycles: u64,
    handovers: u64,
    elapsed_secs: f64,
    legacy_ratio: f64,
    tlc_ratio: f64,
    digest: u64,
}

impl TierRun {
    fn sessions_per_sec(&self) -> f64 {
        self.created as f64 / self.elapsed_secs.max(f64::MIN_POSITIVE)
    }
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.elapsed_secs.max(f64::MIN_POSITIVE)
    }
    fn cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.elapsed_secs.max(f64::MIN_POSITIVE)
    }
}

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiers: Vec<usize> = arg_value(&args, "--tiers")
        .map(|v| {
            v.split(',')
                .map(|t| t.trim().parse().expect("--tiers wants integers"))
                .collect()
        })
        .unwrap_or_else(|| vec![10_000, 100_000, 1_000_000]);
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x7717);
    let backend = match arg_value(&args, "--backend").as_deref() {
        Some("wheel") => WheelBackend::Wheel,
        Some("heap") => WheelBackend::Heap,
        Some(other) => {
            eprintln!("unknown --backend {other} (want wheel|heap)");
            std::process::exit(2);
        }
        None => WheelBackend::from_env(),
    };
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_twin.json".to_string());

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "twin_scale: backend={} seed={seed:#x} host_cpus={host_cpus} tiers={tiers:?}",
        backend.name()
    );

    let mut runs: Vec<TierRun> = Vec::new();
    let mut failures = 0u32;
    for &sessions in &tiers {
        let mut cfg = tier_config(sessions, seed);
        cfg.backend = backend;
        let start = Instant::now();
        let r = run_twin(&cfg, &mut NullSink);
        let elapsed = start.elapsed().as_secs_f64();

        if r.stale_events != 0 {
            eprintln!("tier {sessions}: {} stale events (want 0)", r.stale_events);
            failures += 1;
        }
        if r.peak_concurrent < sessions as u64 {
            eprintln!(
                "tier {sessions}: peak concurrency {} never reached the target",
                r.peak_concurrent
            );
            failures += 1;
        }
        let run = TierRun {
            sessions,
            shards: cfg.shards,
            threads: cfg.threads,
            created: r.sessions_created,
            peak_concurrent: r.peak_concurrent,
            events: r.events_fired,
            cycles: r.cycles_settled,
            handovers: r.handovers,
            elapsed_secs: elapsed,
            legacy_ratio: r.sweep.legacy_gap_ratio(),
            tlc_ratio: r.sweep.tlc_gap_ratio(),
            digest: r.digest,
        };
        println!(
            "tier {sessions}: peak {} sessions, {} events in {elapsed:.2} s \
             -> {:.0} events/s, {:.0} sessions/s, {:.0} cycles/s, \
             legacy ε {:.2}% TLC ε {:.3}% (shards {}, threads {})",
            run.peak_concurrent,
            run.events,
            run.events_per_sec(),
            run.sessions_per_sec(),
            run.cycles_per_sec(),
            run.legacy_ratio * 100.0,
            run.tlc_ratio * 100.0,
            run.shards,
            run.threads,
        );
        runs.push(run);
    }

    // Gap accuracy vs scale: the charging model's error must be a
    // property of the traffic mix, stable across population tiers.
    if let Some(base) = runs.first() {
        for r in &runs[1..] {
            let drift = (r.legacy_ratio - base.legacy_ratio).abs();
            if drift > GAP_DRIFT_TOL {
                eprintln!(
                    "tier {}: legacy gap ratio drifted {drift:.4} from the {} tier",
                    r.sessions, base.sessions
                );
                failures += 1;
            }
        }
    }

    write_json(&out_path, backend, seed, host_cpus, &runs);
    if failures > 0 {
        eprintln!("twin_scale: {failures} check(s) failed");
        std::process::exit(1);
    }
}

/// Writes the tier sweep as JSON (hand-rolled, like the other bench
/// bins: the report shape is the contract, not a serde schema).
fn write_json(path: &str, backend: WheelBackend, seed: u64, host_cpus: usize, runs: &[TierRun]) {
    let base = runs.first();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"twin_scale\",\n");
    out.push_str(&format!("  \"backend\": \"{}\",\n", backend.name()));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    out.push_str("  \"tiers\": [\n");
    for (k, r) in runs.iter().enumerate() {
        let drift = base.map_or(0.0, |b| (r.legacy_ratio - b.legacy_ratio).abs());
        out.push_str(&format!(
            "    {{\"host_cpus\": {host_cpus}, \
             \"sessions\": {}, \"shards\": {}, \"threads\": {}, \
             \"sessions_created\": {}, \"peak_concurrent\": {}, \
             \"events\": {}, \"cycles\": {}, \"handovers\": {}, \
             \"elapsed_secs\": {:.3}, \"sessions_per_sec\": {:.1}, \
             \"events_per_sec\": {:.1}, \"cycles_per_sec\": {:.1}, \
             \"legacy_gap_ratio\": {:.6}, \"tlc_gap_ratio\": {:.6}, \
             \"gap_drift_vs_base\": {:.6}, \"digest\": {}}}{}\n",
            r.sessions,
            r.shards,
            r.threads,
            r.created,
            r.peak_concurrent,
            r.events,
            r.cycles,
            r.handovers,
            r.elapsed_secs,
            r.sessions_per_sec(),
            r.events_per_sec(),
            r.cycles_per_sec(),
            r.legacy_ratio,
            r.tlc_ratio,
            drift,
            r.digest,
            if k + 1 == runs.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, &out).expect("write BENCH_twin.json");
    println!("wrote {path}");
}
