//! CI smoke check for the batched verification plane: bounded iteration
//! counts, no criterion baselines. Exercises the interleaved-lane RSA
//! batch path, checks the batched results bit-for-bit against the scalar
//! path, and prints the measured speedups. Exits nonzero on any mismatch.

use std::time::Instant;
use tlc_core::messages::{Nonce, PocMsg, NONCE_LEN};
use tlc_core::plan::DataPlan;
use tlc_core::protocol::{run_negotiation, Endpoint};
use tlc_core::strategy::{Knowledge, OptimalStrategy, Role};
use tlc_core::verify::service::VerifierService;
use tlc_core::verify::{verify_poc, verify_poc_batch};
use tlc_crypto::pkcs1::{self, VerifyRequest};
use tlc_crypto::{sha256, KeyPair};

/// Signature-level check: `verify_batch` vs scalar `verify_prehashed`,
/// returning (scalar ns/op, batch ns/op at batch size 128).
fn signature_level(iters: usize) -> (f64, f64) {
    let kp = KeyPair::generate_for_seed(1024, 0x57_0CE).expect("keygen");
    let msgs: Vec<Vec<u8>> = (0..128usize)
        .map(|i| format!("datavolumeDownlink={}", 33_604_032 + i).into_bytes())
        .collect();
    let sigs: Vec<Vec<u8>> = msgs
        .iter()
        .map(|m| pkcs1::sign(&kp.private, m).expect("sign"))
        .collect();
    let reqs: Vec<VerifyRequest<'_>> = msgs
        .iter()
        .zip(&sigs)
        .map(|(m, s)| VerifyRequest {
            key: &kp.public,
            digest: sha256::digest(m),
            signature: s,
        })
        .collect();

    // Correctness before speed: batched == scalar on every element,
    // including a corrupted one.
    let mut bad_sig = sigs[5].clone();
    bad_sig[17] ^= 0x08;
    let mut check_reqs: Vec<VerifyRequest<'_>> = msgs
        .iter()
        .zip(&sigs)
        .map(|(m, s)| VerifyRequest {
            key: &kp.public,
            digest: sha256::digest(m),
            signature: s,
        })
        .collect();
    check_reqs[5].signature = &bad_sig;
    let batch = pkcs1::verify_batch(&check_reqs);
    for (i, r) in batch.iter().enumerate() {
        let scalar = pkcs1::verify_prehashed(
            check_reqs[i].key,
            &check_reqs[i].digest,
            check_reqs[i].signature,
        );
        assert_eq!(*r, scalar, "batch/scalar divergence at element {i}");
    }
    assert!(batch[5].is_err(), "corrupted signature must fail");
    assert!(batch.iter().enumerate().all(|(i, r)| i == 5 || r.is_ok()));

    let t0 = Instant::now();
    for _ in 0..iters {
        for r in &reqs {
            pkcs1::verify_prehashed(r.key, &r.digest, r.signature).expect("valid");
        }
    }
    let scalar_ns = t0.elapsed().as_nanos() as f64 / (iters * reqs.len()) as f64;

    let t0 = Instant::now();
    for _ in 0..iters {
        let out = pkcs1::verify_batch(&reqs);
        assert!(out.iter().all(|r| r.is_ok()));
    }
    let batch_ns = t0.elapsed().as_nanos() as f64 / (iters * reqs.len()) as f64;
    (scalar_ns, batch_ns)
}

fn negotiate(n: usize, ek: &KeyPair, ok: &KeyPair, plan: &DataPlan) -> Vec<PocMsg> {
    (0..n)
        .map(|i| {
            let mut ne: Nonce = [0; NONCE_LEN];
            ne[..8].copy_from_slice(&(i as u64).to_be_bytes());
            let mut no = ne;
            no[15] = 1;
            let mut e = Endpoint::new(
                Role::Edge,
                *plan,
                Knowledge {
                    role: Role::Edge,
                    own_truth: 1_000_000 + i as u64,
                    inferred_peer_truth: 900_000,
                },
                Box::new(OptimalStrategy),
                ek.private.clone(),
                ok.public.clone(),
                ne,
                16,
            );
            let mut o = Endpoint::new(
                Role::Operator,
                *plan,
                Knowledge {
                    role: Role::Operator,
                    own_truth: 900_000,
                    inferred_peer_truth: 1_000_000 + i as u64,
                },
                Box::new(OptimalStrategy),
                ok.private.clone(),
                ek.public.clone(),
                no,
                16,
            );
            run_negotiation(&mut o, &mut e).unwrap().0
        })
        .collect()
}

/// PoC-level check: `verify_poc_batch` matches `verify_poc` element for
/// element on a batch with one tampered proof, then times both paths.
fn poc_level(iters: usize) -> (f64, f64) {
    let plan = DataPlan::paper_default();
    let ek = KeyPair::generate_for_seed(1024, 0xED9E).expect("keygen");
    let ok = KeyPair::generate_for_seed(1024, 0xCE11).expect("keygen");
    let proofs = negotiate(32, &ek, &ok, &plan);

    let mut tampered = proofs[3].clone();
    tampered.signature[9] ^= 0x40;
    let mut refs: Vec<&PocMsg> = proofs.iter().collect();
    refs[3] = &tampered;
    let batch = verify_poc_batch(&refs, &plan, &ek.public, &ok.public);
    for (i, r) in batch.iter().enumerate() {
        let sequential = verify_poc(refs[i], &plan, &ek.public, &ok.public);
        assert_eq!(
            r.is_ok(),
            sequential.is_ok(),
            "PoC batch/sequential divergence at element {i}"
        );
    }
    assert!(batch[3].is_err(), "tampered PoC must fail");

    let refs: Vec<&PocMsg> = proofs.iter().collect();
    let t0 = Instant::now();
    for _ in 0..iters {
        for p in &refs {
            verify_poc(p, &plan, &ek.public, &ok.public).expect("valid");
        }
    }
    let scalar_ns = t0.elapsed().as_nanos() as f64 / (iters * refs.len()) as f64;

    let t0 = Instant::now();
    for _ in 0..iters {
        let out = verify_poc_batch(&refs, &plan, &ek.public, &ok.public);
        assert!(out.iter().all(|r| r.is_ok()));
    }
    let batch_ns = t0.elapsed().as_nanos() as f64 / (iters * refs.len()) as f64;
    (scalar_ns, batch_ns)
}

/// Service-level smoke: the pipelined sharded service accepts a batch
/// across relationships and reports every proof exactly once.
fn service_level() -> f64 {
    let plan = DataPlan::paper_default();
    let rels: Vec<(KeyPair, KeyPair, Vec<PocMsg>)> = (0..2u64)
        .map(|i| {
            let e = KeyPair::generate_for_seed(1024, 0x5E00 + i * 2).expect("keygen");
            let o = KeyPair::generate_for_seed(1024, 0x5E01 + i * 2).expect("keygen");
            let proofs = negotiate(16, &e, &o, &plan);
            (e, o, proofs)
        })
        .collect();
    let total: usize = rels.iter().map(|(_, _, p)| p.len()).sum();
    let t0 = Instant::now();
    let mut svc = VerifierService::new(2);
    for (e, o, proofs) in &rels {
        let rel = svc
            .register(plan, e.public.clone(), o.public.clone())
            .unwrap();
        svc.submit_batch(rel, proofs.iter().cloned()).unwrap();
    }
    let results = svc.collect_results().unwrap();
    assert_eq!(results.len(), total, "every proof reported exactly once");
    assert!(results.iter().all(|r| r.result.is_ok()));
    let report = svc.finish();
    assert_eq!(report.accepted, total as u64);
    assert!(report.batches >= 1, "service must flush signature batches");
    total as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let (scalar_ns, batch_ns) = signature_level(8);
    println!(
        "signature level: scalar {scalar_ns:.0} ns/verify, batched {batch_ns:.0} ns/verify, speedup {:.2}x",
        scalar_ns / batch_ns
    );
    assert!(batch_ns < scalar_ns, "batched path must not be slower");

    let (poc_scalar_ns, poc_batch_ns) = poc_level(4);
    println!(
        "PoC level: sequential {poc_scalar_ns:.0} ns/PoC, batched {poc_batch_ns:.0} ns/PoC, speedup {:.2}x",
        poc_scalar_ns / poc_batch_ns
    );
    assert!(
        poc_batch_ns < poc_scalar_ns,
        "batched PoC path must not be slower"
    );

    let per_sec = service_level();
    println!("service level: 2 workers, 32 proofs -> {per_sec:.0} PoCs/sec submit->drain");
}
