//! Emits the committed `BENCH_crypto.json` perf numbers: single-thread
//! RSA-1024 sign/verify latency, full-PoC verification cost, and
//! multi-worker throughput through the sharded
//! [`tlc_core::verify::service::VerifierService`] against the paper's
//! 230K PoCs/hour figure (§5.3.4).
//!
//! ```sh
//! cargo run --release -p tlc-bench --bin crypto_baseline
//! ```
//!
//! Prints a JSON document to stdout; redirect it into `BENCH_crypto.json`
//! at the repository root to refresh the committed numbers.
//!
//! Methodology: every latency is reported as the minimum of several
//! timed batches ("min-of-batches"). This host's wall clock is noisy
//! (±10–20% run to run); the minimum is the stablest estimator of the
//! true cost, and the mean is reported alongside for comparison with the
//! pre-optimization baseline, which was recorded as a plain mean.

use std::time::Instant;
use tlc_core::messages::{Nonce, PocMsg, NONCE_LEN};
use tlc_core::plan::DataPlan;
use tlc_core::protocol::{run_negotiation, Endpoint};
use tlc_core::strategy::{Knowledge, OptimalStrategy, Role};
use tlc_core::verify::service::VerifierService;
use tlc_core::verify::{verify_poc, verify_poc_batch};
use tlc_crypto::montgomery::MontgomeryCtx;
use tlc_crypto::{pkcs1, KeyPair};

/// Pre-optimization reference (mean methodology, same host class),
/// recorded before the Montgomery caching + kernel work landed.
const PRE_PR_SIGN_NS: f64 = 221_487.0;
const PRE_PR_VERIFY_NS: f64 = 25_369.0;
const PRE_PR_POC_VERIFY_NS: f64 = 90_939.0;

/// Minimum per-iteration latency over `batches` timed batches.
fn min_ns<F: FnMut()>(batches: usize, iters: usize, mut f: F) -> f64 {
    f(); // warmup
    (0..batches)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_nanos() as f64 / iters as f64
        })
        .fold(f64::INFINITY, f64::min)
}

/// Mean per-iteration latency (the pre-PR baseline's methodology).
fn mean_ns<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    f();
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

fn make_proofs(n: usize, ek: &KeyPair, ok: &KeyPair, plan: &DataPlan) -> Vec<PocMsg> {
    (0..n)
        .map(|i| {
            let mut ne: Nonce = [0; NONCE_LEN];
            ne[..8].copy_from_slice(&(i as u64).to_be_bytes());
            let mut no = ne;
            no[15] = 1;
            let mut e = Endpoint::new(
                Role::Edge,
                *plan,
                Knowledge {
                    role: Role::Edge,
                    own_truth: 1_000_000 + i as u64,
                    inferred_peer_truth: 900_000,
                },
                Box::new(OptimalStrategy),
                ek.private.clone(),
                ok.public.clone(),
                ne,
                16,
            );
            let mut o = Endpoint::new(
                Role::Operator,
                *plan,
                Knowledge {
                    role: Role::Operator,
                    own_truth: 900_000,
                    inferred_peer_truth: 1_000_000 + i as u64,
                },
                Box::new(OptimalStrategy),
                ok.private.clone(),
                ek.public.clone(),
                no,
                16,
            );
            run_negotiation(&mut o, &mut e).unwrap().0
        })
        .collect()
}

fn main() {
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let kp = KeyPair::generate_for_seed(1024, 0xC0FFEE).expect("keygen");
    let msg = vec![0xA5u8; 199];
    let sig = pkcs1::sign(&kp.private, &msg).expect("sign");

    let sign_ns = min_ns(5, 100, || {
        std::hint::black_box(pkcs1::sign(&kp.private, &msg).unwrap());
    });
    let sign_mean_ns = mean_ns(200, || {
        std::hint::black_box(pkcs1::sign(&kp.private, &msg).unwrap());
    });
    let verify_ns = min_ns(5, 1000, || {
        pkcs1::verify(&kp.public, &msg, &sig).unwrap();
    });
    let verify_mean_ns = mean_ns(2000, || {
        pkcs1::verify(&kp.public, &msg, &sig).unwrap();
    });

    // Full PoC verification (3 signature checks + replay of the pricing).
    let plan = DataPlan::paper_default();
    let ek = KeyPair::generate_for_seed(1024, 201).expect("keygen");
    let ok = KeyPair::generate_for_seed(1024, 202).expect("keygen");
    let proofs = make_proofs(64, &ek, &ok, &plan);
    let poc_verify_ns = min_ns(5, 4, || {
        for p in &proofs {
            verify_poc(p, &plan, &ek.public, &ok.public).unwrap();
        }
    }) / proofs.len() as f64;
    let single_thread_pocs_per_hour = 3.6e12 / poc_verify_ns;

    // Batch-size sensitivity: per-PoC cost of the batched verification
    // entry point at 1/8/32/128 proofs per call. The same 64 proofs are
    // cycled, so every batch carries real, distinct signatures.
    let batch_kernel = MontgomeryCtx::new(&ek.public.n).batch_kernel();
    let mut batch_rows = Vec::new();
    for batch in [1usize, 8, 32, 128] {
        let refs: Vec<&PocMsg> = (0..batch).map(|i| &proofs[i % proofs.len()]).collect();
        let reps = (256 / batch).max(2);
        let per_poc_ns = min_ns(5, reps, || {
            let r = verify_poc_batch(&refs, &plan, &ek.public, &ok.public);
            assert!(r.iter().all(|v| v.is_ok()));
        }) / batch as f64;
        batch_rows.push((batch, per_poc_ns, poc_verify_ns / per_poc_ns));
    }

    // Multi-worker scaling through the sharded verification service:
    // 4 relationships × 16 proofs, full lifecycle (spawn, register,
    // submit, drain, join) per repetition, best of 5 repetitions.
    let rels: Vec<(KeyPair, KeyPair, Vec<PocMsg>)> = (0..4u64)
        .map(|i| {
            let e = KeyPair::generate_for_seed(1024, 300 + i * 2).expect("keygen");
            let o = KeyPair::generate_for_seed(1024, 301 + i * 2).expect("keygen");
            let proofs = make_proofs(16, &e, &o, &plan);
            (e, o, proofs)
        })
        .collect();
    let total: usize = rels.iter().map(|(_, _, p)| p.len()).sum();
    let mut scaling = Vec::new();
    for workers in [1usize, 2, 4] {
        let best_secs = (0..5)
            .map(|_| {
                let t0 = Instant::now();
                let mut svc = VerifierService::new(workers);
                for (e, o, proofs) in &rels {
                    let rel = svc
                        .register(plan, e.public.clone(), o.public.clone())
                        .unwrap();
                    svc.submit_batch(rel, proofs.iter().cloned()).unwrap();
                }
                let results = svc.collect_results().unwrap();
                assert!(results.iter().all(|r| r.result.is_ok()));
                svc.finish();
                t0.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min);
        scaling.push((workers, total as f64 / best_secs));
    }

    println!("{{");
    println!("  \"host_cpus\": {host_cpus},");
    println!("  \"methodology\": \"min over timed batches; *_mean_ns fields use the pre-PR mean methodology\",");
    println!("  \"pre_pr\": {{");
    println!("    \"rsa1024_sign_ns\": {PRE_PR_SIGN_NS:.0},");
    println!("    \"rsa1024_verify_ns\": {PRE_PR_VERIFY_NS:.0},");
    println!("    \"poc_verify_ns\": {PRE_PR_POC_VERIFY_NS:.0}");
    println!("  }},");
    println!("  \"rsa1024_sign_ns\": {sign_ns:.0},");
    println!("  \"rsa1024_sign_mean_ns\": {sign_mean_ns:.0},");
    println!("  \"rsa1024_verify_ns\": {verify_ns:.0},");
    println!("  \"rsa1024_verify_mean_ns\": {verify_mean_ns:.0},");
    println!("  \"poc_verify_ns\": {poc_verify_ns:.0},");
    println!(
        "  \"sign_plus_verify_speedup_vs_pre_pr\": {:.2},",
        (PRE_PR_SIGN_NS + PRE_PR_VERIFY_NS) / (sign_mean_ns + verify_mean_ns)
    );
    println!("  \"single_thread_pocs_per_hour\": {single_thread_pocs_per_hour:.0},");
    println!("  \"paper_pocs_per_hour\": 230000,");
    println!("  \"batch_kernel\": \"{batch_kernel}\",");
    println!("  \"poc_verify_batched\": {{");
    for (i, (batch, ns, speedup)) in batch_rows.iter().enumerate() {
        let comma = if i + 1 == batch_rows.len() { "" } else { "," };
        println!(
            "    \"batch_{batch}\": {{ \"per_poc_ns\": {ns:.0}, \"speedup_vs_sequential\": {speedup:.2} }}{comma}"
        );
    }
    println!("  }},");
    println!("  \"service_note\": \"worker rows beyond host_cpus measure pipelining over shared cores, not parallel speedup\",");
    println!("  \"service_pocs_per_sec\": {{");
    for (i, (w, per_sec)) in scaling.iter().enumerate() {
        let comma = if i + 1 == scaling.len() { "" } else { "," };
        println!(
            "    \"{w}_workers\": {{ \"pocs_per_sec\": {per_sec:.0}, \"host_cpus\": {host_cpus} }}{comma}"
        );
    }
    println!("  }}");
    println!("}}");
}
