//! CI smoke benchmark for the TCP ingress: measures verified PoCs/sec
//! through a real socket against the in-process service on the same
//! proof set, and checks the verdict sequences agree bit-for-bit.
//! Exits nonzero on any divergence. Bounded iteration counts, no
//! criterion baselines; scale with `TLC_BENCH_POCS` (proofs per
//! relationship, default 40). Pass `--metrics` to dump the final
//! ingress report in Prometheus text exposition format after the
//! summary lines (for scraping CI runs into dashboards).

use std::time::Instant;
use tlc_core::messages::{PocMsg, NONCE_LEN};
use tlc_core::plan::DataPlan;
use tlc_core::protocol::{run_negotiation, Endpoint};
use tlc_core::strategy::{Knowledge, OptimalStrategy, Role};
use tlc_core::verify::remote::{IngressConfig, IngressServer, RemoteVerifier};
use tlc_core::verify::service::{ServiceConfig, VerifierService};
use tlc_crypto::{KeyPair, PublicKey};

const RELATIONSHIPS: u64 = 4;

struct Rel {
    edge_pub: PublicKey,
    op_pub: PublicKey,
    proofs: Vec<PocMsg>,
}

fn nonce(id: u64, cycle: u64, side: u8) -> [u8; NONCE_LEN] {
    let mut n = [side; NONCE_LEN];
    n[..8].copy_from_slice(&id.to_be_bytes());
    n[8..16].copy_from_slice(&cycle.to_be_bytes());
    n
}

fn build_rel(id: u64, cycles: usize) -> Rel {
    let plan = DataPlan::paper_default();
    let edge = KeyPair::generate_for_seed(1024, 31_000 + id * 2).expect("keygen");
    let op = KeyPair::generate_for_seed(1024, 31_001 + id * 2).expect("keygen");
    let mut proofs = Vec::with_capacity(cycles);
    for c in 0..cycles {
        let sent = 2_000_000 + id * 1000 + c as u64;
        let mut e = Endpoint::new(
            Role::Edge,
            plan,
            Knowledge {
                role: Role::Edge,
                own_truth: sent,
                inferred_peer_truth: sent - 40_000,
            },
            Box::new(OptimalStrategy),
            edge.private.clone(),
            op.public.clone(),
            nonce(id, c as u64, 0),
            16,
        );
        let mut o = Endpoint::new(
            Role::Operator,
            plan,
            Knowledge {
                role: Role::Operator,
                own_truth: sent - 40_000,
                inferred_peer_truth: sent,
            },
            Box::new(OptimalStrategy),
            op.private.clone(),
            edge.public.clone(),
            nonce(id, c as u64, 1),
            16,
        );
        proofs.push(run_negotiation(&mut o, &mut e).expect("negotiation").0);
    }
    Rel {
        edge_pub: edge.public,
        op_pub: op.public,
        proofs,
    }
}

fn main() {
    let metrics = std::env::args().any(|a| a == "--metrics");
    let cycles: usize = std::env::var("TLC_BENCH_POCS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|n| *n > 0)
        .unwrap_or(40);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(2);
    let plan = DataPlan::paper_default();

    println!("building {RELATIONSHIPS} relationships × {cycles} cycles…");
    let rels: Vec<Rel> = (0..RELATIONSHIPS).map(|id| build_rel(id, cycles)).collect();
    let total = RELATIONSHIPS as usize * cycles;

    // ── In-process baseline ─────────────────────────────────────────────
    let mut svc = VerifierService::new(workers);
    let start = Instant::now();
    for r in &rels {
        let rel = svc
            .register(plan, r.edge_pub.clone(), r.op_pub.clone())
            .expect("register");
        svc.submit_batch(rel, r.proofs.iter().cloned())
            .expect("submit");
    }
    let mut local = svc.collect_results().expect("collect");
    let local_elapsed = start.elapsed();
    svc.finish();
    local.sort_by_key(|r| r.tag);

    // ── Over TCP ────────────────────────────────────────────────────────
    let server = IngressServer::bind(
        ("127.0.0.1", 0),
        ServiceConfig {
            workers,
            ..ServiceConfig::default()
        },
        IngressConfig::default(),
    )
    .expect("bind");
    let handle = server.spawn().expect("spawn ingress");
    let mut client = RemoteVerifier::connect(handle.addr(), 0).expect("connect");
    let start = Instant::now();
    for r in &rels {
        let rel = client
            .register(plan, r.edge_pub.clone(), r.op_pub.clone())
            .expect("register");
        client.submit_batch(rel, r.proofs.iter()).expect("submit");
    }
    let mut remote = client.collect_results().expect("collect");
    let remote_elapsed = start.elapsed();
    client.goodbye().expect("goodbye");
    let report = handle.shutdown().expect("report");
    remote.sort_by_key(|r| r.tag);

    assert_eq!(local.len(), total);
    assert_eq!(remote.len(), total);
    for (l, r) in local.iter().zip(remote.iter()) {
        assert_eq!(l.tag, r.tag, "tag sequence diverged");
        assert_eq!(l.result, r.result, "verdict diverged at tag {}", l.tag);
    }
    assert_eq!(report.ingress.submissions, total as u64);
    assert_eq!(report.ingress.orphaned_verdicts, 0);

    let local_rate = total as f64 / local_elapsed.as_secs_f64();
    let remote_rate = total as f64 / remote_elapsed.as_secs_f64();
    println!(
        "in-process: {total} PoCs in {:.3} s -> {:.0}/s ({:.0}/hour)",
        local_elapsed.as_secs_f64(),
        local_rate,
        local_rate * 3600.0
    );
    println!(
        "over TCP:   {total} PoCs in {:.3} s -> {:.0}/s ({:.0}/hour)",
        remote_elapsed.as_secs_f64(),
        remote_rate,
        remote_rate * 3600.0
    );
    println!(
        "ingress overhead: {:.1}% (pauses: {}, sheds: {})",
        (local_rate / remote_rate - 1.0) * 100.0,
        report.ingress.pauses,
        report.ingress.shed_overload
    );
    if metrics {
        print!("{}", report.to_prometheus());
    }
}
