//! CI smoke benchmark for the TCP ingress: measures verified PoCs/sec
//! through a real socket against the in-process service on the same
//! proof set, and checks the verdict sequences agree bit-for-bit.
//! Exits nonzero on any divergence. Bounded iteration counts, no
//! criterion baselines; scale with `TLC_BENCH_POCS` (proofs per
//! relationship, default 40). Pass `--metrics` to dump the final
//! ingress report in Prometheus text exposition format after the
//! summary lines (for scraping CI runs into dashboards).
//!
//! # C100K mode
//!
//! With `--conns N` the binary switches to the connection-scale bench
//! behind DESIGN.md §12: a child process (its own fd budget) holds `N`
//! idle handshaken connections against the server, the full table is
//! soaked idle for `--duration` seconds, then a foreground client
//! measures PoCs/sec over the pre-generated proof set — sweeping shard
//! counts 1..=`--shards` (powers of two). Results land in
//! `BENCH_ingress.json` in the working directory:
//!
//! ```text
//! ingress_throughput --backend epoll --conns 10000 --shards 4 --duration 3
//! ```
//!
//! `--backend {poll,epoll}` selects the server loop in both modes
//! (default: the `TLC_INGRESS_BACKEND` env, i.e. legacy poll).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};
use tlc_core::messages::{PocMsg, NONCE_LEN};
use tlc_core::plan::DataPlan;
use tlc_core::protocol::{run_negotiation, Endpoint};
use tlc_core::strategy::{Knowledge, OptimalStrategy, Role};
use tlc_core::verify::remote::codec::{Hello, MAGIC, PROTOCOL_VERSION};
use tlc_core::verify::remote::{IngressBackend, IngressConfig, IngressServer, RemoteVerifier};
use tlc_core::verify::service::{ServiceConfig, VerifierService};
use tlc_crypto::{KeyPair, PublicKey};
use tlc_net::wire::{FrameDecoder, FrameKind};

const RELATIONSHIPS: u64 = 4;

struct Rel {
    edge_pub: PublicKey,
    op_pub: PublicKey,
    proofs: Vec<PocMsg>,
}

fn nonce(id: u64, cycle: u64, side: u8) -> [u8; NONCE_LEN] {
    let mut n = [side; NONCE_LEN];
    n[..8].copy_from_slice(&id.to_be_bytes());
    n[8..16].copy_from_slice(&cycle.to_be_bytes());
    n
}

fn build_rel(id: u64, cycles: usize) -> Rel {
    let plan = DataPlan::paper_default();
    let edge = KeyPair::generate_for_seed(1024, 31_000 + id * 2).expect("keygen");
    let op = KeyPair::generate_for_seed(1024, 31_001 + id * 2).expect("keygen");
    let mut proofs = Vec::with_capacity(cycles);
    for c in 0..cycles {
        let sent = 2_000_000 + id * 1000 + c as u64;
        let mut e = Endpoint::new(
            Role::Edge,
            plan,
            Knowledge {
                role: Role::Edge,
                own_truth: sent,
                inferred_peer_truth: sent - 40_000,
            },
            Box::new(OptimalStrategy),
            edge.private.clone(),
            op.public.clone(),
            nonce(id, c as u64, 0),
            16,
        );
        let mut o = Endpoint::new(
            Role::Operator,
            plan,
            Knowledge {
                role: Role::Operator,
                own_truth: sent - 40_000,
                inferred_peer_truth: sent,
            },
            Box::new(OptimalStrategy),
            op.private.clone(),
            edge.public.clone(),
            nonce(id, c as u64, 1),
            16,
        );
        proofs.push(run_negotiation(&mut o, &mut e).expect("negotiation").0);
    }
    Rel {
        edge_pub: edge.public,
        op_pub: op.public,
        proofs,
    }
}

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();

    // Hidden child mode: hold idle connections and report.
    if let Some(addr) = arg_value(&args, "--hold") {
        let n: usize = arg_value(&args, "--hold-count")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        hold_child(addr.parse().expect("hold addr"), n);
        return;
    }

    let metrics = args.iter().any(|a| a == "--metrics");
    let backend = match arg_value(&args, "--backend").as_deref() {
        Some("epoll") => Some(IngressBackend::Epoll),
        Some("poll") => Some(IngressBackend::Poll),
        Some(other) => {
            eprintln!("unknown --backend {other} (want poll|epoll)");
            std::process::exit(2);
        }
        None => None,
    };

    if let Some(conns) = arg_value(&args, "--conns").and_then(|v| v.parse::<usize>().ok()) {
        let max_shards: usize = arg_value(&args, "--shards")
            .and_then(|v| v.parse().ok())
            .unwrap_or(4)
            .max(1);
        let duration = Duration::from_secs_f64(
            arg_value(&args, "--duration")
                .and_then(|v| v.parse().ok())
                .unwrap_or(3.0),
        );
        let backend = backend.unwrap_or(IngressBackend::Epoll);
        c100k_bench(conns, max_shards, duration, backend);
        return;
    }

    conformance_bench(metrics, backend);
}

// ── Conformance smoke (the original bench) ─────────────────────────────

fn conformance_bench(metrics: bool, backend: Option<IngressBackend>) {
    let cycles: usize = std::env::var("TLC_BENCH_POCS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|n| *n > 0)
        .unwrap_or(40);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(2);
    let plan = DataPlan::paper_default();

    println!("building {RELATIONSHIPS} relationships × {cycles} cycles…");
    let rels: Vec<Rel> = (0..RELATIONSHIPS).map(|id| build_rel(id, cycles)).collect();
    let total = RELATIONSHIPS as usize * cycles;

    // ── In-process baseline ─────────────────────────────────────────────
    let mut svc = VerifierService::new(workers);
    let start = Instant::now();
    for r in &rels {
        let rel = svc
            .register(plan, r.edge_pub.clone(), r.op_pub.clone())
            .expect("register");
        svc.submit_batch(rel, r.proofs.iter().cloned())
            .expect("submit");
    }
    let mut local = svc.collect_results().expect("collect");
    let local_elapsed = start.elapsed();
    svc.finish();
    local.sort_by_key(|r| r.tag);

    // ── Over TCP ────────────────────────────────────────────────────────
    let mut config = IngressConfig::default();
    if let Some(b) = backend {
        config.backend = b;
    }
    let server = IngressServer::bind(
        ("127.0.0.1", 0),
        ServiceConfig {
            workers,
            ..ServiceConfig::default()
        },
        config,
    )
    .expect("bind");
    let handle = server.spawn().expect("spawn ingress");
    let mut client = RemoteVerifier::connect(handle.addr(), 0).expect("connect");
    let start = Instant::now();
    for r in &rels {
        let rel = client
            .register(plan, r.edge_pub.clone(), r.op_pub.clone())
            .expect("register");
        client.submit_batch(rel, r.proofs.iter()).expect("submit");
    }
    let mut remote = client.collect_results().expect("collect");
    let remote_elapsed = start.elapsed();
    client.goodbye().expect("goodbye");
    let report = handle.shutdown().expect("report");
    remote.sort_by_key(|r| r.tag);

    assert_eq!(local.len(), total);
    assert_eq!(remote.len(), total);
    for (l, r) in local.iter().zip(remote.iter()) {
        assert_eq!(l.tag, r.tag, "tag sequence diverged");
        assert_eq!(l.result, r.result, "verdict diverged at tag {}", l.tag);
    }
    assert_eq!(report.ingress.submissions, total as u64);
    assert_eq!(report.ingress.orphaned_verdicts, 0);

    let local_rate = total as f64 / local_elapsed.as_secs_f64();
    let remote_rate = total as f64 / remote_elapsed.as_secs_f64();
    println!(
        "in-process: {total} PoCs in {:.3} s -> {:.0}/s ({:.0}/hour)",
        local_elapsed.as_secs_f64(),
        local_rate,
        local_rate * 3600.0
    );
    println!(
        "over TCP:   {total} PoCs in {:.3} s -> {:.0}/s ({:.0}/hour)",
        remote_elapsed.as_secs_f64(),
        remote_rate,
        remote_rate * 3600.0
    );
    println!(
        "ingress overhead: {:.1}% (pauses: {}, sheds: {})",
        (local_rate / remote_rate - 1.0) * 100.0,
        report.ingress.pauses,
        report.ingress.shed_overload
    );
    if metrics {
        print!("{}", report.to_prometheus());
    }
}

// ── C100K mode ─────────────────────────────────────────────────────────

struct Run {
    shards: usize,
    held: usize,
    pocs: usize,
    elapsed: Duration,
    connections: u64,
    pool_exhausted: u64,
}

fn c100k_bench(conns: usize, max_shards: usize, duration: Duration, backend: IngressBackend) {
    // Each held connection costs one server fd here plus one client fd
    // in the child; lift our soft limit toward the hard cap for the
    // server side (the child lifts its own).
    let got = tlc_net::raise_nofile_limit((conns as u64).saturating_mul(2) + 1024).unwrap_or(0);
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "C100K bench: backend={} conns={conns} shards<=1..{max_shards} \
         duration={:.1}s host_cpus={host_cpus} nofile={got}",
        backend.name(),
        duration.as_secs_f64(),
    );

    let cycles: usize = std::env::var("TLC_BENCH_POCS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|n| *n > 0)
        .unwrap_or(40);
    println!("building {RELATIONSHIPS} relationships × {cycles} cycles…");
    let rels: Vec<Rel> = (0..RELATIONSHIPS).map(|id| build_rel(id, cycles)).collect();
    let plan = DataPlan::paper_default();

    let mut shard_counts = vec![1usize];
    while let Some(&last) = shard_counts.last() {
        if last * 2 > max_shards {
            break;
        }
        shard_counts.push(last * 2);
    }

    let mut runs: Vec<Run> = Vec::new();
    for &shards in &shard_counts {
        let config = IngressConfig {
            backend,
            shards,
            max_conns: conns + 1024,
            ..IngressConfig::default()
        };
        let workers = host_cpus.min(4).max(shards);
        let server = IngressServer::bind(
            ("127.0.0.1", 0),
            ServiceConfig {
                workers,
                ..ServiceConfig::default()
            },
            config,
        )
        .expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = server.spawn().expect("spawn ingress");

        // Child process holds the idle connection load.
        let mut child = std::process::Command::new(std::env::current_exe().expect("exe"))
            .arg("--hold")
            .arg(addr.to_string())
            .arg("--hold-count")
            .arg(conns.to_string())
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("spawn holder");
        let mut child_out = BufReader::new(child.stdout.take().expect("child stdout"));
        let mut line = String::new();
        child_out.read_line(&mut line).expect("holder report");
        let held: usize = line
            .trim()
            .strip_prefix("HELD ")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        println!("shards={shards}: holding {held}/{conns} idle connections");

        // Idle soak: the whole point of the readiness backend is that
        // a full-but-quiet table costs nothing. Sit on it for the
        // requested duration before measuring.
        std::thread::sleep(duration);

        // Foreground throughput while the table is full. One pass over
        // the pre-generated proof set (the replay cache forbids
        // resubmission within a server's lifetime); scale the set with
        // TLC_BENCH_POCS for longer measurements.
        let mut client = RemoteVerifier::connect(addr, 0).expect("connect");
        let start = Instant::now();
        for r in &rels {
            let rel = client
                .register(plan, r.edge_pub.clone(), r.op_pub.clone())
                .expect("register");
            client.submit_batch(rel, r.proofs.iter()).expect("submit");
        }
        let verdicts = client.collect_results().expect("collect");
        let elapsed = start.elapsed();
        for v in &verdicts {
            assert!(
                v.result.is_ok(),
                "unexpected rejection in C100K sweep: {:?}",
                v.result
            );
        }
        let pocs = verdicts.len();
        let _ = client.goodbye();

        // Tear down: holder first (so the server reaps cleanly), then
        // the server.
        drop(child.stdin.take());
        let _ = child.wait();
        let report = handle.shutdown().expect("report");
        assert!(
            report.ingress.connections >= held as u64,
            "server saw fewer connections ({}) than were held ({held})",
            report.ingress.connections,
        );

        let rate = pocs as f64 / elapsed.as_secs_f64();
        println!(
            "shards={shards}: {pocs} PoCs in {:.3} s -> {rate:.0}/s \
             (held {held}, pool exhausted {})",
            elapsed.as_secs_f64(),
            report.pool.exhausted,
        );
        runs.push(Run {
            shards,
            held,
            pocs,
            elapsed,
            connections: report.ingress.connections,
            pool_exhausted: report.pool.exhausted,
        });
    }

    write_json(conns, duration, backend, host_cpus, &runs);
}

/// Writes `BENCH_ingress.json` (hand-rolled: no serde in the tree).
fn write_json(
    conns: usize,
    duration: Duration,
    backend: IngressBackend,
    host_cpus: usize,
    runs: &[Run],
) {
    let rate = |r: &Run| -> f64 { r.pocs as f64 / r.elapsed.as_secs_f64().max(f64::MIN_POSITIVE) };
    let base = runs.first().map(rate).unwrap_or(0.0);
    let peak = runs.iter().map(rate).fold(0.0f64, f64::max);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"ingress_throughput\",\n");
    out.push_str(&format!("  \"backend\": \"{}\",\n", backend.name()));
    out.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    out.push_str(&format!("  \"target_conns\": {conns},\n"));
    out.push_str(&format!(
        "  \"duration_secs\": {:.3},\n",
        duration.as_secs_f64()
    ));
    out.push_str(&format!(
        "  \"scaling_vs_one_shard\": {:.3},\n",
        if base > 0.0 { peak / base } else { 0.0 }
    ));
    out.push_str("  \"runs\": [\n");
    for (k, r) in runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"host_cpus\": {host_cpus}, \
             \"shards\": {}, \"held_conns\": {}, \"server_connections\": {}, \
             \"pocs\": {}, \"elapsed_secs\": {:.3}, \"pocs_per_sec\": {:.1}, \
             \"pool_exhausted\": {}}}{}\n",
            r.shards,
            r.held,
            r.connections,
            r.pocs,
            r.elapsed.as_secs_f64(),
            rate(r),
            r.pool_exhausted,
            if k + 1 == runs.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write("BENCH_ingress.json", &out).expect("write BENCH_ingress.json");
    println!("wrote BENCH_ingress.json");
}

// ── Holder child ───────────────────────────────────────────────────────

/// Opens `n` connections, completes the HELLO handshake on each, prints
/// `HELD <n>` and then parks until stdin closes (parent teardown). Runs
/// in a separate process so the held client fds come out of a separate
/// RLIMIT_NOFILE budget from the server's.
fn hold_child(addr: SocketAddr, n: usize) {
    let _ = tlc_net::raise_nofile_limit((n as u64).saturating_mul(2) + 1024);
    let threads = 8.min(n.max(1));
    let per = n.div_ceil(threads);
    let mut held: Vec<TcpStream> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let want = per.min(n.saturating_sub(t * per));
            handles.push(s.spawn(move || {
                let mut conns = Vec::with_capacity(want);
                for _ in 0..want {
                    match handshake(addr) {
                        Some(stream) => conns.push(stream),
                        None => break,
                    }
                }
                conns
            }));
        }
        for h in handles {
            if let Ok(mut conns) = h.join() {
                held.append(&mut conns);
            }
        }
    });
    println!("HELD {}", held.len());
    let _ = std::io::stdout().flush();
    // Park until the parent closes our stdin.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    drop(held);
}

/// One blocking connect + HELLO/HELLO_ACK exchange. `None` on any
/// failure (the caller just holds fewer connections).
fn handshake(addr: SocketAddr) -> Option<TcpStream> {
    let mut stream = TcpStream::connect(addr).ok()?;
    let hello = Hello {
        magic: MAGIC,
        version: PROTOCOL_VERSION,
        window: 0,
    };
    let bytes = hello.to_frame().encode().ok()?;
    stream.write_all(&bytes).ok()?;
    let mut decoder = FrameDecoder::new(tlc_net::wire::DEFAULT_MAX_PAYLOAD);
    let mut chunk = [0u8; 256];
    loop {
        if let Some(frame) = decoder.next_frame() {
            return (frame.kind == FrameKind::HelloAck).then_some(stream);
        }
        let n = stream.read(&mut chunk).ok()?;
        if n == 0 {
            return None;
        }
        decoder.push(&chunk[..n]).ok()?;
    }
}
