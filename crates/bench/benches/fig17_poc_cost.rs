//! Bench + regeneration for Fig. 17: Proof-of-Charging cost.
//! Prints the cost report (sizes, per-device times, verifier throughput),
//! then times the real cryptographic steps: the three-message negotiation
//! and a single PoC verification — the figure's primitives.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tlc_core::messages::NONCE_LEN;
use tlc_core::plan::DataPlan;
use tlc_core::protocol::{run_negotiation, Endpoint};
use tlc_core::strategy::{Knowledge, OptimalStrategy, Role};
use tlc_core::verify::verify_poc;
use tlc_crypto::KeyPair;
use tlc_sim::experiments::fig17;

fn bench(c: &mut Criterion) {
    fig17::print(&fig17::run(5).expect("optimal pair converges"));

    let plan = DataPlan::paper_default();
    let ek = KeyPair::generate_for_seed(1024, 171).unwrap();
    let ok = KeyPair::generate_for_seed(1024, 172).unwrap();
    let endpoints = || {
        (
            Endpoint::new(
                Role::Edge,
                plan,
                Knowledge {
                    role: Role::Edge,
                    own_truth: 1_000_000,
                    inferred_peer_truth: 900_000,
                },
                Box::new(OptimalStrategy),
                ek.private.clone(),
                ok.public.clone(),
                [1; NONCE_LEN],
                16,
            ),
            Endpoint::new(
                Role::Operator,
                plan,
                Knowledge {
                    role: Role::Operator,
                    own_truth: 900_000,
                    inferred_peer_truth: 1_000_000,
                },
                Box::new(OptimalStrategy),
                ok.private.clone(),
                ek.public.clone(),
                [2; NONCE_LEN],
                16,
            ),
        )
    };
    c.bench_function("fig17/poc_negotiation_3msgs", |b| {
        b.iter(|| {
            let (mut e, mut o) = endpoints();
            run_negotiation(black_box(&mut o), &mut e).unwrap()
        })
    });
    let (mut e, mut o) = endpoints();
    let (poc, _) = run_negotiation(&mut o, &mut e).unwrap();
    c.bench_function("fig17/poc_verification", |b| {
        b.iter(|| verify_poc(black_box(&poc), &plan, &ek.public, &ok.public).unwrap())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
