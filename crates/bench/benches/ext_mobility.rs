//! Extension bench: the handover (mobility) gap sweep of §3.1 cause 2.
//! Prints the sweep, then times one mobile VR cycle.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tlc_net::time::SimDuration;
use tlc_sim::experiments::{mobility, RunScale};
use tlc_sim::scenario::{run_scenario, AppKind, ScenarioConfig};

fn bench(c: &mut Criterion) {
    mobility::print(&mobility::run(RunScale::Quick));

    let mut g = c.benchmark_group("mobility");
    g.sample_size(10);
    g.bench_function("vr_cycle_20s_12ho_per_min", |b| {
        b.iter(|| {
            let mut cfg =
                ScenarioConfig::new(black_box(AppKind::Vr), 13, SimDuration::from_secs(20))
                    .with_handovers_per_minute(12.0);
            cfg.datapath.dl_capacity_bps = 12_000_000;
            run_scenario(&cfg)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
