//! Bench + regeneration for Fig. 18: tamper-resilient CDR accuracy.
//! Prints both error CDFs, then times the skewed-clock counter read that
//! produces each record.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tlc_net::time::{SimDuration, SimTime};
use tlc_sim::experiments::{fig18, RunScale};
use tlc_sim::scenario::{run_scenario, AppKind, ScenarioConfig};

fn bench(c: &mut Criterion) {
    let mut curves = fig18::run(RunScale::Quick);
    fig18::print(&mut curves);

    let r = run_scenario(&ScenarioConfig::new(
        AppKind::Vr,
        18,
        SimDuration::from_secs(60),
    ));
    c.bench_function("fig18/skewed_counter_read", |b| {
        b.iter(|| {
            r.app
                .gateway_downlink
                .bytes_until(black_box(SimTime::from_millis(59_850)))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
