//! Verifier scalability (the paper's "230K PoCs/hour on one Z840"):
//! single-thread verification cost and multi-worker throughput via the
//! sharded [`tlc_core::verify::service::VerifierService`].

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use tlc_core::messages::{Nonce, PocMsg, NONCE_LEN};
use tlc_core::plan::DataPlan;
use tlc_core::protocol::{run_negotiation, Endpoint};
use tlc_core::strategy::{Knowledge, OptimalStrategy, Role};
use tlc_core::verify::service::{ServiceConfig, VerifierService};
use tlc_core::verify::{verify_poc, verify_poc_batch};
use tlc_crypto::KeyPair;

fn make_proofs(n: usize, ek: &KeyPair, ok: &KeyPair, plan: &DataPlan) -> Vec<PocMsg> {
    (0..n)
        .map(|i| {
            let mut ne: Nonce = [0; NONCE_LEN];
            ne[..8].copy_from_slice(&(i as u64).to_be_bytes());
            let mut no = ne;
            no[15] = 1;
            let mut e = Endpoint::new(
                Role::Edge,
                *plan,
                Knowledge {
                    role: Role::Edge,
                    own_truth: 1_000_000 + i as u64,
                    inferred_peer_truth: 900_000,
                },
                Box::new(OptimalStrategy),
                ek.private.clone(),
                ok.public.clone(),
                ne,
                16,
            );
            let mut o = Endpoint::new(
                Role::Operator,
                *plan,
                Knowledge {
                    role: Role::Operator,
                    own_truth: 900_000,
                    inferred_peer_truth: 1_000_000 + i as u64,
                },
                Box::new(OptimalStrategy),
                ok.private.clone(),
                ek.public.clone(),
                no,
                16,
            );
            run_negotiation(&mut o, &mut e).unwrap().0
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let plan = DataPlan::paper_default();
    let ek = KeyPair::generate_for_seed(1024, 201).unwrap();
    let ok = KeyPair::generate_for_seed(1024, 202).unwrap();
    let proofs = make_proofs(64, &ek, &ok, &plan);

    // Four independent relationships × 16 proofs for the sharded service:
    // with 4 workers every shard owns one relationship.
    let rels: Vec<(KeyPair, KeyPair, Vec<PocMsg>)> = (0..4u64)
        .map(|i| {
            let e = KeyPair::generate_for_seed(1024, 300 + i * 2).unwrap();
            let o = KeyPair::generate_for_seed(1024, 301 + i * 2).unwrap();
            let proofs = make_proofs(16, &e, &o, &plan);
            (e, o, proofs)
        })
        .collect();

    let mut g = c.benchmark_group("verifier");
    g.throughput(Throughput::Elements(proofs.len() as u64));
    g.sample_size(10);
    g.bench_function("single_thread_batch64", |b| {
        b.iter(|| {
            for p in &proofs {
                verify_poc(black_box(p), &plan, &ek.public, &ok.public).unwrap();
            }
        })
    });
    // Same 64 proofs through the batch entry point at several signature
    // batch sizes — isolates the wide-kernel win from service overheads.
    for batch in [8usize, 32, 64] {
        g.bench_function(format!("single_thread_batched_{batch}"), |b| {
            b.iter(|| {
                for chunk in proofs.chunks(batch) {
                    let refs: Vec<&PocMsg> = chunk.iter().collect();
                    let r = verify_poc_batch(black_box(&refs), &plan, &ek.public, &ok.public);
                    assert!(r.iter().all(|v| v.is_ok()));
                }
            })
        });
    }
    // Full service lifecycle per iteration (spawn, register, batch-submit,
    // drain, join) over 4 relationships — the shard workers verify in
    // parallel, replay caches stay shard-local.
    for workers in [1usize, 2, 4] {
        g.bench_function(format!("service_{workers}_workers_batch64"), |b| {
            b.iter(|| {
                let mut svc = VerifierService::new(workers);
                for (e, o, proofs) in &rels {
                    let rel = svc
                        .register(plan, e.public.clone(), o.public.clone())
                        .unwrap();
                    svc.submit_batch(rel, proofs.iter().cloned()).unwrap();
                }
                let results = svc.collect_results().unwrap();
                assert!(results.iter().all(|r| r.result.is_ok()));
                black_box(svc.finish());
            })
        });
    }
    // Signature-batch-size sensitivity inside the pipelined service
    // (workers fixed at 2: one hash stage + one signature stage per shard).
    for batch_size in [1usize, 16, 64] {
        g.bench_function(format!("service_2_workers_sigbatch_{batch_size}"), |b| {
            b.iter(|| {
                let mut svc = VerifierService::with_config(ServiceConfig {
                    workers: 2,
                    batch_size,
                    ..ServiceConfig::default()
                });
                for (e, o, proofs) in &rels {
                    let rel = svc
                        .register(plan, e.public.clone(), o.public.clone())
                        .unwrap();
                    svc.submit_batch(rel, proofs.iter().cloned()).unwrap();
                }
                let results = svc.collect_results().unwrap();
                assert!(results.iter().all(|r| r.result.is_ok()));
                black_box(svc.finish());
            })
        });
    }
    g.finish();

    // Report the headline number the paper quotes.
    let t0 = std::time::Instant::now();
    for p in &proofs {
        verify_poc(p, &plan, &ek.public, &ok.public).unwrap();
    }
    let per_hour = proofs.len() as f64 / t0.elapsed().as_secs_f64() * 3600.0;
    println!("single-thread verifier throughput: {per_hour:.0} PoCs/hour (paper: 230K/hour)");
}

criterion_group!(benches, bench);
criterion_main!(benches);
