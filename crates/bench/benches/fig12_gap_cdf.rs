//! Bench + regeneration for Fig. 12: per-scheme charging-gap CDFs.
//! Prints the curves from a reduced sweep, then times the scheme-pricing
//! step (three negotiations on one cycle's records).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tlc_core::plan::DataPlan;
use tlc_sim::experiments::{fig12, sweep, RunScale};
use tlc_sim::measure::compare_schemes;
use tlc_sim::scenario::AppKind;

fn bench(c: &mut Criterion) {
    let samples = sweep::sweep_over(
        RunScale::Quick,
        &[AppKind::WebcamUdp, AppKind::Vr, AppKind::Gaming],
        &[0.0, 160.0],
    );
    let mut curves = fig12::from_samples(&samples);
    fig12::print(&mut curves);

    let records = samples[0].records;
    let plan = DataPlan::paper_default();
    c.bench_function("fig12/price_all_schemes_one_cycle", |b| {
        b.iter(|| compare_schemes(black_box(&records), &plan, 42).unwrap())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
