//! Bench + regeneration for Fig. 15: gap reduction under plan weights c.
//! Prints the reduction CDFs, then times re-pricing one cycle's records
//! across all five plan weights (the figure's inner loop).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tlc_core::plan::LossWeight;
use tlc_sim::experiments::{fig15, sweep, RunScale};
use tlc_sim::scenario::AppKind;

fn bench(c: &mut Criterion) {
    let samples = sweep::sweep_over(RunScale::Quick, &[AppKind::Vr], &[120.0, 160.0]);
    let mut curves = fig15::from_samples(&samples);
    fig15::print(&mut curves);

    let sample = &samples[0];
    c.bench_function("fig15/reprice_five_weights", |b| {
        b.iter(|| {
            fig15::C_VALUES
                .iter()
                .map(|&w| sample.reprice(black_box(LossWeight::from_f64(w))).intended)
                .sum::<u64>()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
