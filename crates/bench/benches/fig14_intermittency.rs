//! Bench + regeneration for Fig. 14: gap ratio vs disconnectivity η.
//! Prints the series, then times the η-targeted channel construction and
//! its disconnectivity accounting.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tlc_net::radio::RadioTimeline;
use tlc_net::rng::SimRng;
use tlc_net::time::SimDuration;
use tlc_sim::experiments::{fig14, RunScale};

fn bench(c: &mut Criterion) {
    fig14::print(&fig14::run(RunScale::Quick));

    c.bench_function("fig14/eta_channel_and_accounting", |b| {
        b.iter(|| {
            let mut rng = SimRng::new(black_box(11));
            let tl = RadioTimeline::intermittent(
                SimDuration::from_secs(3600),
                -85.0,
                0.12,
                SimDuration::from_millis(1930),
                &mut rng,
            );
            (tl.disconnectivity_ratio(), tl.mean_outage_secs())
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
