//! Bench + regeneration for Fig. 16: latency friendliness.
//! Prints RTT with/without TLC and the negotiation round counts, then
//! times the simulated ping path and one wire negotiation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tlc_sim::experiments::devices::EL20;
use tlc_sim::experiments::{fig16, sweep, RunScale};
use tlc_sim::scenario::AppKind;

fn bench(c: &mut Criterion) {
    let rtt = fig16::run_rtt(RunScale::Quick);
    let samples = sweep::sweep_over(RunScale::Quick, &[AppKind::WebcamUdp], &[0.0, 140.0]);
    let rounds = fig16::rounds_from_samples(&samples);
    fig16::print(&rtt, &rounds);

    let mut g = c.benchmark_group("fig16");
    g.sample_size(10);
    g.bench_function("ping_50_rounds", |b| {
        b.iter(|| fig16::ping_rtt_ms(black_box(&EL20), 50, false, 3))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
