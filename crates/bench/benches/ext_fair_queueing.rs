//! Extension bench: the scheduler-discipline ablation (DESIGN.md's main
//! known deviation). Prints the FIFO-vs-DRR congestion-gap table, then
//! times the DRR queue's enqueue/dequeue hot path against the classic
//! drop-tail queue.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use tlc_net::fair::FairQueue;
use tlc_net::packet::{Direction, FlowId, Packet, Qci};
use tlc_net::queue::{Discipline, PacketQueue};
use tlc_net::time::SimTime;
use tlc_sim::experiments::{ablation, RunScale};

fn pkt(id: u64, flow: u32, size: u32) -> Packet {
    Packet::new(
        id,
        FlowId(flow),
        Direction::Downlink,
        size,
        Qci::DEFAULT,
        SimTime::ZERO,
    )
}

fn bench(c: &mut Criterion) {
    ablation::print(&ablation::run(RunScale::Quick));

    const N: u64 = 1000;
    let mut g = c.benchmark_group("scheduler");
    g.throughput(Throughput::Elements(N));
    g.bench_function("drop_tail_churn_1k", |b| {
        b.iter(|| {
            let mut q = PacketQueue::new(Discipline::QciPriority, 256 * 1024);
            for i in 0..N {
                q.enqueue(black_box(pkt(i, (i % 8) as u32, 1000 + (i % 500) as u32)));
                if i % 2 == 0 {
                    q.dequeue();
                }
            }
            q.flush().len()
        })
    });
    g.bench_function("drr_fair_churn_1k", |b| {
        b.iter(|| {
            let mut q = FairQueue::new(256 * 1024);
            for i in 0..N {
                q.enqueue(black_box(pkt(i, (i % 8) as u32, 1000 + (i % 500) as u32)));
                if i % 2 == 0 {
                    q.dequeue();
                }
            }
            q.flush().len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
