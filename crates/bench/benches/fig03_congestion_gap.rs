//! Bench + regeneration for Fig. 3: the raw charging gap vs congestion.
//!
//! Prints the figure's series, then times one congestion-scenario cycle
//! (the unit of work behind every point in the figure).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tlc_core::plan::DataPlan;
use tlc_net::time::SimDuration;
use tlc_sim::experiments::{fig03, sweep, RunScale};
use tlc_sim::scenario::AppKind;

fn bench(c: &mut Criterion) {
    let rows = fig03::run(RunScale::Quick);
    fig03::print(&rows);

    let plan = DataPlan::paper_default();
    let mut g = c.benchmark_group("fig03");
    g.sample_size(10);
    g.bench_function("webcam_udp_cycle_20s_bg120", |b| {
        b.iter(|| {
            sweep::run_one(
                black_box(AppKind::WebcamUdp),
                120.0,
                7,
                SimDuration::from_secs(20),
                &plan,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
