//! Bench + regeneration for Fig. 4: the intermittent-connectivity gap
//! timeline. Prints the three stacked series, then times the radio
//! timeline generation and one outage-heavy cycle.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tlc_net::radio::RadioTimeline;
use tlc_net::rng::SimRng;
use tlc_net::time::SimDuration;
use tlc_sim::experiments::{fig04, RunScale};
use tlc_sim::scenario::{run_scenario, AppKind, RadioSpec, ScenarioConfig};

fn bench(c: &mut Criterion) {
    let (rows, summary) = fig04::run(RunScale::Quick);
    fig04::print(&rows, &summary);

    let mut g = c.benchmark_group("fig04");
    g.sample_size(10);
    g.bench_function("radio_timeline_1hr", |b| {
        b.iter(|| {
            let mut rng = SimRng::new(black_box(1));
            RadioTimeline::intermittent(
                SimDuration::from_secs(3600),
                -85.0,
                0.10,
                SimDuration::from_millis(1930),
                &mut rng,
            )
        })
    });
    g.bench_function("intermittent_webcam_cycle_30s", |b| {
        b.iter(|| {
            let cfg = ScenarioConfig::new(
                black_box(AppKind::WebcamUdpDownlink),
                9,
                SimDuration::from_secs(30),
            )
            .with_radio(RadioSpec::Intermittent { eta: 0.10 });
            run_scenario(&cfg)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
