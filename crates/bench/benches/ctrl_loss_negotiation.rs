//! Bench + regeneration for the control-plane robustness extension:
//! negotiation through the loss-tolerant session layer over a faulty
//! signaling channel. Prints the loss-sweep table (convergence rate and
//! latency vs control loss), then times a full session-pair run at a
//! clean channel and at 20% loss with duplication and reordering.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tlc_core::messages::NONCE_LEN;
use tlc_core::plan::DataPlan;
use tlc_core::protocol::Endpoint;
use tlc_core::session::{run_session_pair, Session, SessionConfig};
use tlc_core::strategy::{Knowledge, OptimalStrategy, Role};
use tlc_crypto::KeyPair;
use tlc_net::channel::{FaultSpec, FaultyChannel};
use tlc_net::loss::{LossModel, NoLoss, UniformLoss};
use tlc_net::rng::SimRng;
use tlc_net::time::{SimDuration, SimTime};
use tlc_sim::experiments::{robustness, RunScale};

fn endpoints(ek: &KeyPair, ok: &KeyPair) -> (Endpoint, Endpoint) {
    let plan = DataPlan::paper_default();
    (
        Endpoint::new(
            Role::Edge,
            plan,
            Knowledge {
                role: Role::Edge,
                own_truth: 1_000_000,
                inferred_peer_truth: 900_000,
            },
            Box::new(OptimalStrategy),
            ek.private.clone(),
            ok.public.clone(),
            [3; NONCE_LEN],
            32,
        ),
        Endpoint::new(
            Role::Operator,
            plan,
            Knowledge {
                role: Role::Operator,
                own_truth: 900_000,
                inferred_peer_truth: 1_000_000,
            },
            Box::new(OptimalStrategy),
            ok.private.clone(),
            ek.public.clone(),
            [4; NONCE_LEN],
            32,
        ),
    )
}

fn channel(loss: f64, spec: &FaultSpec, seed: u64) -> FaultyChannel {
    let model: Box<dyn LossModel> = if loss == 0.0 {
        Box::new(NoLoss)
    } else {
        Box::new(UniformLoss::new(loss))
    };
    FaultyChannel::new(spec.clone(), model, SimRng::new(seed))
}

fn run_once(ek: &KeyPair, ok: &KeyPair, loss: f64, spec: &FaultSpec, seed: u64) -> u64 {
    let (edge, op) = endpoints(ek, ok);
    let mut initiator = Session::new(op, SessionConfig::default());
    let mut responder = Session::new(edge, SessionConfig::default());
    let mut fwd = channel(loss, spec, seed);
    let mut back = channel(loss, spec, seed.wrapping_add(1));
    let report = run_session_pair(
        &mut initiator,
        &mut responder,
        &mut fwd,
        &mut back,
        SimTime::from_millis(0),
        SimDuration::from_secs(120),
    )
    .expect("fresh endpoints initiate");
    report.settled_charge()
}

fn bench(c: &mut Criterion) {
    robustness::print(&robustness::run(RunScale::Quick));

    let ek = KeyPair::generate_for_seed(1024, 271).unwrap();
    let ok = KeyPair::generate_for_seed(1024, 272).unwrap();
    let clean = FaultSpec::clean();
    let faulty = FaultSpec::with_faults(0.05, 0.05, 0.0);

    c.bench_function("ctrl_loss/session_pair_clean", |b| {
        b.iter(|| run_once(black_box(&ek), &ok, 0.0, &clean, 42))
    });
    c.bench_function("ctrl_loss/session_pair_20pct_loss_dup_reorder", |b| {
        b.iter(|| run_once(black_box(&ek), &ok, 0.2, &faulty, 42))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
