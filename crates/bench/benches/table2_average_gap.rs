//! Bench + regeneration for Table 2: average gap per app and scheme.
//! Prints the table from a reduced sweep, then times record extraction
//! from a finished cycle (the end-of-cycle measurement step).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tlc_net::time::SimDuration;
use tlc_sim::experiments::{sweep, table2, RunScale};
use tlc_sim::measure::cycle_records;
use tlc_sim::scenario::{run_scenario, AppKind, ScenarioConfig};

fn bench(c: &mut Criterion) {
    let samples = sweep::sweep_over(
        RunScale::Quick,
        &[AppKind::WebcamRtsp, AppKind::Vr],
        &[0.0, 160.0],
    );
    table2::print(&table2::from_samples(&samples));

    let r = run_scenario(&ScenarioConfig::new(
        AppKind::Vr,
        3,
        SimDuration::from_secs(30),
    ));
    c.bench_function("table2/extract_cycle_records", |b| {
        b.iter(|| cycle_records(black_box(&r)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
