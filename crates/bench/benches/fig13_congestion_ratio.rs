//! Bench + regeneration for Fig. 13: gap ratio vs congestion per scheme.
//! Prints the series from a reduced sweep, then times the full
//! simulate-and-price pipeline for one congested point.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tlc_core::plan::DataPlan;
use tlc_net::time::SimDuration;
use tlc_sim::experiments::{fig13, sweep, RunScale};
use tlc_sim::measure::evaluate;
use tlc_sim::scenario::{run_scenario, AppKind, ScenarioConfig};

fn bench(c: &mut Criterion) {
    let samples = sweep::sweep_over(
        RunScale::Quick,
        &[AppKind::WebcamUdp, AppKind::Gaming],
        &[0.0, 160.0],
    );
    fig13::print(&fig13::from_samples(&samples));

    let plan = DataPlan::paper_default();
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10);
    g.bench_function("gaming_congested_point", |b| {
        b.iter(|| {
            let cfg =
                ScenarioConfig::new(black_box(AppKind::Gaming), 5, SimDuration::from_secs(20))
                    .with_background(160.0);
            let r = run_scenario(&cfg);
            evaluate(&r, &plan, 5).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
