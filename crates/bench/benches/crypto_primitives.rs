//! Microbenchmarks of the from-scratch crypto substrate: the costs that
//! dominate Fig. 17 (RSA-1024 sign/verify) plus the building blocks.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use tlc_crypto::bigint::BigUint;
use tlc_crypto::rng::DeterministicRng;
use tlc_crypto::{pkcs1, sha256, KeyPair};

fn bench(c: &mut Criterion) {
    let kp = KeyPair::generate_for_seed(1024, 0xC0FFEE).unwrap();
    let msg = vec![0xA5u8; 199]; // a TLC-CDR-sized message
    let sig = pkcs1::sign(&kp.private, &msg).unwrap();

    c.bench_function("crypto/rsa1024_sign", |b| {
        b.iter(|| pkcs1::sign(black_box(&kp.private), &msg).unwrap())
    });
    c.bench_function("crypto/rsa1024_verify", |b| {
        b.iter(|| pkcs1::verify(black_box(&kp.public), &msg, &sig).unwrap())
    });

    let mut g = c.benchmark_group("crypto/sha256");
    for size in [64usize, 1024, 65536] {
        let data = vec![0x5Au8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("{size}B"), |b| {
            b.iter(|| sha256::digest(black_box(&data)))
        });
    }
    g.finish();

    // 1024-bit modular exponentiation (the RSA core).
    let n = kp.public.n.clone();
    let base = BigUint::from_bytes_be(&[0x42; 100]);
    let exp = BigUint::from_bytes_be(&[0x7F; 128]);
    c.bench_function("crypto/modpow_1024", |b| {
        b.iter(|| black_box(&base).modpow(&exp, &n))
    });

    let mut kg = c.benchmark_group("crypto/keygen");
    kg.sample_size(10);
    kg.bench_function("rsa1024", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = DeterministicRng::from_seed(seed);
            KeyPair::generate(1024, &mut rng).unwrap()
        })
    });
    kg.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
