//! Schema honesty checks for the committed bench reports.
//!
//! Every throughput/scaling row in the `BENCH_*.json` reports must
//! carry the `host_cpus` it was measured on: a "4 workers" or
//! "8 threads" row without the core count silently passes off
//! pipelining over shared cores as parallel speedup. The writers in
//! `src/bin/` stamp it per row; this test pins the contract on the
//! committed artifacts so a writer regression cannot land unnoticed.

use std::path::PathBuf;

fn repo_file(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("committed bench report {name} must be readable: {e}"))
}

/// Every line matching `row_marker` must also carry `host_cpus`.
fn assert_rows_stamped(name: &str, text: &str, row_marker: &str) {
    let mut rows = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.contains(row_marker) {
            rows += 1;
            assert!(
                line.contains("\"host_cpus\""),
                "{name}:{}: row is missing host_cpus: {line}",
                i + 1
            );
        }
    }
    assert!(rows > 0, "{name}: no rows matched {row_marker:?}");
}

#[test]
fn bench_crypto_rows_record_host_cpus() {
    let text = repo_file("BENCH_crypto.json");
    assert!(
        text.contains("\"host_cpus\""),
        "BENCH_crypto.json has no top-level host_cpus"
    );
    // The multi-worker service rows are where the honesty gap bites.
    assert_rows_stamped("BENCH_crypto.json", &text, "_workers\":");
}

#[test]
fn bench_ingress_rows_record_host_cpus() {
    let text = repo_file("BENCH_ingress.json");
    assert!(text.contains("\"host_cpus\""));
    assert_rows_stamped("BENCH_ingress.json", &text, "\"pocs_per_sec\"");
}

#[test]
fn bench_twin_rows_record_host_cpus() {
    let text = repo_file("BENCH_twin.json");
    assert!(text.contains("\"host_cpus\""));
    assert_rows_stamped("BENCH_twin.json", &text, "\"sessions_per_sec\"");
}
