//! Counting vantage points along the charging pipeline.
//!
//! The charging gap is, by definition, a disagreement between byte counters
//! placed at different points of the same datapath. This module names those
//! points and couples each to a cumulative counter plus a time series, so
//! any vantage can be read both "in total" and "as of instant t" (needed
//! for clock-skew effects and Fig. 4-style timelines).

use serde::{Deserialize, Serialize};
use tlc_net::stats::{ByteCounter, UsageSeries};
use tlc_net::time::{SimDuration, SimTime};

/// Where along the pipeline a counter sits.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Vantage {
    /// Device application's sent bytes (uplink `x̂_e`): Android
    /// `TrafficStats` / in-app counting.
    DeviceAppSent,
    /// Device application's received bytes (edge's view of downlink
    /// delivery).
    DeviceAppReceived,
    /// Hardware modem's received downlink bytes — the tamper-resilient
    /// source behind RRC COUNTER CHECK.
    ModemReceived,
    /// Gateway-metered uplink bytes (operator's legacy uplink CDR and
    /// TLC's uplink `x̂_o`).
    GatewayUplink,
    /// Gateway-metered downlink bytes at ingress from the server
    /// (operator's *legacy* downlink CDR — counted before radio loss).
    GatewayDownlink,
    /// Edge server's sent bytes (downlink `x̂_e`): `/proc/net` monitor.
    ServerSent,
    /// Edge server's received uplink bytes.
    ServerReceived,
}

/// All vantages, for iteration in reports.
pub const ALL_VANTAGES: [Vantage; 7] = [
    Vantage::DeviceAppSent,
    Vantage::DeviceAppReceived,
    Vantage::ModemReceived,
    Vantage::GatewayUplink,
    Vantage::GatewayDownlink,
    Vantage::ServerSent,
    Vantage::ServerReceived,
];

/// A counter plus its history at one vantage.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CountingPoint {
    counter: ByteCounter,
    series: UsageSeries,
}

/// Resolution of the usage history. 100 ms is fine enough for the paper's
/// clock-skew effects (which span tens of ms to seconds) while keeping an
/// hour-long run to ~36k buckets.
pub const SERIES_BUCKET: SimDuration = SimDuration(100_000);

impl Default for CountingPoint {
    fn default() -> Self {
        Self::new()
    }
}

impl CountingPoint {
    /// Fresh zeroed point.
    pub fn new() -> Self {
        CountingPoint {
            counter: ByteCounter::new(),
            series: UsageSeries::new(SERIES_BUCKET),
        }
    }

    /// Records one packet observed at this vantage.
    pub fn record(&mut self, t: SimTime, size: u32) {
        self.counter.record(size);
        self.series.record(t, size as u64);
    }

    /// Total bytes observed.
    pub fn bytes(&self) -> u64 {
        self.counter.bytes
    }

    /// Total packets observed.
    pub fn packets(&self) -> u64 {
        self.counter.packets
    }

    /// Bytes observed strictly before `t` (pro-rated within a bucket) —
    /// what a reader whose clock says "cycle end" at true time `t` sees.
    pub fn bytes_until(&self, t: SimTime) -> u64 {
        self.series.cumulative_until(t)
    }

    /// The underlying history, for timeline plots.
    pub fn series(&self) -> &UsageSeries {
        &self.series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_updates_counter_and_series() {
        let mut p = CountingPoint::new();
        p.record(SimTime::from_secs(1), 500);
        p.record(SimTime::from_secs(2), 700);
        assert_eq!(p.bytes(), 1200);
        assert_eq!(p.packets(), 2);
        assert_eq!(p.bytes_until(SimTime::from_millis(1500)), 500);
        assert_eq!(p.bytes_until(SimTime::from_secs(10)), 1200);
    }

    #[test]
    fn bytes_until_zero_at_start() {
        let mut p = CountingPoint::new();
        p.record(SimTime::from_secs(5), 100);
        assert_eq!(p.bytes_until(SimTime::ZERO), 0);
    }

    #[test]
    fn vantage_list_is_exhaustive_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for v in ALL_VANTAGES {
            assert!(seen.insert(v), "duplicate vantage {v:?}");
        }
        assert_eq!(seen.len(), 7);
    }
}
