//! Charging-record monitors and tamper models (§5.4).
//!
//! The paper compares three ways the operator can learn the device's
//! received downlink volume:
//!
//! 1. **Strawman 1** — user-space monitor over legacy OS APIs
//!    (`TrafficStats`/`netstat`): tamperable by a selfish edge,
//! 2. **Strawman 2** — rooted system monitor: tamper-resilient but needs
//!    system privilege and raises privacy concerns,
//! 3. **TLC's choice** — user-space monitor backed by the hardware modem
//!    via RRC COUNTER CHECK: tamper-resilient without root.
//!
//! Here a [`MonitorKind`] selects the source, and a [`TamperPolicy`]
//! models what a selfish edge does to sources it can reach.

use serde::{Deserialize, Serialize};

/// Which mechanism backs a downlink usage report.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum MonitorKind {
    /// Strawman 1: user-space app reading OS counters. Tamperable.
    UserSpaceApi,
    /// Strawman 2: privileged system monitor inspecting all packets.
    /// Tamper-resilient; requires root; privacy cost.
    RootedSystemMonitor,
    /// TLC: RRC COUNTER CHECK against the hardware modem. Tamper-resilient
    /// without root.
    RrcCounterCheck,
}

impl MonitorKind {
    /// Whether a selfish *edge* can falsify this monitor's reading.
    pub fn edge_can_tamper(&self) -> bool {
        matches!(self, MonitorKind::UserSpaceApi)
    }

    /// Whether deploying this monitor requires system privilege on the
    /// device.
    pub fn requires_root(&self) -> bool {
        matches!(self, MonitorKind::RootedSystemMonitor)
    }

    /// Whether this monitor lets the operator observe packet contents
    /// (the privacy objection to strawman 2).
    pub fn privacy_invasive(&self) -> bool {
        matches!(self, MonitorKind::RootedSystemMonitor)
    }
}

/// What a party does to a counter it controls before reporting it.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum TamperPolicy {
    /// Report the truth.
    Honest,
    /// Report `factor × truth` (selfish edge uses factor < 1 to
    /// under-claim; selfish operator factor > 1 to over-claim).
    Scale(f64),
    /// Subtract a fixed number of bytes (floor at zero) — e.g. the
    /// "reset the bill cycle" trick of §3.3.
    Deduct(u64),
    /// Report zero — the most aggressive under-claim.
    Zero,
}

impl TamperPolicy {
    /// Applies the policy to a true byte count.
    pub fn apply(&self, truth: u64) -> u64 {
        match self {
            TamperPolicy::Honest => truth,
            TamperPolicy::Scale(f) => {
                assert!(*f >= 0.0 && f.is_finite(), "scale must be non-negative");
                (truth as f64 * f).round() as u64
            }
            TamperPolicy::Deduct(d) => truth.saturating_sub(*d),
            TamperPolicy::Zero => 0,
        }
    }
}

/// A downlink usage report assembled by the operator from a monitor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonitorReport {
    /// Source mechanism.
    pub kind: MonitorKind,
    /// Bytes the operator believes the device received.
    pub reported_bytes: u64,
}

/// Computes what the operator's monitor reports, given the ground-truth
/// modem count and the edge's tamper policy.
///
/// Only the user-space API monitor is reachable by edge tampering; the
/// rooted monitor and the RRC counter check read hardware/kernel state the
/// edge cannot alter (§5.4, footnote 7: no known attacks manipulate the
/// cellular modem's traffic statistics).
pub fn operator_downlink_report(
    kind: MonitorKind,
    modem_truth_bytes: u64,
    edge_tamper: TamperPolicy,
) -> MonitorReport {
    let reported_bytes = if kind.edge_can_tamper() {
        edge_tamper.apply(modem_truth_bytes)
    } else {
        modem_truth_bytes
    };
    MonitorReport {
        kind,
        reported_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tamper_matrix_matches_paper() {
        assert!(MonitorKind::UserSpaceApi.edge_can_tamper());
        assert!(!MonitorKind::RootedSystemMonitor.edge_can_tamper());
        assert!(!MonitorKind::RrcCounterCheck.edge_can_tamper());

        assert!(!MonitorKind::UserSpaceApi.requires_root());
        assert!(MonitorKind::RootedSystemMonitor.requires_root());
        assert!(!MonitorKind::RrcCounterCheck.requires_root());

        assert!(MonitorKind::RootedSystemMonitor.privacy_invasive());
        assert!(!MonitorKind::RrcCounterCheck.privacy_invasive());
    }

    #[test]
    fn tamper_policies_apply() {
        assert_eq!(TamperPolicy::Honest.apply(1000), 1000);
        assert_eq!(TamperPolicy::Scale(0.5).apply(1000), 500);
        assert_eq!(TamperPolicy::Scale(1.2).apply(1000), 1200);
        assert_eq!(TamperPolicy::Deduct(300).apply(1000), 700);
        assert_eq!(TamperPolicy::Deduct(5000).apply(1000), 0);
        assert_eq!(TamperPolicy::Zero.apply(1000), 0);
    }

    #[test]
    fn user_space_monitor_is_fooled() {
        let r = operator_downlink_report(
            MonitorKind::UserSpaceApi,
            1_000_000,
            TamperPolicy::Scale(0.1),
        );
        assert_eq!(r.reported_bytes, 100_000);
    }

    #[test]
    fn rrc_monitor_resists_tampering() {
        let r =
            operator_downlink_report(MonitorKind::RrcCounterCheck, 1_000_000, TamperPolicy::Zero);
        assert_eq!(r.reported_bytes, 1_000_000);
    }

    #[test]
    fn rooted_monitor_resists_tampering() {
        let r = operator_downlink_report(
            MonitorKind::RootedSystemMonitor,
            1_000_000,
            TamperPolicy::Deduct(999_999),
        );
        assert_eq!(r.reported_bytes, 1_000_000);
    }

    #[test]
    #[should_panic]
    fn negative_scale_rejected() {
        TamperPolicy::Scale(-1.0).apply(10);
    }
}
