//! Charging Data Records, as emitted by the 4G gateway (S/P-GW).
//!
//! Mirrors Trace 1 of the paper — the XML CDR produced by OpenEPC:
//!
//! ```xml
//! <chargingRecord>
//!   <servedIMSI>00 01 11 32 54 76 48 F5</servedIMSI>
//!   <gatewayAddress>192.168.2.11</gatewayAddress>
//!   ...
//!   <datavolumeUplink>274841</datavolumeUplink>
//!   <datavolumeDownlink>33604032</datavolumeDownlink>
//! </chargingRecord>
//! ```

use serde::{Deserialize, Serialize};
use tlc_net::time::SimTime;

/// Wire size of a binary legacy LTE CDR, per the paper's Fig. 17 table
/// ("LTE CDR: 34 bytes"). Used when comparing signaling overheads.
pub const LEGACY_CDR_WIRE_BYTES: usize = 34;

/// An International Mobile Subscriber Identity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize, PartialOrd, Ord)]
pub struct Imsi(pub u64);

impl Imsi {
    /// Renders in the spaced-octet style OpenEPC uses in its XML CDRs.
    pub fn to_xml_octets(&self) -> String {
        self.0
            .to_be_bytes()
            .iter()
            .map(|b| format!("{b:02X}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// One gateway charging record for one subscriber over one period.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChargingDataRecord {
    /// Subscriber the record covers.
    pub served_imsi: Imsi,
    /// IPv4 of the generating gateway, dotted-quad.
    pub gateway_address: String,
    /// Charging policy profile id.
    pub charging_id: u32,
    /// Gateway-local record sequence number.
    pub sequence_number: u64,
    /// First usage instant in the period.
    pub time_of_first_usage: SimTime,
    /// Last usage instant in the period.
    pub time_of_last_usage: SimTime,
    /// Uplink bytes metered at the gateway.
    pub datavolume_uplink: u64,
    /// Downlink bytes metered at the gateway.
    pub datavolume_downlink: u64,
}

impl ChargingDataRecord {
    /// Elapsed usage time in whole seconds (the `timeUsage` XML field).
    pub fn time_usage_secs(&self) -> u64 {
        (self.time_of_last_usage - self.time_of_first_usage).as_micros() / 1_000_000
    }

    /// Total metered volume, both directions.
    pub fn total_volume(&self) -> u64 {
        self.datavolume_uplink + self.datavolume_downlink
    }

    /// Serializes in the OpenEPC XML shape of Trace 1.
    pub fn to_xml(&self) -> String {
        format!(
            "<chargingRecord>\n\
             \t<servedIMSI>{}</servedIMSI>\n\
             \t<gatewayAddress>{}</gatewayAddress>\n\
             \t<chargingID>{}</chargingID>\n\
             \t<SequenceNumber>{}</SequenceNumber>\n\
             \t<timeOfFirstUsage>{}</timeOfFirstUsage>\n\
             \t<timeOfLastUsage>{}</timeOfLastUsage>\n\
             \t<timeUsage>{}</timeUsage>\n\
             \t<datavolumeUplink>{}</datavolumeUplink>\n\
             \t<datavolumeDownlink>{}</datavolumeDownlink>\n\
             </chargingRecord>",
            self.served_imsi.to_xml_octets(),
            self.gateway_address,
            self.charging_id,
            self.sequence_number,
            self.time_of_first_usage.as_secs(),
            self.time_of_last_usage.as_secs(),
            self.time_usage_secs(),
            self.datavolume_uplink,
            self.datavolume_downlink,
        )
    }

    /// Parses the XML form produced by [`Self::to_xml`]. Returns `None`
    /// on any structural mismatch.
    pub fn from_xml(xml: &str) -> Option<ChargingDataRecord> {
        fn field<'a>(xml: &'a str, tag: &str) -> Option<&'a str> {
            let open = format!("<{tag}>");
            let close = format!("</{tag}>");
            let start = xml.find(&open)? + open.len();
            let end = xml[start..].find(&close)? + start;
            Some(&xml[start..end])
        }
        let imsi_hex: String = field(xml, "servedIMSI")?
            .split_whitespace()
            .collect::<Vec<_>>()
            .join("");
        let imsi = u64::from_str_radix(&imsi_hex, 16).ok()?;
        Some(ChargingDataRecord {
            served_imsi: Imsi(imsi),
            gateway_address: field(xml, "gatewayAddress")?.to_string(),
            charging_id: field(xml, "chargingID")?.parse().ok()?,
            sequence_number: field(xml, "SequenceNumber")?.parse().ok()?,
            time_of_first_usage: SimTime::from_secs(field(xml, "timeOfFirstUsage")?.parse().ok()?),
            time_of_last_usage: SimTime::from_secs(field(xml, "timeOfLastUsage")?.parse().ok()?),
            datavolume_uplink: field(xml, "datavolumeUplink")?.parse().ok()?,
            datavolume_downlink: field(xml, "datavolumeDownlink")?.parse().ok()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> ChargingDataRecord {
        ChargingDataRecord {
            served_imsi: Imsi(0x00011132547648F5),
            gateway_address: "192.168.2.11".to_string(),
            charging_id: 0,
            sequence_number: 1001,
            time_of_first_usage: SimTime::from_secs(100),
            time_of_last_usage: SimTime::from_secs(3700),
            datavolume_uplink: 274841,
            datavolume_downlink: 33604032,
        }
    }

    #[test]
    fn time_usage_matches_trace() {
        assert_eq!(record().time_usage_secs(), 3600);
    }

    #[test]
    fn imsi_octets_match_trace_format() {
        assert_eq!(
            record().served_imsi.to_xml_octets(),
            "00 01 11 32 54 76 48 F5"
        );
    }

    #[test]
    fn xml_contains_all_trace_fields() {
        let xml = record().to_xml();
        for tag in [
            "servedIMSI",
            "gatewayAddress",
            "chargingID",
            "SequenceNumber",
            "timeOfFirstUsage",
            "timeOfLastUsage",
            "timeUsage",
            "datavolumeUplink",
            "datavolumeDownlink",
        ] {
            assert!(xml.contains(&format!("<{tag}>")), "missing {tag}");
        }
        assert!(xml.contains("274841"));
        assert!(xml.contains("33604032"));
    }

    #[test]
    fn xml_roundtrip() {
        let r = record();
        let parsed = ChargingDataRecord::from_xml(&r.to_xml()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn malformed_xml_rejected() {
        assert!(ChargingDataRecord::from_xml("<chargingRecord></chargingRecord>").is_none());
        assert!(ChargingDataRecord::from_xml("").is_none());
        let broken = record()
            .to_xml()
            .replace("datavolumeUplink>274841", "datavolumeUplink>xx");
        assert!(ChargingDataRecord::from_xml(&broken).is_none());
    }

    #[test]
    fn total_volume_sums_directions() {
        assert_eq!(record().total_volume(), 274841 + 33604032);
    }
}
