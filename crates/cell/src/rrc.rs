//! RRC connection management and the COUNTER CHECK procedure (§5.4).
//!
//! In 4G/5G the base station releases a device's radio connection after an
//! inactivity period, and — when the operator enables it — first runs
//! RRC COUNTER CHECK to query the hardware modem's received-byte count.
//! TLC builds the operator's tamper-resilient *downlink* record from these
//! check responses: the operator's view at any instant is the modem count
//! as of the most recent completed check.
//!
//! Two inaccuracies follow, reproduced here and measured in Fig. 18:
//! traffic since the last check is invisible until the next release, and
//! the operator snapshots "cycle end" on its own (skewed) clock.

use tlc_net::time::{SimDuration, SimTime};

/// Default RRC inactivity timeout before the base station releases the
/// connection (typical operator configuration ~10 s).
pub const DEFAULT_INACTIVITY: SimDuration = SimDuration(10_000_000);

/// One completed COUNTER CHECK exchange.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterCheck {
    /// When the check completed (connection release instant).
    pub at: SimTime,
    /// Cumulative downlink bytes the modem reported.
    pub modem_bytes: u64,
}

/// Default period for in-connection COUNTER CHECKs on long-lived
/// connections (without these, a 24×7 stream that never goes idle would
/// never report; TS 36.331 allows the check at any time on a live
/// connection).
pub const DEFAULT_PERIODIC_CHECK: SimDuration = SimDuration(30_000_000);

/// Tracks one device's RRC connection and the operator's check history.
#[derive(Clone, Debug)]
pub struct RrcMonitor {
    inactivity: SimDuration,
    /// Optional in-connection periodic check interval.
    periodic: Option<SimDuration>,
    last_check: SimTime,
    connected: bool,
    last_activity: SimTime,
    checks: Vec<CounterCheck>,
    connection_setups: u64,
    counter_check_msgs: u64,
}

impl RrcMonitor {
    /// New monitor; the device starts idle. Release-triggered checks only.
    pub fn new(inactivity: SimDuration) -> Self {
        assert!(inactivity > SimDuration::ZERO);
        RrcMonitor {
            inactivity,
            periodic: None,
            last_check: SimTime::ZERO,
            connected: false,
            last_activity: SimTime::ZERO,
            checks: Vec::new(),
            connection_setups: 0,
            counter_check_msgs: 0,
        }
    }

    /// Adds an in-connection periodic COUNTER CHECK every `period`, so
    /// continuously streaming devices still produce fresh records.
    pub fn with_periodic(mut self, period: SimDuration) -> Self {
        assert!(period > SimDuration::ZERO);
        self.periodic = Some(period);
        self
    }

    /// Packet activity on the bearer at `now`: establishes the connection
    /// if idle and restarts the inactivity timer.
    pub fn on_activity(&mut self, now: SimTime) {
        if !self.connected {
            self.connected = true;
            self.connection_setups += 1;
            // The periodic-check timer starts at connection setup.
            self.last_check = now;
        }
        self.last_activity = self.last_activity.max(now);
    }

    /// Radio coverage lost at `now`: the connection drops *without* a
    /// counter check (the base station cannot reach the device). Counts
    /// since the last check are not lost — the modem counter is
    /// cumulative, so the next successful check reports them.
    pub fn on_outage(&mut self, now: SimTime) {
        let _ = now;
        self.connected = false;
    }

    /// The instant the inactivity timer will fire, if connected.
    pub fn release_due(&self) -> Option<SimTime> {
        self.connected.then(|| self.last_activity + self.inactivity)
    }

    /// The instant the next periodic check is due, if enabled and
    /// connected.
    pub fn periodic_due(&self) -> Option<SimTime> {
        let p = self.periodic?;
        self.connected.then(|| self.last_check + p)
    }

    /// Runs the periodic in-connection COUNTER CHECK if it is due by
    /// `now`, recording the modem's cumulative count.
    pub fn poll_periodic(&mut self, now: SimTime, modem_bytes: u64) -> Option<SimTime> {
        let due = self.periodic_due()?;
        if now < due {
            return None;
        }
        self.checks.push(CounterCheck {
            at: due,
            modem_bytes,
        });
        self.counter_check_msgs += 2;
        self.last_check = due;
        Some(due)
    }

    /// Drives the inactivity release: if the timer has expired by `now`,
    /// the base station runs COUNTER CHECK (recording `modem_bytes`, the
    /// modem's cumulative count — unchanged since `last_activity` because
    /// there was no traffic) and releases the connection.
    ///
    /// Returns the release instant when a release happened.
    pub fn poll_release(&mut self, now: SimTime, modem_bytes: u64) -> Option<SimTime> {
        let due = self.release_due()?;
        if now < due {
            return None;
        }
        self.checks.push(CounterCheck {
            at: due,
            modem_bytes,
        });
        // One COUNTER CHECK + one COUNTER CHECK RESPONSE.
        self.counter_check_msgs += 2;
        self.connected = false;
        Some(due)
    }

    /// The operator's tamper-resilient downlink record as of true instant
    /// `t`: the modem count from the latest check completed by then.
    pub fn operator_view_at(&self, t: SimTime) -> u64 {
        self.checks
            .iter()
            .rev()
            .find(|c| c.at <= t)
            .map(|c| c.modem_bytes)
            .unwrap_or(0)
    }

    /// Whether the device currently holds an RRC connection.
    pub fn is_connected(&self) -> bool {
        self.connected
    }

    /// Completed checks, oldest first.
    pub fn checks(&self) -> &[CounterCheck] {
        &self.checks
    }

    /// RRC COUNTER CHECK / RESPONSE messages exchanged so far — the
    /// paper's bound: "bounded by the number of RRC connection releases".
    pub fn counter_check_msgs(&self) -> u64 {
        self.counter_check_msgs
    }

    /// Connection setups so far.
    pub fn connection_setups(&self) -> u64 {
        self.connection_setups
    }
}

impl Default for RrcMonitor {
    fn default() -> Self {
        Self::new(DEFAULT_INACTIVITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn activity_connects_and_release_fires_after_timeout() {
        let mut rrc = RrcMonitor::new(SimDuration::from_secs(10));
        assert!(!rrc.is_connected());
        rrc.on_activity(secs(5));
        assert!(rrc.is_connected());
        assert_eq!(rrc.release_due(), Some(secs(15)));
        // Not yet due.
        assert_eq!(rrc.poll_release(secs(14), 1000), None);
        // Due: check recorded at the exact timer expiry.
        assert_eq!(rrc.poll_release(secs(20), 1000), Some(secs(15)));
        assert!(!rrc.is_connected());
        assert_eq!(
            rrc.checks(),
            &[CounterCheck {
                at: secs(15),
                modem_bytes: 1000
            }]
        );
        assert_eq!(rrc.counter_check_msgs(), 2);
    }

    #[test]
    fn activity_extends_timer() {
        let mut rrc = RrcMonitor::new(SimDuration::from_secs(10));
        rrc.on_activity(secs(0));
        rrc.on_activity(secs(8));
        assert_eq!(rrc.release_due(), Some(secs(18)));
        assert_eq!(rrc.poll_release(secs(12), 500), None);
    }

    #[test]
    fn outage_drops_connection_without_check() {
        let mut rrc = RrcMonitor::new(SimDuration::from_secs(10));
        rrc.on_activity(secs(0));
        rrc.on_outage(secs(2));
        assert!(!rrc.is_connected());
        assert!(rrc.checks().is_empty());
        assert_eq!(rrc.counter_check_msgs(), 0);
        // No release pending while idle.
        assert_eq!(rrc.poll_release(secs(100), 999), None);
    }

    #[test]
    fn cumulative_counts_survive_outage_drops() {
        let mut rrc = RrcMonitor::new(SimDuration::from_secs(10));
        rrc.on_activity(secs(0));
        rrc.on_outage(secs(2)); // 1000 bytes so far, unreported
        rrc.on_activity(secs(5)); // reconnect, more traffic
        rrc.poll_release(secs(20), 2500); // check reports cumulative 2500
        assert_eq!(rrc.operator_view_at(secs(20)), 2500);
    }

    #[test]
    fn operator_view_lags_until_check() {
        let mut rrc = RrcMonitor::new(SimDuration::from_secs(10));
        rrc.on_activity(secs(0));
        // Cycle "ends" at t=5 while still connected: operator sees nothing.
        assert_eq!(rrc.operator_view_at(secs(5)), 0);
        rrc.poll_release(secs(10), 4000);
        assert_eq!(rrc.operator_view_at(secs(9)), 0);
        assert_eq!(rrc.operator_view_at(secs(10)), 4000);
        assert_eq!(rrc.operator_view_at(secs(100)), 4000);
    }

    #[test]
    fn multiple_checks_latest_wins() {
        let mut rrc = RrcMonitor::new(SimDuration::from_secs(1));
        rrc.on_activity(secs(0));
        rrc.poll_release(secs(1), 100);
        rrc.on_activity(secs(10));
        rrc.poll_release(secs(11), 300);
        assert_eq!(rrc.operator_view_at(secs(5)), 100);
        assert_eq!(rrc.operator_view_at(secs(12)), 300);
        assert_eq!(rrc.connection_setups(), 2);
        assert_eq!(rrc.counter_check_msgs(), 4);
    }
}
