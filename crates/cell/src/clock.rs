//! Clock skew between the edge nodes and the cellular core.
//!
//! TLC requires the operator and edge to agree on the charging cycle
//! boundary `T = (T_start, T_end)` (§4), synchronized via NTP. Residual
//! skew means the two sides snapshot their counters at slightly different
//! true instants, which is the paper's stated cause of the CDR errors in
//! Fig. 18 ("due to the asynchronous charging cycle start/end").

use tlc_net::rng::SimRng;
use tlc_net::time::SimTime;

/// A party's clock, offset from true simulation time.
#[derive(Clone, Copy, Debug)]
pub struct SkewedClock {
    /// Offset in microseconds added to true time to get this clock's
    /// reading (may be negative).
    pub offset_us: i64,
}

impl SkewedClock {
    /// A perfectly synchronized clock.
    pub fn perfect() -> Self {
        SkewedClock { offset_us: 0 }
    }

    /// A clock with a fixed offset (positive = runs ahead of true time).
    pub fn with_offset_us(offset_us: i64) -> Self {
        SkewedClock { offset_us }
    }

    /// Draws a residual-NTP-sync offset: zero-mean normal with the given
    /// standard deviation in milliseconds. Public NTP over cellular
    /// backhaul typically leaves tens-of-ms residuals; the paper's worst
    /// observed CDR error (12.7%) corresponds to second-scale desync.
    pub fn ntp_residual(std_dev_ms: f64, rng: &mut SimRng) -> Self {
        let offset_ms = rng.normal(0.0, std_dev_ms);
        SkewedClock {
            offset_us: (offset_ms * 1000.0) as i64,
        }
    }

    /// The true instant at which this clock shows local time `local`.
    ///
    /// A clock running ahead (positive offset) reaches any local reading
    /// *earlier* in true time; saturates at zero.
    pub fn true_time_of(&self, local: SimTime) -> SimTime {
        let t = local.as_micros() as i64 - self.offset_us;
        SimTime(t.max(0) as u64)
    }

    /// The local reading shown at true instant `truth`.
    pub fn local_time_of(&self, truth: SimTime) -> SimTime {
        let t = truth.as_micros() as i64 + self.offset_us;
        SimTime(t.max(0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clock_is_identity() {
        let c = SkewedClock::perfect();
        let t = SimTime::from_secs(100);
        assert_eq!(c.true_time_of(t), t);
        assert_eq!(c.local_time_of(t), t);
    }

    #[test]
    fn ahead_clock_fires_early() {
        // +50 ms offset: the clock shows "cycle end" 50 ms before true end.
        let c = SkewedClock::with_offset_us(50_000);
        let cycle_end_local = SimTime::from_secs(3600);
        assert_eq!(
            c.true_time_of(cycle_end_local),
            SimTime::from_micros(3600 * 1_000_000 - 50_000)
        );
    }

    #[test]
    fn behind_clock_fires_late() {
        let c = SkewedClock::with_offset_us(-50_000);
        assert_eq!(
            c.true_time_of(SimTime::from_secs(1)),
            SimTime::from_micros(1_050_000)
        );
    }

    #[test]
    fn conversions_are_inverse() {
        let c = SkewedClock::with_offset_us(123_456);
        let t = SimTime::from_secs(10);
        assert_eq!(c.true_time_of(c.local_time_of(t)), t);
        assert_eq!(c.local_time_of(c.true_time_of(t)), t);
    }

    #[test]
    fn saturates_at_epoch() {
        let c = SkewedClock::with_offset_us(5_000_000);
        assert_eq!(c.true_time_of(SimTime::from_secs(1)), SimTime::ZERO);
    }

    #[test]
    fn ntp_residual_is_zero_mean() {
        let mut rng = SimRng::new(1);
        let n = 5000;
        let mean: f64 = (0..n)
            .map(|_| SkewedClock::ntp_residual(30.0, &mut rng).offset_us as f64)
            .sum::<f64>()
            / n as f64;
        assert!(mean.abs() < 3000.0, "mean offset {mean} us");
    }
}
