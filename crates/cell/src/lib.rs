//! # tlc-cell
//!
//! LTE/5G cellular substrate for the TLC reproduction of *"Bridging the
//! Data Charging Gap in the Cellular Edge"* (SIGCOMM '19): the emulated
//! counterpart of the paper's OpenEPC core + Qualcomm small cell testbed.
//!
//! * [`cdr`] — gateway Charging Data Records in the Trace-1 XML shape,
//! * [`counters`] — named counting vantages with time-indexed histories,
//! * [`datapath`] — the full device ↔ base station ↔ gateway ↔ server
//!   pipeline, with congestion queues, air loss, outage buffering, QCI
//!   priority, and RLF detach,
//! * [`rrc`] — RRC connection management and the COUNTER CHECK procedure
//!   backing TLC's tamper-resilient downlink records,
//! * [`monitor`] — the §5.4 monitor taxonomy (user-space API vs rooted
//!   system monitor vs RRC counter check) and edge tamper policies,
//! * [`ofcs`] — the offline charging system: tariffs, quotas, and the
//!   paper's "throttle to 128 Kbps after 15 GB" policy actions,
//! * [`clock`] — NTP-residual clock skew between edge and core, the cause
//!   of the paper's Fig. 18 CDR errors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdr;
pub mod clock;
pub mod counters;
pub mod datapath;
pub mod monitor;
pub mod ofcs;
pub mod rrc;

pub use cdr::{ChargingDataRecord, Imsi, LEGACY_CDR_WIRE_BYTES};
pub use clock::SkewedClock;
pub use counters::{CountingPoint, Vantage, ALL_VANTAGES};
pub use datapath::{Datapath, DatapathConfig, DropStats, FlowCounters};
pub use monitor::{operator_downlink_report, MonitorKind, MonitorReport, TamperPolicy};
pub use ofcs::{Bill, Ofcs, OveragePolicy, Tariff};
pub use rrc::{CounterCheck, RrcMonitor, DEFAULT_INACTIVITY};
