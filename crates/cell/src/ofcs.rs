//! The Offline Charging System (OFCS) — CDRs to bills (§2.1).
//!
//! "The charging function converts the CDRs to the bills, and may apply
//! policy-driven actions (e.g., high-QoS for low-latency edge traffic,
//! service degrade or network speed limit). ... Some offer the
//! 'unlimited' data plan, but throttle the speed if the usage exceeds
//! some quota (e.g. 128 Kbps after 15 GB)."
//!
//! TLC deliberately does not assume any particular policy; this module
//! supplies the policy layer so end-to-end billing can be exercised —
//! the negotiated TLC volume feeds the same tariff as a legacy CDR
//! volume would.

use crate::cdr::ChargingDataRecord;
use serde::{Deserialize, Serialize};

/// A volume tariff with optional quota semantics.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Tariff {
    /// Price per megabyte in micro-currency units (e.g. µ$).
    pub price_per_mb_micro: u64,
    /// Pre-paid volume included in the base fee.
    pub included_bytes: u64,
    /// Base fee in micro-currency units.
    pub base_fee_micro: u64,
    /// Quota handling once `included_bytes` is exhausted.
    pub overage: OveragePolicy,
}

/// What happens past the included volume.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum OveragePolicy {
    /// Metered: every byte past the quota is charged at the tariff rate.
    Metered,
    /// "Unlimited": no overage charges, but the speed is throttled (the
    /// paper's 128 Kbps-after-15 GB example).
    Throttle {
        /// Rate limit applied after the quota, bits/second.
        limit_bps: u64,
    },
    /// Service cut off at the quota.
    Cutoff,
}

impl Tariff {
    /// The AT&T-style plan the paper cites: unlimited with a 15 GB quota
    /// and a 128 Kbps throttle.
    pub fn unlimited_throttled() -> Self {
        Tariff {
            price_per_mb_micro: 0,
            included_bytes: 15 * 1_000_000_000,
            base_fee_micro: 40_000_000, // $40 base
            overage: OveragePolicy::Throttle { limit_bps: 128_000 },
        }
    }

    /// A metered edge plan: $10 base + 1¢/MB, no included volume.
    pub fn metered_edge() -> Self {
        Tariff {
            price_per_mb_micro: 10_000,
            included_bytes: 0,
            base_fee_micro: 10_000_000,
            overage: OveragePolicy::Metered,
        }
    }
}

/// A rendered bill for one charging cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bill {
    /// Volume billed, bytes.
    pub volume_bytes: u64,
    /// Amount due in micro-currency units.
    pub amount_micro: u64,
    /// Whether the subscriber ends the cycle throttled.
    pub throttled: bool,
    /// Whether service was cut off during the cycle.
    pub cut_off: bool,
}

/// Per-subscriber OFCS state across a billing cycle.
#[derive(Clone, Debug)]
pub struct Ofcs {
    tariff: Tariff,
    cycle_usage: u64,
    records: Vec<ChargingDataRecord>,
}

impl Ofcs {
    /// Fresh cycle state under a tariff.
    pub fn new(tariff: Tariff) -> Self {
        Ofcs {
            tariff,
            cycle_usage: 0,
            records: Vec::new(),
        }
    }

    /// Ingests one gateway CDR, accumulating its volume.
    pub fn ingest_cdr(&mut self, cdr: ChargingDataRecord) {
        self.cycle_usage += cdr.total_volume();
        self.records.push(cdr);
    }

    /// Ingests a TLC-negotiated volume directly (the PoC's `x` replaces
    /// the unilateral CDR volume in the same tariff pipeline).
    pub fn ingest_negotiated(&mut self, volume_bytes: u64) {
        self.cycle_usage += volume_bytes;
    }

    /// Usage accumulated this cycle.
    pub fn cycle_usage(&self) -> u64 {
        self.cycle_usage
    }

    /// The rate limit currently in force, if any (policy-driven action).
    pub fn current_rate_limit(&self) -> Option<u64> {
        if self.cycle_usage <= self.tariff.included_bytes {
            return None;
        }
        match self.tariff.overage {
            OveragePolicy::Throttle { limit_bps } => Some(limit_bps),
            OveragePolicy::Cutoff => Some(0),
            OveragePolicy::Metered => None,
        }
    }

    /// Renders the cycle's bill.
    pub fn bill(&self) -> Bill {
        let over = self.cycle_usage.saturating_sub(self.tariff.included_bytes);
        let (amount, throttled, cut_off) = match self.tariff.overage {
            OveragePolicy::Metered => {
                // Round up to the next whole MB like real tariffs do.
                let mb = over.div_ceil(1_000_000);
                (
                    self.tariff.base_fee_micro + mb * self.tariff.price_per_mb_micro,
                    false,
                    false,
                )
            }
            OveragePolicy::Throttle { .. } => (self.tariff.base_fee_micro, over > 0, false),
            OveragePolicy::Cutoff => (self.tariff.base_fee_micro, false, over > 0),
        };
        Bill {
            volume_bytes: self.cycle_usage,
            amount_micro: amount,
            throttled,
            cut_off,
        }
    }

    /// Ingested CDRs, in arrival order.
    pub fn records(&self) -> &[ChargingDataRecord] {
        &self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdr::Imsi;
    use tlc_net::time::SimTime;

    fn cdr(ul: u64, dl: u64, seq: u64) -> ChargingDataRecord {
        ChargingDataRecord {
            served_imsi: Imsi(1),
            gateway_address: "192.168.2.11".into(),
            charging_id: 0,
            sequence_number: seq,
            time_of_first_usage: SimTime::ZERO,
            time_of_last_usage: SimTime::from_secs(3600),
            datavolume_uplink: ul,
            datavolume_downlink: dl,
        }
    }

    #[test]
    fn metered_bill_rounds_up_to_mb() {
        let mut o = Ofcs::new(Tariff::metered_edge());
        o.ingest_cdr(cdr(274_841, 33_604_032, 1001)); // Trace 1's volumes
        let b = o.bill();
        assert_eq!(b.volume_bytes, 33_878_873);
        // 34 MB (rounded up) at 1¢ + $10 base.
        assert_eq!(b.amount_micro, 10_000_000 + 34 * 10_000);
        assert!(!b.throttled && !b.cut_off);
    }

    #[test]
    fn unlimited_plan_throttles_after_quota() {
        let mut o = Ofcs::new(Tariff::unlimited_throttled());
        assert_eq!(o.current_rate_limit(), None);
        o.ingest_negotiated(14 * 1_000_000_000);
        assert_eq!(o.current_rate_limit(), None, "under quota: full speed");
        o.ingest_negotiated(2 * 1_000_000_000); // crosses 15 GB
        assert_eq!(
            o.current_rate_limit(),
            Some(128_000),
            "throttled to 128 Kbps"
        );
        let b = o.bill();
        assert!(b.throttled);
        assert_eq!(
            b.amount_micro, 40_000_000,
            "no overage charges on unlimited"
        );
    }

    #[test]
    fn cutoff_policy_stops_service() {
        let t = Tariff {
            overage: OveragePolicy::Cutoff,
            included_bytes: 1_000_000,
            price_per_mb_micro: 0,
            base_fee_micro: 0,
        };
        let mut o = Ofcs::new(t);
        o.ingest_negotiated(999_999);
        assert_eq!(o.current_rate_limit(), None);
        o.ingest_negotiated(2);
        assert_eq!(o.current_rate_limit(), Some(0));
        assert!(o.bill().cut_off);
    }

    #[test]
    fn cdrs_accumulate_and_are_retained() {
        let mut o = Ofcs::new(Tariff::metered_edge());
        o.ingest_cdr(cdr(1000, 2000, 1));
        o.ingest_cdr(cdr(500, 500, 2));
        assert_eq!(o.cycle_usage(), 4000);
        assert_eq!(o.records().len(), 2);
        assert_eq!(o.records()[1].sequence_number, 2);
    }

    #[test]
    fn negotiated_volume_feeds_the_same_tariff() {
        // A TLC PoC's x and a legacy CDR of the same volume bill equally.
        let mut legacy = Ofcs::new(Tariff::metered_edge());
        legacy.ingest_cdr(cdr(0, 50_000_000, 1));
        let mut tlc = Ofcs::new(Tariff::metered_edge());
        tlc.ingest_negotiated(50_000_000);
        assert_eq!(legacy.bill().amount_micro, tlc.bill().amount_micro);
    }

    #[test]
    fn zero_usage_bills_base_fee_only() {
        let o = Ofcs::new(Tariff::metered_edge());
        let b = o.bill();
        assert_eq!(b.amount_micro, 10_000_000);
        assert_eq!(b.volume_bytes, 0);
    }
}
