//! The end-to-end cellular datapath: device ↔ small cell ↔ gateway ↔ edge
//! server.
//!
//! This is the emulated stand-in for the paper's physical testbed. All the
//! charging-gap mechanics live in *where packets are counted relative to
//! where they are dropped*:
//!
//! * **Uplink**: the device app counts at send (`x̂_e`); drops in the
//!   device's radio queue, on the air, or during outages happen *after*
//!   that count and *before* the gateway's uplink meter (`x̂_o`).
//! * **Downlink**: the gateway meters at ingress from the server (legacy
//!   CDR), then the base-station queue (congested by background traffic),
//!   the air interface, and outages drop packets *after* that meter and
//!   *before* the modem's hardware counter (TLC's `x̂_o` source).
//!
//! The datapath is a polled state machine. The driver must call
//! [`Datapath::poll`] at every instant returned by
//! [`Datapath::next_event_time`] (the harness in `tlc-sim` does this);
//! that keeps hop-to-hop handoffs exact.

use crate::counters::CountingPoint;
use crate::rrc::RrcMonitor;
use std::collections::HashMap;
use tlc_net::fair::FairQueue;
use tlc_net::link::{Link, LinkParams};
use tlc_net::loss::{GilbertElliott, RssDrivenLoss};
use tlc_net::packet::{FlowId, Packet};
use tlc_net::queue::{Discipline, PacketQueue, QueueStats};
use tlc_net::radio::{RadioTimeline, RLF_DETACH};
use tlc_net::rng::SimRng;
use tlc_net::time::{SimDuration, SimTime};

/// Static datapath configuration.
#[derive(Clone, Debug)]
pub struct DatapathConfig {
    /// Uplink air-interface capacity in bits/second.
    pub ul_capacity_bps: u64,
    /// Downlink air-interface capacity in bits/second.
    pub dl_capacity_bps: u64,
    /// One-way air latency.
    pub radio_latency: SimDuration,
    /// Device-side uplink buffer.
    pub device_buffer_bytes: u64,
    /// Base-station downlink buffer (per device).
    pub bs_buffer_bytes: u64,
    /// Backhaul (small cell ↔ core/server) link parameters.
    pub backhaul: LinkParams,
    /// Residual air-interface loss as a function of signal strength.
    pub rss_loss: RssDrivenLoss,
    /// Optional bursty (Gilbert–Elliott) fading loss layered on top of
    /// the RSS-driven model: deep fades drop runs of packets, matching
    /// the correlated losses of weak cellular coverage. `None` keeps the
    /// independent RSS-driven losses only.
    pub bursty_fading: Option<GilbertElliott>,
    /// RRC inactivity timeout driving COUNTER CHECK cadence.
    pub rrc_inactivity: SimDuration,
    /// In-connection periodic COUNTER CHECK interval for long-lived
    /// connections.
    pub rrc_periodic_check: SimDuration,
    /// Use DRR per-flow fair queueing on the radio links (approximates an
    /// eNodeB's proportional-fair scheduler) instead of shared drop-tail.
    pub fair_queueing: bool,
    /// Enforce per-QCI packet delay budgets at the radio scheduler
    /// (§3.1 cause 5: the operator's middlebox drops real-time frames
    /// that exceed the latency SLA — after the gateway has metered them).
    pub enforce_sla_delay_budget: bool,
}

impl Default for DatapathConfig {
    fn default() -> Self {
        DatapathConfig {
            // 20 MHz FDD band-2 carrier like the paper's small cell:
            // ~110 Mbps downlink, ~75 Mbps uplink goodput, so the paper's
            // 100-160 Mbps background sweep saturates the cell (Fig. 3).
            ul_capacity_bps: 75_000_000,
            dl_capacity_bps: 110_000_000,
            radio_latency: SimDuration::from_millis(10),
            device_buffer_bytes: 512 * 1024,
            bs_buffer_bytes: 1024 * 1024,
            backhaul: LinkParams::gigabit_backhaul(),
            rss_loss: RssDrivenLoss::paper_default(),
            bursty_fading: None,
            rrc_inactivity: crate::rrc::DEFAULT_INACTIVITY,
            rrc_periodic_check: crate::rrc::DEFAULT_PERIODIC_CHECK,
            fair_queueing: false,
            enforce_sla_delay_budget: false,
        }
    }
}

/// Per-flow byte counters at every vantage of the pipeline.
#[derive(Clone, Debug, Default)]
pub struct FlowCounters {
    /// Device app bytes sent (uplink `x̂_e`).
    pub device_app_sent: CountingPoint,
    /// Device app bytes received (edge's downlink delivery view).
    pub device_app_received: CountingPoint,
    /// Hardware modem downlink bytes (RRC COUNTER CHECK source).
    pub modem_received: CountingPoint,
    /// Gateway uplink meter (operator's uplink record).
    pub gateway_uplink: CountingPoint,
    /// Gateway downlink ingress meter (operator's legacy downlink record).
    pub gateway_downlink: CountingPoint,
    /// Server bytes sent (downlink `x̂_e`).
    pub server_sent: CountingPoint,
    /// Server bytes received (uplink delivery view).
    pub server_received: CountingPoint,
}

/// Aggregate drop accounting by cause, for diagnostics and sanity checks.
#[derive(Clone, Copy, Debug, Default)]
pub struct DropStats {
    /// Uplink device-buffer overflows.
    pub ul_queue: u64,
    /// Downlink base-station-buffer overflows.
    pub dl_queue: u64,
    /// Residual air-interface losses (both directions).
    pub air: u64,
    /// Packets discarded because the device was detached (RLF).
    pub detached: u64,
    /// Packets lost in handovers (source-cell buffer flushes).
    pub handover: u64,
    /// Real-time frames dropped for exceeding their QCI delay budget
    /// (SLA enforcement).
    pub sla: u64,
}

/// The radio buffer: either the shared QCI-priority drop-tail queue or
/// the DRR per-flow fair queue, behind one interface.
#[derive(Debug)]
enum RadioQueue {
    Classic(PacketQueue),
    Fair(FairQueue),
}

impl RadioQueue {
    fn new(fair: bool, capacity: u64) -> Self {
        if fair {
            RadioQueue::Fair(FairQueue::new(capacity))
        } else {
            RadioQueue::Classic(PacketQueue::new(Discipline::QciPriority, capacity))
        }
    }

    fn enqueue(&mut self, pkt: Packet) -> bool {
        match self {
            RadioQueue::Classic(q) => q.enqueue(pkt),
            RadioQueue::Fair(q) => q.enqueue(pkt),
        }
    }

    fn dequeue(&mut self) -> Option<Packet> {
        match self {
            RadioQueue::Classic(q) => q.dequeue(),
            RadioQueue::Fair(q) => q.dequeue(),
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            RadioQueue::Classic(q) => q.is_empty(),
            RadioQueue::Fair(q) => q.is_empty(),
        }
    }

    fn flush(&mut self) -> Vec<Packet> {
        match self {
            RadioQueue::Classic(q) => q.flush(),
            RadioQueue::Fair(q) => q.flush(),
        }
    }

    fn stats(&self) -> QueueStats {
        match self {
            RadioQueue::Classic(q) => q.stats(),
            RadioQueue::Fair(q) => q.stats(),
        }
    }
}

/// A radio hop: bounded queue → serializer that only runs while the device
/// has coverage → per-packet air loss → constant latency.
#[derive(Debug)]
struct RadioLink {
    rate_bps: u64,
    latency: SimDuration,
    queue: RadioQueue,
    /// Drop packets older than their QCI delay budget at service time.
    enforce_sla: bool,
    /// (serialization completes, packet)
    in_service: Option<(SimTime, Packet)>,
    /// (delivery instant, packet), delivery-ordered.
    in_flight: std::collections::VecDeque<(SimTime, Packet)>,
    air_drops: u64,
    sla_drops: u64,
}

impl RadioLink {
    fn new(
        rate_bps: u64,
        latency: SimDuration,
        buffer_bytes: u64,
        fair: bool,
        enforce_sla: bool,
    ) -> Self {
        RadioLink {
            rate_bps,
            latency,
            queue: RadioQueue::new(fair, buffer_bytes),
            enforce_sla,
            in_service: None,
            in_flight: std::collections::VecDeque::new(),
            air_drops: 0,
            sla_drops: 0,
        }
    }

    /// Offers a packet. The caller must have advanced the link to `now`
    /// first (the datapath polls itself before every injection).
    fn enqueue(&mut self, now: SimTime, pkt: Packet, radio: &RadioTimeline) -> bool {
        let ok = self.queue.enqueue(pkt);
        self.maybe_start(now, radio);
        ok
    }

    fn maybe_start(&mut self, at: SimTime, radio: &RadioTimeline) {
        while self.in_service.is_none() {
            let Some(pkt) = self.queue.dequeue() else {
                break;
            };
            // SLA middlebox: a real-time frame whose queueing delay has
            // already blown its QCI delay budget is dropped instead of
            // transmitted stale (§3.1 cause 5).
            if self.enforce_sla {
                let budget = SimDuration::from_millis(pkt.qci.delay_budget_ms());
                if at.since(pkt.sent_at) > budget {
                    self.sla_drops += 1;
                    continue;
                }
            }
            let tx = SimDuration::transmission(pkt.size as u64, self.rate_bps);
            // Serialization pauses across outages; completion is exact.
            let done = radio.advance_connected(at, tx);
            self.in_service = Some((done, pkt));
        }
    }

    /// Completes services due by `now`, sampling air loss at the
    /// completion instant's RSS (plus optional bursty fading), then
    /// chains the next service.
    fn advance(
        &mut self,
        now: SimTime,
        radio: &RadioTimeline,
        rng: &mut SimRng,
        loss: &RssDrivenLoss,
        fading: &mut Option<GilbertElliott>,
    ) {
        while self
            .in_service
            .as_ref()
            .is_some_and(|(done, _)| *done <= now)
        {
            let Some((done, pkt)) = self.in_service.take() else {
                break;
            };
            let rss = radio.rss_at(done);
            let faded = match fading {
                Some(ge) => {
                    use tlc_net::loss::LossModel;
                    ge.should_drop(done, &pkt, rng)
                }
                None => false,
            };
            if faded || loss.should_drop_at(rss, rng) {
                self.air_drops += 1;
            } else {
                self.in_flight.push_back((done + self.latency, pkt));
            }
            self.maybe_start(done, radio);
        }
    }

    /// Packets delivered by `now`, with their exact delivery instants
    /// (the driver may poll later than the delivery; counters must use
    /// the true time).
    fn pop_delivered(&mut self, now: SimTime) -> Vec<(SimTime, Packet)> {
        let mut out = Vec::new();
        while self.in_flight.front().is_some_and(|(at, _)| *at <= now) {
            let Some(item) = self.in_flight.pop_front() else {
                break;
            };
            out.push(item);
        }
        out
    }

    fn next_event_time(&self) -> Option<SimTime> {
        let a = self.in_service.as_ref().map(|(t, _)| *t);
        let b = self.in_flight.front().map(|(t, _)| *t);
        match (a, b) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, y) => x.or(y),
        }
    }

    fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.in_service.is_none() && self.in_flight.is_empty()
    }
}

/// The assembled datapath for one device (plus any background flows that
/// share its cell).
pub struct Datapath {
    cfg: DatapathConfig,
    radio: RadioTimeline,
    rng: SimRng,
    ul_radio: RadioLink,
    dl_radio: RadioLink,
    ul_backhaul: Link,
    dl_backhaul: Link,
    flows: HashMap<FlowId, FlowCounters>,
    /// Flows belonging to *other* devices sharing the cell (the paper's
    /// "iperf background traffic to a separate phone"): they contend for
    /// the same links but do not touch this device's modem/RRC state and
    /// are not gated by its outages.
    foreign: std::collections::HashSet<FlowId>,
    /// Flow whose one-way delays are sampled (ping probes for Fig. 16a).
    probe: Option<FlowId>,
    /// (sent, delivered) pairs for the probe flow.
    probe_delays: Vec<(SimTime, SimTime)>,
    rrc: RrcMonitor,
    drops: DropStats,
    /// Precomputed RLF detach windows: (detach start, reattach).
    detach_intervals: Vec<(SimTime, SimTime)>,
    /// Pending handover instants (sorted ascending): at each, the source
    /// cell's queued packets are flushed (§3.1's link-layer mobility loss).
    handovers: std::collections::VecDeque<SimTime>,
    /// Per-direction bursty-fading channel state, when enabled.
    fading_ul: Option<GilbertElliott>,
    fading_dl: Option<GilbertElliott>,
}

impl Datapath {
    /// Builds a datapath over the given radio channel.
    pub fn new(cfg: DatapathConfig, radio: RadioTimeline, rng: SimRng) -> Self {
        // Outages longer than the RLF detection window cause a detach from
        // (outage start + RLF window) until coverage returns.
        let detach_intervals = radio
            .outage_intervals()
            .into_iter()
            .filter(|(s, e)| (*e - *s) > RLF_DETACH)
            .map(|(s, e)| (s + RLF_DETACH, e))
            .collect();
        let cfg2_fading = cfg.bursty_fading;
        Datapath {
            ul_radio: RadioLink::new(
                cfg.ul_capacity_bps,
                cfg.radio_latency,
                cfg.device_buffer_bytes,
                cfg.fair_queueing,
                cfg.enforce_sla_delay_budget,
            ),
            dl_radio: RadioLink::new(
                cfg.dl_capacity_bps,
                cfg.radio_latency,
                cfg.bs_buffer_bytes,
                cfg.fair_queueing,
                cfg.enforce_sla_delay_budget,
            ),
            ul_backhaul: Link::new(cfg.backhaul),
            dl_backhaul: Link::new(cfg.backhaul),
            rrc: RrcMonitor::new(cfg.rrc_inactivity).with_periodic(cfg.rrc_periodic_check),
            cfg,
            radio,
            rng,
            flows: HashMap::new(),
            foreign: std::collections::HashSet::new(),
            probe: None,
            probe_delays: Vec::new(),
            drops: DropStats::default(),
            detach_intervals,
            handovers: std::collections::VecDeque::new(),
            fading_ul: cfg2_fading,
            fading_dl: cfg2_fading,
        }
    }

    /// Schedules handover instants: at each, both radio queues flush (the
    /// packets buffered at the source cell are lost in the switch). The
    /// instants must be ascending.
    pub fn set_handovers(&mut self, mut instants: Vec<SimTime>) {
        instants.sort();
        self.handovers = instants.into();
    }

    /// Marks `flow` as the latency probe: every delivered packet records
    /// a (sent, delivered) pair retrievable via [`Self::probe_delays`].
    pub fn mark_probe(&mut self, flow: FlowId) {
        self.probe = Some(flow);
    }

    /// One-way (sent, delivered) samples of the probe flow.
    pub fn probe_delays(&self) -> &[(SimTime, SimTime)] {
        &self.probe_delays
    }

    /// Declares `flow` as belonging to a different device on the same
    /// cell: it shares link capacity but not this device's modem, RRC
    /// state, or outage gating.
    pub fn mark_foreign(&mut self, flow: FlowId) {
        self.foreign.insert(flow);
    }

    fn is_foreign(&self, flow: FlowId) -> bool {
        self.foreign.contains(&flow)
    }

    /// This device's cumulative modem downlink count (foreign flows
    /// excluded) — what RRC COUNTER CHECK reports.
    fn modem_total(&self) -> u64 {
        self.flows
            .iter()
            .filter(|(f, _)| !self.foreign.contains(f))
            .map(|(_, c)| c.modem_received.bytes())
            .sum()
    }

    /// Whether the device is RLF-detached at `t`.
    pub fn is_detached(&self, t: SimTime) -> bool {
        self.detach_intervals.iter().any(|(s, e)| *s <= t && t < *e)
    }

    fn counters(&mut self, flow: FlowId) -> &mut FlowCounters {
        self.flows.entry(flow).or_default()
    }

    /// Injects an uplink packet from the device application at `now`.
    ///
    /// While detached the send fails at the socket layer and nothing is
    /// counted (the app sees the error); otherwise the app's sent counter
    /// (`x̂_e`) advances even if the packet later dies on the radio.
    pub fn send_uplink(&mut self, now: SimTime, pkt: Packet) {
        self.poll(now);
        let foreign = self.is_foreign(pkt.flow);
        if !foreign && self.is_detached(now) {
            self.drops.detached += 1;
            return;
        }
        self.counters(pkt.flow)
            .device_app_sent
            .record(now, pkt.size);
        if !foreign {
            self.rrc.on_activity(now);
        }
        if !self.ul_radio.enqueue(now, pkt, &self.radio) {
            self.drops.ul_queue += 1;
        }
    }

    /// Injects a downlink packet from the edge server at `now`.
    ///
    /// While detached the server's sends are refused upstream (no bearer),
    /// uncounted on both sides — matching the paper's observation that
    /// RLF detach stops the gap from growing. Otherwise the server's sent
    /// counter and the gateway's downlink meter advance immediately; the
    /// radio may still lose the packet afterwards.
    pub fn send_downlink(&mut self, now: SimTime, pkt: Packet) {
        self.poll(now);
        if !self.is_foreign(pkt.flow) && self.is_detached(now) {
            self.drops.detached += 1;
            return;
        }
        let c = self.counters(pkt.flow);
        c.server_sent.record(now, pkt.size);
        c.gateway_downlink.record(now, pkt.size);
        // Backhaul is 1 Gbps and effectively lossless; the radio is the
        // bottleneck where congestion loss happens.
        let _ = self.dl_backhaul.enqueue(now, pkt);
    }

    /// Advances all components to `now` and shuttles packets between hops.
    pub fn poll(&mut self, now: SimTime) {
        // Handovers due by now: the source cell's buffered packets are
        // lost in the switch (counted after the gateway for downlink —
        // exactly the §3.1 mobility gap).
        while let Some(&h) = self.handovers.front() {
            if h > now {
                break;
            }
            self.handovers.pop_front();
            let lost = self.ul_radio.queue.flush().len() + self.dl_radio.queue.flush().len();
            self.drops.handover += lost as u64;
        }
        // Outage breaks any RRC connection without a counter check.
        if self.rrc.is_connected() && !self.radio.connected_at(now) {
            self.rrc.on_outage(now);
        }
        // Inactivity release triggers the COUNTER CHECK: the modem's
        // cumulative count at release time equals the current total
        // (no traffic occurred since last activity by construction).
        // Long-lived connections also get periodic in-connection checks.
        let modem_total = self.modem_total();
        self.rrc.poll_periodic(now, modem_total);
        self.rrc.poll_release(now, modem_total);

        // Downlink: backhaul -> base-station radio queue.
        for (at, pkt) in self.dl_backhaul.poll_timed(now) {
            if !self.dl_radio.enqueue(at, pkt, &self.radio) {
                self.drops.dl_queue += 1;
            }
        }
        // Downlink: radio deliveries -> modem & app counters.
        self.dl_radio.advance(
            now,
            &self.radio,
            &mut self.rng,
            &self.cfg.rss_loss,
            &mut self.fading_dl,
        );
        self.drops.air = self.ul_radio.air_drops + self.dl_radio.air_drops;
        self.drops.sla = self.ul_radio.sla_drops + self.dl_radio.sla_drops;
        for (at, pkt) in self.dl_radio.pop_delivered(now) {
            let foreign = self.foreign.contains(&pkt.flow);
            if self.probe == Some(pkt.flow) {
                self.probe_delays.push((pkt.sent_at, at));
            }
            let c = self.flows.entry(pkt.flow).or_default();
            c.modem_received.record(at, pkt.size);
            c.device_app_received.record(at, pkt.size);
            if !foreign {
                self.rrc.on_activity(at);
            }
        }
        // Uplink: radio deliveries -> backhaul.
        self.ul_radio.advance(
            now,
            &self.radio,
            &mut self.rng,
            &self.cfg.rss_loss,
            &mut self.fading_ul,
        );
        self.drops.air = self.ul_radio.air_drops + self.dl_radio.air_drops;
        for (at, pkt) in self.ul_radio.pop_delivered(now) {
            let _ = self.ul_backhaul.enqueue(at, pkt);
        }
        // Uplink: backhaul deliveries -> gateway & server counters.
        for (at, pkt) in self.ul_backhaul.poll_timed(now) {
            if self.probe == Some(pkt.flow) {
                self.probe_delays.push((pkt.sent_at, at));
            }
            let c = self.flows.entry(pkt.flow).or_default();
            c.gateway_uplink.record(at, pkt.size);
            c.server_received.record(at, pkt.size);
        }
    }

    /// Earliest instant at which [`Self::poll`] could make progress.
    pub fn next_event_time(&self, now: SimTime) -> Option<SimTime> {
        let mut t: Option<SimTime> = None;
        let mut consider = |cand: Option<SimTime>| {
            if let Some(c) = cand {
                t = Some(match t {
                    Some(cur) => cur.min(c),
                    None => c,
                });
            }
        };
        consider(self.ul_radio.next_event_time());
        consider(self.dl_radio.next_event_time());
        consider(self.ul_backhaul.next_event_time());
        consider(self.dl_backhaul.next_event_time());
        consider(self.rrc.release_due());
        consider(self.rrc.periodic_due());
        consider(self.handovers.front().copied());
        // Radio state changes matter while anything is pending or connected.
        if !self.is_quiescent() || self.rrc.is_connected() {
            consider(self.radio.next_transition_after(now));
        }
        t
    }

    fn is_quiescent(&self) -> bool {
        self.ul_radio.is_idle()
            && self.dl_radio.is_idle()
            && self.ul_backhaul.is_idle()
            && self.dl_backhaul.is_idle()
    }

    /// Per-flow counters (read-only).
    pub fn flow_counters(&self, flow: FlowId) -> Option<&FlowCounters> {
        self.flows.get(&flow)
    }

    /// All flows seen so far.
    pub fn flows(&self) -> impl Iterator<Item = (&FlowId, &FlowCounters)> {
        self.flows.iter()
    }

    /// The RRC monitor (operator's COUNTER-CHECK history).
    pub fn rrc(&self) -> &RrcMonitor {
        &self.rrc
    }

    /// Drop accounting.
    pub fn drops(&self) -> DropStats {
        self.drops
    }

    /// Queue counters for the (uplink, downlink) radio buffers.
    pub fn radio_queue_stats(&self) -> (QueueStats, QueueStats) {
        (self.ul_radio.queue.stats(), self.dl_radio.queue.stats())
    }

    /// The radio channel in use.
    pub fn radio(&self) -> &RadioTimeline {
        &self.radio
    }

    /// Configuration in use.
    pub fn config(&self) -> &DatapathConfig {
        &self.cfg
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use tlc_net::packet::{Direction, PacketIdAlloc, Qci};

    fn run_to_quiescence(dp: &mut Datapath, mut now: SimTime, horizon: SimTime) -> SimTime {
        while let Some(t) = dp.next_event_time(now) {
            if t > horizon {
                break;
            }
            now = t;
            dp.poll(now);
        }
        now
    }

    fn dl_pkt(alloc: &mut PacketIdAlloc, flow: u32, size: u32, t: SimTime) -> Packet {
        Packet::new(
            alloc.next_id(),
            FlowId(flow),
            Direction::Downlink,
            size,
            Qci::DEFAULT,
            t,
        )
    }

    fn ul_pkt(alloc: &mut PacketIdAlloc, flow: u32, size: u32, t: SimTime) -> Packet {
        Packet::new(
            alloc.next_id(),
            FlowId(flow),
            Direction::Uplink,
            size,
            Qci::DEFAULT,
            t,
        )
    }

    #[test]
    fn clean_channel_delivers_everything() {
        let radio = RadioTimeline::constant(SimDuration::from_secs(60), -80.0);
        let mut loss_free = DatapathConfig::default();
        loss_free.rss_loss = RssDrivenLoss {
            base_loss: 0.0,
            slope_per_dbm: 0.0,
            good_threshold_dbm: -95.0,
        };
        let mut dp = Datapath::new(loss_free, radio, SimRng::new(1));
        let mut alloc = PacketIdAlloc::new();
        for i in 0..100 {
            let t = SimTime::from_millis(i * 10);
            dp.poll(t);
            dp.send_uplink(t, ul_pkt(&mut alloc, 1, 1200, t));
            dp.send_downlink(t, dl_pkt(&mut alloc, 1, 1400, t));
        }
        run_to_quiescence(&mut dp, SimTime::from_secs(1), SimTime::from_secs(59));
        let c = dp.flow_counters(FlowId(1)).unwrap();
        assert_eq!(c.device_app_sent.bytes(), 120_000);
        assert_eq!(c.gateway_uplink.bytes(), 120_000);
        assert_eq!(c.server_received.bytes(), 120_000);
        assert_eq!(c.server_sent.bytes(), 140_000);
        assert_eq!(c.gateway_downlink.bytes(), 140_000);
        assert_eq!(c.modem_received.bytes(), 140_000);
        assert_eq!(c.device_app_received.bytes(), 140_000);
    }

    #[test]
    fn congestion_creates_downlink_gap_after_gateway() {
        // Offer far more downlink than the radio can carry.
        let radio = RadioTimeline::constant(SimDuration::from_secs(30), -80.0);
        let mut cfg = DatapathConfig::default();
        cfg.dl_capacity_bps = 10_000_000; // 10 Mbps bottleneck
        cfg.bs_buffer_bytes = 64 * 1024;
        let mut dp = Datapath::new(cfg, radio, SimRng::new(2));
        let mut alloc = PacketIdAlloc::new();
        // 100 Mbps offered for 2 seconds.
        let mut t = SimTime::ZERO;
        while t < SimTime::from_secs(2) {
            dp.poll(t);
            dp.send_downlink(t, dl_pkt(&mut alloc, 1, 1400, t));
            t += SimDuration::from_micros(112); // ~100 Mbps of 1400B pkts
        }
        run_to_quiescence(&mut dp, t, SimTime::from_secs(29));
        let c = dp.flow_counters(FlowId(1)).unwrap();
        assert!(c.gateway_downlink.bytes() > c.modem_received.bytes());
        assert!(dp.drops().dl_queue > 0, "expected queue overflow");
        // The operator metered everything the server sent.
        assert_eq!(c.gateway_downlink.bytes(), c.server_sent.bytes());
    }

    #[test]
    fn uplink_congestion_gap_is_before_gateway() {
        let radio = RadioTimeline::constant(SimDuration::from_secs(30), -80.0);
        let mut cfg = DatapathConfig::default();
        cfg.ul_capacity_bps = 5_000_000;
        cfg.device_buffer_bytes = 32 * 1024;
        let mut dp = Datapath::new(cfg, radio, SimRng::new(3));
        let mut alloc = PacketIdAlloc::new();
        let mut t = SimTime::ZERO;
        while t < SimTime::from_secs(2) {
            dp.poll(t);
            dp.send_uplink(t, ul_pkt(&mut alloc, 1, 1200, t));
            t += SimDuration::from_micros(200); // ~48 Mbps offered
        }
        run_to_quiescence(&mut dp, t, SimTime::from_secs(29));
        let c = dp.flow_counters(FlowId(1)).unwrap();
        assert!(c.device_app_sent.bytes() > c.gateway_uplink.bytes());
        assert_eq!(c.gateway_uplink.bytes(), c.server_received.bytes());
        assert!(dp.drops().ul_queue > 0);
    }

    #[test]
    fn outage_buffers_then_delivers() {
        // Packets sent as an outage starts buffer at the base station and
        // deliver once coverage returns.
        let mut rng = SimRng::new(99);
        let radio = RadioTimeline::intermittent(
            SimDuration::from_secs(120),
            -85.0,
            0.10,
            SimDuration::from_secs(2),
            &mut rng,
        );
        let outages = radio.outage_intervals();
        assert!(!outages.is_empty());
        let (o_start, _o_end) = outages[0];
        let mut cfg = DatapathConfig::default();
        cfg.rss_loss = RssDrivenLoss {
            base_loss: 0.0,
            slope_per_dbm: 0.0,
            good_threshold_dbm: -95.0,
        };
        cfg.bs_buffer_bytes = 10 * 1024 * 1024; // big buffer: no overflow
        let mut dp = Datapath::new(cfg, radio, SimRng::new(4));
        let mut alloc = PacketIdAlloc::new();
        // Send a handful of packets right as the outage starts.
        let t0 = o_start + SimDuration::from_millis(10);
        dp.poll(t0);
        for _ in 0..5 {
            dp.send_downlink(t0, dl_pkt(&mut alloc, 1, 1400, t0));
        }
        run_to_quiescence(&mut dp, t0, SimTime::from_secs(119));
        let c = dp.flow_counters(FlowId(1)).unwrap();
        // All five eventually reach the modem (buffered through the outage).
        assert_eq!(c.modem_received.bytes(), 5 * 1400);
    }

    #[test]
    fn small_buffer_drops_during_outage() {
        let mut rng = SimRng::new(7);
        let radio = RadioTimeline::intermittent(
            SimDuration::from_secs(300),
            -85.0,
            0.15,
            SimDuration::from_secs(3),
            &mut rng,
        );
        let (o_start, o_end) = radio.outage_intervals()[0];
        assert!((o_end - o_start) > SimDuration::from_millis(500));
        let mut cfg = DatapathConfig::default();
        cfg.bs_buffer_bytes = 4 * 1400; // tiny buffer
        let mut dp = Datapath::new(cfg, radio, SimRng::new(8));
        let mut alloc = PacketIdAlloc::new();
        // Stream during the outage: buffer fills, rest drops.
        let mut t = o_start + SimDuration::from_millis(1);
        while t < o_end {
            dp.poll(t);
            dp.send_downlink(t, dl_pkt(&mut alloc, 1, 1400, t));
            t += SimDuration::from_millis(10);
        }
        run_to_quiescence(&mut dp, t, SimTime::from_secs(299));
        let c = dp.flow_counters(FlowId(1)).unwrap();
        assert!(dp.drops().dl_queue > 0, "tiny buffer must overflow");
        assert!(c.gateway_downlink.bytes() > c.modem_received.bytes());
    }

    #[test]
    fn rlf_detach_stops_charging() {
        // A 20 s outage (> 5 s RLF window) triggers detach.
        let mut rng = SimRng::new(10);
        let walk = tlc_net::radio::RssWalkParams {
            mean_rss_dbm: -118.0, // deep dead zone
            std_dev_db: 0.5,
            reversion: 0.5,
            sample_interval: SimDuration::from_secs(1),
        };
        let radio = RadioTimeline::rss_walk(SimDuration::from_secs(60), walk, &mut rng);
        assert!(radio.disconnectivity_ratio() > 0.9);
        let mut dp = Datapath::new(DatapathConfig::default(), radio, SimRng::new(11));
        let mut alloc = PacketIdAlloc::new();
        // After the RLF window the device is detached; sends are refused.
        let t = SimTime::from_secs(10);
        dp.poll(t);
        assert!(dp.is_detached(t));
        dp.send_downlink(t, dl_pkt(&mut alloc, 1, 1400, t));
        dp.send_uplink(t, ul_pkt(&mut alloc, 1, 1200, t));
        assert!(
            dp.flow_counters(FlowId(1)).is_none(),
            "nothing counted while detached"
        );
        assert_eq!(dp.drops().detached, 2);
    }

    #[test]
    fn qci7_flow_survives_qci9_congestion() {
        // Background QCI 9 saturates the downlink; QCI 7 gaming packets cut
        // the line (the paper's Fig. 12d/13d mechanism).
        let radio = RadioTimeline::constant(SimDuration::from_secs(30), -80.0);
        let mut cfg = DatapathConfig::default();
        cfg.dl_capacity_bps = 20_000_000;
        cfg.bs_buffer_bytes = 128 * 1024;
        cfg.rss_loss = RssDrivenLoss {
            base_loss: 0.0,
            slope_per_dbm: 0.0,
            good_threshold_dbm: -95.0,
        };
        let mut dp = Datapath::new(cfg, radio, SimRng::new(5));
        let mut alloc = PacketIdAlloc::new();
        let mut t = SimTime::ZERO;
        let mut game_seq = 0u64;
        while t < SimTime::from_secs(5) {
            dp.poll(t);
            // 80 Mbps background.
            dp.send_downlink(t, dl_pkt(&mut alloc, 99, 1400, t));
            // 50 pkt/s gaming.
            if t.as_micros().is_multiple_of(20_000) {
                let p = Packet::new(
                    alloc.next_id(),
                    FlowId(1),
                    Direction::Downlink,
                    200,
                    Qci::INTERACTIVE,
                    t,
                );
                dp.send_downlink(t, p);
                game_seq += 1;
            }
            t += SimDuration::from_micros(140);
        }
        run_to_quiescence(&mut dp, t, SimTime::from_secs(29));
        let game = dp.flow_counters(FlowId(1)).unwrap();
        let bg = dp.flow_counters(FlowId(99)).unwrap();
        // Gaming sees (nearly) everything; background loses heavily.
        assert_eq!(game.modem_received.bytes(), game_seq * 200);
        assert!(bg.modem_received.bytes() < bg.gateway_downlink.bytes() / 2);
    }

    #[test]
    fn handover_flushes_queued_packets_after_gateway_count() {
        let radio = RadioTimeline::constant(SimDuration::from_secs(30), -80.0);
        let mut cfg = DatapathConfig::default();
        cfg.dl_capacity_bps = 1_000_000; // slow cell: packets queue up
        cfg.rss_loss = RssDrivenLoss {
            base_loss: 0.0,
            slope_per_dbm: 0.0,
            good_threshold_dbm: -95.0,
        };
        let mut dp = Datapath::new(cfg, radio, SimRng::new(21));
        dp.set_handovers(vec![SimTime::from_millis(500)]);
        let mut alloc = PacketIdAlloc::new();
        // Burst 100 packets at t=0: 11.2 ms of service each (1.12 s all
        // told), so half are still queued when the handover hits at 0.5 s.
        for _ in 0..100 {
            dp.send_downlink(SimTime::ZERO, dl_pkt(&mut alloc, 1, 1400, SimTime::ZERO));
        }
        run_to_quiescence(&mut dp, SimTime::ZERO, SimTime::from_secs(29));
        let c = dp.flow_counters(FlowId(1)).unwrap();
        assert!(dp.drops().handover > 0, "handover must flush packets");
        assert_eq!(
            c.gateway_downlink.bytes(),
            100 * 1400,
            "gateway counted everything"
        );
        assert!(
            c.modem_received.bytes() < 100 * 1400,
            "device missed flushed packets"
        );
    }

    #[test]
    fn fair_queueing_protects_thin_flow_under_flood() {
        let radio = RadioTimeline::constant(SimDuration::from_secs(30), -80.0);
        let mut base = DatapathConfig::default();
        base.dl_capacity_bps = 10_000_000;
        base.bs_buffer_bytes = 64 * 1024;
        base.rss_loss = RssDrivenLoss {
            base_loss: 0.0,
            slope_per_dbm: 0.0,
            good_threshold_dbm: -95.0,
        };
        let run = |fair: bool| {
            let mut cfg = base.clone();
            cfg.fair_queueing = fair;
            let mut dp = Datapath::new(
                cfg,
                RadioTimeline::constant(SimDuration::from_secs(30), -80.0),
                SimRng::new(22),
            );
            dp.mark_foreign(FlowId(99));
            let mut alloc = PacketIdAlloc::new();
            let mut t = SimTime::ZERO;
            // Flood at ~50 Mbps, thin flow at ~0.5 Mbps, same QCI.
            let mut k = 0u64;
            while t < SimTime::from_secs(3) {
                dp.send_downlink(t, dl_pkt(&mut alloc, 99, 1400, t));
                if k.is_multiple_of(100) {
                    dp.send_downlink(t, dl_pkt(&mut alloc, 1, 1400, t));
                }
                k += 1;
                t += SimDuration::from_micros(224);
            }
            run_to_quiescence(&mut dp, t, SimTime::from_secs(29));
            let c = dp.flow_counters(FlowId(1)).unwrap();
            c.modem_received.bytes() as f64 / c.gateway_downlink.bytes() as f64
        };
        let _ = radio;
        let fifo_delivery = run(false);
        let fair_delivery = run(true);
        assert!(
            fair_delivery > fifo_delivery,
            "fair {fair_delivery} !> fifo {fifo_delivery}"
        );
        assert!(
            fair_delivery > 0.95,
            "thin flow should be nearly lossless: {fair_delivery}"
        );
    }

    #[test]
    fn bursty_fading_adds_correlated_loss() {
        let duration = SimDuration::from_secs(60);
        let run = |fading: Option<tlc_net::loss::GilbertElliott>| {
            let mut cfg = DatapathConfig::default();
            cfg.rss_loss = RssDrivenLoss {
                base_loss: 0.0,
                slope_per_dbm: 0.0,
                good_threshold_dbm: -95.0,
            };
            cfg.bursty_fading = fading;
            let mut dp = Datapath::new(
                cfg,
                RadioTimeline::constant(duration, -80.0),
                SimRng::new(41),
            );
            let mut alloc = PacketIdAlloc::new();
            let mut t = SimTime::ZERO;
            while t < SimTime::from_secs(10) {
                dp.send_downlink(t, dl_pkt(&mut alloc, 1, 1400, t));
                t += SimDuration::from_millis(2);
            }
            run_to_quiescence(&mut dp, t, SimTime::from_secs(59));
            let c = dp.flow_counters(FlowId(1)).unwrap();
            (
                c.gateway_downlink.bytes(),
                c.modem_received.bytes(),
                dp.drops().air,
            )
        };
        let (sent, recv_clean, air_clean) = run(None);
        assert_eq!(recv_clean, sent, "no loss without fading");
        assert_eq!(air_clean, 0);
        let ge = tlc_net::loss::GilbertElliott::new(0.02, 0.1, 0.0, 0.8);
        let (_, recv_faded, air_faded) = run(Some(ge));
        assert!(air_faded > 0, "fading must drop packets");
        assert!(recv_faded < sent);
        // Long-run loss near the chain's stationary rate (±60% relative).
        let expect = ge.expected_loss_rate();
        let got = 1.0 - recv_faded as f64 / sent as f64;
        assert!(
            (got / expect - 1.0).abs() < 0.6,
            "loss {got} vs expected {expect}"
        );
    }

    #[test]
    fn sla_budget_drops_stale_frames_after_gateway() {
        // A 100 ms-budget (QCI 7) stream on a slow cell: queueing delay
        // quickly exceeds the budget and the middlebox drops stale frames
        // — after the gateway has metered them.
        let radio = RadioTimeline::constant(SimDuration::from_secs(30), -80.0);
        let mut cfg = DatapathConfig::default();
        cfg.dl_capacity_bps = 1_000_000; // 11.2 ms per 1400 B packet
        cfg.enforce_sla_delay_budget = true;
        cfg.rss_loss = RssDrivenLoss {
            base_loss: 0.0,
            slope_per_dbm: 0.0,
            good_threshold_dbm: -95.0,
        };
        let mut dp = Datapath::new(cfg, radio, SimRng::new(31));
        let mut alloc = PacketIdAlloc::new();
        // 30 packets at once: the 10th onward waits >100 ms.
        for _ in 0..30 {
            let p = Packet::new(
                alloc.next_id(),
                FlowId(1),
                tlc_net::packet::Direction::Downlink,
                1400,
                tlc_net::packet::Qci::INTERACTIVE,
                SimTime::ZERO,
            );
            dp.send_downlink(SimTime::ZERO, p);
        }
        run_to_quiescence(&mut dp, SimTime::ZERO, SimTime::from_secs(29));
        let c = dp.flow_counters(FlowId(1)).unwrap();
        assert!(dp.drops().sla > 0, "stale frames must be SLA-dropped");
        assert_eq!(c.gateway_downlink.bytes(), 30 * 1400);
        assert!(c.modem_received.bytes() < 30 * 1400);
        // Everything delivered arrived within ~budget + one service time.
        assert_eq!(
            c.modem_received.bytes() + dp.drops().sla * 1400,
            30 * 1400,
            "every packet either delivered or SLA-dropped"
        );
    }

    #[test]
    fn sla_disabled_delivers_stale_frames() {
        let radio = RadioTimeline::constant(SimDuration::from_secs(30), -80.0);
        let mut cfg = DatapathConfig::default();
        cfg.dl_capacity_bps = 1_000_000;
        cfg.enforce_sla_delay_budget = false;
        cfg.rss_loss = RssDrivenLoss {
            base_loss: 0.0,
            slope_per_dbm: 0.0,
            good_threshold_dbm: -95.0,
        };
        let mut dp = Datapath::new(cfg, radio, SimRng::new(32));
        let mut alloc = PacketIdAlloc::new();
        for _ in 0..30 {
            let p = Packet::new(
                alloc.next_id(),
                FlowId(1),
                tlc_net::packet::Direction::Downlink,
                1400,
                tlc_net::packet::Qci::INTERACTIVE,
                SimTime::ZERO,
            );
            dp.send_downlink(SimTime::ZERO, p);
        }
        run_to_quiescence(&mut dp, SimTime::ZERO, SimTime::from_secs(29));
        let c = dp.flow_counters(FlowId(1)).unwrap();
        assert_eq!(dp.drops().sla, 0);
        assert_eq!(c.modem_received.bytes(), 30 * 1400);
    }

    #[test]
    fn rrc_counter_check_fires_after_inactivity() {
        let radio = RadioTimeline::constant(SimDuration::from_secs(120), -80.0);
        let mut cfg = DatapathConfig::default();
        cfg.rss_loss = RssDrivenLoss {
            base_loss: 0.0,
            slope_per_dbm: 0.0,
            good_threshold_dbm: -95.0,
        };
        cfg.rrc_inactivity = SimDuration::from_secs(5);
        let mut dp = Datapath::new(cfg, radio, SimRng::new(6));
        let mut alloc = PacketIdAlloc::new();
        dp.poll(SimTime::ZERO);
        dp.send_downlink(SimTime::ZERO, dl_pkt(&mut alloc, 1, 1400, SimTime::ZERO));
        run_to_quiescence(&mut dp, SimTime::ZERO, SimTime::from_secs(119));
        // Delivery happened, then 5 s of silence -> release + COUNTER CHECK.
        assert!(!dp.rrc().is_connected());
        assert_eq!(dp.rrc().checks().len(), 1);
        assert_eq!(dp.rrc().checks()[0].modem_bytes, 1400);
        // Operator's RRC view after the check equals the modem truth.
        assert_eq!(dp.rrc().operator_view_at(SimTime::from_secs(100)), 1400);
    }
}
