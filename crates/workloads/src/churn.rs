//! Session-churn generation for the charging digital twin.
//!
//! The per-packet generators in this crate drive one experiment's
//! worth of flows; the twin needs the *population* view instead: a
//! deterministic stream of session arrivals (which app, what rate,
//! which direction, how long it lives, how often it hands over) whose
//! mix matches the paper's §7.1 applications. [`ChurnGen`] produces
//! that stream from a seeded [`SimRng`] — same seed, same population,
//! regardless of how many shards or threads consume it.

use crate::traffic::Workload;
use tlc_net::packet::Direction;
use tlc_net::rng::SimRng;
use tlc_net::time::SimDuration;

/// Which §7.1 application a twin session models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProfileKind {
    /// WebCam over RTSP (uplink, 0.77 Mbps).
    WebcamRtsp,
    /// WebCam over legacy UDP (uplink, 1.73 Mbps).
    WebcamUdp,
    /// VRidge GVSP VR offload (downlink, 9.0 Mbps).
    Vr,
    /// King of Glory with QCI=7 (downlink, 0.02 Mbps).
    Gaming,
}

/// Rate/direction/loss profile of one twin session.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SessionProfile {
    /// Application modelled.
    pub kind: ProfileKind,
    /// Mean application bitrate, bits per second.
    pub rate_bps: u64,
    /// Charged traffic direction.
    pub direction: Direction,
    /// Residual air-loss fraction on a good link (the paper's ~2–8%
    /// UDP baseline; QCI-7 gaming is protected).
    pub base_loss: f64,
    /// Frame-burst jitter: per-tick byte volume varies by ±this
    /// fraction around the mean.
    pub jitter: f64,
}

impl SessionProfile {
    /// The paper's Table 2 profile for `kind`.
    pub fn paper(kind: ProfileKind) -> Self {
        match kind {
            ProfileKind::WebcamRtsp => SessionProfile {
                kind,
                rate_bps: 770_000,
                direction: Direction::Uplink,
                base_loss: 0.05,
                jitter: 0.25,
            },
            ProfileKind::WebcamUdp => SessionProfile {
                kind,
                rate_bps: 1_730_000,
                direction: Direction::Uplink,
                base_loss: 0.07,
                jitter: 0.30,
            },
            ProfileKind::Vr => SessionProfile {
                kind,
                rate_bps: 9_000_000,
                direction: Direction::Downlink,
                base_loss: 0.04,
                jitter: 0.35,
            },
            ProfileKind::Gaming => SessionProfile {
                kind,
                rate_bps: 20_000,
                direction: Direction::Downlink,
                base_loss: 0.01,
                jitter: 0.15,
            },
        }
    }

    /// All four profiles in the paper's table order.
    pub const ALL: [ProfileKind; 4] = [
        ProfileKind::WebcamRtsp,
        ProfileKind::WebcamUdp,
        ProfileKind::Vr,
        ProfileKind::Gaming,
    ];

    /// Builds the matching per-packet generator at `duration` length —
    /// the bridge back to the packet-level scenario driver when a twin
    /// session needs full-fidelity replay.
    pub fn packet_workload(&self, duration: SimDuration, rng: SimRng) -> Box<dyn Workload> {
        match self.kind {
            ProfileKind::WebcamRtsp => Box::new(crate::webcam::WebcamStream::rtsp(duration, rng)),
            ProfileKind::WebcamUdp => Box::new(crate::webcam::WebcamStream::udp(duration, rng)),
            ProfileKind::Vr => Box::new(crate::vr::VrStream::vridge(duration, rng)),
            ProfileKind::Gaming => {
                Box::new(crate::gaming::GamingStream::king_of_glory(duration, rng))
            }
        }
    }
}

/// Workload-mix weights (relative, not normalised) plus churn shape.
#[derive(Clone, Copy, Debug)]
pub struct ChurnConfig {
    /// Session arrivals per second (Poisson).
    pub arrivals_per_sec: f64,
    /// Mean session lifetime (exponential).
    pub mean_lifetime: SimDuration,
    /// Mix weights in [`SessionProfile::ALL`] order
    /// (WebcamRtsp, WebcamUdp, Vr, Gaming).
    pub mix: [u32; 4],
    /// Mean handovers per minute per session (Poisson; 0 disables).
    pub handovers_per_minute: f64,
}

impl ChurnConfig {
    /// A mixed-population default: mostly gaming + webcams, a VR tail,
    /// 2-minute mean lifetimes, occasional handovers.
    pub fn mixed() -> Self {
        ChurnConfig {
            arrivals_per_sec: 10.0,
            mean_lifetime: SimDuration::from_secs(120),
            mix: [3, 3, 1, 5],
            handovers_per_minute: 0.5,
        }
    }

    /// Disables churn (arrivals only from the initial population).
    pub fn none() -> Self {
        ChurnConfig {
            arrivals_per_sec: 0.0,
            mean_lifetime: SimDuration::from_secs(3600),
            mix: [3, 3, 1, 5],
            handovers_per_minute: 0.0,
        }
    }
}

/// One generated arrival.
#[derive(Clone, Copy, Debug)]
pub struct Arrival {
    /// Gap to the previous arrival.
    pub inter_arrival: SimDuration,
    /// Session profile.
    pub profile: SessionProfile,
    /// Session lifetime.
    pub lifetime: SimDuration,
}

/// Deterministic session-churn stream.
pub struct ChurnGen {
    cfg: ChurnConfig,
    rng: SimRng,
}

impl ChurnGen {
    /// A stream for `cfg` driven by `rng` (split one per shard).
    pub fn new(cfg: ChurnConfig, rng: SimRng) -> Self {
        ChurnGen { cfg, rng }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ChurnConfig {
        &self.cfg
    }

    /// Draws a profile from the configured mix.
    pub fn draw_profile(&mut self) -> SessionProfile {
        let total: u32 = self.cfg.mix.iter().sum();
        if total == 0 {
            return SessionProfile::paper(ProfileKind::Gaming);
        }
        let mut pick = self.rng.next_below(total as u64) as u32;
        for (kind, &weight) in SessionProfile::ALL.iter().zip(self.cfg.mix.iter()) {
            if pick < weight {
                return SessionProfile::paper(*kind);
            }
            pick -= weight;
        }
        SessionProfile::paper(ProfileKind::Gaming)
    }

    /// Draws a session lifetime (exponential around the mean, floored
    /// at one second so a session always sees at least one tick).
    pub fn draw_lifetime(&mut self) -> SimDuration {
        let mean = self.cfg.mean_lifetime.as_secs_f64().max(1.0);
        let secs = self.rng.exponential(mean).clamp(1.0, mean * 20.0);
        SimDuration::from_secs_f64(secs)
    }

    /// Next arrival, or `None` when churn is disabled.
    pub fn next_arrival(&mut self) -> Option<Arrival> {
        if self.cfg.arrivals_per_sec <= 0.0 {
            return None;
        }
        let gap = self.rng.exponential(1.0 / self.cfg.arrivals_per_sec);
        let profile = self.draw_profile();
        let lifetime = self.draw_lifetime();
        Some(Arrival {
            inter_arrival: SimDuration::from_secs_f64(gap.min(3600.0)),
            profile,
            lifetime,
        })
    }

    /// Next handover gap for a session, or `None` if mobility is off.
    pub fn next_handover_gap(&mut self) -> Option<SimDuration> {
        if self.cfg.handovers_per_minute <= 0.0 {
            return None;
        }
        let mean_s = 60.0 / self.cfg.handovers_per_minute;
        Some(SimDuration::from_secs_f64(
            self.rng.exponential(mean_s).min(mean_s * 20.0),
        ))
    }

    /// Direct access to the generator's RNG (cell picks etc. stay on
    /// the same per-shard stream so shard runs replay exactly).
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let gen = |seed: u64| -> Vec<(u64, u64)> {
            let mut g = ChurnGen::new(ChurnConfig::mixed(), SimRng::new(seed));
            (0..200)
                .filter_map(|_| g.next_arrival())
                .map(|a| (a.inter_arrival.as_micros(), a.lifetime.as_micros()))
                .collect()
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }

    #[test]
    fn mix_weights_shape_population() {
        let mut g = ChurnGen::new(
            ChurnConfig {
                mix: [0, 0, 1, 3],
                ..ChurnConfig::mixed()
            },
            SimRng::new(3),
        );
        let mut vr = 0usize;
        let mut gaming = 0usize;
        for _ in 0..4000 {
            match g.draw_profile().kind {
                ProfileKind::Vr => vr += 1,
                ProfileKind::Gaming => gaming += 1,
                other => panic!("zero-weight profile drawn: {other:?}"),
            }
        }
        let ratio = gaming as f64 / vr as f64;
        assert!((2.0..4.5).contains(&ratio), "mix ratio {ratio}");
    }

    #[test]
    fn arrival_rate_matches_config() {
        let mut g = ChurnGen::new(
            ChurnConfig {
                arrivals_per_sec: 50.0,
                ..ChurnConfig::mixed()
            },
            SimRng::new(9),
        );
        let n = 5000;
        let total: f64 = (0..n)
            .filter_map(|_| g.next_arrival())
            .map(|a| a.inter_arrival.as_secs_f64())
            .sum();
        let rate = n as f64 / total;
        assert!((40.0..60.0).contains(&rate), "rate {rate}");
    }

    #[test]
    fn churn_off_yields_no_arrivals() {
        let mut g = ChurnGen::new(ChurnConfig::none(), SimRng::new(1));
        assert!(g.next_arrival().is_none());
        assert!(g.next_handover_gap().is_none());
    }

    #[test]
    fn profiles_match_paper_rates() {
        assert_eq!(
            SessionProfile::paper(ProfileKind::WebcamRtsp).rate_bps,
            770_000
        );
        assert_eq!(SessionProfile::paper(ProfileKind::Vr).rate_bps, 9_000_000);
        assert_eq!(
            SessionProfile::paper(ProfileKind::Vr).direction,
            Direction::Downlink
        );
        assert_eq!(
            SessionProfile::paper(ProfileKind::WebcamUdp).direction,
            Direction::Uplink
        );
    }
}
