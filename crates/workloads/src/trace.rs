//! Packet-trace record and replay.
//!
//! The paper replays tcpdump captures (VRidge over operational LTE, a
//! 1-hour King of Glory session) through `tcprelay`. This module is the
//! equivalent machinery: capture any [`Workload`] into a [`PacketTrace`],
//! serialize it (JSON lines), and replay it later — optionally rescaled
//! in time or truncated — as a new workload.

use crate::traffic::{Emission, Workload};
use serde::{Deserialize, Serialize};
use tlc_net::packet::{Direction, Qci};
use tlc_net::time::{SimDuration, SimTime};

/// One captured packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Emission time, microseconds from trace start.
    pub t_us: u64,
    /// Bytes on the wire.
    pub size: u32,
    /// Application frame number.
    pub frame: u64,
}

/// A recorded packet trace with its flow metadata.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketTrace {
    /// Workload name the trace was captured from.
    pub name: String,
    /// Flow direction.
    pub direction: Direction,
    /// Bearer QCI.
    pub qci: u8,
    /// The packets, time-ordered.
    pub records: Vec<TraceRecord>,
}

impl PacketTrace {
    /// Captures every emission of `workload` into a trace.
    pub fn record(workload: &mut dyn Workload) -> Self {
        let mut records = Vec::new();
        while let Some(e) = workload.next() {
            records.push(TraceRecord {
                t_us: e.at.as_micros(),
                size: e.size,
                frame: e.frame,
            });
        }
        PacketTrace {
            name: workload.name().to_string(),
            direction: workload.direction(),
            qci: workload.qci().0,
            records,
        }
    }

    /// Total bytes in the trace.
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.size as u64).sum()
    }

    /// Trace duration (time of last packet).
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_micros(self.records.last().map(|r| r.t_us).unwrap_or(0))
    }

    /// Mean rate in Mbps over the trace duration.
    pub fn mean_rate_mbps(&self) -> f64 {
        let d = self.duration().as_secs_f64();
        if d == 0.0 {
            return 0.0;
        }
        self.total_bytes() as f64 * 8.0 / 1e6 / d
    }

    /// Serializes as JSON (one trace per document).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serializes")
    }

    /// Parses a trace serialized by [`Self::to_json`].
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// A replaying workload over this trace (like `tcprelay`).
    pub fn replayer(&self) -> TraceReplayer<'_> {
        TraceReplayer {
            trace: self,
            idx: 0,
            time_scale: 1.0,
        }
    }

    /// A replayer with timestamps scaled by `time_scale` (> 1 slows the
    /// trace down, < 1 speeds it up — `tcprelay --multiplier`).
    pub fn replayer_scaled(&self, time_scale: f64) -> TraceReplayer<'_> {
        assert!(time_scale > 0.0 && time_scale.is_finite());
        TraceReplayer {
            trace: self,
            idx: 0,
            time_scale,
        }
    }
}

/// Replays a [`PacketTrace`] as a [`Workload`].
pub struct TraceReplayer<'a> {
    trace: &'a PacketTrace,
    idx: usize,
    time_scale: f64,
}

impl Workload for TraceReplayer<'_> {
    fn next(&mut self) -> Option<Emission> {
        let r = self.trace.records.get(self.idx)?;
        self.idx += 1;
        Some(Emission {
            at: SimTime((r.t_us as f64 * self.time_scale).round() as u64),
            size: r.size,
            frame: r.frame,
        })
    }

    fn direction(&self) -> Direction {
        self.trace.direction
    }

    fn qci(&self) -> Qci {
        Qci(self.trace.qci)
    }

    fn name(&self) -> &'static str {
        "trace replay"
    }

    fn nominal_rate_mbps(&self) -> f64 {
        self.trace.mean_rate_mbps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaming::GamingStream;
    use tlc_net::rng::SimRng;

    fn sample_trace() -> PacketTrace {
        let mut w = GamingStream::king_of_glory(SimDuration::from_secs(10), SimRng::new(1));
        PacketTrace::record(&mut w)
    }

    #[test]
    fn record_captures_everything() {
        let t = sample_trace();
        assert!(!t.records.is_empty());
        assert_eq!(t.name, "Gaming w/ QCI=7");
        assert_eq!(t.qci, 7);
        assert_eq!(t.direction, Direction::Downlink);
    }

    #[test]
    fn replay_is_faithful() {
        let t = sample_trace();
        let mut w2 = GamingStream::king_of_glory(SimDuration::from_secs(10), SimRng::new(1));
        let mut replayed = t.replayer();
        while let Some(orig) = w2.next() {
            let rep = replayed.next().expect("same length");
            assert_eq!(rep, orig);
        }
        assert!(replayed.next().is_none());
    }

    #[test]
    fn json_roundtrip() {
        let t = sample_trace();
        let parsed = PacketTrace::from_json(&t.to_json()).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn scaled_replay_stretches_time() {
        let t = sample_trace();
        let orig: Vec<_> = std::iter::from_fn({
            let mut r = t.replayer();
            move || r.next()
        })
        .collect();
        let slow: Vec<_> = std::iter::from_fn({
            let mut r = t.replayer_scaled(2.0);
            move || r.next()
        })
        .collect();
        assert_eq!(orig.len(), slow.len());
        for (a, b) in orig.iter().zip(&slow) {
            assert_eq!(b.at.as_micros(), a.at.as_micros() * 2);
            assert_eq!(b.size, a.size);
        }
    }

    #[test]
    fn stats_helpers() {
        let t = sample_trace();
        assert!(t.total_bytes() > 0);
        assert!(t.duration() > SimDuration::ZERO);
        assert!(t.mean_rate_mbps() > 0.0);
        let empty = PacketTrace {
            name: "x".into(),
            direction: Direction::Uplink,
            qci: 9,
            records: vec![],
        };
        assert_eq!(empty.mean_rate_mbps(), 0.0);
    }
}
