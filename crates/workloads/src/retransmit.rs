//! Transport-layer retransmission (§3.1 cause 4).
//!
//! "The data can be over-charged due to spurious retransmission." A
//! reliable transport resends unacknowledged segments; every copy crosses
//! the gateway and is metered, but the application's goodput counts each
//! segment once. This wrapper turns any open-loop workload into an
//! ARQ-style stream: a configurable fraction of segments is retransmitted
//! after an RTO (covering genuine loss recovery *and* the spurious
//! retransmissions of [12]'s attack, where delayed ACKs trigger resends
//! of data that already arrived).
//!
//! Accounting: `frame` keeps the original segment id on every copy, so a
//! receiver can compute goodput (distinct frames) vs metered volume
//! (all copies) — the over-charging gap this cause creates.

use crate::traffic::{Emission, Workload};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tlc_net::packet::{Direction, Qci};
use tlc_net::rng::SimRng;
use tlc_net::time::{SimDuration, SimTime};

/// A workload wrapper that duplicates a fraction of emissions after an
/// RTO, modelling ARQ retransmissions.
pub struct RetransmittingSource<W: Workload> {
    inner: W,
    /// Probability a segment is retransmitted once.
    retx_probability: f64,
    /// Retransmission timeout after the original emission.
    rto: SimDuration,
    rng: SimRng,
    /// Scheduled retransmissions, ordered by time (with a tiebreak id so
    /// the heap is deterministic): (due, tiebreak, size, frame).
    pending: BinaryHeap<Reverse<(SimTime, u64, u32, u64)>>,
    next_tiebreak: u64,
    /// The inner workload's next emission, buffered for merging.
    upcoming: Option<Emission>,
    started: bool,
    /// Statistics: originals and retransmissions emitted.
    originals: u64,
    retransmissions: u64,
}

impl<W: Workload> RetransmittingSource<W> {
    /// Wraps `inner`, retransmitting each segment once with probability
    /// `retx_probability` after `rto`.
    pub fn new(inner: W, retx_probability: f64, rto: SimDuration, rng: SimRng) -> Self {
        assert!((0.0..=1.0).contains(&retx_probability));
        assert!(rto > SimDuration::ZERO);
        RetransmittingSource {
            inner,
            retx_probability,
            rto,
            rng,
            pending: BinaryHeap::new(),
            next_tiebreak: 0,
            upcoming: None,
            started: false,
            originals: 0,
            retransmissions: 0,
        }
    }

    /// Original segments emitted so far.
    pub fn originals(&self) -> u64 {
        self.originals
    }

    /// Retransmitted copies emitted so far.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    fn refill(&mut self) {
        if !self.started {
            self.upcoming = self.inner.next();
            self.started = true;
        }
    }
}

impl<W: Workload> Workload for RetransmittingSource<W> {
    fn next(&mut self) -> Option<Emission> {
        self.refill();
        // Merge the inner stream with the retransmission heap by time.
        let retx_at = self.pending.peek().map(|Reverse((t, _, _, _))| *t);
        let inner_at = self.upcoming.as_ref().map(|e| e.at);
        let inner_first = match (inner_at, retx_at) {
            (Some(_), None) => true,
            (Some(ia), Some(ra)) => ia <= ra,
            (None, _) => false,
        };
        if inner_first {
            let e = self.upcoming.take()?;
            self.upcoming = self.inner.next();
            self.originals += 1;
            if self.rng.chance(self.retx_probability) {
                let id = self.next_tiebreak;
                self.next_tiebreak += 1;
                self.pending
                    .push(Reverse((e.at + self.rto, id, e.size, e.frame)));
            }
            Some(e)
        } else {
            // Inner stream done (or later) — drain the retransmission
            // heap; an empty heap means the whole stream is done.
            let Reverse((t, _, size, frame)) = self.pending.pop()?;
            self.retransmissions += 1;
            Some(Emission { at: t, size, frame })
        }
    }

    fn direction(&self) -> Direction {
        self.inner.direction()
    }

    fn qci(&self) -> Qci {
        self.inner.qci()
    }

    fn name(&self) -> &'static str {
        "retransmitting"
    }

    fn nominal_rate_mbps(&self) -> f64 {
        self.inner.nominal_rate_mbps() * (1.0 + self.retx_probability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaming::GamingStream;
    use crate::webcam::WebcamStream;

    fn drain<W: Workload>(w: &mut RetransmittingSource<W>) -> Vec<Emission> {
        std::iter::from_fn(|| w.next()).collect()
    }

    #[test]
    fn retransmissions_inflate_metered_volume_not_goodput() {
        let inner = WebcamStream::udp(SimDuration::from_secs(30), SimRng::new(1));
        let mut w =
            RetransmittingSource::new(inner, 0.2, SimDuration::from_millis(200), SimRng::new(2));
        let all = drain(&mut w);
        let metered: u64 = all.iter().map(|e| e.size as u64).sum();
        // Goodput: each frame's distinct payload, counted once.
        let mut frames: Vec<u64> = all.iter().map(|e| e.frame).collect();
        frames.sort_unstable();
        frames.dedup();
        assert!(w.retransmissions() > 0);
        assert_eq!(
            all.len() as u64,
            w.originals() + w.retransmissions(),
            "every emission is original or copy"
        );
        // The metered volume exceeds what a copy-free stream would carry.
        let retx_fraction = w.retransmissions() as f64 / w.originals() as f64;
        assert!((0.1..0.3).contains(&retx_fraction), "retx {retx_fraction}");
        assert!(metered > 0);
        assert!(!frames.is_empty());
    }

    #[test]
    fn zero_probability_is_transparent() {
        let inner = GamingStream::king_of_glory(SimDuration::from_secs(10), SimRng::new(3));
        let plain: Vec<Emission> = {
            let mut w = GamingStream::king_of_glory(SimDuration::from_secs(10), SimRng::new(3));
            std::iter::from_fn(|| w.next()).collect()
        };
        let mut w =
            RetransmittingSource::new(inner, 0.0, SimDuration::from_millis(100), SimRng::new(4));
        assert_eq!(drain(&mut w), plain);
        assert_eq!(w.retransmissions(), 0);
    }

    #[test]
    fn emissions_stay_time_ordered() {
        let inner = WebcamStream::rtsp(SimDuration::from_secs(10), SimRng::new(5));
        let mut w =
            RetransmittingSource::new(inner, 0.5, SimDuration::from_millis(150), SimRng::new(6));
        let all = drain(&mut w);
        for pair in all.windows(2) {
            assert!(pair[1].at >= pair[0].at);
        }
    }

    #[test]
    fn copies_carry_the_original_frame_id() {
        let inner = GamingStream::king_of_glory(SimDuration::from_secs(20), SimRng::new(7));
        let mut w =
            RetransmittingSource::new(inner, 1.0, SimDuration::from_millis(100), SimRng::new(8));
        let all = drain(&mut w);
        // With p=1 every frame appears exactly twice.
        let mut counts = std::collections::HashMap::new();
        for e in &all {
            *counts.entry(e.frame).or_insert(0u32) += 1;
        }
        assert!(counts.values().all(|&c| c == 2), "every segment sent twice");
    }

    #[test]
    fn nominal_rate_reflects_overhead() {
        let inner = WebcamStream::udp(SimDuration::from_secs(1), SimRng::new(9));
        let base = inner.nominal_rate_mbps();
        let w =
            RetransmittingSource::new(inner, 0.25, SimDuration::from_millis(100), SimRng::new(10));
        assert!((w.nominal_rate_mbps() - base * 1.25).abs() < 1e-9);
    }
}
