//! WebCam streaming workloads (§7.1 scenario 1).
//!
//! The paper streams a 1920×1080p30 H.264 camera feed with VLC two ways:
//! over RTSP (RTP packetization, rate-controlled to ~0.77 Mbps average)
//! and over legacy UDP (~1.73 Mbps average). Both are uplink — roadside
//! camera to edge server, as in the targeted-advertisement deployment.
//!
//! The H.264 model: a closed GOP of one I-frame followed by P-frames.
//! I-frames are several times larger than P-frames; sizes jitter
//! log-normally around their means (scene activity).

use crate::traffic::{packetize, Emission, Workload, INTRA_FRAME_SPACING_US};
use std::collections::VecDeque;
use tlc_net::packet::{Direction, Qci};
use tlc_net::rng::SimRng;
use tlc_net::time::{SimDuration, SimTime};

/// H.264 encoder model parameters.
#[derive(Clone, Copy, Debug)]
pub struct H264Params {
    /// Target average bitrate, bits/second.
    pub bitrate_bps: u64,
    /// Frames per second.
    pub fps: u32,
    /// GOP length in frames (one I-frame per GOP).
    pub gop: u32,
    /// I-frame size multiplier relative to P-frames.
    pub i_frame_ratio: f64,
    /// Log-normal σ of frame-size jitter.
    pub jitter_sigma: f64,
    /// Per-packet protocol overhead (RTP+UDP+IP = 12+8+20 = 40).
    pub overhead: u32,
}

impl H264Params {
    /// The paper's RTSP WebCam stream: 1080p30 at 0.77 Mbps average.
    pub fn rtsp_webcam() -> Self {
        H264Params {
            bitrate_bps: 770_000,
            fps: 30,
            gop: 30,
            i_frame_ratio: 6.0,
            jitter_sigma: 0.25,
            overhead: 40,
        }
    }

    /// The paper's legacy-UDP WebCam stream: 1.73 Mbps average (no RTSP
    /// rate control, higher-rate encode, shorter GOP).
    pub fn udp_webcam() -> Self {
        H264Params {
            bitrate_bps: 1_730_000,
            fps: 30,
            gop: 15,
            i_frame_ratio: 5.0,
            jitter_sigma: 0.35,
            overhead: 28, // UDP+IP only
        }
    }

    /// Mean P-frame payload bytes implied by the target bitrate.
    fn mean_p_frame_bytes(&self) -> f64 {
        // Per GOP: 1 I-frame (ratio × p) + (gop−1) P-frames.
        let frames_per_sec = self.fps as f64;
        let bytes_per_sec = self.bitrate_bps as f64 / 8.0;
        let mean_frame = bytes_per_sec / frames_per_sec;
        let gop = self.gop as f64;
        // mean_frame = (ratio·p + (gop−1)·p) / gop  ⇒  p = mean·gop/(ratio+gop−1)
        mean_frame * gop / (self.i_frame_ratio + gop - 1.0)
    }
}

/// A WebCam H.264 stream workload.
pub struct WebcamStream {
    params: H264Params,
    name: &'static str,
    rng: SimRng,
    end: SimTime,
    frame_index: u64,
    /// Pending packets of the current frame.
    pending: VecDeque<Emission>,
}

impl WebcamStream {
    /// RTSP variant for `duration`.
    pub fn rtsp(duration: SimDuration, rng: SimRng) -> Self {
        Self::new(H264Params::rtsp_webcam(), "WebCam (RTSP)", duration, rng)
    }

    /// Legacy-UDP variant for `duration`.
    pub fn udp(duration: SimDuration, rng: SimRng) -> Self {
        Self::new(H264Params::udp_webcam(), "WebCam (UDP)", duration, rng)
    }

    /// Custom parameters.
    pub fn new(params: H264Params, name: &'static str, duration: SimDuration, rng: SimRng) -> Self {
        WebcamStream {
            params,
            name,
            rng,
            end: SimTime::ZERO + duration,
            frame_index: 0,
            pending: VecDeque::new(),
        }
    }

    fn generate_frame(&mut self) -> bool {
        let frame_interval = SimDuration::from_micros(1_000_000 / self.params.fps as u64);
        let at = SimTime(self.frame_index * frame_interval.as_micros());
        if at >= self.end {
            return false;
        }
        let is_i = self.frame_index.is_multiple_of(self.params.gop as u64);
        let mean_p = self.params.mean_p_frame_bytes();
        let mean = if is_i {
            mean_p * self.params.i_frame_ratio
        } else {
            mean_p
        };
        // Log-normal jitter with unit mean: exp(N(−σ²/2, σ)).
        let sigma = self.params.jitter_sigma;
        let factor = (self.rng.normal(-sigma * sigma / 2.0, sigma)).exp();
        let bytes = (mean * factor).max(64.0) as u32;
        for (i, size) in packetize(bytes, 1400, self.params.overhead)
            .into_iter()
            .enumerate()
        {
            self.pending.push_back(Emission {
                at: at + SimDuration::from_micros(i as u64 * INTRA_FRAME_SPACING_US),
                size,
                frame: self.frame_index,
            });
        }
        self.frame_index += 1;
        true
    }
}

impl Workload for WebcamStream {
    fn next(&mut self) -> Option<Emission> {
        while self.pending.is_empty() {
            if !self.generate_frame() {
                return None;
            }
        }
        self.pending.pop_front()
    }

    fn direction(&self) -> Direction {
        Direction::Uplink
    }

    fn qci(&self) -> Qci {
        Qci::DEFAULT
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn nominal_rate_mbps(&self) -> f64 {
        self.params.bitrate_bps as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut dyn Workload) -> Vec<Emission> {
        std::iter::from_fn(|| w.next()).collect()
    }

    #[test]
    fn rtsp_rate_matches_paper() {
        let mut w = WebcamStream::rtsp(SimDuration::from_secs(120), SimRng::new(1));
        let all = drain(&mut w);
        let total: u64 = all.iter().map(|e| e.size as u64).sum();
        let mbps = total as f64 * 8.0 / 1e6 / 120.0;
        // 0.77 Mbps payload + packet overheads: allow ±15%.
        assert!((0.68..=0.95).contains(&mbps), "RTSP rate {mbps} Mbps");
    }

    #[test]
    fn udp_rate_matches_paper() {
        let mut w = WebcamStream::udp(SimDuration::from_secs(120), SimRng::new(2));
        let all = drain(&mut w);
        let total: u64 = all.iter().map(|e| e.size as u64).sum();
        let mbps = total as f64 * 8.0 / 1e6 / 120.0;
        assert!((1.55..=2.0).contains(&mbps), "UDP rate {mbps} Mbps");
    }

    #[test]
    fn timestamps_are_monotone() {
        let mut w = WebcamStream::rtsp(SimDuration::from_secs(10), SimRng::new(3));
        let all = drain(&mut w);
        for pair in all.windows(2) {
            assert!(pair[1].at >= pair[0].at);
        }
        assert!(!all.is_empty());
    }

    #[test]
    fn emissions_stop_at_duration() {
        let mut w = WebcamStream::udp(SimDuration::from_secs(5), SimRng::new(4));
        let all = drain(&mut w);
        let last = all.last().unwrap().at;
        // Last frame starts before 5 s (its packets trail by microseconds).
        assert!(last < SimTime::from_millis(5100));
    }

    #[test]
    fn gop_structure_visible() {
        // I-frames (every GOP-th frame) should carry notably more bytes.
        let mut w = WebcamStream::rtsp(SimDuration::from_secs(30), SimRng::new(5));
        let all = drain(&mut w);
        let frame_bytes = |f: u64| -> u64 {
            all.iter()
                .filter(|e| e.frame == f)
                .map(|e| e.size as u64)
                .sum()
        };
        let mut i_total = 0u64;
        let mut p_total = 0u64;
        let mut i_n = 0u64;
        let mut p_n = 0u64;
        let frames = all.iter().map(|e| e.frame).max().unwrap();
        for f in 0..=frames {
            if f % 30 == 0 {
                i_total += frame_bytes(f);
                i_n += 1;
            } else {
                p_total += frame_bytes(f);
                p_n += 1;
            }
        }
        let i_mean = i_total as f64 / i_n as f64;
        let p_mean = p_total as f64 / p_n as f64;
        assert!(i_mean > p_mean * 3.0, "I {i_mean} vs P {p_mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = drain(&mut WebcamStream::rtsp(
            SimDuration::from_secs(5),
            SimRng::new(9),
        ));
        let b = drain(&mut WebcamStream::rtsp(
            SimDuration::from_secs(5),
            SimRng::new(9),
        ));
        assert_eq!(a, b);
    }

    #[test]
    fn direction_and_qci() {
        let w = WebcamStream::rtsp(SimDuration::from_secs(1), SimRng::new(1));
        assert_eq!(w.direction(), Direction::Uplink);
        assert_eq!(w.qci(), Qci::DEFAULT);
        assert_eq!(w.name(), "WebCam (RTSP)");
    }
}
