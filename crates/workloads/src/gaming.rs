//! Online mobile gaming workload (§7.1 scenario 3).
//!
//! The paper replays a 1-hour King of Glory (Tencent) trace downlink with
//! QCI=7 (interactive gaming priority), against QCI=9 background traffic.
//! The game's player-control stream is tiny — 0.02 Mbps average — made of
//! frequent small UDP state-update packets on a fixed server tick, with
//! occasional larger snapshot packets.

use crate::traffic::{Emission, Workload};
use tlc_net::packet::{Direction, Qci};
use tlc_net::rng::SimRng;
use tlc_net::time::{SimDuration, SimTime};

/// Parameters of the gaming stream.
#[derive(Clone, Copy, Debug)]
pub struct GamingParams {
    /// Server tick rate (updates per second).
    pub tick_hz: u32,
    /// Mean state-update packet size, bytes (incl. UDP/IP headers).
    pub update_size: u32,
    /// Snapshot packet size, bytes.
    pub snapshot_size: u32,
    /// A snapshot replaces the update every `snapshot_every` ticks.
    pub snapshot_every: u32,
}

impl GamingParams {
    /// King-of-Glory-like defaults tuned to the paper's 0.02 Mbps mean:
    /// 15 Hz tick, ~150 B updates, 500 B snapshots every 30 ticks.
    pub fn king_of_glory() -> Self {
        GamingParams {
            tick_hz: 15,
            update_size: 150,
            snapshot_size: 500,
            snapshot_every: 30,
        }
    }
}

/// The gaming workload (downlink, QCI 7).
pub struct GamingStream {
    params: GamingParams,
    rng: SimRng,
    end: SimTime,
    tick: u64,
}

impl GamingStream {
    /// A King-of-Glory-like stream for `duration`.
    pub fn king_of_glory(duration: SimDuration, rng: SimRng) -> Self {
        Self::new(GamingParams::king_of_glory(), duration, rng)
    }

    /// Custom parameters.
    pub fn new(params: GamingParams, duration: SimDuration, rng: SimRng) -> Self {
        GamingStream {
            params,
            rng,
            end: SimTime::ZERO + duration,
            tick: 0,
        }
    }
}

impl Workload for GamingStream {
    fn next(&mut self) -> Option<Emission> {
        let interval_us = 1_000_000 / self.params.tick_hz as u64;
        // Small timing jitter (±20% of a tick) models server scheduling.
        let jitter = self.rng.range_u64(0, interval_us / 5);
        let at = SimTime(self.tick * interval_us + jitter);
        if at >= self.end {
            return None;
        }
        let is_snapshot = self.tick.is_multiple_of(self.params.snapshot_every as u64);
        let mean = if is_snapshot {
            self.params.snapshot_size
        } else {
            self.params.update_size
        } as f64;
        // ±25% size variation around the mean.
        let size = (mean * self.rng.range_f64(0.75, 1.25)).round().max(40.0) as u32;
        let e = Emission {
            at,
            size,
            frame: self.tick,
        };
        self.tick += 1;
        Some(e)
    }

    fn direction(&self) -> Direction {
        Direction::Downlink
    }

    fn qci(&self) -> Qci {
        Qci::INTERACTIVE
    }

    fn name(&self) -> &'static str {
        "Gaming w/ QCI=7"
    }

    fn nominal_rate_mbps(&self) -> f64 {
        0.02
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut dyn Workload) -> Vec<Emission> {
        std::iter::from_fn(|| w.next()).collect()
    }

    #[test]
    fn rate_matches_paper() {
        let mut w = GamingStream::king_of_glory(SimDuration::from_secs(300), SimRng::new(1));
        let total: u64 = drain(&mut w).iter().map(|e| e.size as u64).sum();
        let mbps = total as f64 * 8.0 / 1e6 / 300.0;
        // Paper: 0.02 Mbps average.
        assert!((0.015..=0.030).contains(&mbps), "gaming rate {mbps} Mbps");
    }

    #[test]
    fn tick_cadence() {
        let mut w = GamingStream::king_of_glory(SimDuration::from_secs(10), SimRng::new(2));
        let all = drain(&mut w);
        // 15 Hz for 10 s ≈ 150 packets (jitter may push the last over).
        assert!((145..=151).contains(&all.len()), "count {}", all.len());
    }

    #[test]
    fn snapshots_are_larger() {
        let mut w = GamingStream::king_of_glory(SimDuration::from_secs(60), SimRng::new(3));
        let all = drain(&mut w);
        let snap_mean: f64 = {
            let v: Vec<_> = all.iter().filter(|e| e.frame % 30 == 0).collect();
            v.iter().map(|e| e.size as f64).sum::<f64>() / v.len() as f64
        };
        let upd_mean: f64 = {
            let v: Vec<_> = all.iter().filter(|e| e.frame % 30 != 0).collect();
            v.iter().map(|e| e.size as f64).sum::<f64>() / v.len() as f64
        };
        assert!(snap_mean > upd_mean * 2.0, "{snap_mean} vs {upd_mean}");
    }

    #[test]
    fn uses_interactive_qci() {
        let w = GamingStream::king_of_glory(SimDuration::from_secs(1), SimRng::new(1));
        assert_eq!(w.qci(), Qci::INTERACTIVE);
        assert_eq!(w.direction(), Direction::Downlink);
    }

    #[test]
    fn monotone_timestamps() {
        let mut w = GamingStream::king_of_glory(SimDuration::from_secs(30), SimRng::new(4));
        let all = drain(&mut w);
        for pair in all.windows(2) {
            assert!(
                pair[1].at >= pair[0].at,
                "{:?} then {:?}",
                pair[0].at,
                pair[1].at
            );
        }
    }
}
