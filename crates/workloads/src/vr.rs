//! Edge-based VR workload (§7.1 scenario 2): VRidge-style GVSP streaming.
//!
//! The paper replays tcpdump traces of VRidge running Portal 2 over
//! operational LTE: 1920×1080p at 60 FPS, ~9.0 Mbps average, streamed
//! downlink (edge server renders, headset displays) via the GigE Vision
//! Stream Protocol. GVSP sends each video frame as a *leader* packet, a
//! burst of full-MTU payload packets, and a *trailer* packet.
//!
//! Without the original traces we synthesize an equivalent stream matched
//! to the published rate, frame cadence, and burst structure; the
//! `trace` module can replay recorded traces in the same format.

use crate::traffic::{Emission, Workload, INTRA_FRAME_SPACING_US};
use std::collections::VecDeque;
use tlc_net::packet::{Direction, Qci};
use tlc_net::rng::SimRng;
use tlc_net::time::{SimDuration, SimTime};

/// GVSP leader/trailer packet size (headers only).
const GVSP_CONTROL_PKT: u32 = 64;
/// GVSP payload packet: full MTU payload plus GVSP+UDP+IP overhead.
const GVSP_PAYLOAD: u32 = 1400;
/// Per payload-packet overhead.
const GVSP_OVERHEAD: u32 = 36;

/// Parameters of the VR stream.
#[derive(Clone, Copy, Debug)]
pub struct VrParams {
    /// Target average bitrate, bits/second (paper: 9.0 Mbps).
    pub bitrate_bps: u64,
    /// Frame cadence (paper: 60 FPS).
    pub fps: u32,
    /// Log-normal σ of frame-size variation (rendered-scene complexity).
    pub jitter_sigma: f64,
}

impl VrParams {
    /// The paper's VRidge/Portal-2 stream.
    pub fn vridge() -> Self {
        VrParams {
            bitrate_bps: 9_000_000,
            fps: 60,
            jitter_sigma: 0.30,
        }
    }
}

/// The GVSP VR workload.
pub struct VrStream {
    params: VrParams,
    rng: SimRng,
    end: SimTime,
    frame_index: u64,
    pending: VecDeque<Emission>,
}

impl VrStream {
    /// A VRidge-like stream for `duration`.
    pub fn vridge(duration: SimDuration, rng: SimRng) -> Self {
        Self::new(VrParams::vridge(), duration, rng)
    }

    /// Custom parameters.
    pub fn new(params: VrParams, duration: SimDuration, rng: SimRng) -> Self {
        VrStream {
            params,
            rng,
            end: SimTime::ZERO + duration,
            frame_index: 0,
            pending: VecDeque::new(),
        }
    }

    fn generate_frame(&mut self) -> bool {
        let interval = SimDuration::from_micros(1_000_000 / self.params.fps as u64);
        let at = SimTime(self.frame_index * interval.as_micros());
        if at >= self.end {
            return false;
        }
        let mean_frame = self.params.bitrate_bps as f64 / 8.0 / self.params.fps as f64;
        let sigma = self.params.jitter_sigma;
        let factor = (self.rng.normal(-sigma * sigma / 2.0, sigma)).exp();
        let bytes = (mean_frame * factor).max(GVSP_PAYLOAD as f64) as u32;

        let mut k = 0u64;
        let mut push = |pending: &mut VecDeque<Emission>, size: u32, frame: u64| {
            pending.push_back(Emission {
                at: at + SimDuration::from_micros(k * INTRA_FRAME_SPACING_US),
                size,
                frame,
            });
            k += 1;
        };
        // Leader, payload burst, trailer.
        push(&mut self.pending, GVSP_CONTROL_PKT, self.frame_index);
        let mut remaining = bytes;
        while remaining > 0 {
            let chunk = remaining.min(GVSP_PAYLOAD);
            push(&mut self.pending, chunk + GVSP_OVERHEAD, self.frame_index);
            remaining -= chunk;
        }
        push(&mut self.pending, GVSP_CONTROL_PKT, self.frame_index);
        self.frame_index += 1;
        true
    }
}

impl Workload for VrStream {
    fn next(&mut self) -> Option<Emission> {
        while self.pending.is_empty() {
            if !self.generate_frame() {
                return None;
            }
        }
        self.pending.pop_front()
    }

    fn direction(&self) -> Direction {
        Direction::Downlink
    }

    fn qci(&self) -> Qci {
        Qci::DEFAULT
    }

    fn name(&self) -> &'static str {
        "VRidge (GVSP)"
    }

    fn nominal_rate_mbps(&self) -> f64 {
        self.params.bitrate_bps as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut dyn Workload) -> Vec<Emission> {
        std::iter::from_fn(|| w.next()).collect()
    }

    #[test]
    fn rate_matches_paper() {
        let mut w = VrStream::vridge(SimDuration::from_secs(60), SimRng::new(1));
        let total: u64 = drain(&mut w).iter().map(|e| e.size as u64).sum();
        let mbps = total as f64 * 8.0 / 1e6 / 60.0;
        assert!((8.5..=10.0).contains(&mbps), "VR rate {mbps} Mbps");
    }

    #[test]
    fn sixty_frames_per_second() {
        let mut w = VrStream::vridge(SimDuration::from_secs(10), SimRng::new(2));
        let all = drain(&mut w);
        let frames = all.iter().map(|e| e.frame).max().unwrap() + 1;
        // Integer microsecond intervals (16666 us) squeeze one extra frame
        // start just under the 10 s mark.
        assert!((600..=601).contains(&frames), "frames {frames}");
    }

    #[test]
    fn frame_burst_structure() {
        let mut w = VrStream::vridge(SimDuration::from_secs(1), SimRng::new(3));
        let all = drain(&mut w);
        let frame0: Vec<_> = all.iter().filter(|e| e.frame == 0).collect();
        // Leader + payloads + trailer.
        assert_eq!(frame0.first().unwrap().size, GVSP_CONTROL_PKT);
        assert_eq!(frame0.last().unwrap().size, GVSP_CONTROL_PKT);
        assert!(frame0.len() > 5, "payload burst expected");
        for p in &frame0[1..frame0.len() - 1] {
            assert!(p.size > GVSP_CONTROL_PKT);
        }
    }

    #[test]
    fn monotone_timestamps() {
        let mut w = VrStream::vridge(SimDuration::from_secs(2), SimRng::new(4));
        let all = drain(&mut w);
        for pair in all.windows(2) {
            assert!(pair[1].at >= pair[0].at);
        }
    }

    #[test]
    fn is_downlink_default_qci() {
        let w = VrStream::vridge(SimDuration::from_secs(1), SimRng::new(1));
        assert_eq!(w.direction(), Direction::Downlink);
        assert_eq!(w.qci(), Qci::DEFAULT);
        assert!((w.nominal_rate_mbps() - 9.0).abs() < 1e-9);
    }
}
