//! The workload abstraction: pull-based packet emission schedules.
//!
//! A [`Workload`] yields timestamped emissions one at a time (hour-long
//! 9 Mbps VR streams are ~10M packets — far too many to materialise), with
//! monotone timestamps so the simulation driver can merge workloads into
//! its event loop.

use tlc_net::packet::{Direction, Qci};
use tlc_net::time::SimTime;

/// One application packet emission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Emission {
    /// When the application hands the packet to the network.
    pub at: SimTime,
    /// Bytes on the wire.
    pub size: u32,
    /// Application frame this packet belongs to.
    pub frame: u64,
}

/// A packet-emitting application model.
pub trait Workload {
    /// The next emission, or `None` when the workload has finished.
    /// Timestamps are non-decreasing.
    fn next(&mut self) -> Option<Emission>;

    /// Which way this workload's data flows.
    fn direction(&self) -> Direction;

    /// The bearer QoS class the flow is mapped to.
    fn qci(&self) -> Qci;

    /// Human-readable name, as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// The advertised mean bitrate in Mbps (paper Table 2's column 1).
    fn nominal_rate_mbps(&self) -> f64;
}

/// Splits an application frame of `frame_bytes` into MTU-sized packets.
///
/// Returns the payload sizes including `overhead` bytes of per-packet
/// protocol headers (RTP/GVSP/UDP/IP).
pub fn packetize(frame_bytes: u32, mtu_payload: u32, overhead: u32) -> Vec<u32> {
    assert!(mtu_payload > 0);
    if frame_bytes == 0 {
        return Vec::new();
    }
    let full = frame_bytes / mtu_payload;
    let rest = frame_bytes % mtu_payload;
    let mut sizes = vec![mtu_payload + overhead; full as usize];
    if rest > 0 {
        sizes.push(rest + overhead);
    }
    sizes
}

/// Intra-frame packet pacing: packets of one frame leave back-to-back
/// with this spacing (models the sender NIC serializing a burst).
pub const INTRA_FRAME_SPACING_US: u64 = 30;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packetize_exact_multiple() {
        let sizes = packetize(2800, 1400, 40);
        assert_eq!(sizes, vec![1440, 1440]);
    }

    #[test]
    fn packetize_with_remainder() {
        let sizes = packetize(3000, 1400, 40);
        assert_eq!(sizes, vec![1440, 1440, 240]);
    }

    #[test]
    fn packetize_small_frame() {
        assert_eq!(packetize(100, 1400, 40), vec![140]);
        assert!(packetize(0, 1400, 40).is_empty());
    }

    #[test]
    fn packetize_totals_add_up() {
        for frame in [1u32, 1399, 1400, 1401, 50_000] {
            let sizes = packetize(frame, 1400, 40);
            let payload: u32 = sizes.iter().sum::<u32>() - 40 * sizes.len() as u32;
            assert_eq!(payload, frame, "frame {frame}");
        }
    }
}
