//! iperf-style UDP background traffic (the paper's congestion knob).
//!
//! §7.1 repeats every experiment "with [0, 1Gbps] iperf UDP background
//! traffic to a separate phone": constant-bit-rate full-MTU UDP datagrams
//! on the default bearer (QCI 9), sharing the cell with the app under
//! test.

use crate::traffic::{Emission, Workload};
use tlc_net::packet::{Direction, Qci};
use tlc_net::time::{SimDuration, SimTime};

/// Full-MTU iperf datagram size on the wire.
pub const IPERF_PKT_BYTES: u32 = 1470;

/// Constant-bit-rate UDP background load.
pub struct BackgroundTraffic {
    direction: Direction,
    rate_bps: u64,
    end: SimTime,
    next_at: SimTime,
    interval: SimDuration,
    seq: u64,
}

impl BackgroundTraffic {
    /// A CBR stream of `rate_mbps` for `duration` in the given direction.
    /// A rate of zero produces no packets.
    pub fn new(rate_mbps: f64, direction: Direction, duration: SimDuration) -> Self {
        assert!(rate_mbps >= 0.0 && rate_mbps.is_finite());
        let rate_bps = (rate_mbps * 1e6) as u64;
        let interval = if rate_bps == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(IPERF_PKT_BYTES as f64 * 8.0 / rate_bps as f64)
        };
        BackgroundTraffic {
            direction,
            rate_bps,
            end: SimTime::ZERO + duration,
            next_at: SimTime::ZERO,
            interval,
            seq: 0,
        }
    }
}

impl Workload for BackgroundTraffic {
    fn next(&mut self) -> Option<Emission> {
        if self.rate_bps == 0 || self.next_at >= self.end {
            return None;
        }
        let e = Emission {
            at: self.next_at,
            size: IPERF_PKT_BYTES,
            frame: self.seq,
        };
        self.seq += 1;
        self.next_at += self.interval;
        Some(e)
    }

    fn direction(&self) -> Direction {
        self.direction
    }

    fn qci(&self) -> Qci {
        Qci::DEFAULT
    }

    fn name(&self) -> &'static str {
        "iperf UDP background"
    }

    fn nominal_rate_mbps(&self) -> f64 {
        self.rate_bps as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_exact() {
        let mut w = BackgroundTraffic::new(100.0, Direction::Downlink, SimDuration::from_secs(2));
        let total: u64 = std::iter::from_fn(|| w.next()).map(|e| e.size as u64).sum();
        let mbps = total as f64 * 8.0 / 1e6 / 2.0;
        assert!((mbps - 100.0).abs() < 1.0, "rate {mbps}");
    }

    #[test]
    fn zero_rate_is_silent() {
        let mut w = BackgroundTraffic::new(0.0, Direction::Uplink, SimDuration::from_secs(10));
        assert!(w.next().is_none());
    }

    #[test]
    fn cbr_spacing_constant() {
        let mut w = BackgroundTraffic::new(11.76, Direction::Downlink, SimDuration::from_secs(1));
        let all: Vec<_> = std::iter::from_fn(|| w.next()).collect();
        // 11.76 Mbps / 1470 B = 1 ms spacing.
        let d0 = all[1].at - all[0].at;
        for pair in all.windows(2) {
            assert_eq!(pair[1].at - pair[0].at, d0);
        }
        assert_eq!(d0, SimDuration::from_millis(1));
    }

    #[test]
    fn direction_respected() {
        let w = BackgroundTraffic::new(1.0, Direction::Uplink, SimDuration::from_secs(1));
        assert_eq!(w.direction(), Direction::Uplink);
    }
}
