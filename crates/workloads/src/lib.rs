//! # tlc-workloads
//!
//! Edge-application traffic generators for the TLC reproduction of
//! *"Bridging the Data Charging Gap in the Cellular Edge"* (SIGCOMM '19).
//!
//! The paper drives its testbed with four applications plus an iperf
//! congestion source; each is modelled here, matched to the published mean
//! bitrates (Table 2) and burst structure:
//!
//! | Workload | Paper rate | Module |
//! |---|---|---|
//! | WebCam stream, RTSP (uplink) | 0.77 Mbps | [`webcam`] |
//! | WebCam stream, legacy UDP (uplink) | 1.73 Mbps | [`webcam`] |
//! | VRidge/Portal 2 over GVSP (downlink) | 9.0 Mbps | [`vr`] |
//! | King of Glory w/ QCI=7 (downlink) | 0.02 Mbps | [`gaming`] |
//! | iperf UDP background | 0–1 Gbps | [`background`] |
//!
//! The paper replays real tcpdump captures for VR and gaming; the
//! [`trace`] module provides the equivalent record/replay machinery for
//! any workload.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod background;
pub mod churn;
pub mod gaming;
pub mod retransmit;
pub mod trace;
pub mod traffic;
pub mod vr;
pub mod webcam;

pub use background::BackgroundTraffic;
pub use churn::{Arrival, ChurnConfig, ChurnGen, ProfileKind, SessionProfile};
pub use gaming::{GamingParams, GamingStream};
pub use retransmit::RetransmittingSource;
pub use trace::{PacketTrace, TraceRecord, TraceReplayer};
pub use traffic::{packetize, Emission, Workload};
pub use vr::{VrParams, VrStream};
pub use webcam::{H264Params, WebcamStream};
