//! Golden-frame conformance for the ingress envelope: byte-exact
//! fixtures for every frame kind. If any of these fail, the wire
//! format drifted and deployed peers would stop interoperating — fix
//! the code, not the fixture (or bump the protocol version).

use tlc_net::wire::{Frame, FrameDecoder, FrameKind, HEADER_LEN};

/// Every frame kind with a representative payload, against its exact
/// wire bytes. The envelope is `kind:u8 | len:u32 BE | payload`.
fn fixtures() -> Vec<(Frame, Vec<u8>)> {
    vec![
        (
            Frame::new(FrameKind::Hello, vec![0xDE, 0xAD]),
            vec![1, 0, 0, 0, 2, 0xDE, 0xAD],
        ),
        (
            Frame::new(FrameKind::HelloAck, vec![0x01]),
            vec![2, 0, 0, 0, 1, 0x01],
        ),
        (
            Frame::new(FrameKind::Register, vec![9, 8, 7]),
            vec![3, 0, 0, 0, 3, 9, 8, 7],
        ),
        (
            Frame::new(FrameKind::Registered, Vec::new()),
            vec![4, 0, 0, 0, 0],
        ),
        (
            Frame::new(FrameKind::Submit, vec![0xFF; 4]),
            vec![5, 0, 0, 0, 4, 0xFF, 0xFF, 0xFF, 0xFF],
        ),
        (
            Frame::new(FrameKind::SubmitBatch, vec![1]),
            vec![6, 0, 0, 0, 1, 1],
        ),
        (
            Frame::new(FrameKind::Verdict, vec![0, 1, 2, 3, 4, 5]),
            vec![7, 0, 0, 0, 6, 0, 1, 2, 3, 4, 5],
        ),
        (
            Frame::new(FrameKind::StatsReq, Vec::new()),
            vec![8, 0, 0, 0, 0],
        ),
        (
            Frame::new(FrameKind::Stats, vec![42]),
            vec![9, 0, 0, 0, 1, 42],
        ),
        (
            Frame::new(FrameKind::Error, vec![5]),
            vec![10, 0, 0, 0, 1, 5],
        ),
        (
            Frame::new(FrameKind::Goodbye, Vec::new()),
            vec![11, 0, 0, 0, 0],
        ),
        (
            Frame::new(FrameKind::GoodbyeAck, Vec::new()),
            vec![12, 0, 0, 0, 0],
        ),
        (
            Frame::new(FrameKind::Busy, vec![1, 0, 0, 0, 50]),
            vec![13, 0, 0, 0, 5, 1, 0, 0, 0, 50],
        ),
        (
            // SETTLE: rel=1 | tag=2 | serving=1 | charged=9 | home=3 |
            // visited=2 | vendor=4 — the 49-byte settlement grammar.
            Frame::new(FrameKind::Settle, {
                let mut p = Vec::new();
                p.extend(1u64.to_be_bytes());
                p.extend(2u64.to_be_bytes());
                p.push(1);
                for v in [9u64, 3, 2, 4] {
                    p.extend(v.to_be_bytes());
                }
                p
            }),
            {
                let mut g = vec![14, 0, 0, 0, 49];
                g.extend(1u64.to_be_bytes());
                g.extend(2u64.to_be_bytes());
                g.push(1);
                for v in [9u64, 3, 2, 4] {
                    g.extend(v.to_be_bytes());
                }
                g
            },
        ),
        (
            // SETTLE_VERDICT: rel=1 | tag=2 | result=0 (conserved).
            Frame::new(FrameKind::SettleVerdict, {
                let mut p = Vec::new();
                p.extend(1u64.to_be_bytes());
                p.extend(2u64.to_be_bytes());
                p.push(0);
                p
            }),
            {
                let mut g = vec![15, 0, 0, 0, 17];
                g.extend(1u64.to_be_bytes());
                g.extend(2u64.to_be_bytes());
                g.push(0);
                g
            },
        ),
    ]
}

#[test]
fn every_kind_encodes_to_its_golden_bytes() {
    for (frame, golden) in fixtures() {
        let encoded = frame.encode().unwrap();
        assert_eq!(encoded, golden, "encoding drifted for {:?}", frame.kind);
    }
}

#[test]
fn every_golden_fixture_decodes_back() {
    for (frame, golden) in fixtures() {
        let mut d = FrameDecoder::new(1024);
        d.push(&golden).unwrap();
        assert_eq!(d.next_frame(), Some(frame.clone()), "{:?}", frame.kind);
        assert_eq!(d.next_frame(), None);
        assert_eq!(d.partial_bytes(), 0);
    }
}

#[test]
fn kind_tag_bytes_are_pinned() {
    // The numeric tags are wire format; reordering the enum must fail
    // here, not in production.
    let pinned: [(FrameKind, u8); 15] = [
        (FrameKind::Hello, 1),
        (FrameKind::HelloAck, 2),
        (FrameKind::Register, 3),
        (FrameKind::Registered, 4),
        (FrameKind::Submit, 5),
        (FrameKind::SubmitBatch, 6),
        (FrameKind::Verdict, 7),
        (FrameKind::StatsReq, 8),
        (FrameKind::Stats, 9),
        (FrameKind::Error, 10),
        (FrameKind::Goodbye, 11),
        (FrameKind::GoodbyeAck, 12),
        (FrameKind::Busy, 13),
        (FrameKind::Settle, 14),
        (FrameKind::SettleVerdict, 15),
    ];
    for (kind, tag) in pinned {
        assert_eq!(kind.as_u8(), tag);
        assert_eq!(FrameKind::from_u8(tag), Some(kind));
    }
    // 0 and 16 are unassigned and must stay invalid.
    assert_eq!(FrameKind::from_u8(0), None);
    assert_eq!(FrameKind::from_u8(16), None);
}

#[test]
fn header_length_is_pinned() {
    assert_eq!(HEADER_LEN, 5);
    let f = Frame::new(FrameKind::Hello, vec![0; 7]);
    assert_eq!(f.wire_len(), HEADER_LEN + 7);
}

#[test]
fn concatenated_fixture_stream_decodes_in_order() {
    let all = fixtures();
    let mut stream = Vec::new();
    for (_, golden) in &all {
        stream.extend_from_slice(golden);
    }
    let mut d = FrameDecoder::new(1024);
    d.push(&stream).unwrap();
    for (frame, _) in &all {
        assert_eq!(d.next_frame().as_ref(), Some(frame));
    }
    assert_eq!(d.next_frame(), None);
}
