//! Property-based tests for the network substrate's conservation and
//! ordering invariants.

use proptest::prelude::*;
use tlc_net::link::{Link, LinkParams};
use tlc_net::packet::{Direction, FlowId, Packet, Qci};
use tlc_net::queue::{Discipline, PacketQueue};
use tlc_net::radio::RadioTimeline;
use tlc_net::rng::SimRng;
use tlc_net::time::{SimDuration, SimTime};

fn pkt(id: u64, size: u32, qci: u8) -> Packet {
    Packet::new(
        id,
        FlowId(0),
        Direction::Downlink,
        size,
        Qci(qci),
        SimTime::ZERO,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FIFO queue conservation (no evictions): every offered packet is
    /// either accepted or dropped, and every accepted packet is either
    /// dequeued or flushed.
    #[test]
    fn queue_conserves_packets(
        sizes in proptest::collection::vec(1u32..3000, 1..100),
        cap in 1024u64..65536,
    ) {
        let mut q = PacketQueue::new(Discipline::Fifo, cap);
        let mut offered = 0u64;
        let mut accepted = 0u64;
        for (i, &s) in sizes.iter().enumerate() {
            if q.enqueue(pkt(i as u64, s, 9)) {
                accepted += 1;
            }
            offered += 1;
        }
        let mut dequeued = 0u64;
        for _ in 0..sizes.len() / 2 {
            if q.dequeue().is_some() {
                dequeued += 1;
            }
        }
        let flushed = q.flush().len() as u64;
        let stats = q.stats();
        prop_assert_eq!(stats.enqueued_pkts, accepted);
        // dropped counts rejected offers plus flushed packets.
        prop_assert_eq!(stats.dropped_pkts, (offered - accepted) + flushed);
        prop_assert_eq!(accepted, dequeued + flushed);
        prop_assert_eq!(q.used_bytes(), 0);
    }

    /// Priority-queue accounting under eviction: accepted packets leave
    /// exactly once (dequeue, eviction, or flush) and byte accounting
    /// returns to zero.
    #[test]
    fn priority_queue_accounting_with_evictions(
        sizes in proptest::collection::vec(1u32..3000, 1..100),
        qcis in proptest::collection::vec(1u8..10, 1..100),
        cap in 1024u64..65536,
    ) {
        let mut q = PacketQueue::new(Discipline::QciPriority, cap);
        let mut accepted = 0u64;
        for (i, (&s, &qc)) in sizes.iter().zip(qcis.iter().cycle()).enumerate() {
            if q.enqueue(pkt(i as u64, s, qc)) {
                accepted += 1;
            }
            prop_assert!(q.used_bytes() <= cap);
        }
        prop_assert_eq!(q.stats().enqueued_pkts, accepted);
        let mut dequeued = 0u64;
        while q.dequeue().is_some() {
            dequeued += 1;
        }
        // Evicted = accepted − dequeued (all remaining were evicted).
        prop_assert!(dequeued <= accepted);
        prop_assert_eq!(q.used_bytes(), 0);
        prop_assert!(q.is_empty());
    }

    /// Queue byte bound: used bytes never exceed capacity.
    #[test]
    fn queue_respects_capacity(
        sizes in proptest::collection::vec(1u32..4000, 1..80),
        cap in 1000u64..20000,
    ) {
        let mut q = PacketQueue::new(Discipline::QciPriority, cap);
        for (i, &s) in sizes.iter().enumerate() {
            q.enqueue(pkt(i as u64, s, (i % 10) as u8));
            prop_assert!(q.used_bytes() <= cap);
        }
    }

    /// Link conservation: every offered packet is eventually delivered or
    /// dropped; deliveries never exceed offers.
    #[test]
    fn link_conserves_packets(
        sizes in proptest::collection::vec(64u32..1600, 1..60),
        gaps_us in proptest::collection::vec(0u64..5000, 1..60),
        rate_mbps in 1u64..100,
    ) {
        let mut link = Link::new(LinkParams {
            rate_bps: rate_mbps * 1_000_000,
            latency: SimDuration::from_millis(5),
            queue_capacity_bytes: 16 * 1024,
            discipline: Discipline::Fifo,
        });
        let mut t = SimTime::ZERO;
        let mut offered = 0u64;
        for (i, (&s, &g)) in sizes.iter().zip(gaps_us.iter().cycle()).enumerate() {
            t += SimDuration::from_micros(g);
            link.enqueue(t, pkt(i as u64, s, 9));
            offered += 1;
        }
        let delivered = link.poll(t + SimDuration::from_secs(60)).len() as u64;
        let dropped = link.queue_stats().dropped_pkts;
        prop_assert_eq!(delivered + dropped, offered);
        prop_assert!(link.is_idle());
    }

    /// FIFO links deliver in send order.
    #[test]
    fn fifo_link_preserves_order(
        sizes in proptest::collection::vec(64u32..1500, 2..40),
    ) {
        let mut link = Link::new(LinkParams {
            rate_bps: 10_000_000,
            latency: SimDuration::from_millis(1),
            queue_capacity_bytes: 1 << 20,
            discipline: Discipline::Fifo,
        });
        for (i, &s) in sizes.iter().enumerate() {
            link.enqueue(SimTime::ZERO, pkt(i as u64, s, 9));
        }
        let ids: Vec<u64> = link
            .poll(SimTime::from_secs(120))
            .iter()
            .map(|p| p.id)
            .collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        prop_assert_eq!(ids, sorted);
    }

    /// Radio timelines: η ∈ [0, 1); advance_connected is monotone in its
    /// arguments and never lands inside an outage's interior.
    #[test]
    fn radio_invariants(seed in any::<u64>(), eta in 0.01f64..0.3,
                        from_ms in 0u64..60_000, tx_us in 1u64..50_000) {
        let mut rng = SimRng::new(seed);
        let tl = RadioTimeline::intermittent(
            SimDuration::from_secs(120), -85.0, eta,
            SimDuration::from_millis(1930), &mut rng,
        );
        let e = tl.disconnectivity_ratio();
        prop_assert!((0.0..1.0).contains(&e));
        let from = SimTime::from_millis(from_ms);
        let tx = SimDuration::from_micros(tx_us);
        let done = tl.advance_connected(from, tx);
        prop_assert!(done >= from + tx);
        // More service time never completes earlier.
        let done2 = tl.advance_connected(from, tx + SimDuration::from_micros(1));
        prop_assert!(done2 >= done);
    }

    /// The RNG's labelled splits are stable and uniform draws respect
    /// bounds.
    #[test]
    fn rng_bounds(seed in any::<u64>(), lo in 0u64..1000, span in 1u64..1000) {
        let mut r = SimRng::new(seed);
        let v = r.range_u64(lo, lo + span);
        prop_assert!((lo..=lo + span).contains(&v));
        let f = r.next_f64();
        prop_assert!((0.0..1.0).contains(&f));
    }
}
