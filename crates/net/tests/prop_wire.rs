//! Adversarial decoder properties: the framing codec and the
//! connection driver must return typed errors (never panic) and keep
//! buffering bounded no matter how bytes are truncated, corrupted, or
//! split across reads.

use proptest::prelude::*;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use tlc_net::ingress::{ConnDriver, DriverError};
use tlc_net::wire::{Frame, FrameDecoder, FrameKind, WireError, HEADER_LEN};

fn arb_kind() -> impl Strategy<Value = FrameKind> {
    (1u8..=15).prop_map(|b| FrameKind::from_u8(b).unwrap())
}

fn arb_frame(max_payload: usize) -> impl Strategy<Value = Frame> {
    (
        arb_kind(),
        proptest::collection::vec(0u8..=255, 0..=max_payload),
    )
        .prop_map(|(kind, payload)| Frame::new(kind, payload))
}

/// Splits `bytes` into chunks at cut points derived from `cuts`.
fn chunked(bytes: &[u8], cuts: &[usize]) -> Vec<Vec<u8>> {
    let mut points: Vec<usize> = cuts.iter().map(|i| i % (bytes.len() + 1)).collect();
    points.push(0);
    points.push(bytes.len());
    points.sort_unstable();
    points.dedup();
    points
        .windows(2)
        .map(|w| bytes[w[0]..w[1]].to_vec())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any frame stream, split at arbitrary byte boundaries, decodes to
    /// exactly the original frames — and partial buffering never
    /// exceeds one frame's worth of bytes.
    #[test]
    fn split_across_reads_is_lossless(
        frames in proptest::collection::vec(arb_frame(200), 1..10),
        cuts in proptest::collection::vec(any::<usize>(), 0..20),
    ) {
        let max_payload = 256u32;
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend(f.encode().unwrap());
        }
        let mut d = FrameDecoder::new(max_payload);
        let mut got = Vec::new();
        for chunk in chunked(&stream, &cuts) {
            d.push(&chunk).unwrap();
            prop_assert!(d.partial_bytes() <= HEADER_LEN + max_payload as usize);
            while let Some(f) = d.next_frame() {
                got.push(f);
            }
        }
        prop_assert_eq!(got, frames);
    }

    /// A length prefix over the cap is rejected from the header alone —
    /// before any payload allocation — and poisons the decoder with a
    /// typed error.
    #[test]
    fn oversized_length_prefix_rejected_before_payload(
        kind in arb_kind(),
        over in 1u32..1_000_000,
        max in 1u32..4096,
    ) {
        let len = max.saturating_add(over);
        let mut header = vec![kind.as_u8()];
        header.extend(len.to_be_bytes());
        let mut d = FrameDecoder::new(max);
        let got = d.push(&header);
        prop_assert_eq!(got, Err(WireError::Oversize { len, max }));
        prop_assert!(d.partial_bytes() <= HEADER_LEN);
        // Poisoned permanently: later pushes keep failing typed.
        prop_assert!(d.push(&[0, 0]).is_err());
    }

    /// Arbitrary garbage never panics the decoder: every outcome is
    /// either decoded frames or a typed error, with bounded buffering
    /// throughout.
    #[test]
    fn garbage_never_panics_and_stays_bounded(
        chunks in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..300), 1..12),
        max in 16u32..2048,
    ) {
        let mut d = FrameDecoder::new(max);
        for chunk in &chunks {
            let _ = d.push(chunk);
            prop_assert!(d.partial_bytes() <= HEADER_LEN + max as usize);
            while let Some(f) = d.next_frame() {
                prop_assert!(f.payload.len() <= max as usize);
            }
            if d.poisoned().is_some() {
                break;
            }
        }
    }

    /// Corrupting the kind byte of a valid stream yields a typed
    /// UnknownKind error (16.. can never be a valid kind).
    #[test]
    fn corrupted_kind_byte_is_typed(
        frame in arb_frame(64),
        bad in 16u8..=255,
    ) {
        let mut bytes = frame.encode().unwrap();
        bytes[0] = bad;
        let mut d = FrameDecoder::new(256);
        prop_assert_eq!(d.push(&bytes), Err(WireError::UnknownKind(bad)));
        prop_assert_eq!(d.poisoned(), Some(WireError::UnknownKind(bad)));
    }

    /// The zero-copy `split_frame` view parser agrees with the
    /// streaming `FrameDecoder` on arbitrary byte soup: same frames in
    /// the same order, and an error exactly when (and what) the decoder
    /// poisons with. This is the equivalence the readiness ingress
    /// leans on to keep wire conformance while decoding in place.
    #[test]
    fn split_frame_agrees_with_decoder(
        bytes in proptest::collection::vec(0u8..=255, 0..600),
        max in 16u32..512,
    ) {
        // Reference: the streaming decoder over the whole input.
        let mut d = FrameDecoder::new(max);
        let decoder_err = d.push(&bytes).err();
        let mut decoder_frames = Vec::new();
        while let Some(f) = d.next_frame() {
            decoder_frames.push(f);
        }

        // Subject: repeatedly split views off the front.
        let mut view_frames = Vec::new();
        let mut view_err = None;
        let mut rest: &[u8] = &bytes;
        loop {
            match tlc_net::wire::split_frame(rest, max) {
                Ok(Some((view, used))) => {
                    view_frames.push(view.to_owned());
                    rest = &rest[used..];
                }
                Ok(None) => break,
                Err(e) => {
                    view_err = Some(e);
                    break;
                }
            }
        }

        prop_assert_eq!(view_frames, decoder_frames);
        // The decoder fail-fasts on a bad kind byte before the length
        // word completes; split_frame sees the same byte first, so the
        // verdicts line up exactly.
        prop_assert_eq!(view_err, decoder_err);
    }

    /// Valid frame streams split anywhere: the view parser consumes
    /// complete frames and reports "need more" (never an error) for the
    /// partial tail, byte-for-byte matching what the decoder buffers.
    #[test]
    fn split_frame_handles_partial_tails(
        frames in proptest::collection::vec(arb_frame(100), 1..6),
        cut in any::<usize>(),
    ) {
        let max = 256u32;
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend(f.encode().unwrap());
        }
        let cut = cut % (stream.len() + 1);
        let mut rest = &stream[..cut];
        let mut whole = 0usize;
        loop {
            match tlc_net::wire::split_frame(rest, max) {
                Ok(Some((view, used))) => {
                    prop_assert_eq!(view.to_owned(), frames[whole].clone());
                    whole += 1;
                    rest = &rest[used..];
                }
                Ok(None) => break,
                Err(e) => prop_assert!(false, "prefix errored: {e}"),
            }
        }
        // The tail is smaller than one max frame — the bound that lets
        // a single pooled buffer carry any partial.
        prop_assert!(rest.len() < HEADER_LEN + max as usize);
    }

    /// The settlement frames introduced for the roaming plane
    /// (SETTLE = 14, SETTLE_VERDICT = 15) ride the same framing as
    /// every other kind: hand-assembled grammar-length payloads
    /// (49 B / 17 B) reassemble across arbitrary read splits with
    /// their kinds intact.
    #[test]
    fn settle_frames_survive_adversarial_chunking(
        rel in any::<u64>(),
        tag in any::<u64>(),
        serving in 0u8..2,
        volumes in proptest::collection::vec(any::<u64>(), 4),
        result in 0u8..2,
        cuts in proptest::collection::vec(any::<usize>(), 0..12),
    ) {
        // SETTLE grammar: rel | tag | serving | charged | home |
        // visited | vendor — 49 bytes.
        let mut settle = Vec::with_capacity(49);
        settle.extend(rel.to_be_bytes());
        settle.extend(tag.to_be_bytes());
        settle.push(serving);
        for v in &volumes {
            settle.extend(v.to_be_bytes());
        }
        // SETTLE_VERDICT grammar: rel | tag | result — 17 bytes.
        let mut verdict = Vec::with_capacity(17);
        verdict.extend(rel.to_be_bytes());
        verdict.extend(tag.to_be_bytes());
        verdict.push(result);
        let frames = vec![
            Frame::new(FrameKind::Settle, settle),
            Frame::new(FrameKind::SettleVerdict, verdict),
        ];
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend(f.encode().unwrap());
        }
        let mut d = FrameDecoder::new(256);
        let mut got = Vec::new();
        for chunk in chunked(&stream, &cuts) {
            d.push(&chunk).unwrap();
            while let Some(f) = d.next_frame() {
                got.push(f);
            }
        }
        prop_assert_eq!(got[0].kind, FrameKind::Settle);
        prop_assert_eq!(got[0].payload.len(), 49);
        prop_assert_eq!(got[1].kind, FrameKind::SettleVerdict);
        prop_assert_eq!(got[1].payload.len(), 17);
        prop_assert_eq!(got, frames);
    }

    /// Adversarial settle frames at the framing layer: any strict
    /// prefix of a SETTLE frame waits rather than errs, and an
    /// oversize length prefix under a settle kind byte poisons the
    /// decoder before any payload is buffered.
    #[test]
    fn settle_truncation_waits_and_oversize_poisons(
        payload in proptest::collection::vec(0u8..=255, 49),
        cut in any::<usize>(),
        over in 1u32..1_000_000,
        max in 1u32..4096,
    ) {
        let frame = Frame::new(FrameKind::Settle, payload);
        let bytes = frame.encode().unwrap();
        let cut = cut % bytes.len();
        let mut d = FrameDecoder::new(256);
        d.push(&bytes[..cut]).unwrap();
        prop_assert_eq!(d.next_frame(), None);
        prop_assert!(d.poisoned().is_none());
        d.push(&bytes[cut..]).unwrap();
        prop_assert_eq!(d.next_frame(), Some(frame));

        // Oversize settle-verdict length prefix: typed rejection from
        // the header alone, decoder poisoned for good.
        let len = max.saturating_add(over);
        let mut header = vec![FrameKind::SettleVerdict.as_u8()];
        header.extend(len.to_be_bytes());
        let mut d = FrameDecoder::new(max);
        prop_assert_eq!(d.push(&header), Err(WireError::Oversize { len, max }));
        prop_assert!(d.push(&[0]).is_err());
    }

    /// A truncated stream (any strict prefix) never yields the final
    /// frame and never errors: the decoder just waits for more bytes.
    #[test]
    fn truncation_waits_rather_than_errs(
        frame in arb_frame(100),
        cut in any::<usize>(),
    ) {
        let bytes = frame.encode().unwrap();
        let cut = cut % bytes.len().max(1);
        let mut d = FrameDecoder::new(256);
        d.push(&bytes[..cut]).unwrap();
        prop_assert_eq!(d.next_frame(), None);
        prop_assert!(d.poisoned().is_none());
        // Completing the stream completes the frame.
        d.push(&bytes[cut..]).unwrap();
        prop_assert_eq!(d.next_frame(), Some(frame));
    }
}

/// An in-memory stream feeding pre-chunked data, for driving the
/// connection state machine the way a socket would.
struct ChunkStream {
    rx: VecDeque<Vec<u8>>,
    closed_after: bool,
}

impl Read for ChunkStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.rx.pop_front() {
            Some(chunk) => {
                let n = chunk.len().min(buf.len());
                buf[..n].copy_from_slice(&chunk[..n]);
                if n < chunk.len() {
                    self.rx.push_front(chunk[n..].to_vec());
                }
                Ok(n)
            }
            None if self.closed_after => Ok(0),
            None => Err(io::Error::new(io::ErrorKind::WouldBlock, "drained")),
        }
    }
}

impl Write for ChunkStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The connection driver surfaces decoder violations as typed
    /// `DriverError::Wire` values and never panics, for arbitrary
    /// chunkings of arbitrary bytes.
    #[test]
    fn conn_driver_is_total_over_garbage(
        chunks in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..200), 0..10),
        closed in any::<bool>(),
    ) {
        let stream = ChunkStream { rx: chunks.into(), closed_after: closed };
        let mut driver = ConnDriver::new(stream, 512);
        let mut frames = Vec::new();
        for _ in 0..50 {
            match driver.poll_frames(8, &mut frames) {
                Ok(()) => {}
                Err(DriverError::Wire(_)) => break,
                Err(DriverError::Io(k)) => {
                    prop_assert_ne!(k, io::ErrorKind::WouldBlock);
                    break;
                }
            }
            prop_assert!(driver.partial_bytes() <= HEADER_LEN + 512);
            if driver.at_eof() {
                break;
            }
        }
        for f in &frames {
            prop_assert!(f.payload.len() <= 512);
        }
    }

    /// Frames pushed through the driver in arbitrary socket-sized
    /// chunks arrive intact and in order.
    #[test]
    fn conn_driver_reassembles_chunked_frames(
        frames in proptest::collection::vec(arb_frame(150), 1..8),
        cuts in proptest::collection::vec(any::<usize>(), 0..15),
    ) {
        let mut stream_bytes = Vec::new();
        for f in &frames {
            stream_bytes.extend(f.encode().unwrap());
        }
        let stream = ChunkStream {
            rx: chunked(&stream_bytes, &cuts).into(),
            closed_after: true,
        };
        let mut driver = ConnDriver::new(stream, 256);
        let mut got = Vec::new();
        while !driver.at_eof() {
            driver.poll_frames(4, &mut got).unwrap();
        }
        driver.poll_frames(usize::MAX, &mut got).unwrap();
        prop_assert_eq!(got, frames);
    }
}
