//! Radio channel model: received signal strength and intermittent
//! connectivity.
//!
//! Reproduces the conditions of the paper's Fig. 4 / Fig. 14: a device's
//! RSS fluctuates (shadow fading), and when it falls below the no-service
//! threshold the device temporarily loses uplink and downlink service (the
//! "gray areas"). Short outages (< the ~5 s radio-link-failure detection
//! time) are invisible to the core network, which keeps charging — the
//! mechanism behind the intermittent-connectivity charging gap.
//!
//! The channel is materialised as a [`RadioTimeline`]: a precomputed,
//! deterministic sequence of constant-RSS segments for the whole
//! experiment. This makes every query (`rss_at`, `connected_at`, η) exact
//! and keeps the simulation replayable.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One constant-signal span of the timeline.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RadioSegment {
    /// Segment start (inclusive).
    pub start: SimTime,
    /// Segment end (exclusive).
    pub end: SimTime,
    /// Received signal strength during the segment.
    pub rss_dbm: f64,
}

/// Parameters for the AR(1) shadow-fading RSS walk.
#[derive(Clone, Copy, Debug)]
pub struct RssWalkParams {
    /// Long-run mean RSS (the paper sweeps [-95, -120] dBm).
    pub mean_rss_dbm: f64,
    /// Standard deviation of shadow fading around the mean.
    pub std_dev_db: f64,
    /// Mean-reversion factor per sample in `(0, 1]` (1 = white noise).
    pub reversion: f64,
    /// Sampling interval of the walk.
    pub sample_interval: SimDuration,
}

impl Default for RssWalkParams {
    fn default() -> Self {
        RssWalkParams {
            mean_rss_dbm: -90.0,
            std_dev_db: 6.0,
            reversion: 0.25,
            sample_interval: SimDuration::from_millis(200),
        }
    }
}

/// RSS below which the device has no service.
pub const NO_SERVICE_THRESHOLD_DBM: f64 = -110.0;

/// Mean time for the network to detect a persistent outage via radio link
/// failure and detach the device (the paper's LTE core took ~5 s).
pub const RLF_DETACH: SimDuration = SimDuration(5_000_000);

/// The realised radio channel for one device over one experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RadioTimeline {
    segments: Vec<RadioSegment>,
    duration: SimTime,
}

impl RadioTimeline {
    /// A perfectly stable channel at the given RSS.
    pub fn constant(duration: SimDuration, rss_dbm: f64) -> Self {
        RadioTimeline {
            segments: vec![RadioSegment {
                start: SimTime::ZERO,
                end: SimTime::ZERO + duration,
                rss_dbm,
            }],
            duration: SimTime::ZERO + duration,
        }
    }

    /// Generates an AR(1) shadow-fading walk.
    pub fn rss_walk(duration: SimDuration, params: RssWalkParams, rng: &mut SimRng) -> Self {
        assert!(params.sample_interval > SimDuration::ZERO);
        assert!(params.reversion > 0.0 && params.reversion <= 1.0);
        let end = SimTime::ZERO + duration;
        let mut segments = Vec::new();
        let mut t = SimTime::ZERO;
        let mut rss = params.mean_rss_dbm;
        while t < end {
            let seg_end = (t + params.sample_interval).min(end);
            segments.push(RadioSegment {
                start: t,
                end: seg_end,
                rss_dbm: rss,
            });
            // AR(1): pull towards the mean, add fresh shadow-fading noise.
            let noise = rng.normal(0.0, params.std_dev_db * params.reversion.sqrt());
            rss += params.reversion * (params.mean_rss_dbm - rss) + noise;
            t = seg_end;
        }
        RadioTimeline {
            segments,
            duration: end,
        }
    }

    /// Generates an alternating connected/outage renewal process hitting a
    /// target disconnectivity ratio η with outages of the given mean
    /// duration (exponentially distributed, truncated below `max_outage`).
    ///
    /// Matches the Fig. 4 / Fig. 14 setup: η = t_disconn / t_total, mean
    /// outage ≈ 1.93 s, each outage shorter than the 5 s RLF detach window
    /// so the core keeps charging through them.
    pub fn intermittent(
        duration: SimDuration,
        connected_rss_dbm: f64,
        target_eta: f64,
        mean_outage: SimDuration,
        rng: &mut SimRng,
    ) -> Self {
        assert!((0.0..1.0).contains(&target_eta), "eta must be in [0,1)");
        assert!(mean_outage > SimDuration::ZERO);
        let end = SimTime::ZERO + duration;
        let mut segments = Vec::new();
        let mut t = SimTime::ZERO;
        if target_eta == 0.0 {
            return Self::constant(duration, connected_rss_dbm);
        }
        let max_outage = RLF_DETACH.as_secs_f64() * 0.96; // stay under RLF detach
        let min_outage = 0.2;
        // Outage draws are exponential clamped to [min, max]; compensate
        // for truncation so the realised mean matches the target:
        // E[clamp(X, lo, hi)] = lo + m·(e^{-lo/m} − e^{-hi/m}).
        let m = mean_outage.as_secs_f64();
        let eff_outage = min_outage + m * ((-min_outage / m).exp() - (-max_outage / m).exp());
        // Mean connected period chosen so E[outage]/(E[outage]+E[conn]) = η.
        let mean_connected_s = eff_outage * (1.0 - target_eta) / target_eta;
        let outage_rss = NO_SERVICE_THRESHOLD_DBM - 10.0;
        let mut connected = true;
        while t < end {
            let len_s = if connected {
                rng.exponential(mean_connected_s).max(0.05)
            } else {
                rng.exponential(mean_outage.as_secs_f64())
                    .clamp(min_outage, max_outage)
            };
            let seg_end = (t + SimDuration::from_secs_f64(len_s)).min(end);
            segments.push(RadioSegment {
                start: t,
                end: seg_end,
                rss_dbm: if connected {
                    connected_rss_dbm
                } else {
                    outage_rss
                },
            });
            t = seg_end;
            connected = !connected;
        }
        RadioTimeline {
            segments,
            duration: end,
        }
    }

    /// RSS at instant `t` (clamped to the final segment past the end).
    pub fn rss_at(&self, t: SimTime) -> f64 {
        self.segment_at(t).rss_dbm
    }

    /// Whether the device has service at instant `t`.
    pub fn connected_at(&self, t: SimTime) -> bool {
        self.rss_at(t) >= NO_SERVICE_THRESHOLD_DBM
    }

    fn segment_at(&self, t: SimTime) -> &RadioSegment {
        let idx = self
            .segments
            .partition_point(|s| s.end <= t)
            .min(self.segments.len() - 1);
        &self.segments[idx]
    }

    /// End of the segment containing `t` — the next instant the channel
    /// may change, for event scheduling. `None` at/after the end.
    pub fn next_transition_after(&self, t: SimTime) -> Option<SimTime> {
        if t >= self.duration {
            return None;
        }
        Some(self.segment_at(t).end)
    }

    /// If the device is disconnected at `t`, returns the instant service
    /// resumes (or the timeline end).
    pub fn reconnect_time(&self, t: SimTime) -> Option<SimTime> {
        if self.connected_at(t) {
            return None;
        }
        let mut idx = self.segments.partition_point(|s| s.end <= t);
        while idx < self.segments.len() {
            if self.segments[idx].rss_dbm >= NO_SERVICE_THRESHOLD_DBM {
                return Some(self.segments[idx].start);
            }
            idx += 1;
        }
        Some(self.duration)
    }

    /// Exact disconnectivity ratio η = t_disconn / t_total.
    pub fn disconnectivity_ratio(&self) -> f64 {
        let total = self.duration.as_micros() as f64;
        if total == 0.0 {
            return 0.0;
        }
        let disconn: u64 = self
            .outage_intervals()
            .iter()
            .map(|(s, e)| (*e - *s).as_micros())
            .sum();
        disconn as f64 / total
    }

    /// Merged list of (start, end) outage intervals.
    pub fn outage_intervals(&self) -> Vec<(SimTime, SimTime)> {
        let mut out: Vec<(SimTime, SimTime)> = Vec::new();
        for s in &self.segments {
            if s.rss_dbm < NO_SERVICE_THRESHOLD_DBM {
                match out.last_mut() {
                    Some(last) if last.1 == s.start => last.1 = s.end,
                    _ => out.push((s.start, s.end)),
                }
            }
        }
        out
    }

    /// Mean outage duration in seconds (0 if none).
    pub fn mean_outage_secs(&self) -> f64 {
        let iv = self.outage_intervals();
        if iv.is_empty() {
            return 0.0;
        }
        iv.iter().map(|(s, e)| (*e - *s).as_secs_f64()).sum::<f64>() / iv.len() as f64
    }

    /// Returns the instant by which `connected_time` of *service time* has
    /// accumulated starting from `from`, skipping over outages.
    ///
    /// This lets a radio transmitter compute its exact completion time in
    /// one step: serialization suspends during outages and resumes when
    /// coverage returns. Past the end of the timeline the channel is
    /// treated as staying in its final state.
    pub fn advance_connected(&self, from: SimTime, connected_time: SimDuration) -> SimTime {
        let mut t = from;
        let mut remaining = connected_time;
        loop {
            let seg = self.segment_at(t);
            let connected = seg.rss_dbm >= NO_SERVICE_THRESHOLD_DBM;
            // After the timeline end the final segment persists forever.
            let seg_end = if t >= self.duration {
                None
            } else {
                Some(seg.end)
            };
            match seg_end {
                None => {
                    return if connected {
                        t + remaining
                    } else {
                        // Disconnected forever: completion never happens;
                        // saturate far in the future.
                        SimTime(u64::MAX / 2)
                    };
                }
                Some(end) => {
                    if connected {
                        let avail = end - t;
                        if avail >= remaining {
                            return t + remaining;
                        }
                        remaining = remaining - avail;
                    }
                    t = end;
                }
            }
        }
    }

    /// Full segment list (for plotting Fig. 4-style RSS traces).
    pub fn segments(&self) -> &[RadioSegment] {
        &self.segments
    }

    /// Timeline end.
    pub fn end(&self) -> SimTime {
        self.duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_channel_always_connected() {
        let tl = RadioTimeline::constant(SimDuration::from_secs(10), -90.0);
        assert!(tl.connected_at(SimTime::ZERO));
        assert!(tl.connected_at(SimTime::from_secs(5)));
        assert_eq!(tl.disconnectivity_ratio(), 0.0);
        assert!(tl.outage_intervals().is_empty());
    }

    #[test]
    fn constant_below_threshold_never_connected() {
        let tl = RadioTimeline::constant(SimDuration::from_secs(10), -115.0);
        assert!(!tl.connected_at(SimTime::from_secs(3)));
        assert!((tl.disconnectivity_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn walk_covers_duration_contiguously() {
        let mut rng = SimRng::new(1);
        let tl = RadioTimeline::rss_walk(
            SimDuration::from_secs(30),
            RssWalkParams::default(),
            &mut rng,
        );
        let segs = tl.segments();
        assert_eq!(segs[0].start, SimTime::ZERO);
        assert_eq!(segs.last().unwrap().end, SimTime::from_secs(30));
        for w in segs.windows(2) {
            assert_eq!(w[0].end, w[1].start, "no gaps between segments");
        }
    }

    #[test]
    fn walk_stays_near_mean() {
        let mut rng = SimRng::new(2);
        let params = RssWalkParams {
            mean_rss_dbm: -95.0,
            ..Default::default()
        };
        let tl = RadioTimeline::rss_walk(SimDuration::from_secs(600), params, &mut rng);
        let mean: f64 =
            tl.segments().iter().map(|s| s.rss_dbm).sum::<f64>() / tl.segments().len() as f64;
        assert!((mean + 95.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn intermittent_hits_target_eta() {
        let mut rng = SimRng::new(3);
        for target in [0.05, 0.10, 0.15] {
            let tl = RadioTimeline::intermittent(
                SimDuration::from_secs(3600),
                -90.0,
                target,
                SimDuration::from_millis(1930),
                &mut rng,
            );
            let eta = tl.disconnectivity_ratio();
            assert!(
                (eta - target).abs() < 0.04,
                "target {target}, realised {eta}"
            );
        }
    }

    #[test]
    fn intermittent_outages_below_rlf_window() {
        let mut rng = SimRng::new(4);
        let tl = RadioTimeline::intermittent(
            SimDuration::from_secs(1800),
            -90.0,
            0.10,
            SimDuration::from_millis(1930),
            &mut rng,
        );
        for (s, e) in tl.outage_intervals() {
            assert!((e - s) < RLF_DETACH, "outage {:?} exceeds RLF", e - s);
        }
        assert!(tl.mean_outage_secs() > 0.5 && tl.mean_outage_secs() < 4.0);
    }

    #[test]
    fn eta_zero_yields_constant() {
        let mut rng = SimRng::new(5);
        let tl = RadioTimeline::intermittent(
            SimDuration::from_secs(60),
            -90.0,
            0.0,
            SimDuration::from_secs(2),
            &mut rng,
        );
        assert_eq!(tl.disconnectivity_ratio(), 0.0);
    }

    #[test]
    fn reconnect_time_finds_next_service() {
        let mut rng = SimRng::new(6);
        let tl = RadioTimeline::intermittent(
            SimDuration::from_secs(300),
            -90.0,
            0.2,
            SimDuration::from_secs(2),
            &mut rng,
        );
        let (start, end) = tl.outage_intervals()[0];
        let mid = SimTime((start.0 + end.0) / 2);
        assert_eq!(tl.reconnect_time(mid), Some(end));
        // During service there is nothing to reconnect to.
        assert_eq!(tl.reconnect_time(SimTime::ZERO), None);
    }

    #[test]
    fn next_transition_walks_segments() {
        let tl = RadioTimeline::constant(SimDuration::from_secs(10), -90.0);
        assert_eq!(
            tl.next_transition_after(SimTime::ZERO),
            Some(SimTime::from_secs(10))
        );
        assert_eq!(tl.next_transition_after(SimTime::from_secs(10)), None);
    }

    #[test]
    fn advance_connected_no_outage_is_plain_addition() {
        let tl = RadioTimeline::constant(SimDuration::from_secs(100), -90.0);
        assert_eq!(
            tl.advance_connected(SimTime::from_secs(1), SimDuration::from_millis(500)),
            SimTime::from_micros(1_500_000)
        );
    }

    #[test]
    fn advance_connected_skips_outages() {
        // Hand-built timeline: connected [0,2s), outage [2s,5s), connected [5s,10s).
        let tl = RadioTimeline {
            segments: vec![
                RadioSegment {
                    start: SimTime::ZERO,
                    end: SimTime::from_secs(2),
                    rss_dbm: -90.0,
                },
                RadioSegment {
                    start: SimTime::from_secs(2),
                    end: SimTime::from_secs(5),
                    rss_dbm: -120.0,
                },
                RadioSegment {
                    start: SimTime::from_secs(5),
                    end: SimTime::from_secs(10),
                    rss_dbm: -90.0,
                },
            ],
            duration: SimTime::from_secs(10),
        };
        // Starting at 1s, 1.5s of service time: 1s before outage + 0.5s after.
        assert_eq!(
            tl.advance_connected(SimTime::from_secs(1), SimDuration::from_millis(1500)),
            SimTime::from_millis(5500)
        );
        // Starting inside the outage just waits for reconnection.
        assert_eq!(
            tl.advance_connected(SimTime::from_secs(3), SimDuration::from_millis(100)),
            SimTime::from_millis(5100)
        );
    }

    #[test]
    fn advance_connected_past_end_extends_final_state() {
        let tl = RadioTimeline::constant(SimDuration::from_secs(1), -90.0);
        assert_eq!(
            tl.advance_connected(SimTime::from_secs(5), SimDuration::from_secs(1)),
            SimTime::from_secs(6)
        );
    }

    #[test]
    fn queries_past_end_clamp() {
        let tl = RadioTimeline::constant(SimDuration::from_secs(1), -90.0);
        assert_eq!(tl.rss_at(SimTime::from_secs(100)), -90.0);
    }
}
