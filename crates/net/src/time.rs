//! Simulated time.
//!
//! Everything in the simulator runs on a single virtual clock with
//! microsecond resolution — fine enough for sub-millisecond radio events,
//! coarse enough that an hour-long charging cycle fits comfortably in `u64`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock (microseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

/// A span of simulated time in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Builds an instant from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds an instant from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Whole seconds since the epoch (truncating).
    pub fn as_secs(&self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Microseconds since the epoch.
    pub fn as_micros(&self) -> u64 {
        self.0
    }

    /// Duration elapsed since `earlier`; saturates at zero if `earlier`
    /// is in the future.
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction of a duration.
    pub fn checked_sub(&self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_sub(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// From milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// From microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// From fractional seconds; panics on negative input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "duration must be non-negative");
        SimDuration((s * 1e6).round() as u64)
    }

    /// As fractional seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As microseconds.
    pub fn as_micros(&self) -> u64 {
        self.0
    }

    /// As whole milliseconds (truncating).
    pub fn as_millis(&self) -> u64 {
        self.0 / 1_000
    }

    /// Time to serialize `bytes` at `rate_bps` bits/second.
    ///
    /// Rounds up so a nonzero payload never serializes in zero time.
    pub fn transmission(bytes: u64, rate_bps: u64) -> Self {
        assert!(rate_bps > 0, "link rate must be positive");
        let bits = bytes * 8;
        SimDuration((bits * 1_000_000).div_ceil(rate_bps))
    }

    /// Scalar multiplication.
    pub fn mul_f64(&self, k: f64) -> Self {
        assert!(k >= 0.0 && k.is_finite());
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimDuration::from_secs(2).as_micros(), 2_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 10_500_000);
        assert_eq!((t - SimTime::from_secs(10)).as_millis(), 500);
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(late.since(early), SimDuration::from_secs(1));
    }

    #[test]
    fn transmission_time_rounds_up() {
        // 1 byte at 1 Gbps = 8 ns -> rounds up to 1 us.
        assert_eq!(SimDuration::transmission(1, 1_000_000_000).as_micros(), 1);
        // 1500 bytes at 12 Mbps = 1 ms exactly.
        assert_eq!(
            SimDuration::transmission(1500, 12_000_000),
            SimDuration::from_millis(1)
        );
        assert_eq!(SimDuration::transmission(0, 1000), SimDuration::ZERO);
    }

    #[test]
    #[should_panic]
    fn zero_rate_panics() {
        SimDuration::transmission(100, 0);
    }

    #[test]
    fn duration_from_f64() {
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_scales() {
        assert_eq!(
            SimDuration::from_secs(2).mul_f64(1.5),
            SimDuration::from_secs(3)
        );
        assert_eq!(SimDuration::from_secs(2).mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_millis(2));
    }
}
