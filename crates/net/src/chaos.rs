//! Deterministic fault injection for real byte streams.
//!
//! The simulation side of this crate already has [`crate::channel`]'s
//! `FaultyChannel` for datagram faults; this module is its counterpart
//! for the *stream* transports used by the verifier ingress. A
//! [`ChaosStream`] wraps any `Read + Write` transport (a `TcpStream`,
//! a test double) and degrades it the way hostile networks and clients
//! do:
//!
//! * **slow-loris byte dribble** — every read/write is capped at a
//!   small, seeded-random chunk size, so frames trickle across many
//!   syscalls and exercise every partial-frame path;
//! * **connection reset mid-frame** — after a byte budget is spent the
//!   stream fails with `ConnectionReset`, landing (for a suitable
//!   budget) in the middle of an envelope.
//!
//! All randomness comes from a [`SimRng`] stream split off a caller
//! seed, following the same discipline as `FaultyChannel`: the same
//! seed replays byte-for-byte the same chunking decisions, so a chaos
//! failure reproduces under a debugger. "Stalled reader" and server
//! crash/restart faults need no stream support — they are behaviors a
//! harness drives (never call read; drop the server) — but
//! [`ChaosRole`] names them so a fault *plan* can assign every client
//! a role deterministically via [`plan_roles`].

use crate::rng::SimRng;
use std::io::{self, Read, Write};

/// What a [`ChaosStream`] does to the transport it wraps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosSpec {
    /// Cap on bytes accepted per `write` call, chosen uniformly in
    /// `[1, max]` per call. `None` passes writes through untouched.
    pub write_dribble: Option<usize>,
    /// Cap on bytes returned per `read` call, chosen uniformly in
    /// `[1, max]` per call. `None` passes reads through untouched.
    pub read_dribble: Option<usize>,
    /// Fail with `ConnectionReset` once this many bytes (reads plus
    /// writes) have crossed the stream. `None` never resets.
    pub reset_after: Option<u64>,
}

impl ChaosSpec {
    /// A spec that changes nothing — useful as the `Clean` role.
    pub fn clean() -> Self {
        ChaosSpec {
            write_dribble: None,
            read_dribble: None,
            reset_after: None,
        }
    }
}

/// Counters describing what a [`ChaosStream`] actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// `read` calls that returned data.
    pub reads: u64,
    /// `write` calls that accepted data.
    pub writes: u64,
    /// Total bytes returned by reads.
    pub bytes_rx: u64,
    /// Total bytes accepted by writes.
    pub bytes_tx: u64,
    /// Injected `ConnectionReset` failures (counted per failing call).
    pub resets: u64,
}

/// A `Read + Write` wrapper that injects deterministic stream faults.
///
/// Chunk-size decisions are drawn from a seeded [`SimRng`]; wrapping
/// the same byte traffic with the same seed reproduces the same
/// sequence of dribble caps. (Bytes *available* on the inner transport
/// may still vary run-to-run — only the write side is fully
/// deterministic when the peer's timing is not.)
#[derive(Debug)]
pub struct ChaosStream<S> {
    inner: S,
    spec: ChaosSpec,
    rng: SimRng,
    stats: ChaosStats,
    total: u64,
    tripped: bool,
}

impl<S> ChaosStream<S> {
    /// Wraps `inner` under `spec`, drawing chunk sizes from a stream
    /// split off `seed`.
    pub fn new(inner: S, spec: ChaosSpec, seed: u64) -> Self {
        ChaosStream {
            inner,
            spec,
            rng: SimRng::new(seed).split("chaos-stream"),
            stats: ChaosStats::default(),
            total: 0,
            tripped: false,
        }
    }

    /// What this stream has done so far.
    pub fn stats(&self) -> ChaosStats {
        self.stats
    }

    /// Shared access to the wrapped transport.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// True once the reset budget has been spent: every further call
    /// fails with `ConnectionReset`.
    pub fn is_reset(&self) -> bool {
        self.tripped
    }

    /// Draws this call's chunk cap from the dribble setting, clamped
    /// by the remaining reset budget. `None` means the stream must
    /// fail with `ConnectionReset` instead of transferring bytes.
    fn budget(&mut self, dribble: Option<usize>, want: usize) -> Option<usize> {
        if self.tripped {
            return None;
        }
        if let Some(after) = self.spec.reset_after {
            if self.total >= after {
                self.tripped = true;
                return None;
            }
        }
        let cap = match dribble {
            Some(max) => self.rng.range_u64(1, max.max(1) as u64) as usize,
            None => want,
        };
        Some(cap.min(want).max(1))
    }

    fn reset_err(&mut self) -> io::Error {
        self.stats.resets += 1;
        io::Error::new(io::ErrorKind::ConnectionReset, "chaos: injected reset")
    }
}

impl<S: Read> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let cap = match self.budget(self.spec.read_dribble, buf.len()) {
            Some(cap) => cap,
            None => return Err(self.reset_err()),
        };
        let n = self.inner.read(&mut buf[..cap])?;
        if n > 0 {
            self.stats.reads += 1;
            self.stats.bytes_rx += n as u64;
            self.total += n as u64;
        }
        Ok(n)
    }
}

impl<S: Write> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let cap = match self.budget(self.spec.write_dribble, buf.len()) {
            Some(cap) => cap,
            None => return Err(self.reset_err()),
        };
        let n = self.inner.write(&buf[..cap])?;
        if n > 0 {
            self.stats.writes += 1;
            self.stats.bytes_tx += n as u64;
            self.total += n as u64;
        }
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A client role in a chaos fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosRole {
    /// Behaves normally; its goodput is the degradation baseline.
    Clean,
    /// Dribbles writes `chunk` bytes at a time (slow-loris).
    SlowLoris {
        /// Maximum bytes per write call.
        chunk: usize,
    },
    /// Connection resets after `after` bytes — mid-frame for budgets
    /// that do not align with an envelope boundary.
    ResetMidFrame {
        /// Byte budget before the injected reset.
        after: u64,
    },
    /// Submits work but never collects verdicts, leaving the server
    /// to bound the per-connection verdict debt.
    StalledReader,
}

impl ChaosRole {
    /// The stream spec implementing this role ([`ChaosRole::StalledReader`]
    /// is harness behavior, so its spec is clean).
    pub fn spec(&self) -> ChaosSpec {
        match *self {
            ChaosRole::Clean | ChaosRole::StalledReader => ChaosSpec::clean(),
            ChaosRole::SlowLoris { chunk } => ChaosSpec {
                write_dribble: Some(chunk.max(1)),
                ..ChaosSpec::clean()
            },
            ChaosRole::ResetMidFrame { after } => ChaosSpec {
                reset_after: Some(after),
                ..ChaosSpec::clean()
            },
        }
    }
}

/// Deterministically assigns a chaos role to each of `n` clients.
///
/// The same `(seed, n)` always yields the same plan; each slot draws
/// from its own labelled RNG split so inserting a client does not
/// reshuffle the others. Roughly half the slots stay clean so every
/// plan retains a goodput baseline.
pub fn plan_roles(seed: u64, n: usize) -> Vec<ChaosRole> {
    let base = SimRng::new(seed);
    (0..n)
        .map(|i| {
            let mut r = base.split(&format!("chaos-role-{i}"));
            match r.next_below(6) {
                0 => ChaosRole::SlowLoris {
                    chunk: r.range_u64(1, 7) as usize,
                },
                1 => ChaosRole::ResetMidFrame {
                    // Past the 10-byte HELLO exchange, inside later frames.
                    after: r.range_u64(16, 256),
                },
                2 => ChaosRole::StalledReader,
                _ => ChaosRole::Clean,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// In-memory transport: reads from a script, collects writes.
    struct Mem {
        rx: Cursor<Vec<u8>>,
        tx: Vec<u8>,
    }

    impl Read for Mem {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.rx.read(buf)
        }
    }

    impl Write for Mem {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.tx.write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn mem(rx: Vec<u8>) -> Mem {
        Mem {
            rx: Cursor::new(rx),
            tx: Vec::new(),
        }
    }

    /// Drives `data` through a dribbling writer and records the chunk
    /// size of every accepted write.
    fn write_trace(seed: u64, dribble: usize, data: &[u8]) -> Vec<usize> {
        let mut s = ChaosStream::new(
            mem(Vec::new()),
            ChaosSpec {
                write_dribble: Some(dribble),
                ..ChaosSpec::clean()
            },
            seed,
        );
        let mut trace = Vec::new();
        let mut off = 0;
        while off < data.len() {
            let n = s.write(&data[off..]).unwrap();
            trace.push(n);
            off += n;
        }
        assert_eq!(s.inner().tx, data);
        trace
    }

    #[test]
    fn same_seed_replays_the_same_chunking() {
        let data: Vec<u8> = (0..200u8).collect();
        let a = write_trace(7, 5, &data);
        let b = write_trace(7, 5, &data);
        assert_eq!(a, b);
        assert!(a.iter().all(|&n| (1..=5).contains(&n)));
        // A different seed gives a different trace (overwhelmingly).
        let c = write_trace(8, 5, &data);
        assert_ne!(a, c);
    }

    #[test]
    fn read_dribble_trickles_but_loses_nothing() {
        let data: Vec<u8> = (0..100u8).collect();
        let mut s = ChaosStream::new(
            mem(data.clone()),
            ChaosSpec {
                read_dribble: Some(3),
                ..ChaosSpec::clean()
            },
            42,
        );
        let mut got = Vec::new();
        let mut buf = [0u8; 64];
        loop {
            let n = s.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            assert!(n <= 3);
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(got, data);
        assert_eq!(s.stats().bytes_rx, 100);
    }

    #[test]
    fn reset_fires_once_budget_is_spent_and_sticks() {
        let mut s = ChaosStream::new(
            mem(vec![0; 64]),
            ChaosSpec {
                reset_after: Some(10),
                ..ChaosSpec::clean()
            },
            1,
        );
        let mut moved = 0u64;
        let mut buf = [0u8; 4];
        let err = loop {
            match s.read(&mut buf) {
                Ok(n) => moved += n as u64,
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        // The reset lands at the first call crossing the 10-byte mark.
        assert!((10..=13).contains(&moved), "moved {moved}");
        assert!(s.is_reset());
        assert!(s.write(&[1, 2]).is_err());
        assert_eq!(s.stats().resets, 2);
    }

    #[test]
    fn plan_is_deterministic_and_keeps_a_baseline() {
        let a = plan_roles(99, 12);
        let b = plan_roles(99, 12);
        assert_eq!(a, b);
        // Extending the plan keeps earlier assignments stable.
        let longer = plan_roles(99, 20);
        assert_eq!(&longer[..12], &a[..]);
        assert!(a.contains(&ChaosRole::Clean));
    }
}
