//! Length-prefixed binary framing for the verifier ingress (DESIGN.md §10).
//!
//! The public-verification service (tlc-core's `verify::service`) becomes
//! network-reachable through a minimal, dependency-free wire protocol:
//! every message is one *frame*,
//!
//! ```text
//! frame := kind:u8 | len:u32 (big-endian) | payload[len]
//! ```
//!
//! This module owns the *envelope* only — the fifteen frame kinds, their
//! tag bytes, and a streaming decoder with a hard payload cap enforced
//! **before** any payload allocation. Payload grammars (what the bytes of
//! a `REGISTER` or `VERDICT` mean) belong to the protocol layer in
//! `tlc-core::verify::remote`, which keeps this crate free of any
//! dependency on the charging types.
//!
//! Decoding is adversary-facing (the ingress listens on a public socket),
//! so the decoder never panics, never allocates more than
//! [`FrameDecoder::max_payload`] + [`HEADER_LEN`] bytes for a partial
//! frame, and turns every malformed input into a typed [`WireError`].
//! After an error the decoder is *poisoned*: the byte stream has lost
//! framing and cannot be resynchronised, so the connection must be torn
//! down.

use std::collections::VecDeque;

/// Bytes in a frame header: 1 kind byte + 4 length bytes.
pub const HEADER_LEN: usize = 5;

/// Default cap on a frame payload (256 KiB): comfortably above the
/// largest legitimate frame (a `SUBMIT_BATCH` of 256 ~800-byte PoCs) and
/// small enough that a hostile peer cannot balloon per-connection memory.
pub const DEFAULT_MAX_PAYLOAD: u32 = 256 * 1024;

/// Frame type tags of the verifier-ingress protocol.
///
/// The discriminants are the on-the-wire kind bytes and are part of the
/// frozen wire format (pinned by the golden-frame conformance tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → server: protocol magic, version, requested window.
    Hello = 1,
    /// Server → client: accepted version, granted window, payload cap.
    HelloAck = 2,
    /// Client → server: register a (plan, edge key, operator key)
    /// relationship.
    Register = 3,
    /// Server → client: the relationship id a `REGISTER` was issued.
    Registered = 4,
    /// Client → server: one PoC for verification under a relationship.
    Submit = 5,
    /// Client → server: a batch of PoCs under one relationship.
    SubmitBatch = 6,
    /// Server → client: one verification result, streamed as the service
    /// produces it.
    Verdict = 7,
    /// Client → server: request a service statistics snapshot.
    StatsReq = 8,
    /// Server → client: the statistics snapshot.
    Stats = 9,
    /// Server → client: a typed failure (service error, protocol fault).
    Error = 10,
    /// Client → server: drain my outstanding verdicts, then close.
    Goodbye = 11,
    /// Server → client: all verdicts delivered; closing now.
    GoodbyeAck = 12,
    /// Server → client: overload notice — the submission (or the whole
    /// connection) was shed by admission control; retry after the
    /// carried delay. Never a silent drop.
    Busy = 13,
    /// Client → server: a three-party roaming settlement record
    /// (home/visited/vendor split of a charged volume) for audit.
    Settle = 14,
    /// Server → client: the settlement's conservation verdict.
    SettleVerdict = 15,
}

impl FrameKind {
    /// Every frame kind, in tag order (fixture tests iterate this).
    pub const ALL: [FrameKind; 15] = [
        FrameKind::Hello,
        FrameKind::HelloAck,
        FrameKind::Register,
        FrameKind::Registered,
        FrameKind::Submit,
        FrameKind::SubmitBatch,
        FrameKind::Verdict,
        FrameKind::StatsReq,
        FrameKind::Stats,
        FrameKind::Error,
        FrameKind::Goodbye,
        FrameKind::GoodbyeAck,
        FrameKind::Busy,
        FrameKind::Settle,
        FrameKind::SettleVerdict,
    ];

    /// The wire tag byte.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Parses a wire tag byte.
    pub fn from_u8(b: u8) -> Option<FrameKind> {
        Self::ALL.get(b.wrapping_sub(1) as usize).copied()
    }
}

/// Typed framing failures. Every adversarial input maps to one of these;
/// the codec has no panicking path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The kind byte is not a known [`FrameKind`].
    UnknownKind(u8),
    /// The length prefix exceeds the decoder's payload cap. Raised from
    /// the 5-byte header alone, before any payload is buffered.
    Oversize {
        /// Length the peer declared.
        len: u32,
        /// The configured cap.
        max: u32,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnknownKind(b) => write!(f, "unknown frame kind byte 0x{b:02x}"),
            WireError::Oversize { len, max } => {
                write!(f, "frame payload length {len} exceeds cap {max}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// One decoded (or to-be-encoded) frame: a kind plus an opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame type.
    pub kind: FrameKind,
    /// Payload bytes; their grammar is the protocol layer's business.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Builds a frame.
    pub fn new(kind: FrameKind, payload: Vec<u8>) -> Frame {
        Frame { kind, payload }
    }

    /// Encoded size on the wire.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }

    /// Serialises the frame, appending to `out`. Fails (without writing)
    /// if the payload cannot be length-prefixed in a `u32`.
    pub fn encode_into(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        let len = u32::try_from(self.payload.len()).map_err(|_| WireError::Oversize {
            len: u32::MAX,
            max: u32::MAX,
        })?;
        out.reserve(HEADER_LEN + self.payload.len());
        out.push(self.kind.as_u8());
        out.extend_from_slice(&len.to_be_bytes());
        out.extend_from_slice(&self.payload);
        Ok(())
    }

    /// Serialises the frame to a fresh buffer.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut out = Vec::with_capacity(self.wire_len());
        self.encode_into(&mut out)?;
        Ok(out)
    }
}

/// Decoder state for the frame currently being assembled.
enum Partial {
    /// Collecting the 5 header bytes.
    Header { buf: [u8; HEADER_LEN], have: usize },
    /// Header accepted; collecting `need` more payload bytes.
    Payload {
        kind: FrameKind,
        payload: Vec<u8>,
        need: usize,
    },
}

/// A streaming frame decoder: feed it byte chunks of any size (including
/// frames split across reads), pop completed frames.
///
/// Memory is bounded by construction: the partial frame holds at most
/// `HEADER_LEN + max_payload` bytes, and the payload buffer is only
/// allocated *after* the length prefix has been checked against the cap.
/// Completed frames queue in arrival order until drained with
/// [`next_frame`](Self::next_frame); callers bound that queue by bounding
/// how many bytes they feed per poll (see `ingress::ConnDriver`).
pub struct FrameDecoder {
    max_payload: u32,
    partial: Partial,
    done: VecDeque<Frame>,
    poison: Option<WireError>,
}

impl FrameDecoder {
    /// A decoder enforcing the given payload cap.
    pub fn new(max_payload: u32) -> FrameDecoder {
        FrameDecoder {
            max_payload,
            partial: Partial::Header {
                buf: [0; HEADER_LEN],
                have: 0,
            },
            done: VecDeque::new(),
            poison: None,
        }
    }

    /// The payload cap this decoder enforces.
    pub fn max_payload(&self) -> u32 {
        self.max_payload
    }

    /// Bytes currently buffered for the in-progress frame (header +
    /// partial payload). Always ≤ `HEADER_LEN + max_payload`.
    pub fn partial_bytes(&self) -> usize {
        match &self.partial {
            Partial::Header { have, .. } => *have,
            Partial::Payload { payload, .. } => HEADER_LEN + payload.len(),
        }
    }

    /// Completed frames awaiting [`next_frame`](Self::next_frame).
    pub fn pending_frames(&self) -> usize {
        self.done.len()
    }

    /// The error that poisoned this decoder, if any. Frames completed
    /// before the poisoning byte remain poppable.
    pub fn poisoned(&self) -> Option<WireError> {
        self.poison
    }

    /// Pops the next completed frame, in arrival order.
    pub fn next_frame(&mut self) -> Option<Frame> {
        self.done.pop_front()
    }

    /// Consumes a chunk of stream bytes. On a framing violation the
    /// decoder poisons itself and every subsequent call returns the same
    /// error; the connection should be closed.
    pub fn push(&mut self, mut bytes: &[u8]) -> Result<(), WireError> {
        if let Some(e) = self.poison {
            return Err(e);
        }
        while !bytes.is_empty() {
            // Header findings are copied out of the borrow so the poison
            // path below can re-borrow `self`.
            let mut header: Option<[u8; HEADER_LEN]> = None;
            let mut bad_kind: Option<u8> = None;
            match &mut self.partial {
                Partial::Header { buf, have } => {
                    let take = (HEADER_LEN - *have).min(bytes.len());
                    buf[*have..*have + take].copy_from_slice(&bytes[..take]);
                    *have += take;
                    bytes = &bytes[take..];
                    // Fail fast: the kind byte is checked the moment it
                    // arrives, before waiting for a length word.
                    if *have >= 1 && FrameKind::from_u8(buf[0]).is_none() {
                        bad_kind = Some(buf[0]);
                    } else if *have < HEADER_LEN {
                        break;
                    } else {
                        header = Some(*buf);
                    }
                }
                Partial::Payload {
                    kind,
                    payload,
                    need,
                } => {
                    let take = (*need).min(bytes.len());
                    payload.extend_from_slice(&bytes[..take]);
                    *need -= take;
                    bytes = &bytes[take..];
                    if *need == 0 {
                        let frame = Frame::new(*kind, std::mem::take(payload));
                        self.done.push_back(frame);
                        self.partial = Partial::Header {
                            buf: [0; HEADER_LEN],
                            have: 0,
                        };
                    }
                }
            }
            if let Some(b) = bad_kind {
                return self.poison_with(WireError::UnknownKind(b));
            }
            if let Some(buf) = header {
                let kind = match FrameKind::from_u8(buf[0]) {
                    Some(k) => k,
                    // Unreachable: the eager check above rejected bad
                    // kind bytes, but stay total rather than panic.
                    None => return self.poison_with(WireError::UnknownKind(buf[0])),
                };
                let len = u32::from_be_bytes([buf[1], buf[2], buf[3], buf[4]]);
                if len > self.max_payload {
                    return self.poison_with(WireError::Oversize {
                        len,
                        max: self.max_payload,
                    });
                }
                if len == 0 {
                    self.done.push_back(Frame::new(kind, Vec::new()));
                    self.partial = Partial::Header {
                        buf: [0; HEADER_LEN],
                        have: 0,
                    };
                } else {
                    // The cap check above bounds this allocation.
                    self.partial = Partial::Payload {
                        kind,
                        payload: Vec::with_capacity(len as usize),
                        need: len as usize,
                    };
                }
            }
        }
        Ok(())
    }

    fn poison_with(&mut self, e: WireError) -> Result<(), WireError> {
        self.poison = Some(e);
        Err(e)
    }
}

/// A decoded frame *view*: the kind plus a payload slice borrowed from
/// the read buffer it arrived in. The zero-copy twin of [`Frame`] —
/// the readiness ingress parses pooled read buffers with
/// [`split_frame`] and hands these borrows straight to the payload
/// codec, so a PoC is never copied between socket and verifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameRef<'a> {
    /// The frame type.
    pub kind: FrameKind,
    /// Payload bytes, borrowed from the caller's buffer.
    pub payload: &'a [u8],
}

impl FrameRef<'_> {
    /// Copies the view into an owned [`Frame`].
    pub fn to_owned(self) -> Frame {
        Frame::new(self.kind, self.payload.to_vec())
    }
}

/// Attempts to split one frame off the front of `buf` without copying.
///
/// * `Ok(Some((frame, consumed)))` — a complete frame; `consumed` bytes
///   (header + payload) belong to it and the caller advances past them.
/// * `Ok(None)` — `buf` holds only a partial frame; read more bytes.
/// * `Err(_)` — framing violation. Decision points match
///   [`FrameDecoder::push`] byte-for-byte: a bad kind byte is rejected
///   the moment it is visible (even with the length word missing), an
///   over-cap length is rejected from the 5-byte header alone. The
///   equivalence is property-tested in `tests/prop_wire.rs`.
pub fn split_frame(
    buf: &[u8],
    max_payload: u32,
) -> Result<Option<(FrameRef<'_>, usize)>, WireError> {
    let Some(&kind_byte) = buf.first() else {
        return Ok(None);
    };
    let Some(kind) = FrameKind::from_u8(kind_byte) else {
        return Err(WireError::UnknownKind(kind_byte));
    };
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let len = u32::from_be_bytes([buf[1], buf[2], buf[3], buf[4]]);
    if len > max_payload {
        return Err(WireError::Oversize {
            len,
            max: max_payload,
        });
    }
    let total = HEADER_LEN + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((
        FrameRef {
            kind,
            payload: &buf[HEADER_LEN..total],
        },
        total,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_bytes_roundtrip() {
        for k in FrameKind::ALL {
            assert_eq!(FrameKind::from_u8(k.as_u8()), Some(k));
        }
        assert_eq!(FrameKind::from_u8(0), None);
        assert_eq!(FrameKind::from_u8(16), None);
        assert_eq!(FrameKind::from_u8(0xFF), None);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let f = Frame::new(FrameKind::Submit, vec![1, 2, 3, 4, 5]);
        let bytes = f.encode().unwrap();
        assert_eq!(bytes.len(), f.wire_len());
        let mut d = FrameDecoder::new(1024);
        d.push(&bytes).unwrap();
        assert_eq!(d.next_frame(), Some(f));
        assert_eq!(d.next_frame(), None);
        assert_eq!(d.partial_bytes(), 0);
    }

    #[test]
    fn split_across_pushes() {
        let f = Frame::new(FrameKind::Verdict, (0..100u8).collect());
        let bytes = f.encode().unwrap();
        for split in 1..bytes.len() {
            let mut d = FrameDecoder::new(1024);
            d.push(&bytes[..split]).unwrap();
            d.push(&bytes[split..]).unwrap();
            assert_eq!(d.next_frame().as_ref(), Some(&f), "split at {split}");
        }
    }

    #[test]
    fn zero_length_and_coalesced_frames() {
        let a = Frame::new(FrameKind::StatsReq, Vec::new());
        let b = Frame::new(FrameKind::Goodbye, Vec::new());
        let mut bytes = a.encode().unwrap();
        bytes.extend(b.encode().unwrap());
        let mut d = FrameDecoder::new(16);
        d.push(&bytes).unwrap();
        assert_eq!(d.pending_frames(), 2);
        assert_eq!(d.next_frame(), Some(a));
        assert_eq!(d.next_frame(), Some(b));
    }

    #[test]
    fn oversize_rejected_from_header_alone() {
        let mut d = FrameDecoder::new(8);
        // Header declares 9 bytes: rejected before any payload arrives.
        let hdr = [FrameKind::Hello.as_u8(), 0, 0, 0, 9];
        assert_eq!(d.push(&hdr), Err(WireError::Oversize { len: 9, max: 8 }));
        assert!(d.poisoned().is_some());
        // Poisoned: same error forever.
        assert_eq!(d.push(&[0]), Err(WireError::Oversize { len: 9, max: 8 }));
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut d = FrameDecoder::new(8);
        assert_eq!(d.push(&[0x7F]), Err(WireError::UnknownKind(0x7F)));
    }

    #[test]
    fn split_frame_matches_decoder() {
        // Complete frame: same bytes, same kind/payload, exact consume.
        let f = Frame::new(FrameKind::Submit, (0..50u8).collect());
        let mut bytes = f.encode().unwrap();
        bytes.extend_from_slice(b"trailing");
        let (view, used) = split_frame(&bytes, 1024).unwrap().expect("complete");
        assert_eq!(view.kind, f.kind);
        assert_eq!(view.payload, &f.payload[..]);
        assert_eq!(used, f.wire_len());
        assert_eq!(view.to_owned(), f);

        // Every partial prefix: needs more bytes, never an error.
        let whole = f.encode().unwrap();
        for cut in 1..whole.len() {
            assert_eq!(split_frame(&whole[..cut], 1024).unwrap(), None, "cut {cut}");
        }

        // Bad kind byte: rejected from the first byte, like the decoder.
        assert_eq!(
            split_frame(&[0xEE], 1024),
            Err(WireError::UnknownKind(0xEE))
        );

        // Oversize: rejected from the header alone.
        let hdr = [FrameKind::Hello.as_u8(), 0, 0, 0, 9];
        assert_eq!(
            split_frame(&hdr, 8),
            Err(WireError::Oversize { len: 9, max: 8 })
        );

        // Empty and zero-length cases.
        assert_eq!(split_frame(&[], 8).unwrap(), None);
        let empty = Frame::new(FrameKind::StatsReq, Vec::new())
            .encode()
            .unwrap();
        let (view, used) = split_frame(&empty, 8).unwrap().expect("zero-len frame");
        assert_eq!(used, HEADER_LEN);
        assert!(view.payload.is_empty());
    }

    #[test]
    fn frames_before_poison_survive() {
        let good = Frame::new(FrameKind::Hello, vec![9]);
        let mut bytes = good.encode().unwrap();
        bytes.push(0xEE); // bad kind byte right after
        let mut d = FrameDecoder::new(16);
        assert!(d.push(&bytes).is_err());
        assert_eq!(d.next_frame(), Some(good));
    }
}
