//! A rate-limited, store-and-forward link.
//!
//! Models one hop (radio bearer, backhaul Ethernet, core-network leg) as a
//! bounded queue feeding a serializing transmitter with constant
//! propagation latency. Congestion loss happens here: when offered load
//! exceeds the service rate the queue overflows and drop-tail discards the
//! excess — *after* any upstream counter has already charged the packet.
//!
//! The component is a polled state machine in the smoltcp style: callers
//! `enqueue` packets, then `poll(now)` to collect deliveries, using
//! `next_event_time` to drive the global event loop.

use crate::packet::Packet;
use crate::queue::{Discipline, PacketQueue, QueueStats};
use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Static link configuration.
#[derive(Clone, Copy, Debug)]
pub struct LinkParams {
    /// Service (serialization) rate in bits/second.
    pub rate_bps: u64,
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Queue bound in bytes.
    pub queue_capacity_bytes: u64,
    /// Service discipline.
    pub discipline: Discipline,
}

impl LinkParams {
    /// A 1 Gbps wired backhaul with sub-millisecond latency, matching the
    /// paper's small-cell-to-core Ethernet.
    pub fn gigabit_backhaul() -> Self {
        LinkParams {
            rate_bps: 1_000_000_000,
            latency: SimDuration::from_micros(300),
            queue_capacity_bytes: 4 * 1024 * 1024,
            discipline: Discipline::Fifo,
        }
    }

    /// An LTE radio bearer: tens of Mbps, ~10 ms air latency, and a
    /// QCI-priority queue (where the paper's congestion gaps originate).
    pub fn lte_radio(rate_bps: u64) -> Self {
        LinkParams {
            rate_bps,
            latency: SimDuration::from_millis(10),
            queue_capacity_bytes: 512 * 1024,
            discipline: Discipline::QciPriority,
        }
    }
}

/// Delivery counters.
#[derive(Clone, Copy, Default, Debug)]
pub struct LinkStats {
    /// Packets that completed transit.
    pub delivered_pkts: u64,
    /// Bytes that completed transit.
    pub delivered_bytes: u64,
}

/// The link state machine.
#[derive(Debug)]
pub struct Link {
    params: LinkParams,
    queue: PacketQueue,
    /// Packet currently being serialized and its completion instant.
    in_service: Option<(SimTime, Packet)>,
    /// Serialized packets still propagating: (delivery time, packet).
    in_flight: VecDeque<(SimTime, Packet)>,
    stats: LinkStats,
}

impl Link {
    /// Creates an idle link.
    pub fn new(params: LinkParams) -> Self {
        Link {
            queue: PacketQueue::new(params.discipline, params.queue_capacity_bytes),
            params,
            in_service: None,
            in_flight: VecDeque::new(),
            stats: LinkStats::default(),
        }
    }

    /// Offers a packet at time `now`. Returns `false` if the queue dropped
    /// it (congestion loss).
    pub fn enqueue(&mut self, now: SimTime, pkt: Packet) -> bool {
        // Complete any service that finished strictly before this arrival,
        // so the transmitter's idle/busy state is current.
        self.complete_service_until(now);
        let accepted = self.queue.enqueue(pkt);
        self.maybe_start(now);
        accepted
    }

    /// Finishes transmissions whose serialization ends at or before `now`,
    /// chaining back-to-back service.
    fn complete_service_until(&mut self, now: SimTime) {
        while self.in_service.as_ref().is_some_and(|(end, _)| *end <= now) {
            let Some((end, pkt)) = self.in_service.take() else {
                break;
            };
            self.in_flight.push_back((end + self.params.latency, pkt));
            self.maybe_start(end);
        }
    }

    fn maybe_start(&mut self, at: SimTime) {
        if self.in_service.is_none() {
            if let Some(pkt) = self.queue.dequeue() {
                let tx = SimDuration::transmission(pkt.size as u64, self.params.rate_bps);
                self.in_service = Some((at + tx, pkt));
            }
        }
    }

    /// Advances to `now` and returns every packet delivered by then,
    /// in delivery order.
    pub fn poll(&mut self, now: SimTime) -> Vec<Packet> {
        self.poll_timed(now).into_iter().map(|(_, p)| p).collect()
    }

    /// Like [`Self::poll`] but pairs each packet with its exact delivery
    /// instant (which may precede `now` when the caller polls lazily).
    pub fn poll_timed(&mut self, now: SimTime) -> Vec<(SimTime, Packet)> {
        self.complete_service_until(now);
        let mut out = Vec::new();
        while self.in_flight.front().is_some_and(|(t, _)| *t <= now) {
            let Some((at, pkt)) = self.in_flight.pop_front() else {
                break;
            };
            self.stats.delivered_pkts += 1;
            self.stats.delivered_bytes += pkt.size as u64;
            out.push((at, pkt));
        }
        out
    }

    /// The next instant at which `poll` could produce progress.
    pub fn next_event_time(&self) -> Option<SimTime> {
        let service = self.in_service.as_ref().map(|(t, _)| *t);
        let flight = self.in_flight.front().map(|(t, _)| *t);
        match (service, flight) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    /// True when no packet is queued, in service, or in flight.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.in_service.is_none() && self.in_flight.is_empty()
    }

    /// Drops all queued (not yet serialized) packets; models a bearer
    /// teardown. In-flight packets still deliver.
    pub fn flush_queue(&mut self) -> Vec<Packet> {
        self.queue.flush()
    }

    /// Queue counters (drops live here).
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// Delivery counters.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Configured parameters.
    pub fn params(&self) -> &LinkParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Direction, FlowId, Qci};

    fn params(rate_bps: u64, latency_ms: u64, cap: u64) -> LinkParams {
        LinkParams {
            rate_bps,
            latency: SimDuration::from_millis(latency_ms),
            queue_capacity_bytes: cap,
            discipline: Discipline::Fifo,
        }
    }

    fn pkt(id: u64, size: u32) -> Packet {
        Packet::new(
            id,
            FlowId(0),
            Direction::Uplink,
            size,
            Qci::DEFAULT,
            SimTime::ZERO,
        )
    }

    #[test]
    fn single_packet_delivery_time() {
        // 1000 bytes at 8 Mbps = 1 ms tx; +5 ms latency = 6 ms delivery.
        let mut link = Link::new(params(8_000_000, 5, 1 << 20));
        link.enqueue(SimTime::ZERO, pkt(0, 1000));
        assert_eq!(link.next_event_time(), Some(SimTime::from_millis(1)));
        assert!(link.poll(SimTime::from_millis(5)).is_empty());
        // After serialization completes, the next event is the delivery.
        assert_eq!(link.next_event_time(), Some(SimTime::from_millis(6)));
        let delivered = link.poll(SimTime::from_millis(6));
        assert_eq!(delivered.len(), 1);
        assert!(link.is_idle());
    }

    #[test]
    fn back_to_back_serialization() {
        // Two 1000-byte packets at 8 Mbps: deliveries at 6 ms and 7 ms.
        let mut link = Link::new(params(8_000_000, 5, 1 << 20));
        link.enqueue(SimTime::ZERO, pkt(0, 1000));
        link.enqueue(SimTime::ZERO, pkt(1, 1000));
        assert_eq!(link.poll(SimTime::from_millis(6)).len(), 1);
        assert_eq!(link.poll(SimTime::from_micros(6_999)).len(), 0);
        assert_eq!(link.poll(SimTime::from_millis(7)).len(), 1);
    }

    #[test]
    fn idle_gap_restarts_service_at_arrival() {
        let mut link = Link::new(params(8_000_000, 0, 1 << 20));
        link.enqueue(SimTime::ZERO, pkt(0, 1000));
        assert_eq!(link.poll(SimTime::from_millis(10)).len(), 1);
        // Transmitter idle 1 ms..20 ms; next packet starts at 20 ms.
        link.enqueue(SimTime::from_millis(20), pkt(1, 1000));
        assert!(link.poll(SimTime::from_micros(20_999)).is_empty());
        assert_eq!(link.poll(SimTime::from_millis(21)).len(), 1);
    }

    #[test]
    fn overflow_drops_are_counted() {
        // Queue fits one packet; second of three arrivals at t=0 overflows.
        let mut link = Link::new(params(8_000, 0, 1000));
        assert!(link.enqueue(SimTime::ZERO, pkt(0, 800))); // goes into service
        assert!(link.enqueue(SimTime::ZERO, pkt(1, 800))); // queued
        assert!(!link.enqueue(SimTime::ZERO, pkt(2, 800))); // queue full
        assert_eq!(link.queue_stats().dropped_pkts, 1);
    }

    #[test]
    fn delivered_stats_accumulate() {
        let mut link = Link::new(params(1_000_000, 1, 1 << 20));
        for i in 0..10 {
            link.enqueue(SimTime::ZERO, pkt(i, 500));
        }
        let delivered = link.poll(SimTime::from_secs(1));
        assert_eq!(delivered.len(), 10);
        assert_eq!(link.stats().delivered_bytes, 5000);
    }

    #[test]
    fn priority_discipline_reorders_under_load() {
        let mut p = params(8_000_000, 0, 1 << 20);
        p.discipline = Discipline::QciPriority;
        let mut link = Link::new(p);
        // First packet occupies the transmitter; the rest queue up.
        link.enqueue(
            SimTime::ZERO,
            Packet::new(
                0,
                FlowId(0),
                Direction::Downlink,
                1000,
                Qci::DEFAULT,
                SimTime::ZERO,
            ),
        );
        link.enqueue(
            SimTime::ZERO,
            Packet::new(
                1,
                FlowId(0),
                Direction::Downlink,
                1000,
                Qci::DEFAULT,
                SimTime::ZERO,
            ),
        );
        link.enqueue(
            SimTime::ZERO,
            Packet::new(
                2,
                FlowId(1),
                Direction::Downlink,
                1000,
                Qci::INTERACTIVE,
                SimTime::ZERO,
            ),
        );
        let ids: Vec<u64> = link
            .poll(SimTime::from_secs(1))
            .iter()
            .map(|p| p.id)
            .collect();
        // QCI 7 (id 2) jumps ahead of the queued QCI 9 (id 1).
        assert_eq!(ids, vec![0, 2, 1]);
    }

    #[test]
    fn flush_queue_drops_queued_only() {
        let mut link = Link::new(params(8_000, 0, 1 << 20));
        link.enqueue(SimTime::ZERO, pkt(0, 800)); // in service
        link.enqueue(SimTime::ZERO, pkt(1, 800)); // queued
        let flushed = link.flush_queue();
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].id, 1);
        // The in-service packet still delivers.
        assert_eq!(link.poll(SimTime::from_secs(10)).len(), 1);
    }

    #[test]
    fn next_event_time_none_when_idle() {
        let link = Link::new(params(1_000_000, 1, 1 << 20));
        assert_eq!(link.next_event_time(), None);
        assert!(link.is_idle());
    }
}
