//! # tlc-net
//!
//! Deterministic, event-driven network simulation substrate for the TLC
//! reproduction of *"Bridging the Data Charging Gap in the Cellular Edge"*
//! (SIGCOMM '19).
//!
//! The paper evaluates on a physical testbed (OpenEPC LTE core + Qualcomm
//! small cell). This crate supplies the emulated equivalent: a discrete-
//! event packet world with the loss mechanisms that create charging gaps —
//! queue overflow under congestion, air-interface loss that worsens with
//! weak signal, and intermittent radio connectivity.
//!
//! Components follow the sans-IO, polled state-machine idiom (cf. smoltcp):
//! no threads, no async runtime, no wall-clock time. A single seeded RNG
//! makes every run exactly reproducible.
//!
//! * [`time`] — microsecond-resolution virtual clock,
//! * [`event`] — deterministic event queue (FIFO tie-break),
//! * [`rng`] — xoshiro256++ with labelled stream splitting,
//! * [`packet`] — size/QCI/flow-tagged packets (no payloads; counting bytes
//!   is the object of study),
//! * [`queue`] — byte-bounded drop-tail queues with QCI strict priority,
//! * [`link`] — rate-limited store-and-forward hops,
//! * [`loss`] — Bernoulli / Gilbert–Elliott / RSS-driven loss processes,
//! * [`channel`] — faulty control-plane datagram channel (loss, dup,
//!   reorder, corrupt, partition) for negotiation robustness testing,
//! * [`radio`] — precomputed RSS timelines with intermittent outages,
//! * [`stats`] — byte counters and 1 Hz usage series.
//!
//! Two modules step outside the simulation and speak real I/O — they carry
//! the network ingress for the standalone PoC verifier service:
//!
//! * [`wire`] — length-prefixed binary framing codec (payload-agnostic),
//! * [`ingress`] — non-blocking, pausable per-connection frame driver,
//! * [`chaos`] — deterministic stream-fault injection (dribble, resets)
//!   for soak-testing the ingress under hostile clients,
//! * [`readiness`] — epoll/poll syscall shim + `SO_REUSEPORT` bind for
//!   the event-driven multi-core ingress (the one module allowed
//!   `unsafe`, every block SAFETY-audited),
//! * [`bufpool`] — bounded recycled read-buffer pool backing zero-copy
//!   frame decode.

// `deny` rather than `forbid`: the readiness syscall shim is the single
// sanctioned exception (allow-listed below and pinned by tlc-lint's
// unsafe-scope rule); forbid cannot be overridden per-module.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bufpool;
pub mod channel;
pub mod chaos;
pub mod event;
pub mod fair;
pub mod ingress;
pub mod link;
pub mod loss;
pub mod packet;
pub mod queue;
pub mod radio;
#[allow(unsafe_code)]
pub mod readiness;
pub mod rng;
pub mod stats;
pub mod time;
pub mod wire;

pub use bufpool::{BufferPool, PoolStats, PooledBuf};
pub use channel::{ChannelStats, FaultSpec, FaultyChannel};
pub use chaos::{plan_roles, ChaosRole, ChaosSpec, ChaosStats, ChaosStream};
pub use event::EventQueue;
pub use fair::{FairQueue, DRR_QUANTUM};
pub use ingress::{ConnDriver, ConnStats, DriverError};
pub use link::{Link, LinkParams, LinkStats};
pub use loss::{GilbertElliott, LossModel, NoLoss, RssDrivenLoss, UniformLoss};
pub use packet::{Direction, FlowId, Packet, PacketIdAlloc, Qci};
pub use queue::{Discipline, PacketQueue, QueueStats};
pub use radio::{RadioTimeline, RssWalkParams, NO_SERVICE_THRESHOLD_DBM, RLF_DETACH};
pub use readiness::{
    bind_reuseport, raise_nofile_limit, try_bind_reuseport, Event as ReadinessEvent, Interest,
    Readiness, ReadinessBackend, Token,
};
pub use rng::SimRng;
pub use stats::{ByteCounter, UsageSeries};
pub use time::{SimDuration, SimTime};
pub use wire::{
    split_frame, Frame, FrameDecoder, FrameKind, FrameRef, WireError, DEFAULT_MAX_PAYLOAD,
    HEADER_LEN,
};
