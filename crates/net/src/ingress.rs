//! Non-blocking connection driver for the verifier ingress.
//!
//! [`ConnDriver`] owns one byte stream (a `TcpStream` in deployment, any
//! `Read + Write` in tests) and adapts it to the frame world of
//! [`wire`](crate::wire): it pumps readable bytes through a
//! [`FrameDecoder`], stages outbound frames in a write buffer that
//! drains as the peer accepts bytes, and exposes an explicit *pause*
//! switch — the backpressure primitive the ingress server flips when a
//! connection's in-flight window or the verification pipeline is full.
//! While paused the driver stops *reading*, so the kernel receive buffer
//! fills and TCP flow control pushes back on the submitting client; no
//! frame is ever dropped.
//!
//! The driver is sans-IO-scheduler: it never blocks and never sleeps.
//! `WouldBlock` from the stream simply ends the current poll, which is
//! what lets one thread drive many connections round-robin.

use crate::wire::{Frame, FrameDecoder, WireError, HEADER_LEN};
use std::io::{self, Read, Write};

/// Failures surfaced by a connection poll. Either the peer broke framing
/// ([`WireError`], connection must close) or the transport failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverError {
    /// Framing violation from the peer; the stream cannot be resynced.
    Wire(WireError),
    /// Transport-level I/O failure (reset, broken pipe, …).
    Io(io::ErrorKind),
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::Wire(e) => write!(f, "framing error: {e}"),
            DriverError::Io(k) => write!(f, "connection i/o error: {k:?}"),
        }
    }
}

impl std::error::Error for DriverError {}

impl From<WireError> for DriverError {
    fn from(e: WireError) -> Self {
        DriverError::Wire(e)
    }
}

/// Per-connection byte/frame counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Bytes read from the stream.
    pub bytes_rx: u64,
    /// Bytes written to the stream.
    pub bytes_tx: u64,
    /// Frames decoded.
    pub frames_rx: u64,
    /// Frames queued for sending.
    pub frames_tx: u64,
    /// Transitions into the paused state.
    pub pauses: u64,
}

/// Read chunk size per `read` call. Small enough to keep per-poll work
/// bounded, large enough to drain a window of verdict-sized frames.
const READ_CHUNK: usize = 8 * 1024;

/// One framed, pausable, non-blocking connection.
pub struct ConnDriver<S> {
    stream: S,
    decoder: FrameDecoder,
    out_buf: Vec<u8>,
    out_pos: usize,
    paused: bool,
    eof: bool,
    stats: ConnStats,
}

impl<S> ConnDriver<S> {
    /// Wraps a stream with a decoder enforcing `max_payload`. For a
    /// `TcpStream` the caller must have set it non-blocking.
    pub fn new(stream: S, max_payload: u32) -> ConnDriver<S> {
        ConnDriver {
            stream,
            decoder: FrameDecoder::new(max_payload),
            out_buf: Vec::new(),
            out_pos: 0,
            paused: false,
            eof: false,
            stats: ConnStats::default(),
        }
    }

    /// The wrapped stream (e.g. for `peer_addr`).
    pub fn stream(&self) -> &S {
        &self.stream
    }

    #[cfg(test)]
    fn stream_mut_for_tests(&mut self) -> &mut S {
        &mut self.stream
    }

    /// Counters so far.
    pub fn stats(&self) -> ConnStats {
        self.stats
    }

    /// Whether reads are currently paused (backpressure engaged).
    pub fn paused(&self) -> bool {
        self.paused
    }

    /// Pauses reads: buffered bytes stay in the kernel, TCP flow control
    /// propagates to the peer. Already-decoded frames remain poppable.
    pub fn pause(&mut self) {
        if !self.paused {
            self.paused = true;
            self.stats.pauses += 1;
        }
    }

    /// Resumes reads after a [`pause`](Self::pause).
    pub fn resume(&mut self) {
        self.paused = false;
    }

    /// Whether the peer has closed its sending half.
    pub fn at_eof(&self) -> bool {
        self.eof
    }

    /// Unsent bytes staged in the write buffer.
    pub fn outbox_bytes(&self) -> usize {
        self.out_buf.len() - self.out_pos
    }

    /// Bytes buffered for the frame currently being decoded.
    pub fn partial_bytes(&self) -> usize {
        self.decoder.partial_bytes()
    }

    /// Stages a frame for sending; bytes move on the next
    /// [`flush`](Self::flush). Fails if the payload exceeds the codec's
    /// length-prefix range (never for protocol-layer frames).
    pub fn queue(&mut self, frame: &Frame) -> Result<(), WireError> {
        // Compact the buffer once the unsent tail is small relative to
        // the consumed prefix, so long-lived connections don't grow it
        // without bound.
        if self.out_pos > 4096 && self.out_pos * 2 > self.out_buf.len() {
            self.out_buf.drain(..self.out_pos);
            self.out_pos = 0;
        }
        frame.encode_into(&mut self.out_buf)?;
        self.stats.frames_tx += 1;
        Ok(())
    }
}

impl<S: Read + Write> ConnDriver<S> {
    /// Writes as much of the staged outbox as the stream accepts right
    /// now. Returns `true` when the outbox is fully drained.
    pub fn flush(&mut self) -> Result<bool, DriverError> {
        while self.out_pos < self.out_buf.len() {
            match self.stream.write(&self.out_buf[self.out_pos..]) {
                Ok(0) => return Err(DriverError::Io(io::ErrorKind::WriteZero)),
                Ok(n) => {
                    self.out_pos += n;
                    self.stats.bytes_tx += n as u64;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(DriverError::Io(e.kind())),
            }
        }
        self.out_buf.clear();
        self.out_pos = 0;
        Ok(true)
    }

    /// Reads available bytes (unless paused) and appends up to `budget`
    /// decoded frames to `out`. Reading stops as soon as the budget is
    /// met, which bounds both decode work and frame-queue memory per
    /// poll; undrained stream bytes wait in the kernel buffer.
    pub fn poll_frames(&mut self, budget: usize, out: &mut Vec<Frame>) -> Result<(), DriverError> {
        let mut taken = 0usize;
        while taken < budget {
            match self.decoder.next_frame() {
                Some(f) => {
                    self.stats.frames_rx += 1;
                    out.push(f);
                    taken += 1;
                }
                None => break,
            }
        }
        if self.paused || self.eof {
            return Ok(());
        }
        let mut chunk = [0u8; READ_CHUNK];
        while taken < budget {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => {
                    self.stats.bytes_rx += n as u64;
                    self.decoder.push(&chunk[..n])?;
                    while taken < budget {
                        match self.decoder.next_frame() {
                            Some(f) => {
                                self.stats.frames_rx += 1;
                                out.push(f);
                                taken += 1;
                            }
                            None => break,
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(DriverError::Io(e.kind())),
            }
        }
        Ok(())
    }

    /// Upper bound on bytes this driver buffers for *reading*: the
    /// in-progress partial frame only (decoded frames are handed off by
    /// [`poll_frames`](Self::poll_frames) under its budget).
    pub fn read_buffer_cap(&self) -> usize {
        HEADER_LEN + self.decoder.max_payload() as usize
    }

    /// One raw read appended to `buf` — the zero-copy path used by the
    /// readiness event loop, which parses `buf` in place with
    /// [`crate::wire::split_frame`] instead of pumping bytes through
    /// the copying [`FrameDecoder`]. At most [`READ_CHUNK`] bytes per
    /// call, never growing `buf` past its capacity (pooled buffers are
    /// sized to hold any legal frame, so a full buffer means a complete
    /// frame is parseable or the peer is over-cap).
    ///
    /// Returns the bytes appended. `Ok(0)` is either `WouldBlock`
    /// (kernel has nothing) or EOF — distinguish with
    /// [`at_eof`](Self::at_eof). Respects [`pause`](Self::pause) like
    /// [`poll_frames`](Self::poll_frames) does.
    pub fn read_step(&mut self, buf: &mut Vec<u8>) -> Result<usize, DriverError> {
        if self.paused || self.eof {
            return Ok(0);
        }
        let start = buf.len();
        let room = buf.capacity().saturating_sub(start).min(READ_CHUNK);
        if room == 0 {
            return Ok(0);
        }
        // Zero-fill the landing zone so the read target is initialised;
        // an 8 KiB memset is noise next to the syscall it precedes.
        buf.resize(start + room, 0);
        loop {
            match self.stream.read(&mut buf[start..]) {
                Ok(0) => {
                    buf.truncate(start);
                    self.eof = true;
                    return Ok(0);
                }
                Ok(n) => {
                    buf.truncate(start + n);
                    self.stats.bytes_rx += n as u64;
                    return Ok(n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    buf.truncate(start);
                    return Ok(0);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    buf.truncate(start);
                    return Err(DriverError::Io(e.kind()));
                }
            }
        }
    }

    /// Records `n` frames decoded outside the driver (the in-place
    /// [`crate::wire::split_frame`] path), keeping
    /// [`stats`](Self::stats) honest across both read paths.
    pub fn note_frames_rx(&mut self, n: u64) {
        self.stats.frames_rx += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::FrameKind;
    use std::collections::VecDeque;

    /// An in-memory stream: reads pop from `rx` (empty → WouldBlock),
    /// writes append to `tx` accepting at most `write_quota` per call.
    struct MemStream {
        rx: VecDeque<Vec<u8>>,
        tx: Vec<u8>,
        write_quota: usize,
        closed: bool,
    }

    impl MemStream {
        fn new() -> Self {
            MemStream {
                rx: VecDeque::new(),
                tx: Vec::new(),
                write_quota: usize::MAX,
                closed: false,
            }
        }
    }

    impl Read for MemStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.rx.pop_front() {
                Some(chunk) => {
                    let n = chunk.len().min(buf.len());
                    buf[..n].copy_from_slice(&chunk[..n]);
                    if n < chunk.len() {
                        self.rx.push_front(chunk[n..].to_vec());
                    }
                    Ok(n)
                }
                None if self.closed => Ok(0),
                None => Err(io::Error::new(io::ErrorKind::WouldBlock, "empty")),
            }
        }
    }

    impl Write for MemStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.write_quota == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
            }
            let n = buf.len().min(self.write_quota);
            self.tx.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn frames_flow_both_ways() {
        let mut s = MemStream::new();
        let inbound = Frame::new(FrameKind::Submit, vec![1, 2, 3]);
        s.rx.push_back(inbound.encode().unwrap());
        let mut d = ConnDriver::new(s, 1024);
        let mut got = Vec::new();
        d.poll_frames(8, &mut got).unwrap();
        assert_eq!(got, vec![inbound]);
        let outbound = Frame::new(FrameKind::Verdict, vec![9]);
        d.queue(&outbound).unwrap();
        assert!(d.flush().unwrap());
        assert_eq!(d.stream().tx, outbound.encode().unwrap());
        assert_eq!(d.stats().frames_rx, 1);
        assert_eq!(d.stats().frames_tx, 1);
    }

    #[test]
    fn paused_driver_reads_nothing_and_loses_nothing() {
        let mut s = MemStream::new();
        let f = Frame::new(FrameKind::Submit, vec![7; 10]);
        s.rx.push_back(f.encode().unwrap());
        let mut d = ConnDriver::new(s, 1024);
        d.pause();
        let mut got = Vec::new();
        d.poll_frames(8, &mut got).unwrap();
        assert!(got.is_empty());
        assert_eq!(d.stats().bytes_rx, 0);
        d.resume();
        d.poll_frames(8, &mut got).unwrap();
        assert_eq!(got, vec![f]);
        assert_eq!(d.stats().pauses, 1);
    }

    #[test]
    fn budget_bounds_frames_per_poll() {
        let mut s = MemStream::new();
        let mut bytes = Vec::new();
        for i in 0..5u8 {
            bytes.extend(Frame::new(FrameKind::Submit, vec![i]).encode().unwrap());
        }
        s.rx.push_back(bytes);
        let mut d = ConnDriver::new(s, 1024);
        let mut got = Vec::new();
        d.poll_frames(2, &mut got).unwrap();
        assert_eq!(got.len(), 2);
        d.poll_frames(2, &mut got).unwrap();
        assert_eq!(got.len(), 4);
        d.poll_frames(2, &mut got).unwrap();
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn partial_writes_drain_incrementally() {
        let mut s = MemStream::new();
        s.write_quota = 3;
        let mut d = ConnDriver::new(s, 1024);
        d.queue(&Frame::new(FrameKind::Stats, vec![1, 2, 3, 4, 5, 6, 7]))
            .unwrap();
        // 12 wire bytes at 3 per call: needs four successful writes.
        let mut flushes = 0;
        while !d.flush().unwrap() {
            flushes += 1;
            assert!(flushes < 100, "flush diverged");
        }
        assert_eq!(d.outbox_bytes(), 0);
        assert_eq!(d.stats().bytes_tx, 12);
    }

    #[test]
    fn eof_detected() {
        let mut s = MemStream::new();
        s.closed = true;
        let mut d = ConnDriver::new(s, 64);
        let mut got = Vec::new();
        d.poll_frames(4, &mut got).unwrap();
        assert!(d.at_eof());
        assert!(got.is_empty());
    }

    #[test]
    fn read_step_appends_and_respects_capacity() {
        let mut s = MemStream::new();
        let f = Frame::new(FrameKind::Submit, vec![5; 32]);
        s.rx.push_back(f.encode().unwrap());
        let mut d = ConnDriver::new(s, 1024);
        let mut buf = Vec::with_capacity(64);
        let n = d.read_step(&mut buf).unwrap();
        assert_eq!(n, f.wire_len());
        assert_eq!(buf.len(), f.wire_len());
        let (view, used) = crate::wire::split_frame(&buf, 1024)
            .unwrap()
            .expect("frame");
        assert_eq!(view.to_owned(), f);
        assert_eq!(used, buf.len());

        // Nothing pending: WouldBlock maps to 0 without EOF.
        assert_eq!(d.read_step(&mut buf).unwrap(), 0);
        assert!(!d.at_eof());

        // A full buffer reads nothing (caller must parse/compact first).
        let mut full = Vec::with_capacity(4);
        full.extend_from_slice(&[0; 4]);
        assert_eq!(d.read_step(&mut full).unwrap(), 0);

        // Paused driver reads nothing.
        d.pause();
        let mut spare = Vec::with_capacity(16);
        assert_eq!(d.read_step(&mut spare).unwrap(), 0);

        // EOF is latched and distinguishable.
        d.resume();
        d.stream_mut_for_tests().closed = true;
        assert_eq!(d.read_step(&mut spare).unwrap(), 0);
        assert!(d.at_eof());
    }

    #[test]
    fn framing_violation_surfaces_as_wire_error() {
        let mut s = MemStream::new();
        s.rx.push_back(vec![0xEE, 0, 0, 0, 0]);
        let mut d = ConnDriver::new(s, 64);
        let mut got = Vec::new();
        assert_eq!(
            d.poll_frames(4, &mut got),
            Err(DriverError::Wire(WireError::UnknownKind(0xEE)))
        );
    }
}
