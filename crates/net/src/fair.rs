//! Deficit-round-robin (DRR) fair queueing across flows.
//!
//! An eNodeB's MAC scheduler is approximately proportional-fair across
//! UEs: a thin flow keeps its share even when another UE floods the cell.
//! The plain drop-tail FIFO of [`crate::queue`] makes a thin flow share
//! fate with the flood, overstating congestion loss (see EXPERIMENTS.md's
//! known deviations). This module provides the fairer alternative:
//! strict priority across QCI bands, DRR across flows within a band,
//! per-flow byte quotas for the buffer.

use crate::packet::{FlowId, Packet};
use crate::queue::QueueStats;
use std::collections::VecDeque;

/// DRR quantum: bytes of service credit a flow gains per round. One MTU
/// keeps latency low while letting large packets through every round.
pub const DRR_QUANTUM: u32 = 1514;

/// Per-flow state within one priority band.
#[derive(Debug)]
struct FlowQueue {
    flow: FlowId,
    packets: VecDeque<Packet>,
    bytes: u64,
    deficit: u32,
}

/// One strict-priority band scheduling its flows with DRR.
#[derive(Debug, Default)]
struct Band {
    /// Active flows in round-robin order.
    flows: Vec<FlowQueue>,
    /// Index of the flow currently holding the deficit pointer.
    cursor: usize,
}

impl Band {
    fn flow_mut(&mut self, flow: FlowId) -> &mut FlowQueue {
        let i = match self.flows.iter().position(|f| f.flow == flow) {
            Some(i) => i,
            None => {
                self.flows.push(FlowQueue {
                    flow,
                    packets: VecDeque::new(),
                    bytes: 0,
                    deficit: 0,
                });
                self.flows.len() - 1
            }
        };
        &mut self.flows[i]
    }

    fn is_empty(&self) -> bool {
        self.flows.iter().all(|f| f.packets.is_empty())
    }

    /// DRR dequeue: advance the cursor, topping up deficits, until some
    /// flow can afford its head packet.
    fn dequeue(&mut self) -> Option<Packet> {
        if self.is_empty() {
            return None;
        }
        loop {
            if self.flows.is_empty() {
                return None;
            }
            let n = self.flows.len();
            let i = self.cursor % n;
            let f = &mut self.flows[i];
            if f.packets.is_empty() {
                // Idle flows lose their deficit and their turn.
                f.deficit = 0;
                self.flows.remove(i);
                if self.flows.is_empty() {
                    return None;
                }
                self.cursor %= self.flows.len();
                continue;
            }
            let Some(head_size) = f.packets.front().map(|p| p.size) else {
                // Non-empty was checked above; defensive rather than
                // panicking on a protocol-reachable path.
                continue;
            };
            if f.deficit >= head_size {
                f.deficit -= head_size;
                if let Some(pkt) = f.packets.pop_front() {
                    f.bytes -= pkt.size as u64;
                    return Some(pkt);
                }
                continue;
            }
            // Not enough credit: top up and move on.
            f.deficit = f.deficit.saturating_add(DRR_QUANTUM);
            self.cursor = (i + 1) % n;
        }
    }
}

/// A byte-bounded queue with strict QCI priority across bands and DRR
/// fairness across flows within a band. On overflow the *largest* flow
/// in the lowest-priority non-empty band sheds from its tail, so a flood
/// cannot push out a thin flow.
#[derive(Debug)]
pub struct FairQueue {
    capacity_bytes: u64,
    used_bytes: u64,
    bands: Vec<Band>,
    stats: QueueStats,
}

/// Number of QCI priority bands (QCI 0–15).
const BANDS: usize = 16;

impl FairQueue {
    /// Creates a fair queue bounded to `capacity_bytes`.
    pub fn new(capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0, "queue capacity must be positive");
        FairQueue {
            capacity_bytes,
            used_bytes: 0,
            bands: (0..BANDS).map(|_| Band::default()).collect(),
            stats: QueueStats::default(),
        }
    }

    fn band_index(pkt: &Packet) -> usize {
        (pkt.qci.priority() as usize).min(BANDS - 1)
    }

    /// Offers a packet; sheds from the fattest lowest-priority flow on
    /// overflow. Returns `false` if the *offered* packet was dropped.
    pub fn enqueue(&mut self, pkt: Packet) -> bool {
        let size = pkt.size as u64;
        while self.used_bytes + size > self.capacity_bytes {
            if !self.shed_one(&pkt) {
                self.stats.dropped_pkts += 1;
                self.stats.dropped_bytes += size;
                return false;
            }
        }
        let band = Self::band_index(&pkt);
        self.used_bytes += size;
        self.stats.enqueued_pkts += 1;
        self.stats.enqueued_bytes += size;
        let fq = self.bands[band].flow_mut(pkt.flow);
        fq.bytes += size;
        fq.packets.push_back(pkt);
        true
    }

    /// Drops one packet from the tail of the *largest* flow in the
    /// lowest-priority non-empty band at or below the incoming packet's
    /// priority (higher-priority traffic is never shed for lower). The
    /// incoming flow itself is a valid victim if it is the fattest — a
    /// flow cannot hog the buffer. Returns false when nothing sheddable
    /// remains.
    fn shed_one(&mut self, incoming: &Packet) -> bool {
        let incoming_band = Self::band_index(incoming);
        // Scan lowest priority (highest band) first, down to the
        // incoming packet's own band.
        for b in (incoming_band..BANDS).rev() {
            let band = &mut self.bands[b];
            // Fattest flow in the band.
            if let Some(f) = band
                .flows
                .iter_mut()
                .filter(|f| !f.packets.is_empty())
                .max_by_key(|f| f.bytes)
            {
                let Some(victim) = f.packets.pop_back() else {
                    // Filtered non-empty above; defensive rather than
                    // panicking on a protocol-reachable path.
                    continue;
                };
                f.bytes -= victim.size as u64;
                self.used_bytes -= victim.size as u64;
                self.stats.dropped_pkts += 1;
                self.stats.dropped_bytes += victim.size as u64;
                return true;
            }
        }
        false
    }

    /// Dequeues the next packet: highest-priority non-empty band, DRR
    /// within it.
    pub fn dequeue(&mut self) -> Option<Packet> {
        for band in self.bands.iter_mut() {
            if let Some(pkt) = band.dequeue() {
                self.used_bytes -= pkt.size as u64;
                self.stats.dequeued_pkts += 1;
                return Some(pkt);
            }
        }
        None
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.bands.iter().all(|b| b.is_empty())
    }

    /// Bytes currently queued.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Counter snapshot.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Drops everything queued, returning the packets.
    pub fn flush(&mut self) -> Vec<Packet> {
        let mut out = Vec::new();
        for band in self.bands.iter_mut() {
            for f in band.flows.iter_mut() {
                out.extend(f.packets.drain(..));
                f.bytes = 0;
                f.deficit = 0;
            }
            band.flows.clear();
            band.cursor = 0;
        }
        for p in &out {
            self.used_bytes -= p.size as u64;
            self.stats.dropped_pkts += 1;
            self.stats.dropped_bytes += p.size as u64;
        }
        debug_assert_eq!(self.used_bytes, 0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Direction, Qci};
    use crate::time::SimTime;

    fn pkt(id: u64, flow: u32, size: u32, qci: Qci) -> Packet {
        Packet::new(
            id,
            FlowId(flow),
            Direction::Downlink,
            size,
            qci,
            SimTime::ZERO,
        )
    }

    #[test]
    fn single_flow_is_fifo() {
        let mut q = FairQueue::new(1 << 20);
        for i in 0..5 {
            assert!(q.enqueue(pkt(i, 1, 100, Qci::DEFAULT)));
        }
        let ids: Vec<u64> = std::iter::from_fn(|| q.dequeue()).map(|p| p.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn drr_interleaves_equal_flows() {
        let mut q = FairQueue::new(1 << 20);
        // Two flows, same packet size: service alternates.
        for i in 0..6 {
            q.enqueue(pkt(i, (i % 2) as u32, 1000, Qci::DEFAULT));
        }
        let flows: Vec<u32> = std::iter::from_fn(|| q.dequeue())
            .map(|p| p.flow.0)
            .collect();
        // After the first round-robin pass, each flow gets every other slot.
        let f0 = flows.iter().filter(|&&f| f == 0).count();
        let f1 = flows.iter().filter(|&&f| f == 1).count();
        assert_eq!(f0, 3);
        assert_eq!(f1, 3);
        // No flow gets three consecutive services.
        for w in flows.windows(3) {
            assert!(
                !(w[0] == w[1] && w[1] == w[2]),
                "run of 3 for flow {}",
                w[0]
            );
        }
    }

    #[test]
    fn drr_shares_bytes_not_packets() {
        // Flow 0 sends 1500-byte packets, flow 1 sends 300-byte packets:
        // over a long run, dequeued bytes should be near-equal, meaning
        // flow 1 gets ~5x as many packet slots.
        let mut q = FairQueue::new(8 << 20);
        let mut id = 0;
        for _ in 0..200 {
            q.enqueue(pkt(id, 0, 1500, Qci::DEFAULT));
            id += 1;
        }
        for _ in 0..1000 {
            q.enqueue(pkt(id, 1, 300, Qci::DEFAULT));
            id += 1;
        }
        let mut bytes = [0u64; 2];
        for _ in 0..400 {
            let p = q.dequeue().unwrap();
            bytes[p.flow.0 as usize] += p.size as u64;
        }
        let ratio = bytes[0] as f64 / bytes[1] as f64;
        assert!((0.8..1.25).contains(&ratio), "byte ratio {ratio}");
    }

    #[test]
    fn priority_still_preempts_fairness() {
        let mut q = FairQueue::new(1 << 20);
        q.enqueue(pkt(0, 1, 1000, Qci::DEFAULT));
        q.enqueue(pkt(1, 2, 100, Qci::INTERACTIVE));
        q.enqueue(pkt(2, 1, 1000, Qci::DEFAULT));
        assert_eq!(q.dequeue().unwrap().id, 1, "QCI 7 first");
    }

    #[test]
    fn overflow_sheds_the_flood_not_the_thin_flow() {
        // Capacity for ~10 packets; flow 0 floods, flow 1 trickles.
        let mut q = FairQueue::new(15_000);
        let mut id = 0;
        for _ in 0..9 {
            q.enqueue(pkt(id, 0, 1500, Qci::DEFAULT));
            id += 1;
        }
        // Thin flow arrives at a nearly full buffer: the flood sheds.
        assert!(q.enqueue(pkt(id, 1, 400, Qci::DEFAULT)));
        id += 1;
        assert!(q.enqueue(pkt(id, 1, 400, Qci::DEFAULT)));
        // The thin flow's packets are still there.
        let mut thin = 0;
        while let Some(p) = q.dequeue() {
            if p.flow.0 == 1 {
                thin += 1;
            }
        }
        assert_eq!(thin, 2, "thin flow survived the flood");
    }

    #[test]
    fn conservation_under_churn() {
        let mut q = FairQueue::new(20_000);
        let mut accepted = 0u64;
        for i in 0..200u64 {
            if q.enqueue(pkt(
                i,
                (i % 5) as u32,
                500 + (i % 7) as u32 * 100,
                Qci::DEFAULT,
            )) {
                accepted += 1;
            }
        }
        let mut dequeued = 0u64;
        while q.dequeue().is_some() {
            dequeued += 1;
        }
        // accepted == dequeued + shed; stats track both.
        let shed = q.stats().dropped_pkts - (200 - accepted);
        assert_eq!(accepted, dequeued + shed);
        assert_eq!(q.used_bytes(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn flush_empties_everything() {
        let mut q = FairQueue::new(1 << 20);
        for i in 0..10 {
            q.enqueue(pkt(i, (i % 3) as u32, 700, Qci::DEFAULT));
        }
        assert_eq!(q.flush().len(), 10);
        assert!(q.is_empty());
        assert_eq!(q.used_bytes(), 0);
        assert!(q.dequeue().is_none());
    }

    #[test]
    fn oversized_packet_rejected_when_nothing_to_shed() {
        let mut q = FairQueue::new(1000);
        assert!(!q.enqueue(pkt(0, 1, 2000, Qci::DEFAULT)));
        assert_eq!(q.stats().dropped_pkts, 1);
    }
}
