//! Deterministic simulation RNG (xoshiro256++).
//!
//! The simulator must replay identically for a given seed — every stochastic
//! component (loss models, workload jitter, RSS walks) draws from one of
//! these, split from a master seed, so experiments are exactly reproducible
//! and independent components do not perturb each other's streams.

/// A xoshiro256++ pseudo-random generator.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Seeds the generator; the seed is expanded with splitmix64 so even
    /// small seeds give well-mixed initial state.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let s = [next_sm(), next_sm(), next_sm(), next_sm()];
        SimRng { s }
    }

    /// Derives an independent stream for a named component.
    ///
    /// Streams for different labels are decorrelated even under the same
    /// master seed, so adding a component never shifts another's draws.
    pub fn split(&self, label: &str) -> SimRng {
        let mut h = 0xcbf29ce484222325u64; // FNV-1a
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        SimRng::new(self.s[0] ^ h.rotate_left(17))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, bound)`; `bound > 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.next_f64() < p
    }

    /// Exponential variate with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0);
        let u = 1.0 - self.next_f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Normal variate via Box–Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0);
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// Picks an index in `[0, len)`, for slice sampling.
    pub fn index(&mut self, len: usize) -> usize {
        self.next_below(len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn split_streams_are_decorrelated_and_stable() {
        let master = SimRng::new(42);
        let mut loss1 = master.split("loss");
        let mut loss2 = master.split("loss");
        let mut radio = master.split("radio");
        let a = loss1.next_u64();
        assert_eq!(a, loss2.next_u64(), "same label, same stream");
        assert_ne!(a, radio.next_u64(), "different labels diverge");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn uniform_mean_is_plausible() {
        let mut r = SimRng::new(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn chance_frequency_tracks_p() {
        let mut r = SimRng::new(5);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        let freq = hits as f64 / 10_000.0;
        assert!((freq - 0.3).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut r = SimRng::new(9);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut r = SimRng::new(13);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.15, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.15, "std {}", var.sqrt());
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SimRng::new(17);
        for _ in 0..1000 {
            let v = r.range_u64(10, 20);
            assert!((10..=20).contains(&v));
            let f = r.range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn index_covers_all_slots() {
        let mut r = SimRng::new(19);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.index(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
