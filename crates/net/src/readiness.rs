//! OS readiness notification for the verifier ingress (DESIGN.md §12).
//!
//! The legacy ingress loop walks every connection per 200 µs tick, so
//! per-tick cost grows linearly with the connection table. A carrier
//! front door holds hundreds of thousands of mostly-idle peers; the
//! event-driven loop in `tlc-core::verify::remote` instead blocks in
//! the kernel until some socket is actually ready. This module is the
//! thin, std-only syscall shim underneath it:
//!
//! * [`Readiness`] — a safe registry/wait API over **epoll** on Linux
//!   (level-triggered, the semantics the buffer-pool deferral relies
//!   on) with a portable **poll(2)** fallback so macOS and CI-generic
//!   targets still build and run,
//! * [`bind_reuseport`] — a `SO_REUSEPORT` TCP listener factory, so N
//!   acceptor shards can bind the same address and let the kernel
//!   spread incoming connections across them,
//! * [`raise_nofile_limit`] — lifts `RLIMIT_NOFILE` toward its hard
//!   cap so C100K-scale benches can actually hold their sockets.
//!
//! This is the **only** module outside `tlc-crypto` allowed to contain
//! `unsafe` (tlc-lint's unsafe-scope rule pins that): every block is a
//! raw libc call with a `// SAFETY:` audit, and nothing unsafe escapes
//! the safe API. No wall-clock time is read here — timeouts are caller
//! arguments passed straight to the kernel.
//!
//! On non-Unix targets every constructor returns
//! [`io::ErrorKind::Unsupported`]; the ingress server detects that at
//! bind time and falls back to the legacy poll loop.

use std::io;
use std::net::TcpListener;
#[cfg(unix)]
use std::net::{SocketAddr, SocketAddrV4};
#[cfg(unix)]
use std::os::unix::io::{AsRawFd, FromRawFd, RawFd};

#[cfg(not(unix))]
/// Raw file descriptor stand-in so the API type-checks off Unix.
pub type RawFd = i32;

/// Identifies a registered stream in [`Event`]s. The ingress uses the
/// connection id; [`Token::LISTENER`] marks the acceptor socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub u64);

impl Token {
    /// Conventional token for the shard's listener socket.
    pub const LISTENER: Token = Token(u64::MAX);
}

/// Which readiness classes a registration asks to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    /// Wake when the stream is readable (or the peer hung up — a read
    /// will then observe EOF/error, which is how the driver wants it).
    pub readable: bool,
    /// Wake when the stream accepts more bytes (outbox draining).
    pub writable: bool,
}

impl Interest {
    /// Readable only — the steady state of a healthy connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Neither direction: the registration stays parked (paused reads
    /// with an empty outbox). Level-triggered backends simply never
    /// report it until interest is restored with `modify`.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness notification out of [`Readiness::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the stream was registered with.
    pub token: Token,
    /// Bytes (or EOF) can be read without blocking.
    pub readable: bool,
    /// Bytes can be written without blocking.
    pub writable: bool,
    /// The peer closed or the socket errored; the stream should be
    /// driven to EOF and reaped.
    pub closed: bool,
}

/// Which kernel mechanism a [`Readiness`] instance uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadinessBackend {
    /// Linux `epoll`, level-triggered. O(ready) per wait.
    Epoll,
    /// Portable `poll(2)`. O(registered) per wait — the fallback, not
    /// the fast path.
    Poll,
}

impl ReadinessBackend {
    /// Stable name for logs and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            ReadinessBackend::Epoll => "epoll",
            ReadinessBackend::Poll => "poll",
        }
    }
}

// ---------------------------------------------------------------------
// Raw libc declarations. Everything the shim calls is listed here once,
// with the constants transcribed from the kernel/libc headers for the
// targets we gate on.
// ---------------------------------------------------------------------
#[cfg(unix)]
mod sys {
    #![allow(non_camel_case_types)]
    use std::os::raw::{c_int, c_short, c_void};

    #[cfg(target_os = "linux")]
    pub type nfds_t = std::os::raw::c_ulong;
    #[cfg(not(target_os = "linux"))]
    pub type nfds_t = std::os::raw::c_uint;

    #[repr(C)]
    pub struct pollfd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;
    pub const POLLNVAL: c_short = 0x020;

    pub const AF_INET: c_int = 2;
    pub const SOCK_STREAM: c_int = 1;

    #[cfg(target_os = "linux")]
    pub const SOL_SOCKET: c_int = 1;
    #[cfg(target_os = "linux")]
    pub const SO_REUSEADDR: c_int = 2;
    #[cfg(target_os = "linux")]
    pub const SO_REUSEPORT: c_int = 15;
    #[cfg(not(target_os = "linux"))]
    pub const SOL_SOCKET: c_int = 0xffff;
    #[cfg(not(target_os = "linux"))]
    pub const SO_REUSEADDR: c_int = 0x0004;
    #[cfg(not(target_os = "linux"))]
    pub const SO_REUSEPORT: c_int = 0x0200;

    /// `struct sockaddr_in`, IPv4 only — all the sharded bind needs.
    /// Linux has no `sin_len`; the BSDs (macOS included) lead with it.
    #[cfg(target_os = "linux")]
    #[repr(C)]
    pub struct sockaddr_in {
        pub sin_family: u16,
        pub sin_port: u16, // big-endian
        pub sin_addr: u32, // big-endian
        pub sin_zero: [u8; 8],
    }
    #[cfg(not(target_os = "linux"))]
    #[repr(C)]
    pub struct sockaddr_in {
        pub sin_len: u8,
        pub sin_family: u8,
        pub sin_port: u16, // big-endian
        pub sin_addr: u32, // big-endian
        pub sin_zero: [u8; 8],
    }

    /// `struct rlimit`; `rlim_t` is 64-bit on every 64-bit unix we
    /// target (and Linux exposes the 64-bit syscall via `getrlimit`).
    #[repr(C)]
    pub struct rlimit {
        pub rlim_cur: u64,
        pub rlim_max: u64,
    }

    #[cfg(target_os = "linux")]
    pub const RLIMIT_NOFILE: c_int = 7;
    #[cfg(not(target_os = "linux"))]
    pub const RLIMIT_NOFILE: c_int = 8;

    extern "C" {
        pub fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
        pub fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        pub fn setsockopt(
            fd: c_int,
            level: c_int,
            name: c_int,
            value: *const c_void,
            len: u32,
        ) -> c_int;
        pub fn bind(fd: c_int, addr: *const c_void, len: u32) -> c_int;
        pub fn listen(fd: c_int, backlog: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn getrlimit(resource: c_int, rlim: *mut rlimit) -> c_int;
        pub fn setrlimit(resource: c_int, rlim: *const rlimit) -> c_int;
    }
}

#[cfg(target_os = "linux")]
mod sys_epoll {
    #![allow(non_camel_case_types)]
    use std::os::raw::c_int;

    /// Kernel `struct epoll_event`. Packed on x86-64 only — the one
    /// architecture whose kernel ABI declares it `__attribute__
    /// ((packed))`; everywhere else natural alignment matches.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct epoll_event {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut epoll_event,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }
}

/// Events decoded per `wait` call; more ready sockets simply surface on
/// the next call (level-triggered semantics make that lossless).
const WAIT_BATCH: usize = 256;

#[cfg(target_os = "linux")]
struct EpollImp {
    /// The epoll instance fd, closed on drop.
    epfd: RawFd,
    /// Scratch buffer reused across waits.
    buf: Vec<sys_epoll::epoll_event>,
}

#[cfg(target_os = "linux")]
impl Drop for EpollImp {
    fn drop(&mut self) {
        // SAFETY: `epfd` came from a successful `epoll_create1` and is
        // owned exclusively by this struct; closing it exactly once on
        // drop cannot double-close or touch another descriptor.
        unsafe {
            sys::close(self.epfd);
        }
    }
}

#[cfg(unix)]
#[derive(Default)]
struct PollImp {
    /// Registered fds in registration order. Linear rebuild per wait —
    /// acceptable for the portable fallback.
    slots: Vec<(RawFd, Token, Interest)>,
}

enum Imp {
    #[cfg(target_os = "linux")]
    Epoll(EpollImp),
    #[cfg(unix)]
    Poll(PollImp),
    #[cfg(not(unix))]
    Unsupported,
}

/// A registry of non-blocking streams plus a blocking-with-timeout
/// `wait` that reports which are ready. Level-triggered on every
/// backend: a stream that stays readable keeps being reported, which
/// is what lets the ingress *defer* a read (buffer-pool exhaustion,
/// paused connection) by masking interest instead of buffering bytes.
pub struct Readiness {
    imp: Imp,
}

impl Readiness {
    /// Opens the platform's preferred backend: epoll on Linux, poll(2)
    /// elsewhere on Unix. Fails with [`io::ErrorKind::Unsupported`] on
    /// other targets.
    pub fn new() -> io::Result<Readiness> {
        #[cfg(target_os = "linux")]
        {
            Self::with_backend(ReadinessBackend::Epoll)
        }
        #[cfg(all(unix, not(target_os = "linux")))]
        {
            Self::with_backend(ReadinessBackend::Poll)
        }
        #[cfg(not(unix))]
        {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "no readiness backend on this platform",
            ))
        }
    }

    /// Opens a specific backend (tests run both on Linux).
    pub fn with_backend(backend: ReadinessBackend) -> io::Result<Readiness> {
        match backend {
            ReadinessBackend::Epoll => {
                #[cfg(target_os = "linux")]
                {
                    let epfd = unsafe {
                        // SAFETY: epoll_create1 takes only a flags word and
                        // returns a fresh fd or -1; no pointers involved.
                        sys_epoll::epoll_create1(sys_epoll::EPOLL_CLOEXEC)
                    };
                    if epfd < 0 {
                        return Err(io::Error::last_os_error());
                    }
                    Ok(Readiness {
                        imp: Imp::Epoll(EpollImp {
                            epfd,
                            buf: vec![sys_epoll::epoll_event { events: 0, data: 0 }; WAIT_BATCH],
                        }),
                    })
                }
                #[cfg(not(target_os = "linux"))]
                {
                    Err(io::Error::new(
                        io::ErrorKind::Unsupported,
                        "epoll is Linux-only",
                    ))
                }
            }
            ReadinessBackend::Poll => {
                #[cfg(unix)]
                {
                    Ok(Readiness {
                        imp: Imp::Poll(PollImp::default()),
                    })
                }
                #[cfg(not(unix))]
                {
                    Err(io::Error::new(
                        io::ErrorKind::Unsupported,
                        "poll(2) requires a Unix target",
                    ))
                }
            }
        }
    }

    /// Which mechanism this instance uses.
    pub fn backend(&self) -> ReadinessBackend {
        match &self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(_) => ReadinessBackend::Epoll,
            #[cfg(unix)]
            Imp::Poll(_) => ReadinessBackend::Poll,
            #[cfg(not(unix))]
            Imp::Unsupported => ReadinessBackend::Poll,
        }
    }

    /// Whether [`new`](Self::new) can succeed on this platform (the
    /// ingress server probes this at bind time to pick a loop).
    pub fn available() -> bool {
        Readiness::new().is_ok()
    }

    #[cfg(target_os = "linux")]
    fn epoll_mask(interest: Interest) -> u32 {
        let mut ev = sys_epoll::EPOLLRDHUP;
        if interest.readable {
            ev |= sys_epoll::EPOLLIN;
        }
        if interest.writable {
            ev |= sys_epoll::EPOLLOUT;
        }
        ev
    }

    #[cfg(target_os = "linux")]
    fn epoll_ctl(
        &mut self,
        op: std::os::raw::c_int,
        fd: RawFd,
        ev: u32,
        data: u64,
    ) -> io::Result<()> {
        let Imp::Epoll(imp) = &mut self.imp else {
            return Err(io::Error::new(io::ErrorKind::Unsupported, "not epoll"));
        };
        let mut event = sys_epoll::epoll_event { events: ev, data };
        let rc = unsafe {
            // SAFETY: `event` is a live, properly laid out epoll_event for
            // the duration of the call; the kernel copies it before
            // returning. `epfd` is our owned epoll fd; `fd` validity is
            // the caller's contract (register/modify/deregister take fds
            // of streams the ingress still owns).
            sys_epoll::epoll_ctl(imp.epfd, op, fd, &mut event)
        };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Adds `fd` with the given token and interest. The stream must
    /// already be non-blocking and must stay alive until
    /// [`deregister`](Self::deregister) (or close, on epoll).
    pub fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(_) => {
                let mask = Self::epoll_mask(interest);
                self.epoll_ctl(sys_epoll::EPOLL_CTL_ADD, fd, mask, token.0)
            }
            #[cfg(unix)]
            Imp::Poll(imp) => {
                if imp.slots.iter().any(|(f, _, _)| *f == fd) {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        "fd already registered",
                    ));
                }
                imp.slots.push((fd, token, interest));
                Ok(())
            }
            #[cfg(not(unix))]
            Imp::Unsupported => Err(io::Error::new(io::ErrorKind::Unsupported, "no backend")),
        }
    }

    /// Updates the interest (and token) of a registered fd.
    pub fn modify(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(_) => {
                let mask = Self::epoll_mask(interest);
                self.epoll_ctl(sys_epoll::EPOLL_CTL_MOD, fd, mask, token.0)
            }
            #[cfg(unix)]
            Imp::Poll(imp) => {
                for slot in &mut imp.slots {
                    if slot.0 == fd {
                        slot.1 = token;
                        slot.2 = interest;
                        return Ok(());
                    }
                }
                Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
            }
            #[cfg(not(unix))]
            Imp::Unsupported => Err(io::Error::new(io::ErrorKind::Unsupported, "no backend")),
        }
    }

    /// Removes a registered fd. Call *before* dropping the stream: the
    /// poll fallback keeps its own table (a recycled fd number would
    /// alias), and doing the same on epoll keeps both backends honest.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(_) => self.epoll_ctl(sys_epoll::EPOLL_CTL_DEL, fd, 0, 0),
            #[cfg(unix)]
            Imp::Poll(imp) => {
                let before = imp.slots.len();
                imp.slots.retain(|(f, _, _)| *f != fd);
                if imp.slots.len() == before {
                    return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
                }
                Ok(())
            }
            #[cfg(not(unix))]
            Imp::Unsupported => Err(io::Error::new(io::ErrorKind::Unsupported, "no backend")),
        }
    }

    /// Blocks up to `timeout_ms` (0 returns immediately; negative waits
    /// forever — the ingress never does) and appends ready events to
    /// `events` (cleared first). Returns the number of events.
    /// `EINTR` surfaces as zero events, like a timeout.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        events.clear();
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(imp) => {
                let rc = unsafe {
                    // SAFETY: `buf` is a live, exclusively borrowed slice of
                    // epoll_event with capacity `buf.len()`; the kernel
                    // writes at most `maxevents` entries into it and the
                    // return value bounds how many we read back.
                    sys_epoll::epoll_wait(
                        imp.epfd,
                        imp.buf.as_mut_ptr(),
                        imp.buf.len() as std::os::raw::c_int,
                        timeout_ms,
                    )
                };
                if rc < 0 {
                    let e = io::Error::last_os_error();
                    if e.kind() == io::ErrorKind::Interrupted {
                        return Ok(0);
                    }
                    return Err(e);
                }
                for raw in imp.buf.iter().take(rc as usize) {
                    let bits = raw.events;
                    let closed = bits
                        & (sys_epoll::EPOLLHUP | sys_epoll::EPOLLERR | sys_epoll::EPOLLRDHUP)
                        != 0;
                    events.push(Event {
                        token: Token(raw.data),
                        // HUP/ERR imply "read will not block" (it will
                        // observe EOF or the error), which is how the
                        // driver learns about them.
                        readable: bits
                            & (sys_epoll::EPOLLIN | sys_epoll::EPOLLHUP | sys_epoll::EPOLLERR)
                            != 0,
                        writable: bits & sys_epoll::EPOLLOUT != 0,
                        closed,
                    });
                }
                Ok(events.len())
            }
            #[cfg(unix)]
            Imp::Poll(imp) => {
                if imp.slots.is_empty() {
                    if timeout_ms > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(timeout_ms as u64));
                    }
                    return Ok(0);
                }
                let mut fds: Vec<sys::pollfd> = imp
                    .slots
                    .iter()
                    .map(|(fd, _, interest)| {
                        let mut ev = 0;
                        if interest.readable {
                            ev |= sys::POLLIN;
                        }
                        if interest.writable {
                            ev |= sys::POLLOUT;
                        }
                        sys::pollfd {
                            fd: *fd,
                            events: ev,
                            revents: 0,
                        }
                    })
                    .collect();
                let rc = unsafe {
                    // SAFETY: `fds` is a live, exclusively borrowed array of
                    // `fds.len()` pollfd entries; poll(2) reads `events` and
                    // writes `revents` in place, never past the length we
                    // pass.
                    sys::poll(fds.as_mut_ptr(), fds.len() as sys::nfds_t, timeout_ms)
                };
                if rc < 0 {
                    let e = io::Error::last_os_error();
                    if e.kind() == io::ErrorKind::Interrupted {
                        return Ok(0);
                    }
                    return Err(e);
                }
                for (slot, raw) in imp.slots.iter().zip(fds.iter()) {
                    let bits = raw.revents;
                    if bits == 0 {
                        continue;
                    }
                    let closed = bits & (sys::POLLHUP | sys::POLLERR | sys::POLLNVAL) != 0;
                    events.push(Event {
                        token: slot.1,
                        readable: bits & (sys::POLLIN | sys::POLLHUP | sys::POLLERR) != 0,
                        writable: bits & sys::POLLOUT != 0,
                        closed,
                    });
                }
                Ok(events.len())
            }
            #[cfg(not(unix))]
            Imp::Unsupported => Err(io::Error::new(io::ErrorKind::Unsupported, "no backend")),
        }
    }
}

/// Binds a TCP listener with `SO_REUSEPORT` (and `SO_REUSEADDR`) set
/// *before* bind, so several acceptor shards can share one address and
/// the kernel load-balances incoming connections across them. IPv4
/// only — the sharded ingress binds concrete v4 addresses; anything
/// else falls back to a single std listener at the call site. The
/// returned listener is already non-blocking.
#[cfg(unix)]
pub fn bind_reuseport(addr: SocketAddr) -> io::Result<TcpListener> {
    let v4: SocketAddrV4 = match addr {
        SocketAddr::V4(v4) => v4,
        SocketAddr::V6(_) => {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "reuseport shim is IPv4-only",
            ))
        }
    };
    let fd = unsafe {
        // SAFETY: socket() takes three plain ints and returns an fd or -1.
        sys::socket(sys::AF_INET, sys::SOCK_STREAM, 0)
    };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    // From here every error path must close `fd`; wrap it immediately
    // so drop handles that.
    let owned = unsafe {
        // SAFETY: `fd` is a fresh, valid socket owned by nobody else;
        // OwnedFd takes sole ownership and closes it exactly once.
        std::os::fd::OwnedFd::from_raw_fd(fd)
    };

    let on: std::os::raw::c_int = 1;
    for opt in [sys::SO_REUSEADDR, sys::SO_REUSEPORT] {
        let rc = unsafe {
            // SAFETY: `on` outlives the call and the length passed is
            // exactly `size_of::<c_int>()`; setsockopt only reads it.
            sys::setsockopt(
                owned.as_raw_fd(),
                sys::SOL_SOCKET,
                opt,
                (&on as *const std::os::raw::c_int).cast(),
                std::mem::size_of::<std::os::raw::c_int>() as u32,
            )
        };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
    }

    #[cfg(target_os = "linux")]
    let sa = sys::sockaddr_in {
        sin_family: sys::AF_INET as u16,
        sin_port: v4.port().to_be(),
        sin_addr: u32::from_be_bytes(v4.ip().octets()).to_be(),
        sin_zero: [0; 8],
    };
    #[cfg(not(target_os = "linux"))]
    let sa = sys::sockaddr_in {
        sin_len: std::mem::size_of::<sys::sockaddr_in>() as u8,
        sin_family: sys::AF_INET as u8,
        sin_port: v4.port().to_be(),
        sin_addr: u32::from_be_bytes(v4.ip().octets()).to_be(),
        sin_zero: [0; 8],
    };
    let rc = unsafe {
        // SAFETY: `sa` is a fully initialised sockaddr_in living across the
        // call, and the length passed is its exact size; bind only reads.
        sys::bind(
            owned.as_raw_fd(),
            (&sa as *const sys::sockaddr_in).cast(),
            std::mem::size_of::<sys::sockaddr_in>() as u32,
        )
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    let rc = unsafe {
        // SAFETY: plain int arguments on a socket we own.
        sys::listen(owned.as_raw_fd(), 1024)
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    let listener = unsafe {
        // SAFETY: ownership of the fd transfers from `owned` (forgotten via
        // into_raw_fd) to the TcpListener — exactly one owner at all times.
        TcpListener::from_raw_fd(std::os::fd::IntoRawFd::into_raw_fd(owned))
    };
    listener.set_nonblocking(true)?;
    Ok(listener)
}

/// Stub for non-Unix targets.
#[cfg(not(unix))]
pub fn bind_reuseport(_addr: std::net::SocketAddr) -> io::Result<TcpListener> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "SO_REUSEPORT shim requires a Unix target",
    ))
}

/// Raises the soft `RLIMIT_NOFILE` toward `want` (capped at the hard
/// limit) and returns the resulting soft limit. Holding tens of
/// thousands of sockets needs this; a failure to raise is not fatal —
/// callers get the old limit back and scale down.
#[cfg(unix)]
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let mut lim = sys::rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    let rc = unsafe {
        // SAFETY: `lim` is a live, writable rlimit; getrlimit fills it.
        sys::getrlimit(sys::RLIMIT_NOFILE, &mut lim)
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.rlim_cur >= want {
        return Ok(lim.rlim_cur);
    }
    let new = sys::rlimit {
        rlim_cur: want.min(lim.rlim_max),
        rlim_max: lim.rlim_max,
    };
    let rc = unsafe {
        // SAFETY: `new` is fully initialised and outlives the call;
        // setrlimit only reads it.
        sys::setrlimit(sys::RLIMIT_NOFILE, &new)
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(new.rlim_cur)
}

/// Stub for non-Unix targets: reports the request as the limit.
#[cfg(not(unix))]
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    Ok(want)
}

/// Probes which listener mode the platform supports for an address:
/// `Some(listener)` when a reuseport socket could be bound (sharded
/// accept works), `None` when the caller should fall back to one std
/// listener and a single shard.
pub fn try_bind_reuseport(addr: std::net::SocketAddr) -> Option<TcpListener> {
    #[cfg(unix)]
    {
        bind_reuseport(addr).ok()
    }
    #[cfg(not(unix))]
    {
        let _ = addr;
        None
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener as StdListener, TcpStream};

    fn backends() -> Vec<ReadinessBackend> {
        let mut v = vec![ReadinessBackend::Poll];
        if Readiness::with_backend(ReadinessBackend::Epoll).is_ok() {
            v.push(ReadinessBackend::Epoll);
        }
        v
    }

    #[test]
    fn readable_and_writable_events() {
        for backend in backends() {
            let listener = StdListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let mut client = TcpStream::connect(addr).unwrap();
            let (server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();

            let mut r = Readiness::with_backend(backend).unwrap();
            r.register(server.as_raw_fd(), Token(7), Interest::READ)
                .unwrap();

            // Nothing to read yet: wait times out empty.
            let mut events = Vec::new();
            r.wait(&mut events, 10).unwrap();
            assert!(events.is_empty(), "{backend:?}: spurious event");

            client.write_all(b"ping").unwrap();
            // Give the loopback a few chances to deliver.
            let mut seen = false;
            for _ in 0..100 {
                r.wait(&mut events, 50).unwrap();
                if events.iter().any(|e| e.token == Token(7) && e.readable) {
                    seen = true;
                    break;
                }
            }
            assert!(seen, "{backend:?}: readable never reported");

            // Level-triggered: still readable until drained.
            r.wait(&mut events, 10).unwrap();
            assert!(
                events.iter().any(|e| e.token == Token(7) && e.readable),
                "{backend:?}: not level-triggered"
            );

            // Masking read interest silences it.
            r.modify(server.as_raw_fd(), Token(7), Interest::NONE)
                .unwrap();
            r.wait(&mut events, 10).unwrap();
            assert!(events.is_empty(), "{backend:?}: masked fd reported");

            // Writable interest on an idle socket fires immediately.
            r.modify(
                server.as_raw_fd(),
                Token(7),
                Interest {
                    readable: true,
                    writable: true,
                },
            )
            .unwrap();
            r.wait(&mut events, 50).unwrap();
            assert!(
                events.iter().any(|e| e.token == Token(7) && e.writable),
                "{backend:?}: writable never reported"
            );

            r.deregister(server.as_raw_fd()).unwrap();
            r.wait(&mut events, 10).unwrap();
            assert!(events.is_empty(), "{backend:?}: deregistered fd reported");
        }
    }

    #[test]
    fn hangup_reports_closed_or_readable() {
        for backend in backends() {
            let listener = StdListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let client = TcpStream::connect(addr).unwrap();
            let (mut server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();

            let mut r = Readiness::with_backend(backend).unwrap();
            r.register(server.as_raw_fd(), Token(1), Interest::READ)
                .unwrap();
            drop(client);

            let mut events = Vec::new();
            let mut seen = false;
            for _ in 0..100 {
                r.wait(&mut events, 50).unwrap();
                if events
                    .iter()
                    .any(|e| e.token == Token(1) && (e.readable || e.closed))
                {
                    seen = true;
                    break;
                }
            }
            assert!(seen, "{backend:?}: hangup never surfaced");
            // And a read now observes EOF rather than blocking.
            let mut buf = [0u8; 8];
            assert_eq!(server.read(&mut buf).unwrap(), 0);
        }
    }

    #[test]
    fn reuseport_listeners_share_an_address() {
        let a = bind_reuseport("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = a.local_addr().unwrap();
        let b = bind_reuseport(addr).expect("second reuseport bind");
        assert_eq!(b.local_addr().unwrap().port(), addr.port());

        // Connections land on one of the two listeners.
        let mut delivered = 0;
        for _ in 0..8 {
            let _c = TcpStream::connect(addr).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(5));
            for l in [&a, &b] {
                if l.accept().is_ok() {
                    delivered += 1;
                }
            }
        }
        assert!(delivered >= 8, "accepted {delivered}/8");
    }

    #[test]
    fn nofile_limit_is_queryable() {
        // Raising toward the current limit is a no-op that must succeed.
        let cur = raise_nofile_limit(1).unwrap();
        assert!(cur >= 1);
    }
}
